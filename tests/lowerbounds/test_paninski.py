"""Tests for the Proposition 4.1 construction."""

import numpy as np
import pytest

from repro.distributions.distances import tv_distance
from repro.distributions.projection import unconstrained_l1_distance
from repro.lowerbounds.paninski import (
    critical_sample_size,
    distinguishing_experiment,
    expected_pair_statistic,
    pair_statistic,
    paninski_distance_lower_bound,
    paninski_instance,
)


class TestInstance:
    def test_valid_distribution(self):
        d = paninski_instance(100, 0.1, rng=0)
        assert d.pmf.sum() == pytest.approx(1.0)
        assert np.all(d.pmf > 0)

    def test_pair_structure(self):
        d = paninski_instance(50 * 2, 0.1, rng=1, c=5.0)
        pairs = d.pmf.reshape(-1, 2)
        assert np.allclose(pairs.sum(axis=1), 2.0 / 100)
        assert np.allclose(np.abs(pairs[:, 0] - pairs[:, 1]), 2 * 5.0 * 0.1 / 100)

    def test_far_from_uniform(self):
        d = paninski_instance(200, 0.1, rng=2, c=6.0)
        u = np.full(200, 1 / 200)
        assert tv_distance(d, u) == pytest.approx(6.0 * 0.1 / 2)

    def test_signs_random(self):
        a = paninski_instance(1000, 0.1, rng=3).pmf
        b = paninski_instance(1000, 0.1, rng=4).pmf
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            paninski_instance(7, 0.1)  # odd
        with pytest.raises(ValueError):
            paninski_instance(10, 0.2, c=6.0)  # c*eps >= 1
        with pytest.raises(ValueError):
            paninski_instance(10, 0.0)


class TestFarnessCertificate:
    def test_closed_form(self):
        assert paninski_distance_lower_bound(100, 0.1, 1, c=6.0) == pytest.approx(
            50 * 6.0 * 0.1 / 100
        )

    def test_certificate_vs_exact_dp(self):
        n, eps, c = 120, 0.1, 6.0
        d = paninski_instance(n, eps, rng=5, c=c)
        for k in (1, 3, 10):
            certified = paninski_distance_lower_bound(n, eps, k, c=c)
            exact_lower = unconstrained_l1_distance(d, k)
            assert exact_lower >= certified - 1e-9

    def test_prop_41_epsilon_far(self):
        # With c = 6 and k < n/3 the instance is >= eps-far (the paper's
        # cε/3 bound; ours is even tighter).
        n, eps = 300, 0.12
        assert paninski_distance_lower_bound(n, eps, n // 3, c=6.0) >= eps

    def test_vanishes_at_huge_k(self):
        assert paninski_distance_lower_bound(100, 0.1, 51) == 0.0


class TestPairStatistic:
    def test_expectation_under_uniform(self):
        """E[T] = 0 under uniform (60 reps, 3.5 sigma window)."""
        from repro.distributions.discrete import DiscreteDistribution

        n, m = 400, 2000.0
        u = DiscreteDistribution.uniform(n)
        gen = np.random.default_rng(6)
        vals = [pair_statistic(u.sample_counts_poissonized(m, gen)) for _ in range(60)]
        sd_mean = np.std(vals) / np.sqrt(60)
        assert abs(np.mean(vals)) < 3.5 * sd_mean + 1e-9

    def test_expectation_under_instance(self):
        n, eps, m, c = 400, 0.1, 3000.0, 5.0
        gen = np.random.default_rng(7)
        vals = []
        for _ in range(60):
            d = paninski_instance(n, eps, gen, c=c)
            vals.append(pair_statistic(d.sample_counts_poissonized(m, gen)))
        assert np.mean(vals) == pytest.approx(
            expected_pair_statistic(n, eps, m, c=c), rel=0.25
        )

    def test_odd_domain_raises(self):
        with pytest.raises(ValueError):
            pair_statistic(np.ones(5))


class TestDistinguishing:
    def test_success_monotone_in_m(self):
        n, eps = 1000, 0.1
        critical = critical_sample_size(n, eps)
        low = distinguishing_experiment(n, eps, critical / 8, trials=150, rng=8)
        high = distinguishing_experiment(n, eps, critical * 16, trials=150, rng=9)
        assert low.success_rate < 0.75
        assert high.success_rate > 0.9

    def test_blind_below_threshold(self):
        # Way below the critical scale the statistic is noise: success ~ 1/2.
        n, eps = 4000, 0.05
        r = distinguishing_experiment(n, eps, 10, trials=200, rng=10)
        assert 0.3 < r.success_rate < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            distinguishing_experiment(100, 0.1, 50.0, trials=0)
        with pytest.raises(ValueError):
            critical_sample_size(1, 0.1)
