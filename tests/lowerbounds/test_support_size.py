"""Tests for the Proposition 4.2 reduction and Lemma 4.4."""

import numpy as np
import pytest

from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.distributions.histogram import num_pieces
from repro.lowerbounds.support_size import (
    REDUCTION_EPSILON,
    cover_experiment,
    expected_cover,
    permuted_cover,
    reduction_parameters,
    solve_suppsize_via_tester,
    suppsize_instance,
)
from repro.util.intervals import cover


class TestInstances:
    def test_promise_met(self):
        for small in (True, False):
            inst = suppsize_instance(24, small, rng=0)
            positive = inst.dist.pmf[inst.dist.pmf > 0]
            assert np.all(positive >= 1.0 / 24 - 1e-12)
            assert inst.dist.pmf.sum() == pytest.approx(1.0)

    def test_sizes(self):
        small = suppsize_instance(24, True, rng=1)
        large = suppsize_instance(24, False, rng=1)
        assert small.support_size == 8
        assert large.support_size == 21

    def test_contiguous_layout(self):
        inst = suppsize_instance(24, True, rng=2, contiguous=True)
        assert inst.dist.support().tolist() == list(range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            suppsize_instance(4, True)

    def test_small_contiguous_is_histogram(self):
        # Embedded small-support instance is a (2s+1)-histogram.
        inst = suppsize_instance(24, True, rng=3, contiguous=True)
        embedded = inst.dist.embed(200)
        assert num_pieces(embedded.pmf) <= 2 * inst.support_size + 1


class TestLemma44:
    def test_bound_holds(self):
        # Monte-Carlo probability must sit below 7l/n (500 trials; the
        # empirical value is essentially 0 at these scales).
        exp = cover_experiment(3000, 60, trials=500, rng=4)
        assert exp.empirical_probability <= exp.lemma_bound

    def test_mean_cover_matches_border_count(self):
        exp = cover_experiment(2000, 100, trials=400, rng=5)
        assert exp.mean_cover == pytest.approx(expected_cover(100, 2000), rel=0.05)

    def test_permuted_cover_range(self):
        support = np.arange(50)
        c = permuted_cover(support, 1000, rng=6)
        assert 1 <= c <= 50

    def test_cover_of_full_domain_is_one(self):
        assert cover(range(10), 10) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            cover_experiment(10, 0, 5)
        with pytest.raises(ValueError):
            cover_experiment(10, 11, 5)
        with pytest.raises(ValueError):
            cover_experiment(10, 5, 0)


class TestReduction:
    def test_parameters(self):
        m, eps = reduction_parameters(9)
        assert m == 12
        assert eps == REDUCTION_EPSILON
        with pytest.raises(ValueError):
            reduction_parameters(2)

    def test_reduction_decides_suppsize(self):
        """The headline of Proposition 4.2: a correct histogram tester,
        used as a black box, solves SUPPSIZE (6 instances, both sides)."""
        config = TesterConfig.practical()

        def tester(source, k, eps):
            return test_histogram(source, k, eps, config=config).accept

        m, _ = reduction_parameters(11)
        n = 80 * m
        correct = 0
        for seed in range(6):
            small = seed % 2 == 0
            inst = suppsize_instance(m, small, rng=seed)
            guess = solve_suppsize_via_tester(inst, n, tester, rng=50 + seed)
            correct += guess == small
        assert correct >= 5

    def test_majority_uses_fresh_permutations(self):
        calls = []

        def fake_tester(source, k, eps):
            calls.append(source)
            return True

        inst = suppsize_instance(12, True, rng=7)
        solve_suppsize_via_tester(inst, 900, fake_tester, repeats=5, rng=8)
        assert len(calls) == 5
        assert len({id(c) for c in calls}) == 5

    def test_validation(self):
        inst = suppsize_instance(12, True, rng=9)
        with pytest.raises(ValueError):
            solve_suppsize_via_tester(inst, 6, lambda s, k, e: True)
        with pytest.raises(ValueError):
            solve_suppsize_via_tester(inst, 900, lambda s, k, e: True, repeats=0)
