"""Unit tests for the kernel layer's selection state and op registry.

Covers the resolution contract from DESIGN.md § "Kernel layer": spelling
validation, ``auto``'s silent fallback vs the loud failure of an explicit
``numba`` request, thread-local / ``REPRO_KERNEL`` precedence (including
the "thread-local auto carries no opinion" rule), per-op python fallback
for ops without a native registration, and the metered dispatch snapshot
behind ``repro test --stage-timings``.
"""

import threading

import numpy as np
import pytest

from repro.kernels import (
    KERNELS,
    KernelUnavailableError,
    available_kernels,
    dispatch,
    kernel_seconds_snapshot,
    native_available,
    resolve_kernel,
    use_kernel,
    validate_kernel,
)
from repro.kernels import state as kernel_state
from repro.kernels.dispatch import kernels_for, registered_ops
from repro.kernels.state import KERNEL_ENV_VAR, current_kernel

EXPECTED_OPS = (
    "blocks.build",
    "blocks.cover_walk",
    "chi2.point_terms",
    "dp.segment_first_min",
    "rank_tree.build",
    "rank_tree.interval_stats",
    "rank_tree.prefix_stats",
    "sampling.counts_from_samples",
    "serve.aggregate_rows",
)


@pytest.fixture(autouse=True)
def _clean_kernel_env(monkeypatch):
    """Each test starts with no env override and no thread-local kernel."""
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    monkeypatch.setattr(kernel_state._local, "kernel", None, raising=False)


class TestValidateKernel:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_accepts_every_spelling(self, kernel):
        assert validate_kernel(kernel) == kernel

    @pytest.mark.parametrize("kernel", ["", "Numba", "numpy", "native", None, 3])
    def test_rejects_everything_else(self, kernel):
        with pytest.raises(ValueError, match="kernel must be one of"):
            validate_kernel(kernel)


class TestResolveKernel:
    def test_auto_without_native_is_python(self, monkeypatch):
        monkeypatch.setattr(kernel_state, "_native_probe", False)
        assert resolve_kernel("auto") == "python"

    def test_auto_with_native_is_numba(self, monkeypatch):
        monkeypatch.setattr(kernel_state, "_native_probe", True)
        assert resolve_kernel("auto") == "numba"

    def test_explicit_python_always_resolves(self):
        assert resolve_kernel("python") == "python"

    def test_explicit_numba_without_native_raises(self, monkeypatch):
        monkeypatch.setattr(kernel_state, "_native_probe", False)
        with pytest.raises(KernelUnavailableError, match="repro\\[native\\]"):
            resolve_kernel("numba")

    def test_none_reads_current_kernel(self):
        with use_kernel("python"):
            assert resolve_kernel(None) == "python"
        assert resolve_kernel(None) == resolve_kernel("auto")

    def test_available_kernels_matches_probe(self, monkeypatch):
        monkeypatch.setattr(kernel_state, "_native_probe", False)
        assert available_kernels() == ("python",)
        monkeypatch.setattr(kernel_state, "_native_probe", True)
        assert available_kernels() == ("python", "numba")

    def test_native_probe_is_cached(self, monkeypatch):
        monkeypatch.setattr(kernel_state, "_native_probe", None)
        first = native_available()
        assert native_available() is first
        assert kernel_state._native_probe is first


class TestCurrentKernelPrecedence:
    def test_default_is_auto(self):
        assert current_kernel() == "auto"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "python")
        assert current_kernel() == "python"

    def test_env_whitespace_ignored(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "   ")
        assert current_kernel() == "auto"

    def test_env_bad_spelling_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "fortran")
        with pytest.raises(ValueError, match="kernel must be one of"):
            current_kernel()

    def test_thread_local_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "numba")
        with use_kernel("python"):
            assert current_kernel() == "python"
        assert current_kernel() == "numba"

    def test_thread_local_auto_defers_to_env(self, monkeypatch):
        """The common pipeline default ``use_kernel("auto")`` must not
        shadow an operator's ``REPRO_KERNEL`` pin."""
        monkeypatch.setenv(KERNEL_ENV_VAR, "python")
        with use_kernel("auto"):
            assert current_kernel() == "python"

    def test_use_kernel_none_is_passthrough(self):
        with use_kernel("python"):
            with use_kernel(None) as seen:
                assert seen == "python"
                assert current_kernel() == "python"

    def test_use_kernel_nesting_restores_previous(self):
        with use_kernel("python"):
            with use_kernel("auto"):
                pass
            assert current_kernel() == "python"
        assert current_kernel() == "auto"

    def test_use_kernel_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_kernel("python"):
                raise RuntimeError("boom")
        assert current_kernel() == "auto"

    def test_use_kernel_validates_spelling(self):
        with pytest.raises(ValueError):
            with use_kernel("numpy"):
                pass  # pragma: no cover

    def test_setting_is_thread_local(self):
        seen = {}

        def worker():
            seen["other"] = current_kernel()

        with use_kernel("python"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] == "auto"


class TestDispatch:
    def test_every_hot_op_is_registered(self):
        assert set(EXPECTED_OPS) <= set(registered_ops())

    def test_python_impl_exists_for_every_op(self):
        for op in registered_ops():
            assert "python" in kernels_for(op)

    def test_unknown_op_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown kernel op"):
            dispatch("no.such_op")

    def test_dispatch_binds_python(self):
        fn = dispatch("sampling.counts_from_samples", "python")
        assert fn.kernel == "python"
        assert fn.op == "sampling.counts_from_samples"
        counts = fn(np.array([0, 2, 2]), 4)
        assert counts.tolist() == [1, 0, 2, 0]
        assert counts.dtype == np.int64

    def test_dispatch_respects_use_kernel_scope(self):
        with use_kernel("python"):
            assert dispatch("chi2.point_terms").kernel == "python"

    def test_native_less_op_falls_back_to_python(self, monkeypatch):
        """``rank_tree.build`` has no native registration by design: even a
        resolved ``numba`` kernel must bind (and report) python for it."""
        monkeypatch.setattr(kernel_state, "_native_probe", True)
        fn = dispatch("rank_tree.build", "numba")
        assert fn.kernel == "python"

    def test_explicit_numba_without_native_raises(self, monkeypatch):
        monkeypatch.setattr(kernel_state, "_native_probe", False)
        with pytest.raises(KernelUnavailableError):
            dispatch("chi2.point_terms", "numba")


class TestKernelSecondsSnapshot:
    def test_dispatched_calls_are_metered(self):
        fn = dispatch("sampling.counts_from_samples", "python")
        before = {
            (op, kernel): calls for op, kernel, calls, _ in kernel_seconds_snapshot()
        }
        fn(np.array([0, 1]), 2)
        fn(np.array([1]), 2)
        after = {
            (op, kernel): calls for op, kernel, calls, _ in kernel_seconds_snapshot()
        }
        key = ("sampling.counts_from_samples", "python")
        assert after[key] == before.get(key, 0) + 2

    def test_rows_are_well_formed(self):
        dispatch("serve.aggregate_rows", "python")(
            np.ones((2, 4)), np.array([0, 2])
        )
        rows = kernel_seconds_snapshot()
        assert rows
        for op, kernel, calls, seconds in rows:
            assert isinstance(op, str) and isinstance(kernel, str)
            # Binding an op creates its series; only *calls* advance it.
            assert calls >= 0
            assert seconds >= 0.0
        by_key = {(op, kernel): calls for op, kernel, calls, _ in rows}
        assert by_key[("serve.aggregate_rows", "python")] >= 1
