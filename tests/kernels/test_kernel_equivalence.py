"""Kernel equivalence: every registered op against a brute-force reference.

Each python kernel is checked against a direct (scalar or one-liner numpy)
restatement of its contract over hypothesis-generated inputs, and — when
the ``repro[native]`` extra is installed — the numba kernel is checked for
**bit-identical** output against the python one on the same inputs.  The
accumulation-order contract (module docstring of
:mod:`repro.kernels.pykernels`) is what makes bit-identity achievable, so
cross-kernel comparisons use exact equality, while brute-force references
(which sum in a different order) get a 1e-12 tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels import dispatch, native_available
from repro.kernels import pykernels

ATOL = 1e-12

needs_native = pytest.mark.skipif(
    not native_available(), reason="numba kernels not installed (repro[native])"
)

#: Concrete kernels to cross-check; the numba column only runs with the extra.
CROSS_KERNELS = [
    pytest.param("python"),
    pytest.param("numba", marks=needs_native),
]


@st.composite
def rank_tree_inputs(draw):
    """Values with deliberate duplicates plus masked weight arrays."""
    n = draw(st.integers(min_value=1, max_value=48))
    pool = draw(st.integers(min_value=1, max_value=6))
    values = draw(
        hnp.arrays(
            np.float64,
            n,
            elements=st.sampled_from([round(0.1 * j, 1) for j in range(pool)]),
        )
    )
    weights = draw(
        hnp.arrays(
            np.float64,
            n,
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    mask = draw(hnp.arrays(np.bool_, n))
    queries = draw(st.integers(min_value=0, max_value=12))
    x = draw(
        hnp.arrays(np.int64, queries, elements=st.integers(min_value=0, max_value=n))
    )
    nu = len(np.unique(values))
    L = draw(
        hnp.arrays(np.int64, queries, elements=st.integers(min_value=0, max_value=nu))
    )
    return values, weights, mask, x, L


class TestRankTree:
    @given(rank_tree_inputs())
    @settings(max_examples=120, deadline=None)
    def test_prefix_stats_matches_brute_force(self, inputs):
        values, weights, mask, x, L = inputs
        wm = np.where(mask, weights, 0.0)
        wvm = wm * values
        tree = pykernels.build_rank_tree(values, wm, wvm)
        w, wv = pykernels.rank_prefix_stats(tree, x, L)
        ranks = np.searchsorted(tree.unique_vals, values)
        for q in range(len(x)):
            sel = (np.arange(len(values)) < x[q]) & (ranks < L[q])
            assert w[q] == pytest.approx(float(wm[sel].sum()), abs=ATOL)
            assert wv[q] == pytest.approx(float(wvm[sel].sum()), abs=ATOL)

    @given(rank_tree_inputs())
    @settings(max_examples=40, deadline=None)
    def test_query_chunking_is_exact(self, inputs):
        """Chunks are independent queries: splitting never changes a bit."""
        values, weights, mask, x, L = inputs
        wm = np.where(mask, weights, 0.0)
        tree = pykernels.build_rank_tree(values, wm, wm * values)
        whole = pykernels.rank_prefix_stats(tree, x, L)
        original = pykernels._QUERY_CHUNK
        pykernels._QUERY_CHUNK = 3
        try:
            chunked = pykernels.rank_prefix_stats(tree, x, L)
        finally:
            pykernels._QUERY_CHUNK = original
        assert np.array_equal(whole[0], chunked[0])
        assert np.array_equal(whole[1], chunked[1])

    @pytest.mark.parametrize("kernel", CROSS_KERNELS)
    @given(rank_tree_inputs())
    @settings(max_examples=40, deadline=None)
    def test_dispatched_matches_python_bit_for_bit(self, kernel, inputs):
        values, weights, mask, x, L = inputs
        wm = np.where(mask, weights, 0.0)
        wvm = wm * values
        tree = dispatch("rank_tree.build", kernel)(values, wm, wvm)
        got = dispatch("rank_tree.prefix_stats", kernel)(tree, x, L)
        ref_tree = pykernels.build_rank_tree(values, wm, wvm)
        want = pykernels.rank_prefix_stats(ref_tree, x, L)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])


@st.composite
def interval_inputs(draw):
    """Rank-tree inputs with interval queries (empty intervals included)."""
    values, weights, mask, _, _ = draw(rank_tree_inputs())
    n = len(values)
    queries = draw(st.integers(min_value=0, max_value=12))
    a = draw(
        hnp.arrays(np.int64, queries, elements=st.integers(min_value=0, max_value=n))
    )
    b = draw(
        hnp.arrays(np.int64, queries, elements=st.integers(min_value=0, max_value=n))
    )
    nu = len(np.unique(values))
    L = draw(
        hnp.arrays(np.int64, queries, elements=st.integers(min_value=0, max_value=nu))
    )
    return values, weights, mask, a, b, L


class TestIntervalStats:
    @given(interval_inputs())
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, inputs):
        values, weights, mask, a, b, L = inputs
        wm = np.where(mask, weights, 0.0)
        wvm = wm * values
        tree = pykernels.build_rank_tree(values, wm, wvm)
        w, wv = pykernels.rank_interval_stats(tree, a, b, L)
        ranks = np.searchsorted(tree.unique_vals, values)
        pos = np.arange(len(values))
        for q in range(len(a)):
            sel = (pos >= a[q]) & (pos < b[q]) & (ranks < L[q])
            assert w[q] == pytest.approx(float(wm[sel].sum()), abs=ATOL)
            assert wv[q] == pytest.approx(float(wvm[sel].sum()), abs=ATOL)

    @given(interval_inputs())
    @settings(max_examples=60, deadline=None)
    def test_consistent_with_prefix_difference(self, inputs):
        """The interval form must agree with differencing two prefix queries
        (different decomposition, so tolerance rather than bit equality)."""
        values, weights, mask, a, b, L = inputs
        wm = np.where(mask, weights, 0.0)
        tree = pykernels.build_rank_tree(values, wm, wm * values)
        w, wv = pykernels.rank_interval_stats(tree, a, b, L)
        wb, wvb = pykernels.rank_prefix_stats(tree, np.maximum(a, b), L)
        wa, wva = pykernels.rank_prefix_stats(tree, a, L)
        keep = a < b  # empty intervals are exactly zero
        assert np.allclose(w[keep], (wb - wa)[keep], atol=ATOL)
        assert np.allclose(wv[keep], (wvb - wva)[keep], atol=ATOL)
        assert not w[~keep].any()
        assert not wv[~keep].any()

    @given(interval_inputs())
    @settings(max_examples=40, deadline=None)
    def test_query_chunking_is_exact(self, inputs):
        values, weights, mask, a, b, L = inputs
        wm = np.where(mask, weights, 0.0)
        tree = pykernels.build_rank_tree(values, wm, wm * values)
        whole = pykernels.rank_interval_stats(tree, a, b, L)
        original = pykernels._QUERY_CHUNK
        pykernels._QUERY_CHUNK = 3
        try:
            chunked = pykernels.rank_interval_stats(tree, a, b, L)
        finally:
            pykernels._QUERY_CHUNK = original
        assert np.array_equal(whole[0], chunked[0])
        assert np.array_equal(whole[1], chunked[1])

    @pytest.mark.parametrize("kernel", CROSS_KERNELS)
    @given(interval_inputs())
    @settings(max_examples=40, deadline=None)
    def test_dispatched_matches_python_bit_for_bit(self, kernel, inputs):
        values, weights, mask, a, b, L = inputs
        wm = np.where(mask, weights, 0.0)
        wvm = wm * values
        tree = dispatch("rank_tree.build", kernel)(values, wm, wvm)
        got = dispatch("rank_tree.interval_stats", kernel)(tree, a, b, L)
        ref_tree = pykernels.build_rank_tree(values, wm, wvm)
        want = pykernels.rank_interval_stats(ref_tree, a, b, L)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])


@st.composite
def block_inputs(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    v = draw(
        hnp.arrays(
            np.float64,
            n,
            elements=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        )
    )
    weights = draw(
        hnp.arrays(
            np.float64,
            n,
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    mask = draw(hnp.arrays(np.bool_, n))
    return v, np.where(mask, weights, 0.0)


def _brute_block_cost(v, w):
    """Optimal masked ℓ1 cost of one block: minimise over candidate centres
    (any block value is a valid optimum for weighted ℓ1)."""
    if w.sum() == 0:
        return 0.0
    return min(float(np.sum(w * np.abs(v - c))) for c in v)


class TestBlockTables:
    @given(block_inputs())
    @settings(max_examples=100, deadline=None)
    def test_costs_match_brute_force(self, inputs):
        v, wm = inputs
        n = len(v)
        costs_flat, costs_off, prefix2d, nlevels = pykernels.build_block_tables(v, wm)
        for b in range(nlevels):
            size = 1 << b
            nblocks = -(n // -size)
            costs = costs_flat[costs_off[b] : costs_off[b + 1]]
            assert len(costs) == nblocks
            for j in range(nblocks):
                vb = v[j * size : (j + 1) * size]
                wb = wm[j * size : (j + 1) * size]
                assert costs[j] == pytest.approx(_brute_block_cost(vb, wb), abs=ATOL)
            assert np.allclose(
                prefix2d[b, : nblocks + 1], np.concatenate(([0.0], np.cumsum(costs)))
            )
            assert not prefix2d[b, nblocks + 1 :].any()  # zero-padded tail

    @given(block_inputs(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_cover_walk_matches_scalar_walk(self, inputs, data):
        v, wm = inputs
        n = len(v)
        costs_flat, costs_off, _, nlevels = pykernels.build_block_tables(v, wm)
        pairs = data.draw(st.integers(min_value=0, max_value=8))
        a = np.array(
            [data.draw(st.integers(min_value=0, max_value=n)) for _ in range(pairs)],
            dtype=np.int64,
        )
        b = np.array(
            [data.draw(st.integers(min_value=0, max_value=n)) for _ in range(pairs)],
            dtype=np.int64,
        )
        got = pykernels.cover_walk(costs_flat, costs_off, nlevels, a, b)
        for q in range(pairs):
            l, r, total = int(a[q]), int(b[q]), 0.0
            for lev in range(nlevels):
                if l >= r:
                    break
                base = int(costs_off[lev])
                if l & 1:
                    total += costs_flat[base + l]
                    l += 1
                if r & 1:
                    r -= 1
                    total += costs_flat[base + r]
                l >>= 1
                r >>= 1
            assert got[q] == total  # identical adds in identical order

    @given(block_inputs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_cover_walk_chunking_is_exact(self, inputs, data):
        v, wm = inputs
        n = len(v)
        costs_flat, costs_off, _, nlevels = pykernels.build_block_tables(v, wm)
        pairs = data.draw(st.integers(min_value=0, max_value=8))
        a = np.array(
            [data.draw(st.integers(min_value=0, max_value=n)) for _ in range(pairs)],
            dtype=np.int64,
        )
        b = np.array(
            [data.draw(st.integers(min_value=0, max_value=n)) for _ in range(pairs)],
            dtype=np.int64,
        )
        whole = pykernels.cover_walk(costs_flat, costs_off, nlevels, a, b)
        original = pykernels._QUERY_CHUNK
        pykernels._QUERY_CHUNK = 3
        try:
            chunked = pykernels.cover_walk(costs_flat, costs_off, nlevels, a, b)
        finally:
            pykernels._QUERY_CHUNK = original
        assert np.array_equal(whole, chunked)

    @pytest.mark.parametrize("kernel", CROSS_KERNELS)
    @given(block_inputs())
    @settings(max_examples=40, deadline=None)
    def test_dispatched_matches_python_bit_for_bit(self, kernel, inputs):
        v, wm = inputs
        n = len(v)
        ref = pykernels.build_block_tables(v, wm)
        got = dispatch("blocks.build", kernel)(v, wm)
        assert np.array_equal(got[0], ref[0])
        a = np.arange(n + 1, dtype=np.int64)
        b = np.full(n + 1, n, dtype=np.int64)
        walk_got = dispatch("blocks.cover_walk", kernel)(got[0], got[1], got[3], a, b)
        walk_ref = pykernels.cover_walk(ref[0], ref[1], ref[3], a, b)
        assert np.array_equal(walk_got, walk_ref)


@st.composite
def segment_inputs(draw):
    nseg = draw(st.integers(min_value=1, max_value=6))
    sizes = [draw(st.integers(min_value=1, max_value=7)) for _ in range(nseg)]
    total = sum(sizes)
    vals = draw(
        hnp.arrays(
            np.float64,
            total,
            elements=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False).map(
                lambda f: round(f, 1)  # coarse grid → frequent ties
            ),
        )
    )
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)
    i_arr = np.asarray(
        draw(st.permutations(list(range(total)))), dtype=np.int64
    )
    return vals, starts, i_arr


class TestSegmentFirstMin:
    @given(segment_inputs())
    @settings(max_examples=120, deadline=None)
    def test_matches_scalar_loop(self, inputs):
        vals, starts, i_arr = inputs
        mins, argi = pykernels.segment_first_min(vals, starts, i_arr)
        bounds = np.append(starts, len(vals))
        for s in range(len(starts)):
            seg = slice(int(bounds[s]), int(bounds[s + 1]))
            assert mins[s] == vals[seg].min()
            winners = i_arr[seg][vals[seg] == mins[s]]
            assert argi[s] == winners.min()  # smallest i on ties

    @pytest.mark.parametrize("kernel", CROSS_KERNELS)
    @given(segment_inputs())
    @settings(max_examples=40, deadline=None)
    def test_dispatched_matches_python_bit_for_bit(self, kernel, inputs):
        vals, starts, i_arr = inputs
        got = dispatch("dp.segment_first_min", kernel)(vals, starts, i_arr)
        ref = pykernels.segment_first_min(vals, starts, i_arr)
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])


@st.composite
def chi2_inputs(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    repeats = draw(st.integers(min_value=1, max_value=3))
    counts = draw(
        hnp.arrays(
            np.int64, (repeats, n), elements=st.integers(min_value=0, max_value=30)
        )
    )
    pmf = draw(
        hnp.arrays(
            np.float64,
            n,
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    mask = draw(hnp.arrays(np.bool_, n))
    m = draw(st.floats(min_value=0.5, max_value=200.0, allow_nan=False))
    return counts, m, pmf, mask


class TestChi2PointTerms:
    @given(chi2_inputs())
    @settings(max_examples=120, deadline=None)
    def test_matches_direct_formula(self, inputs):
        counts, m, pmf, mask = inputs
        terms = pykernels.chi2_point_terms(counts, m, pmf, mask)
        assert terms.shape == counts.shape
        for r in range(counts.shape[0]):
            for i in range(counts.shape[1]):
                expected = m * pmf[i]
                if not mask[i] or expected <= 0:
                    assert terms[r, i] == 0.0
                else:
                    with np.errstate(over="ignore"):
                        d = counts[r, i] - expected
                        # d * d, not d ** 2: scalar ``**`` routes through
                        # libm pow, which may differ from the kernel's
                        # vectorized square by one ulp at huge magnitudes.
                        direct = (d * d - counts[r, i]) / expected
                    assert terms[r, i] == pytest.approx(direct, abs=ATOL)

    @pytest.mark.parametrize("kernel", CROSS_KERNELS)
    @given(chi2_inputs())
    @settings(max_examples=40, deadline=None)
    def test_dispatched_matches_python_bit_for_bit(self, kernel, inputs):
        counts, m, pmf, mask = inputs
        got = dispatch("chi2.point_terms", kernel)(counts, m, pmf, mask)
        ref = pykernels.chi2_point_terms(counts, m, pmf, mask)
        assert np.array_equal(got, ref)


@st.composite
def paired_chi2_inputs(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    repeats = draw(st.integers(min_value=1, max_value=3))
    counts_x = draw(
        hnp.arrays(
            np.int64, (repeats, n), elements=st.integers(min_value=0, max_value=30)
        )
    )
    counts_y = draw(
        hnp.arrays(
            np.int64, (repeats, n), elements=st.integers(min_value=0, max_value=30)
        )
    )
    mask = draw(hnp.arrays(np.bool_, n))
    return counts_x, counts_y, mask


class TestChi2PairedPointTerms:
    @given(paired_chi2_inputs())
    @settings(max_examples=120, deadline=None)
    def test_matches_direct_formula(self, inputs):
        counts_x, counts_y, mask = inputs
        terms = pykernels.chi2_paired_point_terms(counts_x, counts_y, mask)
        assert terms.shape == counts_x.shape
        for r in range(counts_x.shape[0]):
            for i in range(counts_x.shape[1]):
                x, y = int(counts_x[r, i]), int(counts_y[r, i])
                if not mask[i] or x + y == 0:
                    assert terms[r, i] == 0.0
                else:
                    d = float(x - y)
                    direct = (d * d - x - y) / (x + y)
                    assert terms[r, i] == pytest.approx(direct, abs=ATOL)

    @given(paired_chi2_inputs())
    @settings(max_examples=60, deadline=None)
    def test_one_dimensional_inputs_broadcast(self, inputs):
        """A single repeat row must equal the stacked form's row."""
        counts_x, counts_y, mask = inputs
        stacked = pykernels.chi2_paired_point_terms(counts_x, counts_y, mask)
        flat = pykernels.chi2_paired_point_terms(counts_x[0], counts_y[0], mask)
        assert np.array_equal(flat, stacked[0])

    def test_equal_counts_are_negative_or_zero(self):
        """X = Y makes every kept nonzero cell (0 − 2x)/2x = −1: the
        statistic is pulled below zero exactly when the streams agree."""
        counts = np.array([[4, 0, 9]], dtype=np.int64)
        mask = np.ones(3, dtype=bool)
        terms = pykernels.chi2_paired_point_terms(counts, counts, mask)
        assert np.array_equal(terms, np.array([[-1.0, 0.0, -1.0]]))

    @pytest.mark.parametrize("kernel", CROSS_KERNELS)
    @given(paired_chi2_inputs())
    @settings(max_examples=40, deadline=None)
    def test_dispatched_matches_python_bit_for_bit(self, kernel, inputs):
        counts_x, counts_y, mask = inputs
        got = dispatch("chi2.paired_point_terms", kernel)(counts_x, counts_y, mask)
        ref = pykernels.chi2_paired_point_terms(counts_x, counts_y, mask)
        assert np.array_equal(got, ref)


@st.composite
def aggregate_inputs(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    repeats = draw(st.integers(min_value=1, max_value=4))
    terms = draw(
        hnp.arrays(
            np.float64,
            (repeats, n),
            elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
        )
    )
    cuts = draw(
        st.lists(st.integers(min_value=1, max_value=n - 1), max_size=5, unique=True)
        if n > 1
        else st.just([])
    )
    starts = np.array(sorted({0, *cuts}), dtype=np.int64)
    return terms, starts


class TestAggregateRows:
    @given(aggregate_inputs())
    @settings(max_examples=120, deadline=None)
    def test_matches_per_row_reduceat(self, inputs):
        terms, starts = inputs
        got = pykernels.aggregate_rows(terms, starts)
        for r in range(terms.shape[0]):
            assert np.array_equal(got[r], np.add.reduceat(terms[r], starts))

    @pytest.mark.parametrize("kernel", CROSS_KERNELS)
    @given(aggregate_inputs())
    @settings(max_examples=40, deadline=None)
    def test_dispatched_matches_python_bit_for_bit(self, kernel, inputs):
        terms, starts = inputs
        got = dispatch("serve.aggregate_rows", kernel)(terms, starts)
        assert np.array_equal(got, pykernels.aggregate_rows(terms, starts))


class TestCountsFromSamples:
    @given(
        st.integers(min_value=1, max_value=40).flatmap(
            lambda n: st.tuples(
                st.just(n),
                hnp.arrays(
                    np.int64,
                    st.integers(min_value=0, max_value=60),
                    elements=st.integers(min_value=0, max_value=n - 1),
                ),
            )
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_bincount(self, inputs):
        n, samples = inputs
        counts = pykernels.counts_from_samples(samples, n)
        assert counts.dtype == np.int64
        assert len(counts) == n
        assert counts.sum() == len(samples)
        for i in range(n):
            assert counts[i] == int((samples == i).sum())

    @pytest.mark.parametrize("kernel", CROSS_KERNELS)
    def test_dispatched_matches_python(self, kernel):
        samples = np.array([3, 0, 3, 1], dtype=np.int64)
        got = dispatch("sampling.counts_from_samples", kernel)(samples, 5)
        assert np.array_equal(got, pykernels.counts_from_samples(samples, 5))
