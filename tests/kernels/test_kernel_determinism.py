"""Byte-identity regressions: ``kernel`` is a pure execution knob.

The contract the whole layer hangs on — switching kernels (or letting
``auto`` resolve differently on another machine) may change *how fast* a
verdict is reached, never the verdict, the trace, the serve report, or a
sweep checkpoint.  Assertions are byte-level (canonical JSON / JSONL), the
same bar ``test_determinism.py`` sets for the worker-count knob.  Numba
rows join automatically when the ``repro[native]`` extra is installed.
"""

import json
from dataclasses import asdict

import numpy as np
import pytest

from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.distributions.discrete import DiscreteDistribution
from repro.experiments.sweeps import (
    HistogramTester,
    StaircaseWorkload,
    _point_to_json,
    complexity_sweep,
)
from repro.experiments.runner import acceptance_probability
from repro.kernels import available_kernels, native_available
from repro.observability.trace import RecordingTracer, canonical_jsonl
from repro.serve import ChaosConfig, TesterService, build_requests

CONFIG = TesterConfig.practical()

#: Kernel settings every artefact must agree across ("auto" resolves to
#: the best available, so it doubles as the numba row on native machines).
KERNEL_SETTINGS = ("auto", "python") + (("numba",) if native_available() else ())

needs_native = pytest.mark.skipif(
    not native_available(), reason="numba kernels not installed (repro[native])"
)


def _staircase(n=512, k=4):
    return StaircaseWorkload(n, k)(np.random.default_rng(0))


def _verdict_and_trace(kernel, *, n=512, k=4, eps=0.3, seed=7):
    tracer = RecordingTracer()
    verdict = test_histogram(
        _staircase(n, k), k, eps,
        config=CONFIG, rng=seed, kernel=kernel, trace=tracer,
    )
    return verdict, canonical_jsonl(tracer.export())


def _verdict_key(v):
    """Byte-level identity of everything decision-relevant in a Verdict
    (numpy payloads via tobytes; wall-clock stage_timings excluded)."""
    return (
        v.accept,
        v.stage,
        v.reason,
        v.samples_used,
        v.k,
        v.eps,
        tuple(sorted(v.stage_samples.items())),
        None if v.partition is None else v.partition.boundaries.tobytes(),
        None if v.learned is None else v.learned.to_pmf().tobytes(),
    )


def sweep_json(result) -> str:
    return json.dumps(
        {
            "axis": result.axis,
            "points": [_point_to_json(p) for p in result.points],
            "exponent": result.exponent,
        },
        sort_keys=True,
    )


class TestVerdictAndTraceByteIdentity:
    def test_verdicts_identical_across_kernels(self):
        verdicts = {k: _verdict_and_trace(k)[0] for k in KERNEL_SETTINGS}
        keys = {k: _verdict_key(v) for k, v in verdicts.items()}
        assert len(set(keys.values())) == 1, keys

    def test_traces_identical_across_kernels(self):
        """The full event stream — every stage's recorded statistics and
        budgets — is byte-identical, not just the final verdict."""
        traces = {k: _verdict_and_trace(k)[1] for k in KERNEL_SETTINGS}
        assert len(set(traces.values())) == 1, {
            k: t[:160] for k, t in traces.items()
        }

    def test_reject_case_identical_across_kernels(self):
        rng = np.random.default_rng(3)
        pmf = rng.dirichlet(np.ones(256))
        dist = DiscreteDistribution(pmf)
        verdicts = {
            kernel: test_histogram(
                dist, 3, 0.25, config=CONFIG, rng=11, kernel=kernel
            )
            for kernel in KERNEL_SETTINGS
        }
        keys = {k: _verdict_key(v) for k, v in verdicts.items()}
        assert len(set(keys.values())) == 1, keys

    def test_acceptance_estimate_identical_across_kernels(self):
        payloads = {
            kernel: json.dumps(
                asdict(
                    acceptance_probability(
                        StaircaseWorkload(600, 3),
                        HistogramTester(3, 0.35, CONFIG, kernel=kernel),
                        trials=6,
                        rng=11,
                    )
                ),
                sort_keys=True,
            )
            for kernel in KERNEL_SETTINGS
        }
        assert len(set(payloads.values())) == 1, payloads


class TestServeReportByteIdentity:
    def _report(self, kernel):
        config = ChaosConfig(sessions=8, fault_rate=0.25, seed=5, kernel=kernel)
        service = TesterService()
        for request in build_requests(config):
            service.submit(request)
        return service.run().canonical_json()

    def test_canonical_report_identical_across_kernels(self):
        reports = {kernel: self._report(kernel) for kernel in KERNEL_SETTINGS}
        assert len(set(reports.values())) == 1

    def test_mixed_kernel_population_reaches_same_outcomes(self):
        """Per-request kernels only regroup the final-test batches; every
        session's outcome matches the single-kernel run."""
        config = ChaosConfig(sessions=8, fault_rate=0.25, seed=5)
        requests = build_requests(config)
        mixed = [
            type(r)(**{**asdict_shallow(r), "kernel": KERNEL_SETTINGS[i % len(KERNEL_SETTINGS)]})
            for i, r in enumerate(requests)
        ]
        service = TesterService()
        for request in mixed:
            service.submit(request)
        report = service.run().canonical_json()
        assert report == self._report("auto")


def asdict_shallow(request):
    """dataclasses.asdict recurses into numpy payloads; keep fields as-is."""
    from dataclasses import fields

    return {f.name: getattr(request, f.name) for f in fields(request)}


class TestSweepByteIdentity:
    VALUES = [400, 800]
    KWARGS = dict(k=3, eps=0.35, config=CONFIG, trials=3, bisection_steps=2)

    def test_sweep_identical_across_kernels_and_workers(self):
        payloads = {
            (kernel, workers): sweep_json(
                complexity_sweep(
                    "n", self.VALUES, rng=3, workers=workers, kernel=kernel,
                    **self.KWARGS,
                )
            )
            for kernel in KERNEL_SETTINGS
            for workers in (None, 2, 4)
        }
        assert len(set(payloads.values())) == 1

    def test_checkpoint_resume_across_kernels(self, tmp_path):
        """A checkpoint written under one kernel resumes under another (the
        fingerprint deliberately excludes the kernel, like workers)."""
        from repro.experiments.sweeps import _default_workloads
        from repro.robustness.checkpoint import CheckpointStore

        values = [400, 600, 800]
        path = tmp_path / "sweep.json"
        uninterrupted = complexity_sweep("n", values, rng=3, **self.KWARGS)

        calls = []

        def dying_workloads(n, k, eps):
            calls.append(n)
            if len(calls) == 3:
                raise KeyboardInterrupt
            return _default_workloads(n, k, eps)

        with pytest.raises(KeyboardInterrupt):
            complexity_sweep(
                "n", values, rng=3, checkpoint=path, kernel="python",
                workloads=dying_workloads, **self.KWARGS,
            )
        assert len(CheckpointStore(path).load()["points"]) == 2

        resumed = complexity_sweep(
            "n", values, rng=3, checkpoint=path, kernel="auto", workers=2,
            **self.KWARGS,
        )
        assert sweep_json(resumed) == sweep_json(uninterrupted)

    @needs_native
    def test_checkpoint_resume_python_to_numba(self, tmp_path):
        path = tmp_path / "sweep.json"
        complexity_sweep(
            "n", self.VALUES, rng=3, checkpoint=path, kernel="python",
            **self.KWARGS,
        )
        resumed = complexity_sweep(
            "n", self.VALUES, rng=3, checkpoint=path, kernel="numba",
            **self.KWARGS,
        )
        assert sweep_json(resumed) == sweep_json(
            complexity_sweep("n", self.VALUES, rng=3, **self.KWARGS)
        )


class TestKernelAvailabilityGates:
    def test_explicit_numba_request_fails_loudly_when_absent(self):
        if native_available():
            pytest.skip("native extra installed; the loud-failure path is moot")
        from repro.kernels import KernelUnavailableError

        with pytest.raises(KernelUnavailableError):
            test_histogram(
                _staircase(), 4, 0.3, config=CONFIG, rng=0, kernel="numba"
            )

    def test_available_kernels_always_include_python(self):
        assert available_kernels()[0] == "python"
