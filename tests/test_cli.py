"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_test_command_parses(self):
        args = build_parser().parse_args(
            ["test", "staircase", "--n", "500", "--k", "3", "--eps", "0.4"]
        )
        assert args.workload == "staircase"
        assert args.n == 500

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["test", "nope"])

    def test_sweep_command_parses(self):
        args = build_parser().parse_args(
            ["sweep", "n", "--values", "800,1600", "--checkpoint", "ck.json",
             "--resume"]
        )
        assert args.axis == "n"
        assert args.values == "800,1600"
        assert args.checkpoint == "ck.json"
        assert args.resume is True

    def test_sweep_resume_defaults_off(self):
        args = build_parser().parse_args(["sweep", "eps", "--values", "0.4,0.2"])
        assert args.resume is False
        assert args.checkpoint is None


class TestCommands:
    def test_test_accepts_histogram(self, capsys):
        rc = main(["test", "staircase", "--n", "1500", "--k", "4", "--eps", "0.3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ACCEPT" in out
        assert "samples" in out

    def test_test_rejects_far(self, capsys):
        rc = main(
            ["test", "sawtooth-uniform", "--n", "1500", "--k", "4", "--eps", "0.3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "REJECT" in out

    def test_budget(self, capsys):
        rc = main(["budget", "--n", "100000", "--k", "8", "--eps", "0.1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ILR12" in out and "CDGR16" in out

    def test_select(self, capsys):
        rc = main(
            ["select", "uniform", "--n", "1000", "--eps", "0.4", "--k-max", "8",
             "--repeats", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "selected k : 1" in out

    def test_sweep_writes_checkpoint(self, capsys, tmp_path):
        path = tmp_path / "ck.json"
        argv = [
            "sweep", "n", "--values", "800,1600", "--k", "3", "--eps", "0.35",
            "--trials", "3", "--bisection-steps", "2", "--seed", "3",
            "--checkpoint", str(path),
        ]
        rc = main(argv)
        out = capsys.readouterr().out
        assert rc == 0
        assert "fitted exponent" in out and "samples/trial" in out
        assert path.exists()
        # Resuming a finished sweep recomputes nothing and prints the same table.
        rc = main(argv + ["--resume"])
        assert rc == 0
        assert "fitted exponent" in capsys.readouterr().out


class TestTraceCli:
    def _run_traced(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        rc = main(
            ["test", "staircase", "--n", "1500", "--k", "4", "--eps", "0.3",
             "--trace", str(path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        return path, out

    def test_test_writes_trace_file(self, tmp_path, capsys):
        path, out = self._run_traced(tmp_path, capsys)
        assert path.exists()
        assert "trace     :" in out

    def test_trace_validate(self, tmp_path, capsys):
        path, _ = self._run_traced(tmp_path, capsys)
        rc = main(["trace", "validate", str(path)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_trace_summarize(self, tmp_path, capsys):
        path, _ = self._run_traced(tmp_path, capsys)
        rc = main(["trace", "summarize", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        # The per-stage table renders one row per span path, plus the ledger.
        for row in ("test/partition", "test/learn", "test/sieve", "test/chi2"):
            assert row in out
        assert "ledger events" in out and "reconciled" in out

    def test_sweep_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "sweep_trace.jsonl"
        rc = main(
            ["sweep", "n", "--values", "800", "--k", "3", "--eps", "0.35",
             "--trials", "3", "--bisection-steps", "1", "--seed", "3",
             "--trace", str(path)]
        )
        assert rc == 0
        assert path.exists()
        rc = main(["trace", "validate", str(path)])
        assert rc == 0
        capsys.readouterr()


class TestStageTable:
    def test_stage_table_uses_key_union(self, capsys):
        """Stages present in only one audit dict must still be printed."""
        from repro.cli import _print_stage_table
        from repro.core.tester import Verdict

        verdict = Verdict(
            accept=True, stage="chi2", reason="", samples_used=10, k=2, eps=0.3,
            stage_samples={"partition": 10, "mystery": 0},
            stage_timings={"check": 0.5},
        )
        _print_stage_table(verdict)
        out = capsys.readouterr().out
        assert "partition" in out
        assert "check" in out  # timing-only stage no longer dropped
        assert "mystery" in out  # unknown stages appended after STAGE_ORDER
        lines = [line.split(":")[0].strip() for line in out.splitlines()]
        assert lines.index("partition") < lines.index("check") < lines.index("mystery")
