"""Regression tests for the two serve-layer bugfix satellites.

1. **Cache-key collisions** — every byte-keyed LRU (the shared projection
   check/project caches here, ``ground_truth_bounds`` in the workloads
   module) must key on ``(tobytes, shape, dtype.str)``, not raw bytes
   alone: two arrays with identical buffers but different shape or dtype
   are different operands and must never share an entry.
2. **Fallback re-degradation** — ``serve.projection_fallbacks`` counts
   *observed faults*, not dense re-routes: a deterministic fast-path
   failure is memoized per cache key, later calls on the same inputs go
   straight to the dense engine without re-failing it or re-counting, and
   a session degrades at most once however many oracle calls it makes.
"""

import numpy as np
import pytest

from repro.core.config import TesterConfig
from repro.distributions.discrete import DiscreteDistribution
from repro.observability.metrics import get_metrics
from repro.serve import StreamRequest, TesterService
from repro.serve.session import StreamSession
from repro.util.intervals import Partition

N, K, EPS = 16, 2, 0.3


def _service():
    return TesterService()


def _session(service, request_id="req-0", index=0, **overrides):
    request = StreamRequest(
        request_id=request_id,
        dist=DiscreteDistribution.uniform(N),
        k=K,
        eps=EPS,
        seed=7,
        **overrides,
    )
    return StreamSession(
        index,
        request,
        config=TesterConfig.practical(),
        budget_cap=None,
        clock=lambda: 0.0,
        admitted_round=0,
    )


def _operands():
    partition = Partition.singletons(N)
    pmf = np.full(N, 1.0 / N)
    kept = np.ones(len(partition), dtype=bool)
    return pmf, partition, kept


class TestArrayKeyCollisions:
    def test_same_bytes_different_shape_differ(self):
        flat = np.arange(4, dtype=np.float64)
        square = flat.reshape(2, 2)
        assert flat.tobytes() == square.tobytes()
        assert TesterService._array_key(flat) != TesterService._array_key(square)

    def test_same_bytes_different_dtype_differ(self):
        as_int = np.zeros(2, dtype=np.int64)
        as_float = np.zeros(2, dtype=np.float64)
        assert as_int.tobytes() == as_float.tobytes()
        assert TesterService._array_key(as_int) != TesterService._array_key(as_float)

    def test_float32_half_of_float64_differs(self):
        """The motivating collision: a float32 buffer bit-identical to a
        float64 one of half the length."""
        f64 = np.array([0.5, 0.25], dtype=np.float64)
        f32 = np.frombuffer(f64.tobytes(), dtype=np.float32)
        assert f64.tobytes() == f32.tobytes()
        assert TesterService._array_key(f64) != TesterService._array_key(f32)

    def test_check_and_project_keys_cover_every_array_operand(self):
        """Reshaping any one of pmf / boundaries / kept changes the key."""
        service = _service()
        pmf, partition, kept = _operands()
        base_check = service._check_key(pmf, partition, K, kept, 0.1, "auto")
        base_project = service._project_key(pmf, partition, K, kept, "auto")
        reshaped_pmf = pmf.reshape(2, N // 2)
        assert service._check_key(
            reshaped_pmf, partition, K, kept, 0.1, "auto"
        ) != base_check
        assert service._project_key(
            reshaped_pmf, partition, K, kept, "auto"
        ) != base_project
        reshaped_kept = kept.reshape(2, N // 2)
        assert service._check_key(
            pmf, partition, K, reshaped_kept, 0.1, "auto"
        ) != base_check
        assert service._project_key(
            pmf, partition, K, reshaped_kept, "auto"
        ) != base_project

    def test_ground_truth_bounds_key_carries_shape_and_dtype(self):
        """The workloads-layer sibling of the same fix: its memo key must
        disambiguate identical buffers too."""
        from repro.experiments import workloads

        pmf = np.full(8, 0.125)
        workloads.ground_truth_bounds(pmf, K)
        key = next(
            k for k in workloads._GROUND_TRUTH_CACHE if k[0] == pmf.tobytes()
        )
        assert key == (pmf.tobytes(), pmf.shape, pmf.dtype.str, K)


def _failing_fast_engine(monkeypatch, calls):
    """Patch the check primitive so non-dense engines always fail."""
    from repro.distributions.projection import exists_close_histogram as real

    def flaky(pmf, partition, k, kept, tolerance, engine="auto"):
        calls.append(engine)
        if engine != "dense":
            raise RuntimeError("deterministic fast-path failure")
        return real(pmf, partition, k, kept, tolerance, engine=engine)

    monkeypatch.setattr("repro.serve.service.exists_close_histogram", flaky)


class TestFallbackDegradationAccounting:
    def _fallbacks(self):
        return get_metrics().counter("serve.projection_fallbacks").value

    def test_deterministic_failure_counted_once_not_per_call(self, monkeypatch):
        """The bug: every oracle call on a known-bad key used to re-fail the
        fast engine and bump the fault counter again."""
        calls = []
        _failing_fast_engine(monkeypatch, calls)
        service = _service()
        session = _session(service)
        oracle = service._make_check_oracle(session)
        pmf, partition, kept = _operands()
        before = self._fallbacks()

        first = oracle(pmf, partition, K, kept, 0.1)
        for _ in range(3):
            assert oracle(pmf, partition, K, kept, 0.1) == first
        # One observed fault; the three re-routes cost nothing.
        assert self._fallbacks() - before == 1
        # The fast engine was attempted exactly once; everything after the
        # memoized failure went straight to dense.
        assert calls.count("auto") == 1

    def test_session_degrades_once_with_sticky_first_mode(self, monkeypatch):
        calls = []
        _failing_fast_engine(monkeypatch, calls)
        service = _service()
        session = _session(service)
        oracle = service._make_check_oracle(session)
        pmf, partition, kept = _operands()
        oracle(pmf, partition, K, kept, 0.1)
        assert session.degraded_mode == "projection-dense-fallback"
        oracle(pmf, partition, K, kept, 0.1)
        assert session.degraded_mode == "projection-dense-fallback"

    def test_second_session_on_known_bad_key_degrades_without_new_fault(
        self, monkeypatch
    ):
        calls = []
        _failing_fast_engine(monkeypatch, calls)
        service = _service()
        first = _session(service, "req-0", 0)
        pmf, partition, kept = _operands()
        service._make_check_oracle(first)(pmf, partition, K, kept, 0.1)
        before = self._fallbacks()

        second = _session(service, "req-1", 1)
        service._make_check_oracle(second)(pmf, partition, K, kept, 0.1)
        # Correctness mark without a phantom fault: the second session's
        # verdict is still dense-derived, but no new failure was observed.
        assert second.degraded_mode == "projection-dense-fallback"
        assert self._fallbacks() == before
        assert calls.count("auto") == 1

    def test_dense_engine_failure_propagates_unmemoized(self, monkeypatch):
        def broken(*args, **kwargs):
            raise RuntimeError("dense engine bug")

        monkeypatch.setattr("repro.serve.service.exists_close_histogram", broken)
        service = _service()
        session = _session(service)
        oracle = service._make_check_oracle(session)
        pmf, partition, kept = _operands()
        with pytest.raises(RuntimeError, match="dense engine bug"):
            oracle(pmf, partition, K, kept, 0.1, engine="dense")
        assert not service._fast_path_failed
        assert session.degraded_mode is None

    def test_injected_chaos_fault_is_counted_but_never_memoized(self):
        """A transient injected fault must not poison the key: the next
        call (same inputs, fault cleared) uses the fast path again."""
        service = _service()
        session = _session(service, projection_fault=True)
        oracle = service._make_check_oracle(session)
        pmf, partition, kept = _operands()
        before = self._fallbacks()

        assert session.projection_fault_pending
        oracle(pmf, partition, K, kept, 0.1)
        assert not session.projection_fault_pending
        assert self._fallbacks() - before == 1
        assert not service._fast_path_failed  # transient, not deterministic
        oracle(pmf, partition, K, kept, 0.1)
        assert self._fallbacks() - before == 1  # clean call: no new fault

    def test_project_oracle_shares_the_failure_memo_policy(self, monkeypatch):
        from repro.distributions.projection import coarse_flattening_projection as real

        calls = []

        def flaky(pmf, partition, k, kept, engine="auto"):
            calls.append(engine)
            if engine != "dense":
                raise RuntimeError("deterministic fast-path failure")
            return real(pmf, partition, k, kept, engine=engine)

        monkeypatch.setattr(
            "repro.serve.service.coarse_flattening_projection", flaky
        )
        service = _service()
        session = _session(service)
        oracle = service._make_project_oracle(session)
        pmf, partition, kept = _operands()
        before = self._fallbacks()
        first = oracle(pmf, partition, K, kept)
        second = oracle(pmf, partition, K, kept)
        assert first.distance == second.distance
        assert self._fallbacks() - before == 1
        assert calls.count("auto") == 1
        assert session.degraded_mode == "projection-dense-fallback"
