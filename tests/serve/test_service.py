"""End-to-end tests for the always-on tester service.

The acceptance bar from the issue, asserted literally: under a fault
schedule covering every failure mode, **zero** sessions crash the loop,
every session reaches a terminal state, every attempt's ledger reconciles
exactly (``samples_total == sum(attempt_samples)``, each entry having passed
the integer reconciliation), and two same-seed runs produce byte-identical
canonical reports.
"""

import numpy as np
import pytest

from repro.core.config import TesterConfig
from repro.core.tester import TesterPipeline
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import SampleSource
from repro.robustness.faults import FaultConfig
from repro.serve import (
    AdmissionConfig,
    ChaosConfig,
    ServiceConfig,
    SessionState,
    StreamRequest,
    TesterService,
    build_requests,
)
from repro.serve.chaos import FAULT_KINDS
from repro.serve.service import request_units
from repro.serve.session import FULL_CONFIDENCE, PARTIAL_CONFIDENCE

N, K, EPS = 512, 4, 0.3


def _clean_request(request_id="req-0", seed=11, **overrides):
    params = dict(
        request_id=request_id,
        dist=DiscreteDistribution.uniform(N),
        k=K,
        eps=EPS,
        seed=seed,
    )
    params.update(overrides)
    return StreamRequest(**params)


def _run_service(requests, config=None):
    service = TesterService(config)
    for request in requests:
        service.submit(request)
    return service, service.run()


def _assert_accounting(report):
    for outcome in report.outcomes:
        assert outcome.state in SessionState.TERMINAL
        assert outcome.samples_total == sum(outcome.attempt_samples)
        assert outcome.attempts == len(outcome.attempt_samples)
        assert outcome.retired_round >= outcome.admitted_round


class TestCleanService:
    def test_single_session_matches_direct_pipeline(self):
        request = _clean_request()
        service, report = _run_service([request])
        [outcome] = report.outcomes
        assert outcome.state == SessionState.VERDICT

        # Reconstruct exactly the source the service built for session
        # index 0, attempt 1, and run the plain single-call pipeline.
        config = service.config
        source = SampleSource(
            request.dist,
            rng=np.random.default_rng(
                np.random.SeedSequence(entropy=request.seed, spawn_key=(0, 1))
            ),
            max_samples=request_units(
                request, config.tester, config.budget_slack
            ),
        )
        verdict = TesterPipeline(
            source, request.k, request.eps, config=config.tester
        ).run()
        assert outcome.accept == verdict.accept
        assert outcome.stage == verdict.stage
        assert outcome.samples_total == verdict.samples_used
        # The reason string embeds the χ² statistic's digits, so equality
        # here certifies the batched final test is bit-identical.
        assert outcome.reason == verdict.reason
        assert outcome.confidence == FULL_CONFIDENCE

    def test_empty_service_runs_zero_rounds(self):
        _, report = _run_service([])
        assert report.outcomes == () and report.rounds == 0

    def test_duplicate_request_id_rejected_loudly(self):
        service = TesterService()
        service.submit(_clean_request())
        with pytest.raises(ValueError):
            service.submit(_clean_request())

    def test_admission_books_balance_after_run(self):
        service, report = _run_service(
            [_clean_request(f"r{i}", seed=i) for i in range(3)]
        )
        assert service.admission.idle
        assert service.admission.inflight_units == 0
        assert service.admission.admitted_units == service.admission.released_units
        service.admission.check_invariants()

    def test_queue_overflow_sheds_deterministically(self):
        config = ServiceConfig(
            admission=AdmissionConfig(queue_limit=2, max_sessions=2)
        )
        requests = [_clean_request(f"r{i}", seed=i) for i in range(4)]
        service, report = _run_service(requests, config)
        counts = report.counts()
        assert counts["REJECTED"] == 2
        assert len(report.outcomes) == 2
        assert {r.request_id for r in report.rejections} == {"r2", "r3"}
        assert len(report.outcomes) + len(report.rejections) == 4


class TestFaultPaths:
    def test_stream_fault_exhausts_retries_then_evicts_and_trips_breaker(self):
        request = _clean_request(
            source_id="flaky",
            faults=FaultConfig().with_failure_schedule(
                seed=3, mean_interval=2.0, horizon=16
            ),
        )
        service, report = _run_service([request])
        [outcome] = report.outcomes
        assert outcome.state == SessionState.EVICTED
        assert outcome.attempts == service.config.retry.max_attempts
        assert "retries exhausted" in outcome.reason
        assert service.breakers["flaky"].trips >= 1
        _assert_accounting(report)

    def test_projection_fault_degrades_to_dense_fallback(self):
        request = _clean_request(projection_fault=True)
        service, report = _run_service([request])
        [outcome] = report.outcomes
        assert outcome.state == SessionState.DEGRADED
        assert outcome.degraded_mode == "projection-dense-fallback"
        # The dense fallback is exact, so the verdict keeps full confidence.
        assert outcome.confidence == FULL_CONFIDENCE
        assert outcome.accept is not None
        _assert_accounting(report)

    def test_budget_death_after_check_degrades_to_partial_pipeline(self):
        # Find the prefix cost (through check) of the exact stream the
        # service will run, then cap the budget between prefix and final.
        request = _clean_request()
        probe = SampleSource(
            request.dist,
            rng=np.random.default_rng(
                np.random.SeedSequence(entropy=request.seed, spawn_key=(0, 1))
            ),
        )
        pipeline = TesterPipeline(probe, K, EPS, config=TesterConfig.practical())
        assert pipeline.prepare() is None
        pipeline.run_partition()
        pipeline.run_learn()
        assert pipeline.run_sieve() is None
        assert pipeline.run_check() is None  # uniform reaches the final test
        prefix = probe.samples_drawn

        capped = _clean_request(max_samples=prefix + 1_000)
        service, report = _run_service([capped])
        [outcome] = report.outcomes
        assert outcome.state == SessionState.DEGRADED
        assert outcome.degraded_mode == "partial-pipeline"
        assert outcome.accept is True
        assert outcome.stage == "check"
        assert outcome.confidence == PARTIAL_CONFIDENCE
        _assert_accounting(report)

    def test_budget_death_before_check_evicts(self):
        service, report = _run_service([_clean_request(max_samples=10_000)])
        [outcome] = report.outcomes
        assert outcome.state == SessionState.EVICTED
        assert "SampleBudgetExceeded" in outcome.reason
        _assert_accounting(report)

    def test_deadline_eviction(self):
        service, report = _run_service([_clean_request(deadline_ticks=3)])
        [outcome] = report.outcomes
        assert outcome.state == SessionState.EVICTED
        assert "TrialTimeout" in outcome.reason or "deadline" in outcome.reason
        _assert_accounting(report)


class TestChaosMatrix:
    """Every fault kind, in one population, under the acceptance criteria."""

    CONFIG = ChaosConfig(sessions=10, fault_rate=0.5, seed=7)

    def test_fault_schedule_covers_every_kind(self):
        requests = build_requests(self.CONFIG)
        assert len(requests) == 10
        faulty = [
            r
            for r in requests
            if r.faults is not None
            or r.deadline_ticks is not None
            or r.projection_fault
        ]
        assert len(faulty) == 5
        # 5 faulty sessions cycle through all 5 kinds exactly once.
        assert sum(1 for r in requests if r.source_id == "flaky") == 1
        assert sum(1 for r in requests if r.deadline_ticks is not None) == 1
        assert sum(1 for r in requests if r.projection_fault) == 1

    def test_all_sessions_terminal_with_exact_accounting(self):
        service, report = _run_service(build_requests(self.CONFIG))
        assert len(report.outcomes) == self.CONFIG.sessions
        assert len(report.rejections) == 0
        _assert_accounting(report)
        assert not service.sessions  # nothing left in flight
        assert service.admission.idle

    def test_same_seed_replay_is_byte_identical(self):
        _, first = _run_service(build_requests(self.CONFIG))
        _, second = _run_service(build_requests(self.CONFIG))
        assert first.canonical_json() == second.canonical_json()

    def test_different_seed_changes_the_report(self):
        _, first = _run_service(build_requests(self.CONFIG))
        other = ChaosConfig(sessions=10, fault_rate=0.5, seed=8)
        _, second = _run_service(build_requests(other))
        assert first.canonical_json() != second.canonical_json()

    def test_traces_retained_per_retired_session(self):
        service, report = _run_service(build_requests(self.CONFIG))
        assert set(service.session_traces) == {
            o.request_id for o in report.outcomes
        }
        for events in service.session_traces.values():
            assert len(events) > 0


class TestCheckCache:
    def test_shared_cache_hits_on_identical_keys(self):
        from repro.util.intervals import Partition

        service = TesterService()
        pmf = np.full(16, 1.0 / 16)
        partition = Partition.equal_width(16, 4)
        kept = np.ones(len(partition), dtype=bool)
        first = service._check_cached(pmf, partition, 2, kept, 0.1, "auto")
        second = service._check_cached(pmf, partition, 2, kept, 0.1, "auto")
        assert first == second
        assert len(service._check_cache) == 1

    def test_cache_evicts_past_capacity(self):
        service = TesterService(ServiceConfig(check_cache_size=2))
        from repro.util.intervals import Partition

        partition = Partition.equal_width(16, 4)
        kept = np.ones(len(partition), dtype=bool)
        rng = np.random.default_rng(0)
        for _ in range(5):
            pmf = rng.dirichlet(np.ones(16))
            service._check_cached(pmf, partition, 2, kept, 0.1, "auto")
        assert len(service._check_cache) == 2
