"""Tests for the per-stream session state machine.

The load-bearing property is exit-path sample accounting: *every* attempt's
ledger reconciles with exact integer equality whether the attempt finished,
died mid-stage, or was abandoned — the corrigendum's lesson applied to the
service layer.
"""

import numpy as np
import pytest

from repro.core.config import TesterConfig
from repro.distributions.discrete import DiscreteDistribution
from repro.robustness.resilience import TrialTimeout
from repro.serve.service import StepClock
from repro.serve.session import (
    FULL_CONFIDENCE,
    PARTIAL_CONFIDENCE,
    SessionState,
    StreamRequest,
    StreamSession,
)

N, K, EPS = 512, 4, 0.3  # full-pipeline regime (not plug-in, not trivial)


def _request(**overrides):
    params = dict(
        request_id="req-0",
        dist=DiscreteDistribution.uniform(N),
        k=K,
        eps=EPS,
        seed=11,
    )
    params.update(overrides)
    return StreamRequest(**params)


def _session(request, clock=None, **overrides):
    params = dict(
        config=TesterConfig.practical(),
        budget_cap=None,
        clock=clock if clock is not None else StepClock(),
        admitted_round=1,
    )
    params.update(overrides)
    return StreamSession(0, request, **params)


class TestStreamRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            _request(deadline_ticks=0)
        with pytest.raises(ValueError):
            _request(max_samples=0)


class TestStateMachine:
    def test_attempt_opens_sampling_and_closes_with_reconciled_total(self):
        session = _session(_request())
        assert session.state == SessionState.ACCEPTED
        pipeline = session.start_attempt()
        assert session.state == SessionState.SAMPLING
        assert session.attempt == 1
        verdict = pipeline.run()
        session.close_attempt(verdict.samples_used)
        outcome = session.retire_verdict(verdict, round_index=3, wall=0.0)
        assert session.state == SessionState.VERDICT
        assert outcome.state in SessionState.TERMINAL
        assert outcome.attempts == 1
        assert outcome.samples_total == verdict.samples_used
        assert outcome.attempt_samples == (verdict.samples_used,)
        assert outcome.confidence == FULL_CONFIDENCE

    def test_attempts_use_disjoint_seed_streams(self):
        session = _session(_request())
        first = session.start_attempt().source.draw(1000)
        session.abort_attempt()
        second = session.start_attempt().source.draw(1000)
        session.abort_attempt()
        # spawn_key=(index, attempt) differs per attempt: retrying must not
        # replay (or reuse) the failed attempt's sample stream.
        assert not np.array_equal(first, second)
        # A different session index diverges from both.
        other = StreamSession(
            1,
            _request(),
            config=TesterConfig.practical(),
            budget_cap=None,
            clock=StepClock(),
            admitted_round=1,
        )
        third = other.start_attempt().source.draw(1000)
        assert not np.array_equal(first, third)

    def test_degrade_first_mode_sticks(self):
        session = _session(_request())
        session.degrade("projection-dense-fallback")
        session.degrade("partial-pipeline")
        assert session.degraded_mode == "projection-dense-fallback"

    def test_degraded_verdict_state(self):
        session = _session(_request())
        pipeline = session.start_attempt()
        verdict = pipeline.run()
        session.close_attempt(verdict.samples_used)
        session.degrade("projection-dense-fallback")
        outcome = session.retire_verdict(verdict, round_index=2, wall=0.0)
        assert outcome.state == SessionState.DEGRADED
        assert outcome.degraded_mode == "projection-dense-fallback"
        assert outcome.confidence == FULL_CONFIDENCE  # verdict itself is exact

    def test_retire_degraded_partial(self):
        session = _session(_request())
        session.attempt = 1
        session.attempt_samples.append(1000)
        outcome = session.retire_degraded_partial("final test died", 5, 0.0)
        assert outcome.state == SessionState.DEGRADED
        assert outcome.accept is True
        assert outcome.stage == "check"
        assert outcome.confidence == PARTIAL_CONFIDENCE
        assert outcome.degraded_mode == "partial-pipeline"

    def test_retire_evicted(self):
        session = _session(_request())
        outcome = session.retire_evicted("retries exhausted", 9, 0.0)
        assert outcome.state == SessionState.EVICTED
        assert outcome.accept is None and outcome.confidence is None

    def test_canonical_excludes_wall_clock(self):
        session = _session(_request())
        outcome = session.retire_evicted("x", 1, wall=123.456)
        assert "wall_seconds" not in outcome.canonical()
        assert outcome.wall_seconds == 123.456


class TestDeadlineMidSieve:
    """Satellite: a deadline death mid-sieve still reconciles exactly."""

    def test_mid_sieve_timeout_reconciles_ledger_exactly(self):
        # With a step clock, draw call j expires a t-tick deadline iff
        # j ≥ t; at n=512 draws go partition(1), learn(2), sieve(3, 4), so
        # t=4 dies on the sieve's second draw with a nonzero partial ledger.
        clock = StepClock()
        session = _session(_request(deadline_ticks=4), clock=clock)
        pipeline = session.start_attempt()
        assert pipeline.prepare() is None
        pipeline.run_partition()
        pipeline.run_learn()
        with pytest.raises(TrialTimeout):
            pipeline.run_sieve()
        # abort() reconciles the partial ledger with exact integer equality
        # (it raises internally on any mismatch) — including the sieve draws
        # recorded by the stage's finally block.
        reconciled = session.abort_attempt()
        assert session.attempt_samples == [reconciled]
        assert reconciled > 0
        events = session.tracer.export()
        ledger_events = [
            e for e in events
            if e["kind"] == "event" and e["name"].endswith("ledger")
        ]
        assert len(ledger_events) == 1
        assert ledger_events[0]["attrs"]["total"] == reconciled
        # The partial sieve draws are attributed to the sieve stage.
        assert ledger_events[0]["attrs"]["stages"]["sieve"] > 0

    def test_deadline_is_shared_across_attempts(self):
        clock = StepClock()
        session = _session(_request(deadline_ticks=4), clock=clock)
        pipeline = session.start_attempt()
        assert pipeline.prepare() is None
        pipeline.run_partition()
        pipeline.run_learn()
        with pytest.raises(TrialTimeout):
            pipeline.run_sieve()
        session.abort_attempt()
        # A retry cannot reset the clock: the session deadline object is
        # shared, so attempt 2's very first draw dies immediately.
        pipeline = session.start_attempt()
        with pytest.raises(TrialTimeout):
            pipeline.prepare()
            pipeline.run_partition()
        reconciled = session.abort_attempt()
        assert reconciled == 0
        assert len(session.attempt_samples) == 2
        assert session.samples_total == sum(session.attempt_samples)
