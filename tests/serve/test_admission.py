"""Property-based tests for the admission controller's invariants.

The controller is the service's overload firewall; the properties here are
the ones the docstring promises literally: the conservation identity
``admitted − released == inflight ≤ cap`` under arbitrary operation
sequences, strict FIFO admission with head-of-line blocking, deterministic
rejection, and token conservation across evictions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.admission import AdmissionConfig, AdmissionController, Rejection

SMALL = AdmissionConfig(
    max_sessions=4,
    max_inflight_samples=10_000,
    queue_limit=5,
    refill_tokens=2,
    token_capacity=3,
)


class TestConfigValidation:
    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_sessions=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_inflight_samples=0)
        with pytest.raises(ValueError):
            AdmissionConfig(queue_limit=0)
        with pytest.raises(ValueError):
            AdmissionConfig(refill_tokens=0)
        with pytest.raises(ValueError):
            AdmissionConfig(token_capacity=1, refill_tokens=2)


class TestBasics:
    def test_lifecycle(self):
        ctrl = AdmissionController(SMALL)
        assert ctrl.idle
        assert ctrl.submit("a", 100) is None
        assert not ctrl.idle
        assert ctrl.admit_ready() == ["a"]
        assert ctrl.inflight_units == 100
        ctrl.release("a")
        assert ctrl.idle
        assert ctrl.admitted_units == ctrl.released_units == 100
        ctrl.check_invariants()

    def test_unservable_request_rejected_immediately(self):
        ctrl = AdmissionController(SMALL)
        rejection = ctrl.submit("huge", SMALL.max_inflight_samples + 1)
        assert isinstance(rejection, Rejection)
        assert "unservable" in rejection.reason
        assert ctrl.queued == 0

    def test_full_queue_sheds(self):
        ctrl = AdmissionController(SMALL)
        for i in range(SMALL.queue_limit):
            assert ctrl.submit(f"r{i}", 1) is None
        rejection = ctrl.submit("overflow", 1)
        assert isinstance(rejection, Rejection)
        assert "queue full" in rejection.reason

    def test_duplicate_request_id_raises(self):
        ctrl = AdmissionController(SMALL)
        ctrl.submit("a", 1)
        with pytest.raises(ValueError):
            ctrl.submit("a", 1)
        ctrl.admit_ready()
        with pytest.raises(ValueError):
            ctrl.submit("a", 1)

    def test_head_of_line_blocking_is_strict_fifo(self):
        ctrl = AdmissionController(SMALL)
        ctrl.submit("big", 9_995)
        ctrl.submit("small", 10)
        assert ctrl.admit_ready() == ["big"]
        # "small" would fit the session slots but not the sample budget
        # behind "big"; skipping ahead would break replay determinism.
        assert ctrl.admit_ready() == []
        ctrl.release("big")
        assert ctrl.admit_ready() == ["small"]

    def test_token_bucket_limits_admission_rate(self):
        ctrl = AdmissionController(SMALL)
        for i in range(5):
            ctrl.submit(f"r{i}", 1)
        assert len(ctrl.admit_ready()) == SMALL.token_capacity  # bucket drained
        ctrl.admit_ready()
        assert ctrl.queued == 5 - SMALL.token_capacity
        ctrl.refill()
        # refill is clamped at capacity and admission is still slot-limited.
        admitted = ctrl.admit_ready()
        assert len(admitted) == SMALL.max_sessions - SMALL.token_capacity
        ctrl.check_invariants()

    def test_release_returns_budget(self):
        ctrl = AdmissionController(SMALL)
        ctrl.submit("a", 6_000)
        ctrl.submit("b", 6_000)
        assert ctrl.admit_ready() == ["a"]
        ctrl.release("a")
        assert ctrl.admit_ready() == ["b"]
        ctrl.check_invariants()


#: One abstract controller operation: (op, argument).
OPS = st.lists(
    st.tuples(
        st.sampled_from(["submit", "refill", "admit", "release"]),
        st.integers(min_value=0, max_value=12_000),
    ),
    max_size=60,
)


def _drive(ops):
    """Replay an operation sequence; return the event log for comparison."""
    ctrl = AdmissionController(SMALL)
    log = []
    counter = 0
    active = []
    for op, arg in ops:
        if op == "submit":
            counter += 1
            rejection = ctrl.submit(f"r{counter}", arg)
            log.append(("submit", rejection.reason if rejection else None))
        elif op == "refill":
            ctrl.refill()
        elif op == "admit":
            admitted = ctrl.admit_ready()
            active.extend(admitted)
            log.append(("admit", tuple(admitted)))
        elif active:
            victim = active.pop(arg % len(active))
            ctrl.release(victim)
            log.append(("release", victim))
        ctrl.check_invariants()
        assert ctrl.inflight_units <= SMALL.max_inflight_samples
        assert ctrl.active_sessions <= SMALL.max_sessions
    return ctrl, log


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(OPS)
    def test_invariants_hold_under_arbitrary_operation_sequences(self, ops):
        ctrl, _ = _drive(ops)
        ctrl.check_invariants()
        assert ctrl.admitted_units - ctrl.released_units == ctrl.inflight_units

    @settings(max_examples=100, deadline=None)
    @given(OPS)
    def test_same_operation_sequence_replays_identically(self, ops):
        _, first = _drive(ops)
        _, second = _drive(ops)
        assert first == second

    @settings(max_examples=100, deadline=None)
    @given(OPS)
    def test_all_released_controllers_return_to_idle_accounting(self, ops):
        ctrl, _ = _drive(ops)
        # Drain: release everything in flight, then the books must balance.
        for request_id in list(ctrl._inflight):
            ctrl.release(request_id)
        ctrl.check_invariants()
        assert ctrl.inflight_units == 0
        assert ctrl.admitted_units == ctrl.released_units
