"""Backend threading through the serve layer.

Regression net for the bug this PR fixes: ``StreamSession.start_attempt``
used to hard-code the pipeline construction, so a request's ``backend``
field silently ran pods16.  Covers the full path — request validation,
session → pipeline threading, mixed-backend batch grouping (same-shape
sessions on *different* backends must not share a kernel group), the
escalation redraw loop inside a service round, and the cdkl22 projection
fault → dense fallback → DEGRADED path.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.backends import BACKENDS
from repro.core.config import TesterConfig
from repro.distributions.discrete import DiscreteDistribution
from repro.observability.metrics import get_metrics
from repro.serve import ChaosConfig, ServiceConfig, TesterService, build_requests
from repro.serve.batch import FinalBatchItem, compute_final_statistics
from repro.serve.service import StepClock
from repro.serve.session import SessionState, StreamRequest, StreamSession

N, K, EPS = 512, 4, 0.3  # full-pipeline regime (not plug-in, not trivial)
CONFIG = TesterConfig.practical()


def _request(**overrides):
    params = dict(
        request_id="req-0",
        dist=DiscreteDistribution.uniform(N),
        k=K,
        eps=EPS,
        seed=11,
    )
    params.update(overrides)
    return StreamRequest(**params)


def _session(request, **overrides):
    params = dict(
        config=CONFIG,
        budget_cap=None,
        clock=StepClock(),
        admitted_round=1,
    )
    params.update(overrides)
    return StreamSession(0, request, **params)


class TestBackendThreading:
    def test_request_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            _request(backend="pods17")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_session_threads_backend_into_pipeline(self, backend):
        """The regression: the pipeline must carry the request's backend,
        not a hard-coded default."""
        session = _session(_request(backend=backend))
        pipeline = session.start_attempt()
        assert pipeline.backend == backend
        session.abort_attempt()

    def test_attempt_span_records_backend(self):
        session = _session(_request(backend="cdkl22"))
        pipeline = session.start_attempt()
        verdict = pipeline.run()
        session.close_attempt(verdict.samples_used)
        spans = [e for e in session.tracer.export() if e["name"] == "attempt"]
        assert spans and spans[0]["attrs"]["backend"] == "cdkl22"


class TestMixedBatchGrouping:
    def _item(self, backend, seed):
        rng = np.random.default_rng(seed)
        n, repeats = 32, 3
        pmf = rng.dirichlet(np.ones(n))
        from repro.util.intervals import Partition

        boundaries = np.array([0, 8, 16, 24, 32])
        return FinalBatchItem(
            counts=rng.poisson(50.0 * pmf, size=(repeats, n)).astype(np.float64),
            m=50.0,
            reference_pmf=pmf,
            mask=np.ones(n, dtype=bool),
            partition=Partition(boundaries),
            backend=backend,
        )

    def test_mixed_backends_match_singleton_path_bitwise(self):
        """Same-shape items on different backends are separate kernel groups;
        either way every statistic must equal its singleton computation."""
        items = [self._item(BACKENDS[i % len(BACKENDS)], seed=i) for i in range(6)]
        batched = compute_final_statistics(items)
        for item, z in zip(items, batched):
            (alone,) = compute_final_statistics([item])
            np.testing.assert_array_equal(z, alone)

    def test_mixed_chaos_drill_replays_byte_identically(self):
        def run():
            chaos = ChaosConfig(sessions=8, fault_rate=0.25, seed=5, backend="mixed")
            service = TesterService(ServiceConfig(tester=CONFIG))
            for request in build_requests(chaos):
                service.submit(request)
            return service.run()

        first, second = run(), run()
        assert first.canonical_json() == second.canonical_json()
        assert len(first.outcomes) == 8


class TestEscalationInRound:
    def test_escalated_session_redraws_within_the_round(self):
        """Force the stage-0 statistic into the guard band (guard width →
        ∞), so every cdkl22 session must escalate: the service's inner batch
        loop redraws at the larger m and still retires a VERDICT whose
        ledger covers both draws."""
        config = replace(CONFIG, cdkl22_guard_sigmas=1e9)
        service = TesterService(ServiceConfig(tester=config))
        service.submit(_request(backend="cdkl22", seed=23))
        before = get_metrics().snapshot().get("tester.chi2_escalations", 0)
        report = service.run()
        after = get_metrics().snapshot().get("tester.chi2_escalations", 0)

        (outcome,) = report.outcomes
        assert outcome.state == SessionState.VERDICT
        assert after - before >= 1
        assert "after escalation" in outcome.reason

    def test_escalated_verdict_matches_standalone_pipeline(self):
        """The batched escalation redraw must be invisible: serve and a
        plain pipeline run on the same seed stream agree exactly."""
        config = replace(CONFIG, cdkl22_guard_sigmas=1e9)
        service = TesterService(ServiceConfig(tester=config))
        service.submit(_request(backend="cdkl22", seed=23))
        (outcome,) = service.run().outcomes

        session = _session(_request(backend="cdkl22", seed=23), config=config)
        verdict = session.start_attempt().run()
        assert outcome.accept == verdict.accept
        assert outcome.reason == verdict.reason
        assert outcome.samples_total == verdict.samples_used


class TestProjectionFallback:
    def test_cdkl22_projection_fault_degrades_to_dense(self):
        """A cdkl22 session with an injected fast-engine failure must land
        DEGRADED via the dense projection fallback, not crash the round."""
        service = TesterService(ServiceConfig(tester=CONFIG))
        service.submit(
            _request(backend="cdkl22", engine="fast", projection_fault=True)
        )
        (outcome,) = service.run().outcomes
        assert outcome.state == SessionState.DEGRADED
        assert outcome.degraded_mode == "projection-dense-fallback"
        assert outcome.accept is not None  # still reached a verdict
