"""Graceful drain for the always-on service (``repro serve``).

A drain request (SIGTERM/SIGINT or :meth:`TesterService.request_drain`)
must: finish every in-flight session, shed the queue as structured
rejections, account for every submitted request in the final report, and
keep the replay contract (same seed + same drain point → byte-identical
canonical report).
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time

from repro.serve import ChaosConfig, ServiceConfig, TesterService, build_requests


class DrainAfter(TesterService):
    """Deterministic drain: request it at the start of round N."""

    def __init__(self, config, drain_round):
        super().__init__(config)
        self._drain_round = drain_round

    def _round(self, round_index):
        if round_index == self._drain_round:
            self.request_drain()
        super()._round(round_index)


def run_drained(drain_round: int, sessions: int = 60, seed: int = 3):
    chaos = ChaosConfig(sessions=sessions, n=128, k=4, eps=0.3, seed=seed)
    service = DrainAfter(ServiceConfig(), drain_round=drain_round)
    submitted = 0
    for request in build_requests(chaos):
        service.submit(request)
        submitted += 1
    return service.run(), submitted


class TestInProcessDrain:
    def test_drain_sheds_queue_and_finishes_in_flight(self):
        report, submitted = run_drained(drain_round=2)
        assert report.drained
        # Every submitted request is accounted for: a terminal outcome or a
        # structured rejection — none silently vanished.
        assert len(report.outcomes) + len(report.rejections) == submitted
        shed = [
            r for r in report.rejections if "draining" in r.reason
        ]
        assert shed, "drain produced no shed-queue rejections"
        # The run stopped early: strictly fewer outcomes than a full run.
        full_report, _ = run_drained(drain_round=10**9)
        assert not full_report.drained
        assert len(report.outcomes) < len(full_report.outcomes)

    def test_drained_run_replays_byte_identically(self):
        a, _ = run_drained(drain_round=3)
        b, _ = run_drained(drain_round=3)
        assert a.drained and b.drained
        assert a.canonical_json() == b.canonical_json()

    def test_drain_flag_recorded_in_canonical_report(self):
        report, _ = run_drained(drain_round=2)
        assert json.loads(report.canonical_json())["drained"] is True


class TestSigtermSubprocess:
    def test_sigterm_mid_run_exits_cleanly_with_drained_report(self, tmp_path):
        """Kill -TERM a live ``repro serve`` process mid-run: it must exit 0
        and still write its final report, marked drained, with every
        submitted session accounted for."""
        report_path = tmp_path / "report.json"
        # 256 sessions at n=32768 run ~5s serially — a signal at ~1.5s lands
        # mid-run with most of the queue still unadmitted.
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--sessions", "256", "--n", "32768", "--seed", "3",
                "--report", str(report_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            time.sleep(1.5)
            assert proc.poll() is None, "service finished before the signal"
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, stderr
        assert "drained   : yes" in stdout
        report = json.loads(report_path.read_text())
        assert report["drained"] is True
        # Shed + completed covers the whole submission; nothing vanished.
        assert len(report["outcomes"]) + len(report["rejections"]) == 256
        assert any(
            "draining" in r.get("reason", "") for r in report["rejections"]
        )
