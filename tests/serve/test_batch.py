"""Bit-identity of the vectorized final-test batch against the scalar path.

The serve layer's whole performance story rests on one claim: stacking many
sessions' count matrices into one ``chi2_point_terms`` call produces results
**bit-identical** to running each session alone (the arithmetic is
elementwise, so broadcasting cannot change a single IEEE operation).  These
tests assert that equality literally — ``np.array_equal``, no tolerance.
"""

import numpy as np
import pytest

from repro.core.chi2 import median_interval_statistics
from repro.serve.batch import FinalBatchItem, compute_final_statistics
from repro.util.intervals import Partition


def _random_item(rng, n, repeats):
    reference = rng.dirichlet(np.ones(n))
    m = float(rng.uniform(500.0, 5_000.0))
    counts = rng.poisson(m * reference, size=(repeats, n)).astype(np.int64)
    mask = rng.random(n) < 0.8
    boundaries = np.unique(
        np.concatenate([[0, n], rng.integers(1, n, size=rng.integers(0, 6))])
    )
    return FinalBatchItem(
        counts=counts,
        m=m,
        reference_pmf=reference,
        mask=mask,
        partition=Partition(boundaries),
    )


def _scalar(item):
    return median_interval_statistics(
        item.counts, item.m, item.reference_pmf, item.partition, item.mask
    )


class TestComputeFinalStatistics:
    def test_empty_batch(self):
        assert compute_final_statistics([]) == []

    def test_single_item_matches_scalar_path_bitwise(self):
        rng = np.random.default_rng(0)
        item = _random_item(rng, n=64, repeats=3)
        [z] = compute_final_statistics([item])
        assert np.array_equal(z, _scalar(item))

    def test_homogeneous_group_matches_scalar_path_bitwise(self):
        rng = np.random.default_rng(1)
        items = [_random_item(rng, n=48, repeats=3) for _ in range(7)]
        batched = compute_final_statistics(items)
        for item, z in zip(items, batched):
            assert np.array_equal(z, _scalar(item))

    def test_mixed_shapes_group_independently_and_keep_item_order(self):
        rng = np.random.default_rng(2)
        shapes = [(32, 1), (64, 3), (32, 1), (16, 5), (64, 3), (32, 3)]
        items = [_random_item(rng, n=n, repeats=r) for n, r in shapes]
        batched = compute_final_statistics(items)
        assert len(batched) == len(items)
        for item, z in zip(items, batched):
            assert np.array_equal(z, _scalar(item))
            assert z.shape == (len(item.partition),)

    def test_worker_processes_are_bit_identical_to_serial(self):
        rng = np.random.default_rng(3)
        items = [
            _random_item(rng, n=n, repeats=r)
            for n, r in [(24, 1), (24, 1), (40, 3), (40, 3)]
        ]
        serial = compute_final_statistics(items, workers=None)
        parallel = compute_final_statistics(items, workers=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)

    def test_masked_out_and_zero_reference_points_contribute_nothing(self):
        n = 16
        reference = np.full(n, 1.0 / (n - 2))
        reference[0] = reference[-1] = 0.0  # zero-mass points
        mask = np.ones(n, dtype=bool)
        mask[1] = False  # masked point
        counts = np.arange(n, dtype=np.int64).reshape(1, n)
        item = FinalBatchItem(
            counts=counts,
            m=100.0,
            reference_pmf=reference,
            mask=mask,
            partition=Partition.singletons(n),
        )
        [z] = compute_final_statistics([item])
        assert z[0] == z[1] == z[-1] == 0.0
        assert np.all(np.isfinite(z))
        assert np.array_equal(z, _scalar(item))
