"""Tests for the per-source circuit breaker's state machine."""

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_rounds=0)

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_rounds=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # non-consecutive failures never trip

    def test_cooldown_then_half_open_admits_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_rounds=2)
        breaker.record_failure()
        assert breaker.state == OPEN
        breaker.tick()
        assert breaker.state == OPEN and not breaker.allow()
        breaker.tick()
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else still waits

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_rounds=1)
        breaker.record_failure()
        breaker.tick()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_counts_a_trip(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_rounds=1)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.trips == 1
        breaker.tick()
        assert breaker.allow()
        breaker.record_failure()  # a single probe failure re-opens immediately
        assert breaker.state == OPEN
        assert breaker.trips == 2

    def test_reprobe_cycle_is_periodic(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_rounds=1)
        breaker.record_failure()
        for _ in range(3):  # OPEN → HALF_OPEN → probe fails → OPEN, repeatedly
            breaker.tick()
            assert breaker.state == HALF_OPEN
            assert breaker.allow()
            breaker.record_failure()
            assert breaker.state == OPEN
