"""Tests for the empirical sample-complexity bisection."""

import numpy as np
import pytest

from repro.distributions import families
from repro.experiments.estimate import empirical_sample_complexity


def threshold_family(critical_scale):
    """A synthetic tester family: succeeds deterministically iff the budget
    scale clears ``critical_scale`` (samples drawn = 1000 * scale)."""

    def make(scale):
        def tester(source):
            source.draw(int(1000 * scale))
            correct = scale >= critical_scale
            # accept on complete (correct), accept on far (incorrect):
            return correct

        return tester

    return make


class TestBisection:
    def test_finds_threshold(self):
        # The far workload "tester" here rejects iff scale clears: encode by
        # using the same callable; complete wants accept, far wants reject.
        critical = 0.37

        def make(scale):
            def tester(source):
                source.draw(int(1000 * scale))
                if scale >= critical:
                    # correct on both sides: accept iff workload is uniform
                    return source.n == 100
                return source.n != 100  # wrong on both sides

            return tester

        est = empirical_sample_complexity(
            make,
            complete=families.uniform(100),
            far=families.uniform(101),
            trials=3,
            scale_lo=0.01,
            scale_hi=2.0,
            bisection_steps=10,
            rng=0,
        )
        assert est.scale == pytest.approx(critical, rel=0.2)
        assert est.scale_low <= est.scale
        assert est.samples == pytest.approx(1000 * est.scale, rel=0.1)

    def test_lo_success_short_circuit(self):
        def make(scale):
            def tester(source):
                return source.n == 100

            return tester

        est = empirical_sample_complexity(
            make,
            complete=families.uniform(100),
            far=families.uniform(101),
            trials=3,
            scale_lo=0.5,
            rng=1,
        )
        assert est.scale == 0.5
        assert est.evaluations == 1

    def test_hopeless_tester_raises(self):
        def make(scale):
            return lambda source: False

        with pytest.raises(RuntimeError):
            empirical_sample_complexity(
                make,
                complete=families.uniform(100),
                far=families.uniform(101),
                trials=2,
                scale_hi=2.0,
                rng=2,
            )

    def test_validation(self):
        make = threshold_family(0.5)
        with pytest.raises(ValueError):
            empirical_sample_complexity(
                make, families.uniform(10), families.uniform(11), target_rate=0.4
            )
        with pytest.raises(ValueError):
            empirical_sample_complexity(
                make, families.uniform(10), families.uniform(11), scale_lo=0.0
            )
