"""Tests for the trial runner."""

import numpy as np
import pytest

from repro.distributions import families
from repro.experiments.runner import (
    RobustAcceptanceEstimate,
    acceptance_probability,
    rejection_probability,
    robust_acceptance_probability,
    success_probability,
)
from repro.robustness.faults import FaultConfig, FaultInjectingSource, InjectedStreamFailure
from repro.robustness.resilience import (
    RetryPolicy,
    TooManyTrialFailures,
    TrialPolicy,
)


def always_accept(source):
    source.draw(10)
    return True


def always_reject(source):
    source.draw(5)
    return False


class TestAcceptance:
    def test_deterministic_tester(self):
        est = acceptance_probability(families.uniform(20), always_accept, trials=10, rng=0)
        assert est.rate == 1.0
        assert est.accepted == 10
        assert est.mean_samples == 10.0
        assert est.ci_low < 1.0 <= est.ci_high

    def test_rejection_view(self):
        est = rejection_probability(families.uniform(20), always_reject, trials=8, rng=0)
        assert est.rate == 1.0
        assert est.mean_samples == 5.0

    def test_success_probability_dispatch(self):
        acc = success_probability(families.uniform(20), always_accept, True, 5, rng=0)
        rej = success_probability(families.uniform(20), always_reject, False, 5, rng=0)
        assert acc.rate == 1.0 and rej.rate == 1.0

    def test_workload_factory_fresh_instances(self):
        seen = []

        def factory(gen):
            d = families.random_histogram(30, 2, gen).to_distribution()
            seen.append(d)
            return d

        acceptance_probability(factory, always_accept, trials=4, rng=1)
        assert len(seen) == 4
        assert len({hash(d) for d in seen}) > 1

    def test_reproducible(self):
        def coin_tester(source):
            return source.draw(1)[0] % 2 == 0

        a = acceptance_probability(families.uniform(10), coin_tester, trials=20, rng=7)
        b = acceptance_probability(families.uniform(10), coin_tester, trials=20, rng=7)
        assert a.accepted == b.accepted

    def test_validation(self):
        with pytest.raises(ValueError):
            acceptance_probability(families.uniform(10), always_accept, trials=0)

    def test_str(self):
        est = acceptance_probability(families.uniform(10), always_accept, trials=3, rng=0)
        assert "3/3" in str(est)


class TestRobustRunner:
    def test_clean_run_matches_plain_semantics(self):
        est = robust_acceptance_probability(
            families.uniform(20), always_accept, trials=10, rng=0
        )
        assert isinstance(est, RobustAcceptanceEstimate)
        assert est.rate == 1.0
        assert est.trials == est.attempted == 10
        assert est.failures == ()
        assert est.failure_rate == 0.0

    def test_failed_trials_are_isolated(self):
        calls = []

        def flaky(source):
            calls.append(None)
            if len(calls) in (2, 5):  # trials 2 and 5 crash (no retries here)
                raise ValueError("corrupt batch")
            source.draw(4)
            return True

        est = robust_acceptance_probability(
            families.uniform(20),
            flaky,
            trials=10,
            rng=0,
            policy=TrialPolicy(retry=RetryPolicy(max_attempts=1), max_failure_rate=0.5),
        )
        assert est.attempted == 10
        assert est.trials == 8  # the binomial analysis covers completed trials only
        assert len(est.failures) == 2
        assert {f.error_type for f in est.failures} == {"ValueError"}
        assert est.rate == 1.0
        assert "failed" in str(est)

    def test_failure_rate_threshold_rejects(self):
        def always_crashes(source):
            raise ValueError("broken")

        with pytest.raises(TooManyTrialFailures):
            robust_acceptance_probability(
                families.uniform(20),
                always_crashes,
                trials=6,
                rng=0,
                policy=TrialPolicy(
                    retry=RetryPolicy(max_attempts=1), max_failure_rate=0.25
                ),
            )

    def test_programming_errors_propagate(self):
        def buggy(source):
            raise KeyError("not an isolatable failure")

        with pytest.raises(KeyError):
            robust_acceptance_probability(
                families.uniform(20), buggy, trials=4, rng=0
            )

    def test_transient_failures_retried_to_success(self):
        attempts_per_trial: dict[int, int] = {}
        trial_counter = [0]

        def tester(source):
            source.draw(2)
            return True

        def wrap(source, gen):
            trial = trial_counter[0]
            attempts_per_trial[trial] = attempts_per_trial.get(trial, 0) + 1
            if attempts_per_trial[trial] == 1:
                raise InjectedStreamFailure(1)  # first attempt of every trial dies
            trial_counter[0] += 1
            return source

        est = robust_acceptance_probability(
            families.uniform(20),
            tester,
            trials=5,
            rng=0,
            policy=TrialPolicy(retry=RetryPolicy(max_attempts=2)),
            wrap_source=wrap,
        )
        assert est.trials == 5 and not est.failures
        assert all(count == 2 for count in attempts_per_trial.values())

    def test_scheduled_stream_failures_recorded(self):
        faults = FaultConfig(fail_at_draws=frozenset({1}))

        def tester(source):
            source.draw(3)
            return True

        with pytest.raises(TooManyTrialFailures) as info:
            robust_acceptance_probability(
                families.uniform(20),
                tester,
                trials=4,
                rng=0,
                policy=TrialPolicy(
                    retry=RetryPolicy(max_attempts=1), max_failure_rate=0.5
                ),
                wrap_source=lambda src, gen: FaultInjectingSource(src, faults, gen),
            )
        assert all(
            f.error_type == "InjectedStreamFailure" for f in info.value.failures
        )

    def test_timeout_isolated(self):
        def slow(source):
            import time

            time.sleep(0.05)
            source.draw(1)  # deadline checked here, after the deadline passed
            return True

        # Every trial times out, so no estimate can be formed at all.
        with pytest.raises(TooManyTrialFailures) as info:
            robust_acceptance_probability(
                families.uniform(20),
                slow,
                trials=2,
                rng=0,
                policy=TrialPolicy(
                    retry=RetryPolicy(max_attempts=1),
                    trial_timeout=0.01,
                    max_failure_rate=0.99,
                ),
            )
        assert all(f.error_type == "TrialTimeout" for f in info.value.failures)

    def test_reproducible(self):
        def coin_tester(source):
            return source.draw(1)[0] % 2 == 0

        a = robust_acceptance_probability(families.uniform(10), coin_tester, trials=20, rng=7)
        b = robust_acceptance_probability(families.uniform(10), coin_tester, trials=20, rng=7)
        assert a.accepted == b.accepted

    def test_success_probability_dispatches_to_robust_path(self):
        est = success_probability(
            families.uniform(20),
            always_reject,
            False,
            5,
            rng=0,
            policy=TrialPolicy(),
        )
        assert isinstance(est, RobustAcceptanceEstimate)
        assert est.rate == 1.0  # rejection counted as success
