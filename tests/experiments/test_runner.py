"""Tests for the trial runner."""

import numpy as np
import pytest

from repro.distributions import families
from repro.experiments.runner import (
    acceptance_probability,
    rejection_probability,
    success_probability,
)


def always_accept(source):
    source.draw(10)
    return True


def always_reject(source):
    source.draw(5)
    return False


class TestAcceptance:
    def test_deterministic_tester(self):
        est = acceptance_probability(families.uniform(20), always_accept, trials=10, rng=0)
        assert est.rate == 1.0
        assert est.accepted == 10
        assert est.mean_samples == 10.0
        assert est.ci_low < 1.0 <= est.ci_high

    def test_rejection_view(self):
        est = rejection_probability(families.uniform(20), always_reject, trials=8, rng=0)
        assert est.rate == 1.0
        assert est.mean_samples == 5.0

    def test_success_probability_dispatch(self):
        acc = success_probability(families.uniform(20), always_accept, True, 5, rng=0)
        rej = success_probability(families.uniform(20), always_reject, False, 5, rng=0)
        assert acc.rate == 1.0 and rej.rate == 1.0

    def test_workload_factory_fresh_instances(self):
        seen = []

        def factory(gen):
            d = families.random_histogram(30, 2, gen).to_distribution()
            seen.append(d)
            return d

        acceptance_probability(factory, always_accept, trials=4, rng=1)
        assert len(seen) == 4
        assert len({hash(d) for d in seen}) > 1

    def test_reproducible(self):
        def coin_tester(source):
            return source.draw(1)[0] % 2 == 0

        a = acceptance_probability(families.uniform(10), coin_tester, trials=20, rng=7)
        b = acceptance_probability(families.uniform(10), coin_tester, trials=20, rng=7)
        assert a.accepted == b.accepted

    def test_validation(self):
        with pytest.raises(ValueError):
            acceptance_probability(families.uniform(10), always_accept, trials=0)

    def test_str(self):
        est = acceptance_probability(families.uniform(10), always_accept, trials=3, rng=0)
        assert "3/3" in str(est)
