"""Determinism regression tests: serial ≡ parallel at any worker count.

The engine's contract is that worker processes are a pure throughput knob:
per-trial ``SeedSequence.spawn`` sub-streams are derived before any work is
scheduled and outcomes are aggregated in trial order, so every derived
artefact — estimates, sweep points, checkpoints — is byte-identical across
worker counts, including a checkpoint/resume that straddles a crash.
"""

import json
from dataclasses import asdict

import pytest

from repro.core.config import TesterConfig
from repro.experiments.runner import (
    acceptance_probability,
    robust_acceptance_probability,
)
from repro.experiments.sweeps import (
    HistogramTester,
    StaircaseWorkload,
    _default_workloads,
    _point_to_json,
    complexity_sweep,
)
from repro.robustness.checkpoint import CheckpointStore

CONFIG = TesterConfig.practical()
WORKER_COUNTS = (None, 2, 4)


def estimate_json(estimate) -> str:
    return json.dumps(asdict(estimate), sort_keys=True)


def sweep_json(result) -> str:
    return json.dumps(
        {
            "axis": result.axis,
            "points": [_point_to_json(p) for p in result.points],
            "exponent": result.exponent,
        },
        sort_keys=True,
    )


class TestAcceptanceDeterminism:
    WORKLOAD = StaircaseWorkload(600, 3)
    TESTER = HistogramTester(3, 0.35, CONFIG)

    def test_acceptance_probability_byte_identical(self):
        payloads = {
            workers: estimate_json(
                acceptance_probability(
                    self.WORKLOAD, self.TESTER, trials=8, rng=11, workers=workers
                )
            )
            for workers in WORKER_COUNTS
        }
        assert len(set(payloads.values())) == 1, payloads

    def test_robust_acceptance_probability_byte_identical(self):
        payloads = {
            workers: estimate_json(
                robust_acceptance_probability(
                    self.WORKLOAD, self.TESTER, trials=8, rng=11, workers=workers
                )
            )
            for workers in WORKER_COUNTS
        }
        assert len(set(payloads.values())) == 1, payloads

    def test_config_workers_is_execution_only(self):
        serial = acceptance_probability(
            self.WORKLOAD, HistogramTester(3, 0.35, CONFIG), trials=6, rng=2
        )
        threaded = acceptance_probability(
            self.WORKLOAD,
            HistogramTester(3, 0.35, CONFIG.with_workers(2)),
            trials=6,
            rng=2,
            workers=2,
        )
        assert estimate_json(serial) == estimate_json(threaded)


class TestSweepDeterminism:
    VALUES = [400, 800]
    KWARGS = dict(k=3, eps=0.35, config=CONFIG, trials=3, bisection_steps=2)

    def test_complexity_sweep_byte_identical(self):
        payloads = {
            workers: sweep_json(
                complexity_sweep("n", self.VALUES, rng=3, workers=workers, **self.KWARGS)
            )
            for workers in WORKER_COUNTS
        }
        assert len(set(payloads.values())) == 1, payloads

    def test_labelled_sweep_byte_identical_across_workers(self):
        """Ground-truth labelling (memoized projection cache + its own seed
        streams) must not break the worker-count determinism contract."""
        results = [
            complexity_sweep(
                "n", self.VALUES, rng=3, workers=workers,
                label_ground_truth=True, **self.KWARGS,
            )
            for workers in (None, 2)
        ]
        assert len({sweep_json(r) for r in results}) == 1
        assert results[0].ground_truth == results[1].ground_truth
        # Labelled and unlabelled runs agree point for point.
        plain = complexity_sweep("n", self.VALUES, rng=3, **self.KWARGS)
        assert sweep_json(plain) == sweep_json(results[0])

    def test_checkpoint_resume_mid_sweep_across_worker_counts(self, tmp_path):
        """A sweep interrupted under one worker count resumes under another
        to the exact uninterrupted serial result, byte for byte."""
        values = [400, 600, 800]
        path = tmp_path / "sweep.json"
        uninterrupted = complexity_sweep("n", values, rng=3, **self.KWARGS)

        calls = []

        def dying_workloads(n, k, eps):
            calls.append(n)
            if len(calls) == 3:
                raise KeyboardInterrupt  # killed mid-sweep, after two points
            return _default_workloads(n, k, eps)

        with pytest.raises(KeyboardInterrupt):
            complexity_sweep(
                "n", values, rng=3, checkpoint=path, workers=2,
                workloads=dying_workloads, **self.KWARGS,
            )
        assert len(CheckpointStore(path).load()["points"]) == 2

        resumed = complexity_sweep(
            "n", values, rng=3, checkpoint=path, workers=4, **self.KWARGS
        )
        assert sweep_json(resumed) == sweep_json(uninterrupted)

    def test_checkpoint_fingerprint_excludes_workers(self, tmp_path):
        """A checkpoint written at one worker count must match (and resume
        under) a config carrying a different workers default."""
        path = tmp_path / "sweep.json"
        complexity_sweep("n", self.VALUES, rng=3, checkpoint=path, workers=2,
                         **self.KWARGS)
        kwargs = dict(self.KWARGS)
        kwargs["config"] = CONFIG.with_workers(4)
        resumed = complexity_sweep("n", self.VALUES, rng=3, checkpoint=path, **kwargs)
        assert sweep_json(resumed) == sweep_json(
            complexity_sweep("n", self.VALUES, rng=3, **self.KWARGS)
        )
