"""Tests for the complexity sweep driver."""

import math

import pytest

from repro.core.config import TesterConfig
from repro.experiments.sweeps import complexity_sweep, fit_power_law


class TestFitPowerLaw:
    def test_exact_power(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [3.0 * x**0.5 for x in xs]
        assert fit_power_law(xs, ys) == pytest.approx(0.5)

    def test_flat(self):
        assert fit_power_law([1, 2, 4], [5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [2.0])


class TestComplexitySweep:
    CFG = TesterConfig.practical()

    def test_n_sweep_shape(self):
        sweep = complexity_sweep(
            "n", [800, 3200], k=3, eps=0.35, config=self.CFG,
            trials=5, bisection_steps=3, rng=0,
        )
        assert sweep.axis == "n"
        assert [p.n for p in sweep.points] == [800, 3200]
        assert all(p.estimate.samples > 0 for p in sweep.points)
        assert not math.isnan(sweep.exponent)
        # sublinear in n
        assert sweep.exponent < 1.0

    def test_eps_sweep_negative_exponent(self):
        sweep = complexity_sweep(
            "eps", [0.4, 0.2], n=1500, k=3, config=self.CFG,
            trials=5, bisection_steps=3, rng=1,
        )
        assert sweep.exponent < 0  # harder as eps shrinks
        assert sweep.axis_values() == [0.4, 0.2]
        assert len(sweep.samples()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            complexity_sweep("m", [1, 2])
        with pytest.raises(ValueError):
            complexity_sweep("n", [])
