"""Tests for the complexity sweep driver."""

import json
import math

import pytest

from repro.core.config import TesterConfig
from repro.experiments.estimate import ComplexityEstimate
from repro.experiments.sweeps import (
    SweepPoint,
    _default_workloads,
    _point_from_json,
    _point_to_json,
    complexity_sweep,
    fit_power_law,
)
from repro.robustness.checkpoint import CheckpointStore


class TestFitPowerLaw:
    def test_exact_power(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [3.0 * x**0.5 for x in xs]
        assert fit_power_law(xs, ys) == pytest.approx(0.5)

    def test_flat(self):
        assert fit_power_law([1, 2, 4], [5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [2.0])


class TestComplexitySweep:
    CFG = TesterConfig.practical()

    def test_n_sweep_shape(self):
        sweep = complexity_sweep(
            "n", [800, 3200], k=3, eps=0.35, config=self.CFG,
            trials=5, bisection_steps=3, rng=0,
        )
        assert sweep.axis == "n"
        assert [p.n for p in sweep.points] == [800, 3200]
        assert all(p.estimate.samples > 0 for p in sweep.points)
        assert not math.isnan(sweep.exponent)
        # sublinear in n
        assert sweep.exponent < 1.0

    def test_eps_sweep_negative_exponent(self):
        sweep = complexity_sweep(
            "eps", [0.4, 0.2], n=1500, k=3, config=self.CFG,
            trials=5, bisection_steps=3, rng=1,
        )
        assert sweep.exponent < 0  # harder as eps shrinks
        assert sweep.axis_values() == [0.4, 0.2]
        assert len(sweep.samples()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            complexity_sweep("m", [1, 2])
        with pytest.raises(ValueError):
            complexity_sweep("n", [])


class TestGroundTruthLabels:
    KWARGS = dict(k=3, eps=0.35, config=TesterConfig.practical(),
                  trials=3, bisection_steps=2)

    def test_labels_attached_per_point(self):
        sweep = complexity_sweep(
            "n", [400, 800], rng=5, label_ground_truth=True, **self.KWARGS
        )
        assert sweep.ground_truth is not None
        assert len(sweep.ground_truth) == len(sweep.points)
        for entry in sweep.ground_truth:
            assert set(entry) == {"complete", "far"}
            # Staircase instances are genuine 3-histograms; sawtooth
            # instances are certified eps-far.
            assert entry["complete"]["upper"] <= 1e-9
            assert entry["far"]["lower"] >= 0.35 - 1e-9

    def test_labelling_never_perturbs_points(self):
        plain = complexity_sweep("n", [400, 800], rng=5, **self.KWARGS)
        labelled = complexity_sweep(
            "n", [400, 800], rng=5, label_ground_truth=True, **self.KWARGS
        )
        assert plain.ground_truth is None
        assert plain.points == labelled.points
        assert plain.exponent == labelled.exponent

    def test_labelling_never_perturbs_checkpoints(self, tmp_path):
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        complexity_sweep("n", [400], rng=5, checkpoint=path_a, **self.KWARGS)
        complexity_sweep(
            "n", [400], rng=5, checkpoint=path_b, label_ground_truth=True,
            **self.KWARGS,
        )
        assert json.dumps(CheckpointStore(path_a).load(), sort_keys=True) == \
            json.dumps(CheckpointStore(path_b).load(), sort_keys=True)

    def test_resumed_sweep_is_labelled(self, tmp_path):
        path = tmp_path / "sweep.json"
        complexity_sweep("n", [400, 800], rng=5, checkpoint=path, **self.KWARGS)
        resumed = complexity_sweep(
            "n", [400, 800], rng=5, checkpoint=path, label_ground_truth=True,
            **self.KWARGS,
        )
        # Labels are recomputed on resume (memoized, never checkpointed) —
        # every point gets one even if its trials came from the checkpoint.
        assert resumed.ground_truth is not None
        assert len(resumed.ground_truth) == 2


class TestPointJsonRoundTrip:
    POINT = SweepPoint(
        n=1200,
        k=5,
        eps=0.25,
        estimate=ComplexityEstimate(
            samples=431.5, scale=0.75, scale_low=0.5, evaluations=6, target_rate=0.9
        ),
    )

    def test_round_trip_is_identity(self):
        assert _point_from_json(_point_to_json(self.POINT)) == self.POINT

    def test_round_trip_survives_json_text(self):
        # Through an actual JSON encode/decode, as the checkpoint store does.
        data = json.loads(json.dumps(_point_to_json(self.POINT)))
        assert _point_from_json(data) == self.POINT

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="must be an object"):
            _point_from_json([1, 2, 3])

    def test_rejects_unknown_point_key(self):
        data = _point_to_json(self.POINT)
        data["workers"] = 4
        with pytest.raises(ValueError, match="unknown keys.*workers"):
            _point_from_json(data)

    def test_rejects_missing_point_key(self):
        data = _point_to_json(self.POINT)
        del data["eps"]
        with pytest.raises(ValueError, match="missing keys.*eps"):
            _point_from_json(data)

    def test_rejects_malformed_estimate(self):
        data = _point_to_json(self.POINT)
        data["estimate"] = 17.0
        with pytest.raises(ValueError, match="'estimate' must be an object"):
            _point_from_json(data)
        data["estimate"] = dict(_point_to_json(self.POINT)["estimate"], bogus=1)
        with pytest.raises(ValueError, match="unknown keys.*bogus"):
            _point_from_json(data)
        data["estimate"] = {"samples": 1.0}
        with pytest.raises(ValueError, match="missing keys"):
            _point_from_json(data)


class TestCheckpointResume:
    VALUES = [800, 1600, 3200]
    KWARGS = dict(k=3, eps=0.35, config=TesterConfig.practical(),
                  trials=3, bisection_steps=2)

    def test_interrupted_sweep_resumes_to_identical_result(self, tmp_path):
        path = tmp_path / "sweep.json"
        full = complexity_sweep("n", self.VALUES, rng=3, **self.KWARGS)

        calls = []

        def dying_workloads(n, k, eps):
            calls.append(n)
            if len(calls) == 3:
                raise KeyboardInterrupt  # simulate a kill mid-sweep
            return _default_workloads(n, k, eps)

        with pytest.raises(KeyboardInterrupt):
            complexity_sweep(
                "n", self.VALUES, rng=3, checkpoint=path,
                workloads=dying_workloads, **self.KWARGS,
            )
        # Two completed points survived the crash.
        saved = CheckpointStore(path).load()
        assert len(saved["points"]) == 2

        resumed = complexity_sweep(
            "n", self.VALUES, rng=3, checkpoint=path, **self.KWARGS
        )
        assert resumed == full

    def test_mismatched_fingerprint_restarts(self, tmp_path):
        path = tmp_path / "sweep.json"
        complexity_sweep("n", self.VALUES[:2], rng=3, checkpoint=path, **self.KWARGS)
        # Different seed → checkpoint ignored, sweep recomputed from scratch.
        sweep = complexity_sweep(
            "n", self.VALUES[:2], rng=4, checkpoint=path, **self.KWARGS
        )
        assert sweep == complexity_sweep("n", self.VALUES[:2], rng=4, **self.KWARGS)

    def test_resume_false_discards_checkpoint(self, tmp_path):
        path = tmp_path / "sweep.json"
        store = CheckpointStore(path)
        store.save({"fingerprint": {"bogus": 1}, "points": []})
        complexity_sweep(
            "n", self.VALUES[:2], rng=3, checkpoint=path, resume=False, **self.KWARGS
        )
        # The bogus checkpoint was cleared and replaced by the real one.
        assert store.load()["fingerprint"]["seed"] == 3

    def test_checkpoint_requires_int_seed(self, tmp_path):
        with pytest.raises(ValueError, match="integer seed"):
            complexity_sweep(
                "n", self.VALUES[:2], rng=None,
                checkpoint=tmp_path / "s.json", **self.KWARGS,
            )
