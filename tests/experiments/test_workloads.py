"""Tests for the workload registry."""

import numpy as np
import pytest

from repro.distributions.histogram import is_k_histogram
from repro.distributions.projection import unconstrained_l1_distance
from repro.experiments.workloads import (
    _GROUND_TRUTH_CACHE,
    _GROUND_TRUTH_CACHE_SIZE,
    REGISTRY,
    completeness_workloads,
    get_workload,
    ground_truth_bounds,
    make,
    soundness_workloads,
)


N, K, EPS = 600, 4, 0.2


class TestRegistry:
    def test_lookup(self):
        w = get_workload("staircase")
        assert w.nature == "complete"
        with pytest.raises(KeyError, match="available"):
            get_workload("nope")

    def test_partitioned_by_nature(self):
        names = set(REGISTRY)
        complete = {w.name for w in completeness_workloads()}
        far = {w.name for w in soundness_workloads()}
        assert complete and far
        assert complete | far <= names
        assert not complete & far

    def test_all_instantiable_and_valid(self):
        for name in REGISTRY:
            dist = make(name, N, K, EPS, rng=0)
            assert dist.n == N
            assert dist.pmf.sum() == pytest.approx(1.0)

    def test_complete_workloads_are_histograms(self):
        for w in completeness_workloads():
            dist = make(w.name, N, K, EPS, rng=1)
            assert is_k_histogram(dist.pmf, K), w.name

    def test_far_workloads_certified(self):
        for w in soundness_workloads():
            dist = make(w.name, N, K, EPS, rng=2)
            assert unconstrained_l1_distance(dist, K) >= EPS - 1e-9, w.name

    def test_reproducible(self):
        a = make("random-histogram", N, K, EPS, rng=3)
        b = make("random-histogram", N, K, EPS, rng=3)
        assert a == b

    def test_descriptions_present(self):
        assert all(w.description for w in REGISTRY.values())


class TestGroundTruthBounds:
    def test_matches_unmemoized_bounds(self):
        from repro.distributions.projection import histogram_distance_bounds

        dist = make("zipf", N, K, EPS, rng=0)
        assert ground_truth_bounds(dist, K) == histogram_distance_bounds(dist.pmf, K)

    def test_memoizes_by_pmf_bytes_and_k(self):
        _GROUND_TRUTH_CACHE.clear()
        dist = make("staircase", N, K, EPS, rng=0)
        first = ground_truth_bounds(dist, K)
        assert len(_GROUND_TRUTH_CACHE) == 1
        # Same pmf content from a fresh array hits the cache; different k
        # does not.
        assert ground_truth_bounds(dist.pmf.copy(), K) == first
        assert len(_GROUND_TRUTH_CACHE) == 1
        ground_truth_bounds(dist, K + 1)
        assert len(_GROUND_TRUTH_CACHE) == 2

    def test_cache_is_bounded(self):
        _GROUND_TRUTH_CACHE.clear()
        gen = np.random.default_rng(0)
        for _ in range(_GROUND_TRUTH_CACHE_SIZE + 10):
            ground_truth_bounds(gen.dirichlet(np.ones(6)), 2)
        assert len(_GROUND_TRUTH_CACHE) == _GROUND_TRUTH_CACHE_SIZE

    def test_labels_separate_complete_from_far(self):
        complete = make("staircase", N, K, EPS, rng=1)
        far = make("sawtooth-uniform", N, K, EPS, rng=1)
        lower_c, upper_c = ground_truth_bounds(complete, K)
        lower_f, _ = ground_truth_bounds(far, K)
        assert upper_c <= 1e-9
        assert lower_f >= EPS - 1e-9
        assert lower_c <= upper_c + 1e-12
