"""Tests for the workload registry."""

import numpy as np
import pytest

from repro.distributions.histogram import is_k_histogram
from repro.distributions.projection import unconstrained_l1_distance
from repro.experiments.workloads import (
    REGISTRY,
    completeness_workloads,
    get_workload,
    make,
    soundness_workloads,
)


N, K, EPS = 600, 4, 0.2


class TestRegistry:
    def test_lookup(self):
        w = get_workload("staircase")
        assert w.nature == "complete"
        with pytest.raises(KeyError, match="available"):
            get_workload("nope")

    def test_partitioned_by_nature(self):
        names = set(REGISTRY)
        complete = {w.name for w in completeness_workloads()}
        far = {w.name for w in soundness_workloads()}
        assert complete and far
        assert complete | far <= names
        assert not complete & far

    def test_all_instantiable_and_valid(self):
        for name in REGISTRY:
            dist = make(name, N, K, EPS, rng=0)
            assert dist.n == N
            assert dist.pmf.sum() == pytest.approx(1.0)

    def test_complete_workloads_are_histograms(self):
        for w in completeness_workloads():
            dist = make(w.name, N, K, EPS, rng=1)
            assert is_k_histogram(dist.pmf, K), w.name

    def test_far_workloads_certified(self):
        for w in soundness_workloads():
            dist = make(w.name, N, K, EPS, rng=2)
            assert unconstrained_l1_distance(dist, K) >= EPS - 1e-9, w.name

    def test_reproducible(self):
        a = make("random-histogram", N, K, EPS, rng=3)
        b = make("random-histogram", N, K, EPS, rng=3)
        assert a == b

    def test_descriptions_present(self):
        assert all(w.description for w in REGISTRY.values())
