"""Closeness through the experiments stack: determinism + task identity.

The worker-count contract extends unchanged to paired trials — a closeness
acceptance estimate or sweep is byte-identical serial vs 2 vs 4 workers —
and ``task`` is a fingerprint-*bearing* knob: identity and closeness sweeps
never share checkpoints or shard ids, while a distributed closeness shard
reproduces the serial sweep point exactly.
"""

import json
from dataclasses import asdict

import pytest

from repro.core.config import TesterConfig
from repro.distributed.spec import SweepSpec, run_shard
from repro.experiments.runner import (
    acceptance_probability,
    robust_acceptance_probability,
)
from repro.experiments.sweeps import (
    PairedClosenessTester,
    _point_to_json,
    complexity_sweep,
    sweep_fingerprint,
)
from repro.experiments.workloads import BoundPairedWorkload
from repro.robustness.checkpoint import CheckpointStore

CONFIG = TesterConfig.practical()
WORKER_COUNTS = (None, 2, 4)

#: A small degenerate-regime grid: every point runs the paired plug-in, so
#: the whole matrix stays cheap while still crossing process boundaries.
VALUES = [200, 400]
SWEEP_KWARGS = dict(
    k=4, eps=0.3, config=CONFIG, trials=3, bisection_steps=2, task="closeness"
)


def estimate_json(estimate) -> str:
    return json.dumps(asdict(estimate), sort_keys=True)


def sweep_json(result) -> str:
    return json.dumps(
        {
            "axis": result.axis,
            "points": [_point_to_json(p) for p in result.points],
            "exponent": result.exponent,
        },
        sort_keys=True,
    )


class TestClosenessAcceptanceDeterminism:
    WORKLOAD = BoundPairedWorkload("identical-staircase", 400, 4, 0.3)
    TESTER = PairedClosenessTester(4, 0.3, CONFIG)

    def test_acceptance_probability_byte_identical(self):
        payloads = {
            workers: estimate_json(
                acceptance_probability(
                    self.WORKLOAD, self.TESTER, trials=8, rng=11, workers=workers
                )
            )
            for workers in WORKER_COUNTS
        }
        assert len(set(payloads.values())) == 1, payloads

    def test_robust_acceptance_probability_byte_identical(self):
        payloads = {
            workers: estimate_json(
                robust_acceptance_probability(
                    self.WORKLOAD, self.TESTER, trials=8, rng=11, workers=workers
                )
            )
            for workers in WORKER_COUNTS
        }
        assert len(set(payloads.values())) == 1, payloads


class TestClosenessSweepDeterminism:
    def test_complexity_sweep_byte_identical(self):
        payloads = {
            workers: sweep_json(
                complexity_sweep(
                    "n", VALUES, rng=3, workers=workers, **SWEEP_KWARGS
                )
            )
            for workers in WORKER_COUNTS
        }
        assert len(set(payloads.values())) == 1, payloads

    def test_checkpoint_resume_reproduces(self, tmp_path):
        path = tmp_path / "closeness.ckpt"
        first = complexity_sweep(
            "n", VALUES, rng=3, checkpoint=path, workers=2, **SWEEP_KWARGS
        )
        resumed = complexity_sweep(
            "n", VALUES, rng=3, checkpoint=path, workers=4, **SWEEP_KWARGS
        )
        assert sweep_json(first) == sweep_json(resumed)

    def test_ground_truth_labels_are_exact_for_pairs(self):
        """Paired labelling uses the analytic pair distance: identical
        pairs label 0, constructed-far pairs label ≥ eps."""
        result = complexity_sweep(
            "n", VALUES, rng=3, label_ground_truth=True, **SWEEP_KWARGS
        )
        assert result.ground_truth is not None
        for labels in result.ground_truth:
            assert labels["complete"]["upper"] == pytest.approx(0.0, abs=1e-12)
            assert labels["far"]["lower"] >= SWEEP_KWARGS["eps"] - 1e-9


class TestTaskIsFingerprintBearing:
    def test_task_changes_the_fingerprint(self):
        common = dict(
            n=400, k=4, eps=0.3, trials=3, bisection_steps=2,
            config=CONFIG, backend="pods16", seed=3,
        )
        identity = sweep_fingerprint("n", VALUES, task="identity", **common)
        closeness = sweep_fingerprint("n", VALUES, task="closeness", **common)
        assert identity["task"] == "identity"
        assert closeness["task"] == "closeness"
        assert {k: v for k, v in identity.items() if k != "task"} == {
            k: v for k, v in closeness.items() if k != "task"
        }

    def test_rejects_unknown_task(self):
        with pytest.raises(ValueError, match="task"):
            sweep_fingerprint(
                "n", VALUES, n=400, k=4, eps=0.3, trials=3,
                bisection_steps=2, config=CONFIG, backend="pods16",
                seed=3, task="equivalence",
            )

    def test_identity_checkpoint_never_resumes_a_closeness_sweep(self, tmp_path):
        """A checkpoint written under one task is a different experiment:
        the fingerprint mismatch forces a fresh run, not a cross-resume."""
        path = tmp_path / "sweep.ckpt"
        kwargs = dict(SWEEP_KWARGS)
        del kwargs["task"]
        complexity_sweep(
            "n", VALUES, rng=3, checkpoint=path, task="identity", **kwargs
        )
        store = CheckpointStore(path)
        identity_state = store.load()
        assert identity_state["fingerprint"]["task"] == "identity"

        complexity_sweep(
            "n", VALUES, rng=3, checkpoint=path, task="closeness", **kwargs
        )
        closeness_state = store.load()
        assert closeness_state["fingerprint"]["task"] == "closeness"
        assert closeness_state["fingerprint"] != identity_state["fingerprint"]


class TestClosenessShards:
    def _spec(self):
        return SweepSpec(
            axis="n", values=tuple(VALUES), n=400, k=4, eps=0.3,
            trials=3, bisection_steps=2, seed=3, task="closeness",
            config=CONFIG,
        )

    def test_spec_round_trips_task(self):
        spec = self._spec()
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_task_changes_shard_ids(self):
        closeness = self._spec()
        identity = SweepSpec.from_json(
            {**closeness.to_json(), "task": "identity"}
        )
        assert closeness.shard_id(0) != identity.shard_id(0)

    def test_shard_matches_serial_sweep_point(self):
        spec = self._spec()
        serial = complexity_sweep(
            "n", VALUES, rng=3, **SWEEP_KWARGS
        )
        for index in range(len(VALUES)):
            shard = run_shard(spec, index)
            assert shard.point == _point_to_json(serial.points[index])
            assert shard.samples_total > 0
            assert shard.trials_total > 0
