"""Trace determinism: serial and parallel runs emit identical event streams.

Companion to ``test_determinism.py`` for the observability layer: per-trial
sub-traces are recorded in the workers, exported as plain dicts, and
absorbed by the parent *in trial order*, so the assembled JSONL is
byte-identical at any worker count once wall-clock fields are stripped.
"""

import pytest

from repro.core.config import TesterConfig
from repro.experiments.runner import (
    acceptance_probability,
    robust_acceptance_probability,
)
from repro.experiments.sweeps import HistogramTester, StaircaseWorkload
from repro.observability.trace import (
    RecordingTracer,
    canonical_jsonl,
    validate_event,
    write_jsonl,
)

CONFIG = TesterConfig.practical()
WORKER_COUNTS = (None, 2, 4)
WORKLOAD = StaircaseWorkload(600, 3)
TESTER = HistogramTester(3, 0.35, CONFIG)


def _traced(fn, workers):
    tracer = RecordingTracer()
    estimate = fn(
        WORKLOAD, TESTER, trials=6, rng=11, workers=workers, trace=tracer
    )
    return estimate, canonical_jsonl(tracer.export()), tracer


class TestTraceByteIdentical:
    @pytest.mark.parametrize("fn", [acceptance_probability, robust_acceptance_probability])
    def test_across_worker_counts(self, fn):
        payloads = {w: _traced(fn, w)[1] for w in WORKER_COUNTS}
        assert len(set(payloads.values())) == 1, {
            w: p[:200] for w, p in payloads.items()
        }

    def test_trace_is_nonempty_and_trial_ordered(self):
        _, _, tracer = _traced(acceptance_probability, 2)
        events = tracer.export()
        assert events
        for event in events:
            validate_event(event)
        trials = [e["attrs"]["trial"] for e in events if "trial" in e["attrs"]]
        assert trials == sorted(trials)  # absorbed in trial order
        assert set(trials) == set(range(6))

    def test_per_trial_ledgers_present(self):
        _, _, tracer = _traced(acceptance_probability, 2)
        ledgers = [e for e in tracer.events if e.name.endswith("/ledger")]
        assert len(ledgers) == 6  # one reconciliation per trial

    def test_written_files_identical(self, tmp_path):
        paths = []
        for workers in WORKER_COUNTS:
            _, _, tracer = _traced(acceptance_probability, workers)
            path = tmp_path / f"w{workers}.jsonl"
            write_jsonl(path, [e for e in map(dict, (
                {k: v for k, v in raw.items() if k != "duration_s"}
                for raw in tracer.export()
            ))])
            paths.append(path.read_bytes())
        assert len(set(paths)) == 1

    def test_untraced_estimate_unchanged_by_tracing(self):
        traced, _, _ = _traced(acceptance_probability, None)
        plain = acceptance_probability(WORKLOAD, TESTER, trials=6, rng=11)
        assert plain == traced
