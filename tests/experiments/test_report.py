"""Tests for report formatting."""

import pytest

from repro.experiments.report import (
    format_cell,
    format_series,
    format_table,
    print_experiment,
)


class TestFormatCell:
    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_ints_with_thousands(self):
        assert format_cell(1234567) == "1,234,567"

    def test_float_ranges(self):
        assert format_cell(0.0) == "0"
        assert format_cell(1234567.0) == "1.23e+06"
        assert format_cell(0.00012) == "0.00012"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(250.4) == "250"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in (lines[0], lines[2], lines[3]))

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_print_experiment_returns_banner(self, capsys):
        banner = print_experiment("E0", ["x"], [[1]])
        out = capsys.readouterr().out
        assert "E0" in banner and "E0" in out


class TestFormatSeries:
    def test_bars_scale(self):
        s = format_series([1, 2], [1.0, 2.0], width=10)
        lines = s.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_empty(self):
        assert format_series([], []) == "(empty series)"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1], [1.0, 2.0])

    def test_zero_series(self):
        s = format_series([1, 2], [0.0, 0.0])
        assert "0" in s
