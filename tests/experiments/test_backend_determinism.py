"""Backend determinism regressions: cdkl22 honours every replay contract.

The cdkl22 backend adds an *adaptive* wrinkle the pods16 path never had —
the final test may escalate to a second, larger draw when the stage-0
statistic lands inside the guard band — so these tests pin the contracts
that adaptivity is most likely to break: byte-identical artefacts (sweep
points *and* traces) across worker counts, checkpoint/resume straddling a
mid-sweep crash, and the fingerprint rule that ``backend`` is an identity
field (a pods16 checkpoint must never be spliced into a cdkl22 sweep)
while ``workers`` stays execution-only.
"""

import pytest

from repro.core.config import TesterConfig
from repro.experiments.runner import acceptance_probability
from repro.experiments.sweeps import (
    HistogramTester,
    StaircaseWorkload,
    _default_workloads,
    complexity_sweep,
)
from repro.observability.trace import RecordingTracer, canonical_jsonl
from repro.robustness.checkpoint import CheckpointStore

from .test_determinism import sweep_json

CONFIG = TesterConfig.practical()
WORKER_COUNTS = (None, 2, 4)
VALUES = [400, 800]
KWARGS = dict(k=3, eps=0.35, config=CONFIG, trials=3, bisection_steps=2)


class TestWorkerByteIdentity:
    def test_cdkl22_sweep_byte_identical_across_workers(self):
        payloads = {
            workers: sweep_json(
                complexity_sweep(
                    "n", VALUES, rng=3, workers=workers, backend="cdkl22", **KWARGS
                )
            )
            for workers in WORKER_COUNTS
        }
        assert len(set(payloads.values())) == 1, payloads

    def test_cdkl22_traces_byte_identical_across_workers(self):
        payloads = {}
        for workers in WORKER_COUNTS:
            tracer = RecordingTracer()
            acceptance_probability(
                StaircaseWorkload(600, 3),
                HistogramTester(3, 0.35, CONFIG, "cdkl22"),
                trials=6,
                rng=11,
                workers=workers,
                trace=tracer,
            )
            payloads[workers] = canonical_jsonl(tracer.export())
        assert len(set(payloads.values())) == 1

    def test_backends_diverge_on_the_same_seed(self):
        """Sanity check that the knob is live: the two backends draw
        different budgets, so their sweep artefacts must differ."""
        runs = {
            backend: sweep_json(
                complexity_sweep("n", VALUES, rng=3, backend=backend, **KWARGS)
            )
            for backend in ("pods16", "cdkl22")
        }
        assert runs["pods16"] != runs["cdkl22"]


class TestCheckpointResume:
    def test_checkpoint_resume_mid_sweep_cdkl22(self, tmp_path):
        """A cdkl22 sweep killed after two points resumes under a different
        worker count to the exact uninterrupted result, byte for byte."""
        values = [400, 600, 800]
        path = tmp_path / "sweep.json"
        uninterrupted = complexity_sweep(
            "n", values, rng=3, backend="cdkl22", **KWARGS
        )

        calls = []

        def dying_workloads(n, k, eps):
            calls.append(n)
            if len(calls) == 3:
                raise KeyboardInterrupt  # killed mid-sweep, after two points
            return _default_workloads(n, k, eps)

        with pytest.raises(KeyboardInterrupt):
            complexity_sweep(
                "n", values, rng=3, checkpoint=path, workers=2,
                backend="cdkl22", workloads=dying_workloads, **KWARGS,
            )
        assert len(CheckpointStore(path).load()["points"]) == 2

        resumed = complexity_sweep(
            "n", values, rng=3, checkpoint=path, workers=4,
            backend="cdkl22", **KWARGS,
        )
        assert sweep_json(resumed) == sweep_json(uninterrupted)

    def test_fingerprint_includes_backend(self, tmp_path):
        """A checkpoint written under pods16 must be *discarded*, not
        resumed, by a cdkl22 sweep over the same grid — backend changes the
        verdicts, so splicing rows across backends would corrupt results."""
        path = tmp_path / "sweep.json"
        complexity_sweep("n", VALUES, rng=3, checkpoint=path, **KWARGS)
        stale = CheckpointStore(path).load()
        assert stale["fingerprint"]["backend"] == "pods16"

        resumed = complexity_sweep(
            "n", VALUES, rng=3, checkpoint=path, backend="cdkl22", **KWARGS
        )
        fresh = complexity_sweep("n", VALUES, rng=3, backend="cdkl22", **KWARGS)
        assert sweep_json(resumed) == sweep_json(fresh)
        assert CheckpointStore(path).load()["fingerprint"]["backend"] == "cdkl22"

    def test_fingerprint_still_excludes_workers(self, tmp_path):
        """The PR-3 rule survives the new field: worker count changes must
        not invalidate a cdkl22 checkpoint."""
        path = tmp_path / "sweep.json"
        complexity_sweep(
            "n", VALUES, rng=3, checkpoint=path, workers=2,
            backend="cdkl22", **KWARGS,
        )
        resumed = complexity_sweep(
            "n", VALUES, rng=3, checkpoint=path, workers=4,
            backend="cdkl22", **KWARGS,
        )
        assert sweep_json(resumed) == sweep_json(
            complexity_sweep("n", VALUES, rng=3, backend="cdkl22", **KWARGS)
        )
