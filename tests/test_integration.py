"""Cross-module integration tests: the pipelines a downstream user runs.

Each test wires several subsystems together exactly as the examples and
benchmarks do; statistical assertions carry the usual 2/3-guarantee margins
(flake probabilities < 1e-6 at the chosen trial counts and observed
per-trial success rates).
"""

import numpy as np
import pytest

from repro import TesterConfig, families, test_histogram
from repro.baselines import cdgr16_test, ilr12_test, learn_offline_test
from repro.distributions.distances import tv_distance
from repro.distributions.projection import unconstrained_l1_distance
from repro.distributions.sampling import SampleSource
from repro.experiments import (
    REGISTRY,
    acceptance_probability,
    empirical_sample_complexity,
    make,
)
from repro.learning import learn_histogram_agnostic, select_k
from repro.lowerbounds import (
    reduction_parameters,
    solve_suppsize_via_tester,
    suppsize_instance,
)

CFG = TesterConfig.practical()


class TestTesterAcrossWorkloads:
    """Every registered completeness workload accepted, every certified-far
    workload rejected, at the 2/3 bar (8 trials each, observed rates ~1)."""

    N, K, EPS = 2500, 4, 0.3

    @pytest.mark.parametrize(
        "name", [w.name for w in REGISTRY.values() if w.nature == "complete"]
    )
    def test_completeness(self, name):
        est = acceptance_probability(
            lambda g: make(name, self.N, self.K, self.EPS, g),
            lambda src: test_histogram(src, self.K, self.EPS, config=CFG).accept,
            trials=8,
            rng=0,
        )
        assert est.rate >= 0.625, f"{name}: {est}"

    @pytest.mark.parametrize(
        "name", [w.name for w in REGISTRY.values() if w.nature == "far"]
    )
    def test_soundness(self, name):
        est = acceptance_probability(
            lambda g: make(name, self.N, self.K, self.EPS, g),
            lambda src: test_histogram(src, self.K, self.EPS, config=CFG).accept,
            trials=8,
            rng=1,
        )
        assert est.rate <= 0.375, f"{name}: {est}"


class TestTestThenLearnPipeline:
    def test_accepted_then_learned_summary_is_good(self):
        n, k, eps = 2000, 6, 0.25
        dist = families.staircase(n, k, ratio=2.0).to_distribution()
        verdict = test_histogram(dist, k, eps, config=CFG, rng=0)
        assert verdict.accept
        summary = learn_histogram_agnostic(dist, k, eps / 2, rng=1)
        assert tv_distance(dist, summary.to_pmf()) <= eps

    def test_model_selection_then_verification(self):
        dist = families.staircase(1500, 4, ratio=3.0).to_distribution()
        result = select_k(dist, 0.25, k_max=32, repeats=3, rng=2, config=CFG)
        # The selected model, re-tested, is accepted.
        assert test_histogram(dist, result.k, 0.25, config=CFG, rng=3).accept


class TestBaselineAgreement:
    """On unambiguous instances, all testers should agree with the truth."""

    N, K, EPS = 2048, 4, 0.3

    def test_all_accept_true_histogram(self):
        dist = families.staircase(self.N, self.K).to_distribution()
        assert test_histogram(dist, self.K, self.EPS, config=CFG, rng=0).accept
        assert ilr12_test(dist, self.K, self.EPS, rng=1).accept
        assert cdgr16_test(dist, self.K, self.EPS, rng=2).accept
        assert learn_offline_test(dist, self.K, self.EPS, rng=3).accept

    def test_all_reject_certified_far(self):
        dist = families.far_from_hk(self.N, self.K, self.EPS, rng=4)
        assert not test_histogram(dist, self.K, self.EPS, config=CFG, rng=5).accept
        assert not ilr12_test(dist, self.K, self.EPS, rng=6).accept
        assert not cdgr16_test(dist, self.K, self.EPS, rng=7).accept
        assert not learn_offline_test(dist, self.K, self.EPS, rng=8).accept


class TestReductionEndToEnd:
    def test_histogram_tester_solves_suppsize(self):
        def tester(source, k, eps):
            return test_histogram(source, k, eps, config=CFG).accept

        m, _ = reduction_parameters(13)
        n = 80 * m
        correct = 0
        for seed in range(6):
            small = seed % 2 == 0
            inst = suppsize_instance(m, small, rng=seed)
            correct += solve_suppsize_via_tester(inst, n, tester, rng=30 + seed) == small
        assert correct >= 5


class TestComplexityHarness:
    def test_bisection_on_real_tester(self):
        n, k, eps = 1500, 3, 0.3
        family = lambda scale: (
            lambda src: test_histogram(src, k, eps, config=CFG.scaled(scale)).accept
        )
        est = empirical_sample_complexity(
            family,
            complete=lambda g: families.staircase(n, k).to_distribution(),
            far=lambda g: families.far_from_hk(n, k, eps, g),
            trials=6,
            bisection_steps=3,
            rng=4,
        )
        # The tester works below its nominal budget (scale < 1) and the
        # measured usage is positive and below the worst case.
        from repro.core.budget import algorithm1_budget

        assert 0 < est.samples <= algorithm1_budget(n, k, eps, config=CFG)


class TestCertificatesAgree:
    def test_far_instances_are_what_they_claim(self):
        for seed in range(3):
            dist = families.far_from_hk(700, 5, 0.2, rng=seed)
            assert unconstrained_l1_distance(dist, 5) >= 0.2 - 1e-9

    def test_sample_source_only_access(self):
        # The tester must never look at the pmf: a SampleSource wrapping a
        # permuted distribution must give the same verdict distribution as
        # the unpermuted one under a matching seed (symmetry smoke check).
        dist = families.uniform(1000)
        src = SampleSource(dist, rng=0)
        v = test_histogram(src, 1, 0.4, config=CFG)
        assert v.accept
        assert v.samples_used == src.samples_drawn
