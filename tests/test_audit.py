"""Tests for the high-level dataset audit API."""

import numpy as np
import pytest

from repro import families
from repro.audit import (
    audit_histogram,
    recommend_buckets,
    recommendation_dataset_size,
    required_dataset_size,
)
from repro.core.config import TesterConfig
from repro.distributions.replay import InsufficientSamples

# Small domain keeps the in-memory datasets around 100 MB at the full
# practical budget.  (Down-scaling the budget instead would shrink the χ²
# threshold-to-noise ratio — which is n-independent — and make verdicts
# flaky; see the noise-floor discussion in TesterConfig.practical.)
N, K, EPS = 300, 3, 0.35
CFG = TesterConfig.practical()


def histogram_dataset(extra=100_000, seed=0):
    dist = families.staircase(N, K).to_distribution()
    size = required_dataset_size(N, K, EPS, CFG) + extra
    return dist.sample(size, rng=seed)


class TestRequiredSize:
    def test_covers_actual_usage(self):
        data = histogram_dataset()
        report = audit_histogram(data, K, EPS, config=CFG, rng=1)
        assert report.observations_used <= required_dataset_size(N, K, EPS, CFG)

    def test_monotone_in_parameters(self):
        assert required_dataset_size(4 * N, K, EPS, CFG) > required_dataset_size(
            N, K, EPS, CFG
        )
        assert required_dataset_size(N, K, EPS / 2, CFG) > required_dataset_size(
            N, K, EPS, CFG
        )


class TestAudit:
    def test_accepts_histogram_column(self):
        report = audit_histogram(histogram_dataset(seed=2), K, EPS, config=CFG, rng=3)
        assert report.histogram_ok
        assert report.summary is not None
        assert report.summary.num_pieces <= K
        assert report.n == N

    def test_rejects_messy_column(self):
        far = families.far_from_hk(N, K, EPS, rng=4)
        size = required_dataset_size(N, K, EPS, CFG)
        data = far.sample(size, rng=5)
        report = audit_histogram(data, K, EPS, config=CFG, rng=6)
        assert not report.histogram_ok
        assert report.summary is None

    def test_small_dataset_raises_with_guidance(self):
        data = histogram_dataset(seed=7)[:5000]
        with pytest.raises(InsufficientSamples, match="collect more data"):
            audit_histogram(data, K, EPS, config=CFG, rng=8)

    def test_learn_on_accept_optional(self):
        report = audit_histogram(
            histogram_dataset(seed=9), K, EPS, config=CFG, learn_on_accept=False, rng=10
        )
        assert report.histogram_ok and report.summary is None

    def test_explicit_domain(self):
        data = histogram_dataset(seed=11)
        report = audit_histogram(data, K, EPS, n=N + 500, config=CFG, rng=12)
        assert report.n == N + 500


class TestRecommendation:
    def test_recommends_small_k_for_coarse_column(self):
        n = 300
        dist = families.staircase(n, 3, ratio=4.0).to_distribution()
        size = recommendation_dataset_size(n, 8, 0.35, config=CFG, repeats=1)
        data = dist.sample(size, rng=13)
        rec = recommend_buckets(data, 0.35, k_max=8, config=CFG, repeats=1, rng=14)
        assert 1 <= rec.k <= 6
        assert rec.summary.num_pieces <= rec.k
        assert rec.trace[rec.k] is True

    def test_insufficient_data_raises_with_hint(self):
        data = np.zeros(1000, dtype=np.int64)
        with pytest.raises(InsufficientSamples):
            recommend_buckets(data, 0.3, n=1000, k_max=16, config=CFG, repeats=1, rng=15)
