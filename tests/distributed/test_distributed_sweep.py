"""Byte-identity and chaos-matrix tests for the distributed sweep.

The acceptance criterion of the whole subsystem: a sweep distributed over
any number of workers — under scripted kills, lease expiries, duplicate
completions, skipped heartbeats, and lock contention — assembles into a
:class:`SweepResult` and trace **byte-identical** to the serial
``complexity_sweep`` of the same spec, with per-shard ledgers reconciling
exactly (zero drift).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.distributed import (
    ChaosSchedule,
    ResultsStore,
    SweepSpec,
    Worker,
    WorkerOptions,
    assemble,
    create_store,
    run_local,
    run_shard,
    summarize,
)
from repro.experiments.sweeps import complexity_sweep, sweep_fingerprint
from repro.observability.trace import RecordingTracer, canonical_jsonl

SPEC = SweepSpec(
    axis="n", values=(48.0, 64.0), n=64, k=3, eps=0.3,
    trials=2, bisection_steps=1, seed=7,
)
SPEC3 = SPEC.with_values((48.0, 56.0, 64.0))


@pytest.fixture(scope="module")
def serial():
    """The serial ground truth for SPEC: (result, canonical trace bytes)."""
    tracer = RecordingTracer()
    result = complexity_sweep(
        "n", list(SPEC.values), n=SPEC.n, k=SPEC.k, eps=SPEC.eps,
        trials=SPEC.trials, bisection_steps=SPEC.bisection_steps,
        rng=SPEC.seed, trace=tracer,
    )
    return result, canonical_jsonl(tracer.events)


@pytest.fixture(scope="module")
def serial3():
    tracer = RecordingTracer()
    result = complexity_sweep(
        "n", list(SPEC3.values), n=SPEC3.n, k=SPEC3.k, eps=SPEC3.eps,
        trials=SPEC3.trials, bisection_steps=SPEC3.bisection_steps,
        rng=SPEC3.seed, trace=tracer,
    )
    return result, canonical_jsonl(tracer.events)


def assert_matches_serial(store: ResultsStore, serial_pair) -> None:
    """Assembled result AND trace byte-identical; zero accounting drift."""
    serial_result, serial_trace = serial_pair
    tracer = RecordingTracer()
    result = assemble(store, trace=tracer)
    assert result.points == serial_result.points
    assert result.exponent == serial_result.exponent
    assert canonical_jsonl(tracer.events) == serial_trace
    report = summarize(store)  # also checks queue invariants
    assert report.total_drift == 0
    assert all(s.drift == 0 for s in report.shards)


class TestSpec:
    def test_fingerprint_matches_serial_checkpoint_fingerprint(self):
        fp = sweep_fingerprint(
            "n", list(SPEC.values), n=SPEC.n, k=SPEC.k, eps=SPEC.eps,
            trials=SPEC.trials, bisection_steps=SPEC.bisection_steps,
            config=SPEC.config, backend=SPEC.backend, seed=SPEC.seed,
        )
        assert SPEC.fingerprint() == fp

    def test_json_round_trip_preserves_identity(self):
        clone = SweepSpec.from_json(SPEC.to_json())
        assert clone.fingerprint() == SPEC.fingerprint()
        assert [clone.shard_id(i) for i in range(2)] == [
            SPEC.shard_id(i) for i in range(2)
        ]

    def test_shard_ids_are_content_derived_and_distinct(self):
        ids = [s.shard_id for s in SPEC.shards()]
        assert len(set(ids)) == len(ids)
        # A different seed is a different sweep → different shard ids.
        other = SweepSpec(
            axis="n", values=SPEC.values, n=SPEC.n, k=SPEC.k, eps=SPEC.eps,
            trials=SPEC.trials, bisection_steps=SPEC.bisection_steps, seed=8,
        )
        assert other.shard_id(0) != SPEC.shard_id(0)

    def test_malformed_spec_rejected(self):
        data = SPEC.to_json()
        data["extra"] = 1
        with pytest.raises(ValueError, match="unknown keys"):
            SweepSpec.from_json(data)

    def test_run_shard_is_deterministic(self):
        a = run_shard(SPEC, 0)
        b = run_shard(SPEC, 0)
        assert a.point == b.point
        assert a.samples_total == b.samples_total
        assert canonical_jsonl(list(a.trace)) == canonical_jsonl(list(b.trace))


class TestLocalDrain:
    def test_single_worker_matches_serial(self, tmp_path, serial):
        store = create_store(tmp_path / "s.sqlite", SPEC)
        summary = run_local(store)
        assert summary.committed == 2
        assert summary.samples_total == sum(
            r.samples_total for r in store.results()
        )
        assert_matches_serial(store, serial)

    def test_resume_after_partial_run(self, tmp_path, serial):
        """Crash-recovery: a second coordinator run against the same store
        keeps committed shards and finishes only the rest."""
        store = create_store(tmp_path / "s.sqlite", SPEC)
        first = Worker(
            store, WorkerOptions(worker_id="a", lease_seconds=60.0, max_shards=1)
        ).run()
        assert first.committed == 1
        store2 = create_store(tmp_path / "s.sqlite", SPEC)  # re-initialise
        second = run_local(store2, worker_id="b")
        assert second.committed == 1  # only the remaining shard
        assert_matches_serial(store2, serial)

    def test_mismatched_spec_refused(self, tmp_path):
        create_store(tmp_path / "s.sqlite", SPEC)
        other = SweepSpec(
            axis="n", values=SPEC.values, n=SPEC.n, k=SPEC.k, eps=SPEC.eps,
            trials=SPEC.trials, bisection_steps=SPEC.bisection_steps, seed=99,
        )
        from repro.distributed import StoreError

        with pytest.raises(StoreError, match="different sweep"):
            create_store(tmp_path / "s.sqlite", other)


def run_worker_thread(store, options):
    """Run a Worker in a thread; returns (thread, summary-slot)."""
    slot = {}

    def target():
        slot["summary"] = Worker(store, options).run()

    thread = threading.Thread(target=target)
    thread.start()
    return thread, slot


class TestChaosMatrix:
    """Scripted fault schedules, each pinning one failure edge.  Process
    kills live in test_fault_tolerance.py (they need real subprocesses);
    everything else is exercised in-process for speed and determinism."""

    def test_late_commit_with_no_contender_still_lands(self, tmp_path, serial):
        """A worker stalling past its own lease deadline — with nobody else
        around — must still commit (the work is not thrown away)."""
        store = create_store(tmp_path / "s.sqlite", SPEC)
        chaos = ChaosSchedule(
            script=(("w0", 0, "late-commit"),), stall_seconds=0.1
        )
        summary = run_local(store, worker_id="w0", lease_seconds=0.25, chaos=chaos)
        assert summary.committed == 2
        assert summary.duplicates == 0
        assert_matches_serial(store, serial)

    def test_lease_expiry_with_late_duplicate_completion(self, tmp_path, serial):
        """The headline interleaving: w0 stalls past its lease, w1 re-claims
        and commits the shard, w0's late completion is discarded as a
        duplicate — and the assembled sweep is still byte-identical."""
        store = create_store(tmp_path / "s.sqlite", SPEC)
        straggler = WorkerOptions(
            worker_id="w0",
            lease_seconds=0.3,
            poll_seconds=0.05,
            chaos=ChaosSchedule(script=(("w0", 0, "late-commit"),), stall_seconds=1.0),
        )
        thread, slot = run_worker_thread(store, straggler)
        # Only start the rescuer once w0 actually holds a lease — otherwise
        # the rescuer could finish the whole sweep before w0 even claims.
        deadline = time.monotonic() + 10.0
        while store.event_tally()["claim"] < 1:
            assert time.monotonic() < deadline, "straggler never claimed"
            time.sleep(0.01)
        rescuer = run_local(
            store, worker_id="w1", lease_seconds=0.3, chaos=None
        )
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        tally = store.event_tally()
        assert tally["expire"] >= 1, "w0's lease never expired"
        assert tally["duplicate"] >= 1, "w0's late completion was not recorded"
        assert slot["summary"].duplicates >= 1
        assert rescuer.committed >= 1
        assert_matches_serial(store, serial)

    def test_skipped_heartbeat_expires_lease_under_live_worker(
        self, tmp_path, serial
    ):
        """A stalled-but-alive worker (no heartbeats) loses its lease; its
        eventual commit is resolved idempotently either way."""
        store = create_store(tmp_path / "s.sqlite", SPEC)
        chaos = ChaosSchedule(
            script=(("w0", 0, "skip-heartbeat"),), stall_seconds=0.05
        )
        summary = run_local(store, worker_id="w0", lease_seconds=0.2, chaos=chaos)
        assert summary.committed + summary.duplicates >= 2
        assert_matches_serial(store, serial)

    def test_heartbeats_keep_slow_shard_alive(self, tmp_path):
        """With heartbeats flowing, a lease far shorter than the shard's
        compute time never expires.  Uses a deliberately heavy spec so each
        shard outlives several lease periods."""
        heavy = SweepSpec(
            axis="n", values=(128.0, 192.0), n=192, k=4, eps=0.25,
            trials=12, bisection_steps=6, seed=9,
        )
        store = create_store(tmp_path / "s.sqlite", heavy)
        options = WorkerOptions(
            worker_id="w0", lease_seconds=0.1, heartbeat_interval=0.02,
        )
        summary = Worker(store, options).run()
        assert summary.committed == 2
        tally = store.event_tally()
        assert tally["heartbeat"] >= 1
        assert tally["expire"] == 0
        tracer = RecordingTracer()
        serial_result = complexity_sweep(
            "n", list(heavy.values), n=heavy.n, k=heavy.k, eps=heavy.eps,
            trials=heavy.trials, bisection_steps=heavy.bisection_steps,
            rng=heavy.seed, trace=tracer,
        )
        assert_matches_serial(store, (serial_result, canonical_jsonl(tracer.events)))

    def test_three_workers_contending_on_one_store(self, tmp_path, serial3):
        """Store lock contention: three workers hammering one sqlite file
        (WAL + BEGIN IMMEDIATE + seeded-jitter retry) neither deadlock nor
        corrupt accounting, and assembly is byte-identical."""
        store = create_store(tmp_path / "s.sqlite", SPEC3)
        threads = []
        for i in range(3):
            options = WorkerOptions(
                worker_id=f"w{i}", lease_seconds=30.0, poll_seconds=0.02
            )
            threads.append(run_worker_thread(store, options)[0])
        for thread in threads:
            thread.join(timeout=60.0)
            assert not thread.is_alive()
        assert_matches_serial(store, serial3)
        assert store.event_tally()["commit"] == 3
