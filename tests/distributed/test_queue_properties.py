"""Property suite for the lease/queue state machine.

Hypothesis drives the store with arbitrary op sequences — claims,
heartbeats, commits (including commits by workers that never held the
lease: the late-straggler case), releases, clock jumps, expiry sweeps —
over a virtual clock, and after *every* op the store must uphold:

* **No shard lost** — once enqueued, a shard is always either pending
  (claimable eventually) or committed; draining the store at the end
  always yields every shard exactly once.
* **No shard committed twice** — result rows are unique per shard and the
  first committed payload is never overwritten.
* **Accounting identity** — ``claims − commits − expiries − releases ==
  active leases`` at all times (the events audit table balances).
* **Replay determinism** — the same op sequence on a fresh store produces
  the identical event log and result set (modulo nothing: the clock is
  virtual).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.store import ResultsStore, Shard, StoreError

N_SHARDS = 4
WORKERS = ("w0", "w1", "w2")
SHARD_IDS = tuple(f"s{i}" for i in range(N_SHARDS))
FP = {"suite": "queue-properties"}


class VirtualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def fresh_store(path) -> "tuple[ResultsStore, VirtualClock]":
    clock = VirtualClock()
    store = ResultsStore(path, clock=clock)
    store.initialise(
        FP,
        {"shards": N_SHARDS},
        [
            Shard(shard_id=sid, index=i, payload={"index": i})
            for i, sid in enumerate(SHARD_IDS)
        ],
    )
    return store, clock


# One op = (kind, worker, shard, amount).  Shard/amount are ignored where
# not applicable; commits by non-holders and heartbeats on unclaimed shards
# are legal inputs the store must absorb, so nothing is filtered out.
OPS = st.tuples(
    st.sampled_from(["claim", "heartbeat", "commit", "release", "advance", "expire"]),
    st.sampled_from(WORKERS),
    st.sampled_from(SHARD_IDS),
    st.sampled_from([1.0, 3.0, 10.0]),
)

LEASE = 5.0


def apply(store: ResultsStore, clock: VirtualClock, op) -> "object":
    kind, worker, shard, amount = op
    if kind == "claim":
        lease = store.claim(worker, LEASE)
        return None if lease is None else (lease.shard.shard_id, lease.worker_id)
    if kind == "heartbeat":
        return store.heartbeat(shard, worker, LEASE)
    if kind == "commit":
        return store.commit(
            shard,
            worker,
            result={"shard": shard, "worker": worker},
            trace=[],
            samples_total=int(amount) * 10,
            trials_total=1,
        )
    if kind == "release":
        return store.release(shard, worker)
    if kind == "advance":
        clock.now += amount
        return clock.now
    if kind == "expire":
        return tuple(store.expire_leases())
    raise AssertionError(kind)


def audit_balance(store: ResultsStore) -> None:
    """The accounting identity, asserted directly from the audit log:
    claims − lease-resolving commits − expiries − releases == lease rows.
    (Stale-but-unswept lease rows still count: their expiry event hasn't
    been written yet.  A commit resolves a claim only when it released a
    live lease — the audit detail records which kind each commit was.)"""
    tally = store.event_tally()
    resolving = sum(
        1
        for e in store.events()
        if e["kind"] == "commit" and e["detail"].startswith("lease-resolved")
    )
    lease_rows = store._conn().execute("SELECT COUNT(*) FROM leases").fetchone()[0]
    assert (
        tally["claim"] - resolving - tally["expire"] - tally["release"]
        == lease_rows
    )


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(OPS, max_size=40))
def test_invariants_hold_under_arbitrary_op_sequences(ops, tmp_path_factory):
    path = tmp_path_factory.mktemp("queue") / "store.sqlite"
    store, clock = fresh_store(path)
    try:
        for op in ops:
            apply(store, clock, op)
            store.check_invariants()
            audit_balance(store)

        # No shard lost, none committed twice: a drain always completes the
        # sweep with each shard appearing exactly once.
        clock.now += 2 * LEASE  # expire any leftover leases
        while not store.finished():
            lease = store.claim("drain", LEASE)
            assert lease is not None, "pending shard became unclaimable — lost"
            store.commit(
                lease.shard.shard_id,
                "drain",
                result={"shard": lease.shard.shard_id, "worker": "drain"},
                trace=[],
                samples_total=1,
                trials_total=1,
            )
        results = store.results()
        assert [r.index for r in results] == list(range(N_SHARDS))
        assert len({r.shard_id for r in results}) == N_SHARDS
        store.check_invariants()
    finally:
        store.close()


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(OPS, max_size=30))
def test_replay_of_any_interleaving_is_deterministic(ops, tmp_path_factory):
    """The same op sequence on a fresh store yields the identical audit log
    and result set — byte-for-byte replayable coordination."""
    logs = []
    for run in range(2):
        path = tmp_path_factory.mktemp(f"replay{run}") / "store.sqlite"
        store, clock = fresh_store(path)
        try:
            returns = [apply(store, clock, op) for op in ops]
            events = [
                {k: e[k] for k in ("kind", "shard_id", "worker_id", "at")}
                for e in store.events()
            ]
            results = [
                (r.shard_id, r.index, r.worker_id, r.samples_total)
                for r in store.results()
            ]
            logs.append((returns, events, results))
        finally:
            store.close()
    assert logs[0] == logs[1]


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(OPS, max_size=30))
def test_first_committed_payload_is_immutable(ops, tmp_path_factory):
    """Whatever interleaving runs, the result row recorded at a shard's
    first successful commit never changes afterwards."""
    path = tmp_path_factory.mktemp("immutable") / "store.sqlite"
    store, clock = fresh_store(path)
    try:
        first_seen: dict[str, tuple] = {}
        for op in ops:
            apply(store, clock, op)
            for r in store.results():
                row = (r.worker_id, r.samples_total, tuple(sorted(r.result.items())))
                if r.shard_id not in first_seen:
                    first_seen[r.shard_id] = row
                else:
                    assert first_seen[r.shard_id] == row, (
                        f"shard {r.shard_id} result row mutated after commit"
                    )
    finally:
        store.close()


def test_commit_on_unknown_shard_is_loud(tmp_path):
    store, _clock = fresh_store(tmp_path / "s.sqlite")
    try:
        with pytest.raises(StoreError):
            store.commit(
                "never-enqueued", "w0", result={}, trace=[], samples_total=0,
                trials_total=0,
            )
    finally:
        store.close()
