"""Process-level fault tolerance: real kills, real signals, real fleets.

These tests spawn actual ``repro worker`` subprocesses against a shared
store file and verify the crash-consistency story end to end — a worker
SIGKILLed after computing but before committing loses nothing, a SIGTERM
drains gracefully with an exact ledger, and a supervised fleet under a
seeded kill schedule still assembles the byte-identical sweep.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.distributed import (
    ChaosSchedule,
    ResultsStore,
    SweepSpec,
    assemble,
    create_store,
    run_fleet,
    run_local,
    summarize,
)
from repro.distributed.coordinator import _worker_env
from repro.experiments.sweeps import complexity_sweep
from repro.observability.trace import RecordingTracer, canonical_jsonl

SPEC = SweepSpec(
    axis="n", values=(48.0, 64.0), n=64, k=3, eps=0.3,
    trials=2, bisection_steps=1, seed=7,
)
#: Heavy enough (~0.3-0.6s per shard) that an external signal reliably
#: lands while a shard is in flight.
HEAVY = SweepSpec(
    axis="n", values=(176.0, 192.0, 208.0, 224.0), n=224, k=4, eps=0.25,
    trials=12, bisection_steps=6, seed=9,
)


def serial_pair(spec: SweepSpec):
    tracer = RecordingTracer()
    result = complexity_sweep(
        spec.axis, list(spec.values), n=spec.n, k=spec.k, eps=spec.eps,
        trials=spec.trials, bisection_steps=spec.bisection_steps,
        rng=spec.seed, trace=tracer,
    )
    return result, canonical_jsonl(tracer.events)


def worker_argv(store_path, worker_id, *extra):
    return [
        sys.executable, "-m", "repro", "worker",
        "--store", str(store_path), "--worker-id", worker_id, *extra,
    ]


def spawn_worker(store_path, worker_id, *extra):
    return subprocess.Popen(
        worker_argv(store_path, worker_id, *extra),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=_worker_env(),
        text=True,
    )


def wait_for_claim(store_path, *, timeout=30.0) -> None:
    """Block until some worker holds a lease on the store."""
    reader = ResultsStore(store_path)
    try:
        deadline = time.monotonic() + timeout
        while reader.event_tally()["claim"] < 1:
            assert time.monotonic() < deadline, "no worker ever claimed a shard"
            time.sleep(0.02)
    finally:
        reader.close()


class TestKillMidShard:
    def test_sigkilled_worker_loses_nothing(self, tmp_path):
        """Chaos 'kill' fires at the worst moment — shard computed, commit
        not yet attempted.  The lease expires, a later worker recomputes,
        and the assembled sweep is byte-identical with exact accounting."""
        store_path = tmp_path / "sweep.sqlite"
        store = create_store(store_path, SPEC)
        # Seed 5 deterministically draws 'kill' for ("w0", ordinal 0).
        proc = spawn_worker(
            store_path, "w0", "--lease-seconds", "0.8",
            "--chaos-seed", "5", "--chaos-rate", "0.9",
            "--chaos-actions", "kill", "--chaos-max-actions", "1",
        )
        proc.communicate(timeout=60)
        assert proc.returncode == -signal.SIGKILL
        counts = store.counts()
        assert counts["committed"] == 0  # died before its first commit
        assert counts["leased"] == 1  # the orphaned lease is still on the books

        rescue = run_local(store, worker_id="rescue")
        assert rescue.committed == 2
        tally = store.event_tally()
        assert tally["expire"] == 1
        serial_result, serial_trace = serial_pair(SPEC)
        tracer = RecordingTracer()
        result = assemble(store, trace=tracer)
        assert result.points == serial_result.points
        assert canonical_jsonl(tracer.events) == serial_trace
        report = summarize(store)
        assert report.total_drift == 0
        store.close()


class TestGracefulDrain:
    def test_sigterm_finishes_in_flight_shard_and_reconciles(self, tmp_path):
        """SIGTERM mid-sweep: the in-flight shard finishes and commits, no
        further shards are claimed, the exit is clean, and the summary's
        ledger matches the store exactly."""
        store_path = tmp_path / "sweep.sqlite"
        store = create_store(store_path, HEAVY)
        proc = spawn_worker(
            store_path, "w0", "--lease-seconds", "30", "--poll-seconds", "0.05"
        )
        try:
            wait_for_claim(store_path)
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, stderr
        summary = json.loads(stdout.strip().splitlines()[-1])["worker_summary"]
        assert summary["drained"] is True
        assert 1 <= summary["committed"] < len(HEAVY.values)
        counts = store.counts()
        assert counts["committed"] == summary["committed"]  # nothing lost
        assert counts["leased"] == 0  # nothing left dangling
        # The drained worker's per-shard ledger matches what it committed.
        assert len(summary["ledger_stages"]) == summary["committed"]
        assert sum(summary["ledger_stages"].values()) == summary["samples_total"]

        # A fresh worker finishes the remainder; accounting stays exact.
        rescue = run_local(store, worker_id="rescue")
        assert rescue.committed == len(HEAVY.values) - summary["committed"]
        assert store.finished()
        report = summarize(store)
        assert report.total_drift == 0
        workers = {r.worker_id for r in store.results()}
        assert workers == {"w0", "rescue"}
        store.close()


class TestFleetUnderChaos:
    def test_supervised_fleet_with_seeded_kills_is_byte_identical(self, tmp_path):
        """Two supervised subprocess workers under a seeded chaos schedule
        (worker kills, late commits, duplicate completions); the
        coordinator restarts casualties and the final assembly is
        byte-identical to serial."""
        spec = SweepSpec(
            axis="n", values=(32.0, 48.0, 64.0, 80.0), n=80, k=3, eps=0.3,
            trials=2, bisection_steps=1, seed=7,
        )
        store = create_store(tmp_path / "sweep.sqlite", spec)
        # Seed 5 at rate 0.6: w0 draws 'kill' on its first shard; w1 draws
        # late-commit then duplicate-commit (max_actions caps further draws).
        chaos = ChaosSchedule(seed=5, rate=0.6, max_actions=2, stall_seconds=0.1)
        fleet = run_fleet(
            store, processes=2, lease_seconds=1.0, chaos=chaos, timeout=120
        )
        assert fleet.restarts >= 1, f"no worker was ever killed: {fleet}"
        assert store.finished()
        serial_result, serial_trace = serial_pair(spec)
        tracer = RecordingTracer()
        result = assemble(store, trace=tracer)
        assert result.points == serial_result.points
        assert result.exponent == serial_result.exponent
        assert canonical_jsonl(tracer.events) == serial_trace
        report = summarize(store)
        assert report.total_drift == 0
        store.close()
