"""Unit tests for the crash-consistent results store (lease state machine,
idempotent commit, fingerprint binding, audit accounting)."""

from __future__ import annotations

import threading

import pytest

from repro.distributed.store import Lease, ResultsStore, Shard, StoreError


def make_shards(count: int) -> list[Shard]:
    return [
        Shard(shard_id=f"s{i:02d}", index=i, payload={"index": i, "value": float(i)})
        for i in range(count)
    ]


FP = {"axis": "n", "seed": 7}
SPEC = {"axis": "n", "values": [1.0, 2.0]}


class FakeClock:
    """An injectable, manually advanced clock."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def store(tmp_path, clock):
    s = ResultsStore(tmp_path / "store.sqlite", clock=clock)
    s.initialise(FP, SPEC, make_shards(3))
    yield s
    s.close()


class TestInitialise:
    def test_enqueue_counts_new_shards_once(self, tmp_path, clock):
        store = ResultsStore(tmp_path / "s.sqlite", clock=clock)
        assert store.initialise(FP, SPEC, make_shards(3)) == 3
        assert store.initialise(FP, SPEC, make_shards(3)) == 0  # idempotent

    def test_fingerprint_mismatch_rejected(self, store):
        with pytest.raises(StoreError, match="different sweep"):
            store.initialise({"axis": "k"}, SPEC, make_shards(1))

    def test_fingerprint_and_spec_round_trip(self, store):
        assert store.fingerprint() == FP
        assert store.spec() == SPEC

    def test_reopen_preserves_state(self, tmp_path, clock):
        path = tmp_path / "s.sqlite"
        first = ResultsStore(path, clock=clock)
        first.initialise(FP, SPEC, make_shards(2))
        first.claim("w0", 10.0)
        first.close()
        second = ResultsStore(path, clock=clock)
        assert second.counts() == {
            "shards": 2, "committed": 0, "pending": 2, "leased": 1,
        }


class TestLeaseLifecycle:
    def test_claim_returns_lowest_index(self, store):
        lease = store.claim("w0", 10.0)
        assert lease.shard.index == 0
        assert lease.worker_id == "w0"

    def test_claims_are_exclusive(self, store):
        store.claim("w0", 10.0)
        lease = store.claim("w1", 10.0)
        assert lease.shard.index == 1  # w0 holds shard 0

    def test_exhausted_queue_returns_none(self, store):
        for i in range(3):
            assert store.claim("w0", 10.0) is not None
        assert store.claim("w0", 10.0) is None

    def test_expired_lease_is_reclaimable(self, store, clock):
        store.claim("w0", 10.0)
        clock.advance(11.0)
        lease = store.claim("w1", 10.0)
        assert lease.shard.index == 0
        assert lease.worker_id == "w1"
        assert store.event_tally()["expire"] == 1

    def test_heartbeat_extends_deadline(self, store, clock):
        store.claim("w0", 10.0)
        clock.advance(8.0)
        assert store.heartbeat("s00", "w0", 10.0)
        clock.advance(8.0)  # past the original deadline, inside the extension
        assert store.claim("w1", 10.0).shard.index == 1

    def test_heartbeat_after_expiry_reports_lost(self, store, clock):
        store.claim("w0", 10.0)
        clock.advance(11.0)
        assert not store.heartbeat("s00", "w0", 10.0)

    def test_heartbeat_wrong_worker_reports_lost(self, store):
        store.claim("w0", 10.0)
        assert not store.heartbeat("s00", "w1", 10.0)

    def test_expire_leases_sweeps_all_stale(self, store, clock):
        store.claim("w0", 5.0)
        store.claim("w1", 50.0)
        clock.advance(6.0)
        assert store.expire_leases() == ["s00"]
        assert store.counts()["leased"] == 1

    def test_release_returns_shard_to_queue(self, store):
        store.claim("w0", 10.0)
        assert store.release("s00", "w0")
        assert store.claim("w1", 10.0).shard.index == 0

    def test_release_wrong_worker_is_noop(self, store):
        store.claim("w0", 10.0)
        assert not store.release("s00", "w1")

    def test_nonpositive_lease_rejected(self, store):
        with pytest.raises(ValueError):
            store.claim("w0", 0.0)


class TestIdempotentCommit:
    def commit(self, store, shard_id, worker, samples=100):
        return store.commit(
            shard_id,
            worker,
            result={"point": {"n": 1}},
            trace=[],
            samples_total=samples,
            trials_total=4,
        )

    def test_first_commit_wins(self, store):
        store.claim("w0", 10.0)
        assert self.commit(store, "s00", "w0")
        assert store.counts()["committed"] == 1

    def test_duplicate_commit_discarded_and_recorded(self, store):
        store.claim("w0", 10.0)
        assert self.commit(store, "s00", "w0", samples=100)
        assert not self.commit(store, "s00", "w1", samples=999)
        results = store.results()
        assert len(results) == 1
        assert results[0].worker_id == "w0"
        assert results[0].samples_total == 100  # the late writer changed nothing
        assert store.event_tally()["duplicate"] == 1

    def test_late_commit_after_redispatch(self, store, clock):
        """The full straggler story: w0's lease expires, w1 re-claims and
        commits, w0's late completion must be a duplicate no-op."""
        store.claim("w0", 10.0)
        clock.advance(11.0)
        assert store.claim("w1", 10.0).shard.index == 0
        assert self.commit(store, "s00", "w1")
        assert not self.commit(store, "s00", "w0")
        assert store.results()[0].worker_id == "w1"
        store.check_invariants()

    def test_commit_drops_any_lease(self, store, clock):
        """A commit by the expired original holder while the re-claimer is
        still computing releases the re-claimer's lease too (the shard is
        done; holding a lease on it would break accounting)."""
        store.claim("w0", 10.0)
        clock.advance(11.0)
        store.claim("w1", 10.0)
        assert self.commit(store, "s00", "w0")  # w0 finishes first after all
        assert store.counts()["leased"] == 0
        store.check_invariants()

    def test_commit_unknown_shard_raises(self, store):
        with pytest.raises(StoreError, match="unknown shard"):
            self.commit(store, "nope", "w0")

    def test_commit_rejects_non_integer_samples(self, store):
        store.claim("w0", 10.0)
        with pytest.raises(StoreError, match="integer"):
            store.commit(
                "s00", "w0", result={}, trace=[], samples_total=1.5, trials_total=1
            )

    def test_finished_only_when_all_committed(self, store):
        assert not store.finished()
        for i in range(3):
            store.claim("w0", 10.0)
            self.commit(store, f"s{i:02d}", "w0")
        assert store.finished()

    def test_results_in_index_order(self, store):
        # Commit out of order; read-back must be index order.
        for i in (2, 0, 1):
            store.claim("w0", 10.0)  # claims lowest available, so pre-claim all
        for i in (2, 0, 1):
            self.commit(store, f"s{i:02d}", "w0")
        assert [r.index for r in store.results()] == [0, 1, 2]


class TestDurability:
    def test_wal_mode_active(self, store):
        mode = store._conn().execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_schema_version_mismatch_refused(self, tmp_path, clock):
        path = tmp_path / "s.sqlite"
        store = ResultsStore(path, clock=clock)
        store._conn().execute(
            "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
        )
        store.close()
        with pytest.raises(StoreError, match="schema version"):
            ResultsStore(path, clock=clock)

    def test_thread_local_connections(self, store):
        """Concurrent threads get isolated connections (no cross-thread
        cursor reuse — sqlite objects are not shareable)."""
        errors = []

        def worker(wid):
            try:
                store.claim(wid, 10.0)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.counts()["leased"] == 3
        store.check_invariants()


class TestInvariants:
    def test_accounting_identity_holds_through_lifecycle(self, store, clock):
        store.check_invariants()
        store.claim("w0", 5.0)
        store.check_invariants()
        clock.advance(6.0)
        store.expire_leases()
        store.check_invariants()
        store.claim("w1", 10.0)
        store.commit(
            "s00", "w1", result={}, trace=[], samples_total=1, trials_total=1
        )
        store.check_invariants()
        store.claim("w1", 10.0)
        store.release("s01", "w1")
        store.check_invariants()
