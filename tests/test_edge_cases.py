"""Failure injection and boundary-condition sweep across the public API.

Everything here targets inputs a careless (or adversarial) caller could
supply: degenerate domains, extreme parameters, zero-probability regions,
and empty statistics.  The contract: raise a clear ``ValueError`` for
contract violations, never crash or silently misbehave for legal extremes.
"""

import numpy as np
import pytest

from repro import TesterConfig, families, test_histogram
from repro.core.closeness import test_closeness
from repro.baselines import (
    cdgr16_test,
    ilr12_test,
    learn_offline_test,
    test_k_modal,
)
from repro.core.chi2 import chi2_test
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.projection import flattening_distance, project_flattening
from repro.distributions.sampling import SampleSource
from repro.learning import learn_histogram_agnostic

CFG = TesterConfig.practical()


class TestDegenerateDomains:
    def test_domain_of_one(self):
        d = DiscreteDistribution(np.array([1.0]))
        v = test_histogram(d, 1, 0.5, config=CFG, rng=0)
        assert v.accept  # the only distribution on [1] is a 1-histogram

    def test_domain_of_two(self):
        d = DiscreteDistribution(np.array([0.9, 0.1]))
        assert test_histogram(d, 2, 0.5, config=CFG, rng=0).accept

    def test_point_mass_is_2_histogram(self):
        d = DiscreteDistribution.point_mass(100, 50)
        v = test_histogram(d, 3, 0.4, config=CFG, rng=1)
        assert v.accept

    def test_point_mass_at_border(self):
        d = DiscreteDistribution.point_mass(100, 0)
        assert test_histogram(d, 2, 0.4, config=CFG, rng=2).accept

    def test_all_mass_on_zero_probability_elsewhere(self):
        pmf = np.zeros(500)
        pmf[100:110] = 0.1
        d = DiscreteDistribution(pmf)
        # A 3-histogram (zero, block, zero): must accept at k >= 3.
        assert test_histogram(d, 3, 0.4, config=CFG, rng=3).accept


class TestExtremeParameters:
    def test_eps_one(self):
        # eps = 1 is a legal parameter; members must still be accepted.
        d = families.staircase(300, 2, ratio=3.0).to_distribution()
        assert test_histogram(d, 2, 1.0, config=CFG, rng=0).accept

    def test_k_equals_n_minus_one(self):
        d = families.zipf(50, 1.0)
        v = test_histogram(d, 49, 0.3, config=CFG, rng=1)
        assert v.accept  # zipf on [50] is a 50-histogram, within eps of H_49

    def test_tiny_eps_large_budget(self):
        # eps = 0.02 at small n: mostly the plug-in fallback regime.
        d = families.uniform(200)
        v = test_histogram(d, 2, 0.02, config=CFG, rng=2)
        assert v.accept

    @pytest.mark.parametrize("bad_k", [0, -1])
    def test_bad_k_everywhere(self, bad_k):
        d = families.uniform(50)
        for fn in (
            lambda: test_histogram(d, bad_k, 0.3),
            lambda: ilr12_test(d, bad_k, 0.3),
            lambda: cdgr16_test(d, bad_k, 0.3),
            lambda: learn_offline_test(d, bad_k, 0.3),
            lambda: learn_histogram_agnostic(d, bad_k, 0.3),
        ):
            with pytest.raises(ValueError):
                fn()

    @pytest.mark.parametrize("bad_eps", [0.0, -0.5, 1.5])
    def test_bad_eps_everywhere(self, bad_eps):
        d = families.uniform(50)
        for fn in (
            lambda: test_histogram(d, 2, bad_eps),
            lambda: ilr12_test(d, 2, bad_eps),
            lambda: cdgr16_test(d, 2, bad_eps),
            lambda: test_k_modal(d, 2, bad_eps),
        ):
            with pytest.raises(ValueError):
                fn()


class TestClosenessEdgeCases:
    """Boundary conditions of the two-sample tester (same contract: clear
    ``ValueError`` for violations, sane verdicts for legal extremes)."""

    def test_domain_of_one(self):
        p = DiscreteDistribution(np.array([1.0]))
        q = DiscreteDistribution(np.array([1.0]))
        v = test_closeness(p, q, 1, 0.5, config=CFG, rng=0)
        assert v.accept and v.stage == "trivial"
        assert v.samples_used == 0

    def test_k_of_one(self):
        # k = 1 histograms are uniform; equal uniforms must be accepted.
        p, q = families.uniform(300), families.uniform(300)
        assert test_closeness(p, q, 1, 0.5, config=CFG, rng=0).accept

    def test_identical_point_masses(self):
        p = DiscreteDistribution.point_mass(200, 50)
        q = DiscreteDistribution.point_mass(200, 50)
        assert test_closeness(p, q, 2, 0.4, config=CFG, rng=1).accept

    def test_disjoint_point_masses_rejected(self):
        # dTV = 1: far at any eps; both are 2-histograms, so the promise
        # holds and the tester must reject.
        p = DiscreteDistribution.point_mass(200, 20)
        q = DiscreteDistribution.point_mass(200, 170)
        v = test_closeness(p, q, 2, 0.9, config=CFG, rng=2)
        assert not v.accept

    def test_mass_on_zero_probability_elsewhere(self):
        pmf = np.zeros(500)
        pmf[100:110] = 0.1
        p = DiscreteDistribution(pmf)
        q = DiscreteDistribution(pmf.copy())
        assert test_closeness(p, q, 3, 0.4, config=CFG, rng=3).accept

    def test_eps_one(self):
        p = families.staircase(300, 2, ratio=3.0).to_distribution()
        q = families.staircase(300, 2, ratio=3.0).to_distribution()
        assert test_closeness(p, q, 2, 1.0, config=CFG, rng=0).accept

    def test_empty_kept_mask_still_terminates(self):
        """Force a jointly-empty kept set: the final plan clamps B to 1 and
        the statistic over zero kept intervals accepts vacuously."""
        from repro.core.closeness import ClosenessPipeline

        p = families.staircase(2000, 4).to_distribution()
        q = families.staircase(2000, 4).to_distribution()
        pipeline = ClosenessPipeline(p, q, 4, 0.4, config=CFG, rng=0)
        assert pipeline.prepare() is None
        pipeline.run_partition()
        pipeline.run_learn()
        assert pipeline.run_sieve() is None
        empty = np.zeros(len(pipeline.partition), dtype=bool)
        object.__setattr__(pipeline.sieve_p, "kept", empty)
        object.__setattr__(pipeline.sieve_q, "kept", empty)
        assert pipeline.run_check() is None  # nothing kept → distance 0
        plan = pipeline.begin_final_test()
        assert not plan.mask.any()
        counts_p, counts_q = pipeline.draw_final_counts()
        from repro.core.chi2 import median_paired_interval_statistics

        z = median_paired_interval_statistics(
            counts_p, counts_q, pipeline.partition, plan.mask
        )
        verdict = pipeline.finish_final_test(z)
        assert verdict.accept and verdict.chi2.statistic == 0.0

    @pytest.mark.parametrize("bad_k", [0, -1])
    def test_bad_k(self, bad_k):
        p, q = families.uniform(50), families.uniform(50)
        with pytest.raises(ValueError):
            test_closeness(p, q, bad_k, 0.3)

    @pytest.mark.parametrize("bad_eps", [0.0, -0.5, 1.5])
    def test_bad_eps(self, bad_eps):
        p, q = families.uniform(50), families.uniform(50)
        with pytest.raises(ValueError):
            test_closeness(p, q, 2, bad_eps)

    def test_mismatched_domains_rejected(self):
        with pytest.raises(ValueError, match="share a domain"):
            test_closeness(families.uniform(50), families.uniform(60), 2, 0.3)

    def test_closeness_pair_constructions_validate(self):
        with pytest.raises(ValueError):
            families.closeness_pair(600, 1, 0.3)  # k >= 2 needed to shift
        with pytest.raises(ValueError):
            families.closeness_pair(600, 4, 0.0)
        with pytest.raises(ValueError):
            families.closeness_lower_bound_pair(601, 0.2)  # odd n
        with pytest.raises(ValueError):
            families.closeness_lower_bound_pair(600, 0.5)  # eps < 1/2 needed


class TestChi2Degeneracies:
    def test_reference_with_zero_region(self):
        # Reference zero where the unknown has mass: truncation keeps the
        # statistic finite and the discrepancy visible where it counts.
        n = 200
        ref = np.zeros(n)
        ref[:100] = 1 / 100
        unknown = DiscreteDistribution.uniform(n)
        src = SampleSource(unknown, rng=0)
        result = chi2_test(src, ref, 0.3, m=64 * np.sqrt(n) / 0.09)
        assert np.isfinite(result.statistic)
        assert not result.accept  # half the mass is misplaced

    def test_everything_truncated_accepts(self):
        # A reference below the truncation cut everywhere on the masked
        # domain: the statistic is vacuously zero.
        n = 100
        ref = families.uniform(n)
        src = SampleSource(ref, rng=1)
        result = chi2_test(
            src, ref, 0.5, m=100.0, domain_mask=np.zeros(n, dtype=bool)
        )
        assert result.statistic == 0.0
        assert result.accept


class TestProjectionDegeneracies:
    def test_point_mass_projection(self):
        pmf = np.zeros(20)
        pmf[7] = 1.0
        assert flattening_distance(pmf, 3) == pytest.approx(0.0, abs=1e-12)
        proj = project_flattening(pmf, 3)
        assert proj.histogram.to_pmf()[7] == pytest.approx(1.0)

    def test_k_exceeding_n(self):
        pmf = np.random.default_rng(0).dirichlet(np.ones(6))
        assert flattening_distance(pmf, 100) == pytest.approx(0.0, abs=1e-12)

    def test_two_point_domain(self):
        pmf = np.array([0.3, 0.7])
        assert flattening_distance(pmf, 1) == pytest.approx(0.2)
        assert flattening_distance(pmf, 2) == pytest.approx(0.0)


class TestSamplingDegeneracies:
    def test_zero_budget_draws(self):
        src = SampleSource(families.uniform(10), rng=0)
        assert len(src.draw(0)) == 0
        assert src.draw_counts(0).sum() == 0
        assert src.samples_drawn == 0.0

    def test_poissonized_zero_mean(self):
        src = SampleSource(families.uniform(10), rng=0)
        counts = src.draw_counts_poissonized(0.0)
        assert counts.sum() == 0

    def test_learner_with_one_interval(self):
        from repro.core.learner import learn_histogram
        from repro.util.intervals import Partition

        src = SampleSource(families.uniform(50), rng=0)
        h = learn_histogram(src, Partition.trivial(50), 100)
        assert h.num_pieces == 1
        assert np.allclose(h.to_pmf(), 1 / 50)
