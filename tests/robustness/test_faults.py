"""Tests for the fault-injecting sample source."""

import numpy as np
import pytest

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import (
    SampleBudgetExceeded,
    SampleSource,
    counts_from_samples,
)
from repro.robustness.faults import (
    CorruptSampleError,
    FaultConfig,
    FaultInjectingSource,
    InjectedStreamFailure,
)


def _pair(n=32, seed=7, config=FaultConfig(), max_samples=None):
    """A bare source and a fault-wrapped source over identical streams."""
    dist = DiscreteDistribution.uniform(n)
    bare = SampleSource(dist, rng=seed, max_samples=max_samples)
    wrapped = FaultInjectingSource(
        SampleSource(dist, rng=seed, max_samples=max_samples), config, fault_rng=99
    )
    return bare, wrapped


class TestConfigValidation:
    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            FaultConfig(contamination_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(out_of_domain_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(duplication_rate=2.0)

    def test_schedule_one_based(self):
        with pytest.raises(ValueError):
            FaultConfig(fail_at_draws=frozenset({0}))

    def test_noop_detection(self):
        assert FaultConfig().is_noop
        assert not FaultConfig(contamination_rate=0.1).is_noop
        assert not FaultConfig(fail_at_draws=frozenset({3})).is_noop

    def test_seeded_schedule_deterministic(self):
        a = FaultConfig().with_failure_schedule(5, mean_interval=4, horizon=100)
        b = FaultConfig().with_failure_schedule(5, mean_interval=4, horizon=100)
        c = FaultConfig().with_failure_schedule(6, mean_interval=4, horizon=100)
        assert a.fail_at_draws == b.fail_at_draws
        assert a.fail_at_draws  # mean gap 4 over 100 calls: some failures
        assert a.fail_at_draws != c.fail_at_draws
        assert all(1 <= call <= 100 for call in a.fail_at_draws)


class TestRateZeroPassthrough:
    """Contamination at rate 0 must be byte-identical to the bare source."""

    def test_draw(self):
        bare, wrapped = _pair()
        assert np.array_equal(bare.draw(500), wrapped.draw(500))

    def test_draw_counts(self):
        bare, wrapped = _pair()
        assert np.array_equal(bare.draw_counts(300), wrapped.draw_counts(300))

    def test_draw_counts_poissonized(self):
        bare, wrapped = _pair()
        assert np.array_equal(
            bare.draw_counts_poissonized(250.0),
            wrapped.draw_counts_poissonized(250.0),
        )

    def test_interleaved(self):
        bare, wrapped = _pair()
        for _ in range(3):
            assert np.array_equal(bare.draw(17), wrapped.draw(17))
            assert np.array_equal(bare.draw_counts(11), wrapped.draw_counts(11))
        assert bare.samples_drawn == wrapped.samples_drawn


class TestScheduledFailures:
    def test_fires_exactly_on_scheduled_draws(self):
        config = FaultConfig(fail_at_draws=frozenset({2, 4}))
        _, wrapped = _pair(config=config)
        wrapped.draw(5)  # call 1: fine
        with pytest.raises(InjectedStreamFailure) as info:
            wrapped.draw(5)  # call 2: scheduled
        assert info.value.call == 2
        wrapped.draw_counts(5)  # call 3: fine
        with pytest.raises(InjectedStreamFailure):
            wrapped.draw_counts_poissonized(5.0)  # call 4: scheduled
        wrapped.draw(5)  # call 5: fine
        assert wrapped.calls_made == 5

    def test_failed_call_charges_no_budget(self):
        config = FaultConfig(fail_at_draws=frozenset({1}))
        _, wrapped = _pair(config=config)
        with pytest.raises(InjectedStreamFailure):
            wrapped.draw(100)
        assert wrapped.samples_drawn == 0.0


class TestContamination:
    def test_point_mass_contaminant_shifts_marginals(self):
        contaminant = DiscreteDistribution.point_mass(32, at=0)
        config = FaultConfig(contamination_rate=0.5, contaminant=contaminant)
        _, wrapped = _pair(config=config)
        m = 40_000
        samples = wrapped.draw(m)
        frac = np.mean(samples == 0)
        # Expected: 0.5 (contaminant) + 0.5/32 (clean uniform) ≈ 0.516.
        assert frac == pytest.approx(0.5 + 0.5 / 32, abs=0.02)

    def test_counts_paths_realise_mixture(self):
        contaminant = DiscreteDistribution.point_mass(32, at=3)
        config = FaultConfig(contamination_rate=0.4, contaminant=contaminant)
        _, wrapped = _pair(config=config)
        m = 50_000
        counts = wrapped.draw_counts(m)
        assert counts.sum() == m
        assert counts[3] / m == pytest.approx(0.4 + 0.6 / 32, abs=0.02)
        pois = wrapped.draw_counts_poissonized(float(m))
        assert pois[3] / m == pytest.approx(0.4 + 0.6 / 32, abs=0.02)

    def test_budget_charged_in_full(self):
        config = FaultConfig(contamination_rate=0.5)
        _, wrapped = _pair(config=config)
        wrapped.draw_counts(1000)
        wrapped.draw_counts_poissonized(500.0)
        assert wrapped.samples_drawn == pytest.approx(1500.0)

    def test_budget_cap_enforced_through_wrapper(self):
        config = FaultConfig(contamination_rate=0.5)
        _, wrapped = _pair(config=config, max_samples=100)
        with pytest.raises(SampleBudgetExceeded):
            wrapped.draw_counts(101)
        assert wrapped.samples_drawn == 0.0

    def test_contaminant_domain_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FaultInjectingSource(
                SampleSource(DiscreteDistribution.uniform(8), rng=0),
                FaultConfig(
                    contamination_rate=0.1,
                    contaminant=DiscreteDistribution.uniform(9),
                ),
            )


class TestOutOfDomain:
    def test_sequential_corruption_visible_downstream(self):
        config = FaultConfig(out_of_domain_rate=1.0)
        _, wrapped = _pair(config=config)
        samples = wrapped.draw(50)
        assert (samples >= wrapped.n).all()
        with pytest.raises(ValueError):
            counts_from_samples(samples, wrapped.n)

    def test_counts_path_raises(self):
        config = FaultConfig(out_of_domain_rate=0.5)
        _, wrapped = _pair(config=config)
        with pytest.raises(CorruptSampleError):
            wrapped.draw_counts(1000)
        with pytest.raises(CorruptSampleError):
            wrapped.draw_counts_poissonized(1000.0)


class TestDuplication:
    def test_rate_one_shifts_stream_by_one(self):
        bare, wrapped = _pair(config=FaultConfig(duplication_rate=1.0))
        clean = bare.draw(100)
        stale = wrapped.draw(100)
        # Every delivered sample is its predecessor: a one-step stale shift.
        assert np.array_equal(stale[1:], clean[:-1])
        assert stale[0] == clean[0]

    def test_staleness_carries_across_calls(self):
        bare, wrapped = _pair(config=FaultConfig(duplication_rate=1.0))
        bare.draw(10)
        delivered = wrapped.draw(10)
        stale_b = wrapped.draw(1)
        # The stale read repeats the last *delivered* sample of the prior call.
        assert stale_b[0] == delivered[-1]


class TestDerivedSources:
    def test_spawn_keeps_fault_model(self):
        config = FaultConfig(fail_at_draws=frozenset({1}))
        _, wrapped = _pair(config=config)
        child = wrapped.spawn()
        assert isinstance(child, FaultInjectingSource)
        with pytest.raises(InjectedStreamFailure):
            child.draw(1)  # schedule restarts with the call counter

    def test_permuted_relabels_contaminant(self):
        contaminant = DiscreteDistribution.point_mass(8, at=0)
        config = FaultConfig(contamination_rate=1.0, contaminant=contaminant)
        dist = DiscreteDistribution.uniform(8)
        wrapped = FaultInjectingSource(SampleSource(dist, rng=0), config, fault_rng=1)
        sigma = np.array([5, 0, 1, 2, 3, 4, 6, 7])
        samples = wrapped.permuted(sigma).draw(200)
        assert (samples == 5).all()  # point mass at 0 relabeled to sigma[0]=5
