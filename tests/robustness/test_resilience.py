"""Tests for retry, deadlines, and trial-failure records."""

import pytest

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import SampleSource
from repro.robustness.faults import InjectedStreamFailure
from repro.robustness.resilience import (
    Deadline,
    DeadlineSource,
    RetryPolicy,
    TrialFailure,
    TrialPolicy,
    TrialTimeout,
    run_with_retry,
)


class TestRetryPolicy:
    def test_deterministic_backoff(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.5, multiplier=2.0, max_delay=3.0)
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == [0.5, 1.0, 2.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_retries_then_succeeds(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise InjectedStreamFailure(attempt)
            return "ok"

        result, attempts = run_with_retry(flaky, RetryPolicy(max_attempts=3))
        assert result == "ok"
        assert attempts == 3
        assert calls == [1, 2, 3]

    def test_exhausted_retries_reraise(self):
        def always_fails(attempt):
            raise InjectedStreamFailure(attempt)

        with pytest.raises(InjectedStreamFailure):
            run_with_retry(always_fails, RetryPolicy(max_attempts=2))

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def crashes(attempt):
            calls.append(attempt)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            run_with_retry(crashes, RetryPolicy(max_attempts=5))
        assert calls == [1]

    def test_backoff_sleeps_deterministically(self):
        slept = []

        def always_fails(attempt):
            raise InjectedStreamFailure(attempt)

        policy = RetryPolicy(max_attempts=3, base_delay=1.0, multiplier=2.0)
        with pytest.raises(InjectedStreamFailure):
            run_with_retry(always_fails, policy, sleep=slept.append)
        assert slept == [1.0, 2.0]  # no jitter, no sleep after the last attempt


class TestDeadline:
    def test_fake_clock(self):
        now = [0.0]
        deadline = Deadline(10.0, clock=lambda: now[0])
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(10.0)
        now[0] = 10.5
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(TrialTimeout):
            deadline.check()

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestDeadlineSource:
    def test_draw_raises_after_expiry(self):
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        source = DeadlineSource(
            SampleSource(DiscreteDistribution.uniform(8), rng=0), deadline
        )
        source.draw(10)
        source.draw_counts(10)
        assert source.samples_drawn == 20.0
        now[0] = 6.0
        with pytest.raises(TrialTimeout):
            source.draw(1)
        with pytest.raises(TrialTimeout):
            source.draw_counts_poissonized(1.0)

    def test_spawn_shares_deadline(self):
        now = [10.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        source = DeadlineSource(
            SampleSource(DiscreteDistribution.uniform(8), rng=0), deadline
        )
        now[0] = 20.0
        with pytest.raises(TrialTimeout):
            source.spawn().draw(1)


class TestTrialPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrialPolicy(max_failure_rate=1.0)
        with pytest.raises(ValueError):
            TrialPolicy(trial_timeout=0.0)

    def test_failure_record_renders(self):
        failure = TrialFailure(
            trial=3,
            error_type="InjectedStreamFailure",
            message="boom",
            attempts=2,
            elapsed=0.5,
        )
        text = str(failure)
        assert "trial 3" in text and "InjectedStreamFailure" in text
