"""Tests for retry, deadlines, and trial-failure records."""

import pytest

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import SampleSource
from repro.robustness.faults import InjectedStreamFailure
from repro.robustness.resilience import (
    Deadline,
    DeadlineSource,
    RetryPolicy,
    TrialFailure,
    TrialPolicy,
    TrialTimeout,
    run_with_retry,
)


class TestRetryPolicy:
    def test_deterministic_backoff(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.5, multiplier=2.0, max_delay=3.0)
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == [0.5, 1.0, 2.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_retries_then_succeeds(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise InjectedStreamFailure(attempt)
            return "ok"

        result, attempts = run_with_retry(flaky, RetryPolicy(max_attempts=3))
        assert result == "ok"
        assert attempts == 3
        assert calls == [1, 2, 3]

    def test_exhausted_retries_reraise(self):
        def always_fails(attempt):
            raise InjectedStreamFailure(attempt)

        with pytest.raises(InjectedStreamFailure):
            run_with_retry(always_fails, RetryPolicy(max_attempts=2))

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def crashes(attempt):
            calls.append(attempt)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            run_with_retry(crashes, RetryPolicy(max_attempts=5))
        assert calls == [1]

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_jitter_stays_within_the_documented_band(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.5, multiplier=2.0, max_delay=10.0,
            jitter=0.4, jitter_seed=3,
        )
        for attempt in range(1, 8):
            base = min(10.0, 0.5 * 2.0 ** (attempt - 1))
            delay = policy.delay(attempt)
            assert base * (1.0 - 0.4) <= delay <= base

    def test_jitter_schedule_is_byte_identical_under_the_same_seed(self):
        fields = dict(
            max_attempts=6, base_delay=1.0, multiplier=2.0, max_delay=60.0,
            jitter=0.5, jitter_seed=42,
        )
        first = [RetryPolicy(**fields).delay(a) for a in range(1, 6)]
        second = [RetryPolicy(**fields).delay(a) for a in range(1, 6)]
        # Exact float equality: the schedule is a pure function of the
        # policy fields, independent of any shared RNG state.
        assert first == second
        jittered = [RetryPolicy(**{**fields, "jitter_seed": 43}).delay(a)
                    for a in range(1, 6)]
        assert first != jittered  # different seeds de-synchronise sessions

    def test_zero_jitter_leaves_the_schedule_unchanged(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, jitter=0.0,
                             jitter_seed=99)
        assert [policy.delay(a) for a in (1, 2, 3)] == [1.0, 2.0, 4.0]

    def test_backoff_sleeps_deterministically(self):
        slept = []

        def always_fails(attempt):
            raise InjectedStreamFailure(attempt)

        policy = RetryPolicy(max_attempts=3, base_delay=1.0, multiplier=2.0)
        with pytest.raises(InjectedStreamFailure):
            run_with_retry(always_fails, policy, sleep=slept.append)
        assert slept == [1.0, 2.0]  # no jitter, no sleep after the last attempt


class TestDeadline:
    def test_fake_clock(self):
        now = [0.0]
        deadline = Deadline(10.0, clock=lambda: now[0])
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(10.0)
        now[0] = 10.5
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(TrialTimeout):
            deadline.check()

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestDeadlineSource:
    def test_draw_raises_after_expiry(self):
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        source = DeadlineSource(
            SampleSource(DiscreteDistribution.uniform(8), rng=0), deadline
        )
        source.draw(10)
        source.draw_counts(10)
        assert source.samples_drawn == 20.0
        now[0] = 6.0
        with pytest.raises(TrialTimeout):
            source.draw(1)
        with pytest.raises(TrialTimeout):
            source.draw_counts_poissonized(1.0)

    def test_spawn_shares_deadline(self):
        now = [10.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        source = DeadlineSource(
            SampleSource(DiscreteDistribution.uniform(8), rng=0), deadline
        )
        assert source.deadline is deadline
        assert source.spawn().deadline is deadline  # shared, never copied
        now[0] = 20.0
        with pytest.raises(TrialTimeout):
            source.spawn().draw(1)

    def test_permuted_shares_deadline(self):
        import numpy as np

        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        source = DeadlineSource(
            SampleSource(DiscreteDistribution.uniform(8), rng=0), deadline
        )
        sigma = np.arange(8)[::-1].copy()
        relabelled = source.permuted(sigma)
        assert relabelled.deadline is deadline
        relabelled.draw(4)  # alive before expiry
        now[0] = 6.0
        # The σ-relabelled source dies with its parent session's deadline —
        # a mid-sieve subdomain draw cannot outlive the trial.
        with pytest.raises(TrialTimeout):
            relabelled.draw(1)
        with pytest.raises(TrialTimeout):
            source.draw(1)


class TestTrialPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrialPolicy(max_failure_rate=1.0)
        with pytest.raises(ValueError):
            TrialPolicy(trial_timeout=0.0)

    def test_failure_record_renders(self):
        failure = TrialFailure(
            trial=3,
            error_type="InjectedStreamFailure",
            message="boom",
            attempts=2,
            elapsed=0.5,
        )
        text = str(failure)
        assert "trial 3" in text and "InjectedStreamFailure" in text
