"""Tests for atomic JSON checkpointing."""

import json

import pytest

from repro.robustness.checkpoint import (
    CheckpointError,
    CheckpointStore,
    load_if_matching,
    resolve_store,
)


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "state.json")
        assert store.load() is None
        assert not store.exists()
        store.save({"rows": [1, 2, 3], "fingerprint": {"n": 5}})
        assert store.exists()
        assert store.load() == {"rows": [1, 2, 3], "fingerprint": {"n": 5}}

    def test_save_replaces_atomically(self, tmp_path):
        store = CheckpointStore(tmp_path / "state.json")
        store.save({"rows": [1]})
        store.save({"rows": [1, 2]})
        assert store.load() == {"rows": [1, 2]}
        # No temp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]

    def test_creates_parent_dirs(self, tmp_path):
        store = CheckpointStore(tmp_path / "a" / "b" / "state.json")
        store.save({"ok": True})
        assert store.load() == {"ok": True}

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("{ not json")
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load()

    def test_non_object_raises(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps([1, 2]))
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load()

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path / "state.json")
        store.save({"x": 1})
        store.clear()
        assert store.load() is None
        store.clear()  # idempotent


class TestHelpers:
    def test_resolve_store(self, tmp_path):
        assert resolve_store(None) is None
        store = CheckpointStore(tmp_path / "s.json")
        assert resolve_store(store) is store
        assert resolve_store(tmp_path / "s.json").path == store.path

    def test_load_if_matching(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.json")
        assert load_if_matching(store, {"n": 1}) is None
        store.save({"fingerprint": {"n": 1}, "rows": [7]})
        assert load_if_matching(store, {"n": 1})["rows"] == [7]
        assert load_if_matching(store, {"n": 2}) is None
        assert load_if_matching(None, {"n": 1}) is None
