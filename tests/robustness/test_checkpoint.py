"""Tests for atomic JSON checkpointing."""

import json

import pytest

from repro.robustness.checkpoint import (
    CheckpointError,
    CheckpointStore,
    load_if_matching,
    resolve_store,
)


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "state.json")
        assert store.load() is None
        assert not store.exists()
        store.save({"rows": [1, 2, 3], "fingerprint": {"n": 5}})
        assert store.exists()
        assert store.load() == {"rows": [1, 2, 3], "fingerprint": {"n": 5}}

    def test_save_replaces_atomically(self, tmp_path):
        store = CheckpointStore(tmp_path / "state.json")
        store.save({"rows": [1]})
        store.save({"rows": [1, 2]})
        assert store.load() == {"rows": [1, 2]}
        # No temp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]

    def test_creates_parent_dirs(self, tmp_path):
        store = CheckpointStore(tmp_path / "a" / "b" / "state.json")
        store.save({"ok": True})
        assert store.load() == {"ok": True}

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("{ not json")
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load()

    def test_non_object_raises(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps([1, 2]))
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load()

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path / "state.json")
        store.save({"x": 1})
        store.clear()
        assert store.load() is None
        store.clear()  # idempotent


class TestHelpers:
    def test_resolve_store(self, tmp_path):
        assert resolve_store(None) is None
        store = CheckpointStore(tmp_path / "s.json")
        assert resolve_store(store) is store
        assert resolve_store(tmp_path / "s.json").path == store.path

    def test_load_if_matching(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.json")
        assert load_if_matching(store, {"n": 1}) is None
        store.save({"fingerprint": {"n": 1}, "rows": [7]})
        assert load_if_matching(store, {"n": 1})["rows"] == [7]
        assert load_if_matching(store, {"n": 2}) is None
        assert load_if_matching(None, {"n": 1}) is None

    def test_load_if_matching_rejects_missing_fingerprint(self, tmp_path):
        # A foreign/hand-edited file without a fingerprint is not a
        # resumable checkpoint: splicing from it (or dying with a bare
        # KeyError deep in a resume path) would both be wrong.
        store = CheckpointStore(tmp_path / "s.json")
        store.save({"rows": [7]})
        with pytest.raises(CheckpointError, match="fingerprint"):
            load_if_matching(store, {"n": 1})
        # The file is left on disk for deliberate inspection/clearing.
        assert store.exists()

    def test_save_survives_interruption_of_the_temp_file(self, tmp_path):
        # The durable-save path (fsync file, rename, fsync directory) must
        # still behave atomically: a failed save leaves no droppings and
        # the prior state intact.
        store = CheckpointStore(tmp_path / "s.json")
        store.save({"fingerprint": {"n": 1}, "rows": [1]})
        with pytest.raises(TypeError):
            store.save({"bad": object()})  # json.dump raises mid-write
        assert store.load() == {"fingerprint": {"n": 1}, "rows": [1]}
        assert [p.name for p in tmp_path.iterdir()] == ["s.json"]
