"""Unit tests for the DKN17 two-sample closeness tester.

Statistical calibration lives in ``tests/calibration``; here we pin the
pipeline mechanics: regime dispatch (trivial / degenerate / main path),
verdict accounting (joint total = per-stream split = stage sums, all exact
integers), budget-formula validation, the stepped protocol including
mid-flight abort, and the input-normalisation contract of
``as_paired_source``.
"""

import numpy as np
import pytest

from repro.core.closeness import (
    CLOSENESS_STAGE_ORDER,
    ClosenessPipeline,
    ClosenessTester,
    as_paired_source,
    closeness_budget,
    test_closeness,
)
from repro.core.config import TesterConfig
from repro.distributions import families
from repro.distributions.sampling import PairedSampleSource, SampleSource
from repro.experiments.workloads import make_pair

CFG = TesterConfig.practical()


def _pair(name, n, k, eps, seed=0):
    return make_pair(name, n, k, eps, np.random.default_rng(seed))


class TestClosenessBudget:
    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="n must be positive"):
            closeness_budget(0, 2, 0.3)
        with pytest.raises(ValueError, match="k must be at least 1"):
            closeness_budget(100, 0, 0.3)
        for bad_eps in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="eps"):
                closeness_budget(100, 2, bad_eps)

    def test_degenerate_regime_is_paired_plugin(self):
        """When 2b+2 ≥ n/2 the budget is exactly two plug-in streams."""
        n, k, eps = 400, 4, 0.3
        assert 2 * CFG.partition_b(k, eps) + 2 >= n / 2
        repeats = CFG.chi2_repeat_count(k)
        eps_final = CFG.closeness_final_eps(eps)
        expected = 2 * repeats * CFG.closeness_samples(n, eps_final)
        assert closeness_budget(n, k, eps, CFG) == float(expected)

    def test_main_regime_sublinear_in_n(self):
        """The point of the reduction: on the main path the final test costs
        O(√b), so doubling n moves the budget by far less than 2×."""
        at_4k = closeness_budget(4000, 6, 0.3, CFG)
        at_8k = closeness_budget(8000, 6, 0.3, CFG)
        assert at_8k < 1.5 * at_4k

    def test_verdict_within_budget(self):
        p, q = _pair("identical-staircase", 2000, 4, 0.4)
        v = test_closeness(p, q, 4, 0.4, config=CFG, rng=0)
        assert v.samples_used <= closeness_budget(2000, 4, 0.4, CFG)


class TestRegimeDispatch:
    def test_trivial_single_point_domain(self):
        p = families.uniform(1)
        v = test_closeness(p, families.uniform(1), 3, 0.5, config=CFG, rng=0)
        assert v.accept and v.stage == "trivial"
        assert v.samples_used == 0
        assert v.samples_p == 0 and v.samples_q == 0
        assert v.stage_samples == {}

    def test_degenerate_skips_reduction_stages(self):
        """2b+2 ≥ n/2: paired plug-in on singletons, one chi2 stage only."""
        p, q = _pair("flattening-blind", 400, 4, 0.3)
        v = test_closeness(p, q, 4, 0.3, config=CFG, rng=0)
        assert v.stage == "chi2" and not v.accept
        assert set(v.stage_samples) == {"chi2"}
        assert len(v.partition) == 400  # singletons
        assert v.sieve_p.rounds == 0 and v.sieve_p.samples_used == 0
        assert v.sieve_p.kept.all()

    def test_degenerate_budget_is_exact(self):
        """The degenerate path draws exactly its closed-form budget."""
        p, q = _pair("flattening-blind", 400, 4, 0.3)
        v = test_closeness(p, q, 4, 0.3, config=CFG, rng=0)
        assert v.samples_used == int(closeness_budget(400, 4, 0.3, CFG))

    def test_main_path_runs_every_stage(self):
        p, q = _pair("identical-staircase", 2000, 4, 0.4)
        v = test_closeness(p, q, 4, 0.4, config=CFG, rng=0)
        assert v.stage == "chi2" and v.accept
        assert list(v.stage_samples) == list(CLOSENESS_STAGE_ORDER)
        assert v.partition is not None and len(v.partition) < 2000
        assert v.learned_p is not None and v.learned_q is not None

    def test_check_stage_rejects_far_pair_sample_free(self):
        p, q = _pair("shifted-staircase", 2000, 4, 0.4)
        v = test_closeness(p, q, 4, 0.4, config=CFG, rng=0)
        assert not v.accept and v.stage == "check"
        assert v.stage_samples["check"] == 0  # the gate draws nothing
        assert v.chi2 is None

    @pytest.mark.parametrize("bad_stream", ["p", "q"])
    def test_sieve_rejects_promise_violating_stream(self, bad_stream):
        """A non-histogram stream fails its own sieve, and the reason names
        the offending stream."""
        hist = families.staircase(2000, 4).to_distribution()
        sawtooth = families.far_from_hk(2000, 4, 0.4, np.random.default_rng(0))
        p, q = (sawtooth, hist) if bad_stream == "p" else (hist, sawtooth)
        v = test_closeness(p, q, 4, 0.4, config=CFG, rng=0)
        assert not v.accept and v.stage == "sieve"
        assert v.reason.startswith(f"stream {bad_stream}:")


class TestVerdictAccounting:
    """The satellite contract: integer-exact joint accounting on every path."""

    CASES = {
        "chi2-accept": ("identical-staircase", 2000, 4, 0.4),
        "check-reject": ("shifted-staircase", 2000, 4, 0.4),
        "degenerate": ("flattening-blind", 400, 4, 0.3),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_joint_split_and_stage_sums_agree(self, case):
        name, n, k, eps = self.CASES[case]
        p, q = _pair(name, n, k, eps)
        v = test_closeness(p, q, k, eps, config=CFG, rng=0)
        assert isinstance(v.samples_used, int)
        assert v.samples_used == v.samples_p + v.samples_q
        assert sum(v.stage_samples.values()) == v.samples_used
        assert all(
            isinstance(s, int) and not isinstance(s, bool)
            for s in v.stage_samples.values()
        )

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_pair_source_agrees_with_verdict(self, case):
        name, n, k, eps = self.CASES[case]
        pair = PairedSampleSource(*_pair(name, n, k, eps), np.random.default_rng(0))
        v = test_closeness(pair, k=k, eps=eps, config=CFG)
        assert pair.samples_drawn == v.samples_used
        assert pair.p.samples_drawn == v.samples_p
        assert pair.q.samples_drawn == v.samples_q

    def test_streams_split_roughly_evenly(self):
        """Partition halves the union draw; learner/sieve/final are
        symmetric — neither stream should dominate."""
        p, q = _pair("identical-staircase", 2000, 4, 0.4)
        v = test_closeness(p, q, 4, 0.4, config=CFG, rng=0)
        assert abs(v.samples_p - v.samples_q) <= 1 + 0.01 * v.samples_used

    def test_verdict_bool_is_accept(self):
        p, q = _pair("identical-staircase", 2000, 4, 0.4)
        v = test_closeness(p, q, 4, 0.4, config=CFG, rng=0)
        assert bool(v) is v.accept is True
        p, q = _pair("shifted-staircase", 2000, 4, 0.4)
        assert not test_closeness(p, q, 4, 0.4, config=CFG, rng=0)


class TestSteppedPipeline:
    def _pipeline(self, name="identical-staircase", n=2000, k=4, eps=0.4):
        p, q = _pair(name, n, k, eps)
        return ClosenessPipeline(p, q, k, eps, config=CFG, rng=0)

    def test_validates_arguments(self):
        p, q = _pair("identical-staircase", 2000, 4, 0.4)
        with pytest.raises(ValueError, match="k must be at least 1"):
            ClosenessPipeline(p, q, 0, 0.4, config=CFG, rng=0)
        with pytest.raises(ValueError, match="eps"):
            ClosenessPipeline(p, q, 4, 0.0, config=CFG, rng=0)

    def test_stepped_matches_run(self):
        from repro.core.chi2 import median_paired_interval_statistics

        whole = self._pipeline().run()
        pipeline = self._pipeline()
        assert pipeline.prepare() is None
        pipeline.run_partition()
        pipeline.run_learn()
        assert pipeline.run_sieve() is None
        assert pipeline.run_check() is None
        plan = pipeline.begin_final_test()
        assert pipeline.final_in_flight
        counts_p, counts_q = pipeline.draw_final_counts()
        assert counts_p.shape == counts_q.shape == (plan.repeats, pipeline.n)
        z = median_paired_interval_statistics(
            counts_p, counts_q, pipeline.partition, plan.mask
        )
        stepped = pipeline.finish_final_test(z)
        assert not pipeline.final_in_flight
        assert (stepped.accept, stepped.stage) == (whole.accept, whole.stage)
        assert stepped.samples_used == whole.samples_used
        assert stepped.chi2.statistic == whole.chi2.statistic

    def test_budget_cap_trivial_and_main(self):
        assert ClosenessPipeline(
            families.uniform(1), families.uniform(1), 2, 0.3, config=CFG, rng=0
        ).budget_cap() == 0
        pipeline = self._pipeline()
        assert pipeline.budget_cap() == int(
            np.ceil(closeness_budget(2000, 4, 0.4, CFG))
        )

    def test_abort_mid_sieve_reconciles(self):
        """Abandoning after partial stages still balances the joint ledger."""
        pipeline = self._pipeline()
        assert pipeline.prepare() is None
        pipeline.run_partition()
        pipeline.run_learn()
        drawn = pipeline.pair.samples_drawn
        assert drawn > 0
        assert pipeline.abort() == drawn

    def test_abort_with_final_test_in_flight(self):
        pipeline = self._pipeline()
        pipeline.prepare()
        pipeline.run_partition()
        pipeline.run_learn()
        pipeline.run_sieve()
        pipeline.run_check()
        pipeline.begin_final_test()
        pipeline.draw_final_counts()
        assert pipeline.final_in_flight
        assert pipeline.abort() == pipeline.pair.samples_drawn
        assert not pipeline.final_in_flight

    def test_abort_before_prepare_is_zero(self):
        assert self._pipeline().abort() == 0


class TestAsPairedSource:
    def test_wraps_two_distributions(self):
        pair = as_paired_source(families.uniform(8), families.uniform(8), 0)
        assert isinstance(pair, PairedSampleSource)
        assert pair.n == 8

    def test_wraps_two_sources(self):
        gen = np.random.default_rng(0)
        p = SampleSource(families.uniform(8), gen)
        q = SampleSource(families.uniform(8), gen)
        pair = as_paired_source(p, q, None)
        assert pair.p._base is p and pair.q._base is q

    def test_passthrough_pair(self):
        pair = PairedSampleSource(
            families.uniform(8), families.uniform(8), np.random.default_rng(0)
        )
        assert as_paired_source(pair, None, None) is pair

    def test_rejects_pair_with_q(self):
        pair = PairedSampleSource(
            families.uniform(8), families.uniform(8), np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="q must be None"):
            as_paired_source(pair, families.uniform(8), None)

    def test_rejects_pair_with_rng(self):
        pair = PairedSampleSource(
            families.uniform(8), families.uniform(8), np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="cannot reseed"):
            as_paired_source(pair, None, 7)

    def test_rejects_missing_q(self):
        with pytest.raises(ValueError, match="two distributions"):
            as_paired_source(families.uniform(8), None, 0)


class TestClosenessTesterFacade:
    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="k must be at least 1"):
            ClosenessTester(0, 0.3)
        with pytest.raises(ValueError, match="eps"):
            ClosenessTester(2, 1.5)
        with pytest.raises(ValueError, match="kernel must be one of"):
            ClosenessTester(2, 0.3, kernel="fortran")

    def test_matches_function_form(self):
        tester = ClosenessTester(4, 0.4, CFG)
        p, q = _pair("identical-staircase", 2000, 4, 0.4)
        via_facade = tester.test(p, q, rng=0)
        p, q = _pair("identical-staircase", 2000, 4, 0.4)
        via_function = test_closeness(p, q, 4, 0.4, config=CFG, rng=0)
        assert via_facade.accept == via_function.accept
        assert via_facade.samples_used == via_function.samples_used

    def test_expected_samples_is_budget(self):
        tester = ClosenessTester(4, 0.4, CFG)
        assert tester.expected_samples(2000) == closeness_budget(2000, 4, 0.4, CFG)


class TestDeterminism:
    @pytest.mark.parametrize(
        "name", ["identical-staircase", "shifted-staircase", "flattening-blind"]
    )
    def test_same_seed_same_verdict(self, name):
        n = 400 if name == "flattening-blind" else 2000
        runs = []
        for _ in range(2):
            p, q = _pair(name, n, 4, 0.4 if n == 2000 else 0.3)
            v = test_closeness(
                p, q, 4, 0.4 if n == 2000 else 0.3, config=CFG, rng=17
            )
            runs.append((v.accept, v.stage, v.samples_used, dict(v.stage_samples)))
        assert runs[0] == runs[1]

    def test_kernel_is_verdict_invariant(self):
        """python vs auto must agree bit-for-bit (numba covered by the
        kernel-equivalence suite when installed)."""
        results = {}
        for kernel in ("python", "auto"):
            p, q = _pair("identical-staircase", 2000, 4, 0.4)
            v = test_closeness(p, q, 4, 0.4, config=CFG, rng=5, kernel=kernel)
            results[kernel] = (v.accept, v.samples_used, v.chi2.statistic)
        assert results["python"] == results["auto"]
