"""Tests for tolerant distance estimation."""

import numpy as np
import pytest

from repro.core.estimation import (
    DistanceEstimate,
    estimate_distance_to_hk,
    estimation_budget,
)
from repro.distributions import families
from repro.distributions.projection import histogram_distance_bounds


class TestBudget:
    def test_scalings(self):
        assert estimation_budget(2000, 0.1) == pytest.approx(2 * estimation_budget(1000, 0.1))
        assert estimation_budget(1000, 0.05) == pytest.approx(4 * estimation_budget(1000, 0.1))

    def test_validation(self):
        with pytest.raises(ValueError):
            estimation_budget(0, 0.1)
        with pytest.raises(ValueError):
            estimation_budget(10, 0.0)


class TestSmallDomain:
    N, ACC = 600, 0.08

    def test_histogram_estimates_near_zero(self):
        dist = families.staircase(self.N, 4).to_distribution()
        est = estimate_distance_to_hk(dist, 4, self.ACC, rng=0)
        assert est.low == 0.0
        assert est.point <= self.ACC
        assert 0.0 in est

    def test_far_distribution_interval_brackets_truth(self):
        dist = families.far_from_hk(self.N, 4, 0.25, rng=1)
        lo_true, hi_true = histogram_distance_bounds(dist, 4)
        est = estimate_distance_to_hk(dist, 4, self.ACC, rng=2)
        # Interval overlaps the true sandwich, and low certifies farness.
        assert est.low > 0.0
        assert est.low <= hi_true + 1e-9
        assert est.high >= lo_true - 1e-9
        assert abs(est.point - lo_true) <= 2 * self.ACC

    def test_zipf_point_estimate_accuracy(self):
        dist = families.zipf(self.N, 1.0)
        truth = histogram_distance_bounds(dist, 5)
        est = estimate_distance_to_hk(dist, 5, self.ACC, rng=3)
        assert est.point == pytest.approx(0.5 * (truth[0] + truth[1]), abs=2 * self.ACC)

    def test_more_samples_tighter(self):
        dist = families.zipf(self.N, 1.0)
        wide = estimate_distance_to_hk(dist, 5, 0.2, rng=4)
        narrow = estimate_distance_to_hk(dist, 5, 0.05, rng=5)
        assert narrow.high - narrow.low < wide.high - wide.low
        assert narrow.samples_used > wide.samples_used


class TestLargeDomainGrid:
    def test_histogram_near_zero(self):
        dist = families.staircase(4000, 4).to_distribution()
        est = estimate_distance_to_hk(dist, 4, 0.1, rng=6)
        assert est.point <= 0.1

    def test_far_detected(self):
        dist = families.far_from_hk(4000, 4, 0.3, rng=7)
        est = estimate_distance_to_hk(dist, 4, 0.1, rng=8)
        assert est.point >= 0.15


class TestMechanics:
    def test_contains(self):
        est = DistanceEstimate(low=0.1, high=0.3, point=0.2, samples_used=10)
        assert 0.2 in est and 0.05 not in est and "x" not in est

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_distance_to_hk(families.uniform(100), 0)
        with pytest.raises(ValueError):
            estimate_distance_to_hk(families.uniform(100), 2, accuracy=0.0)

    def test_explicit_samples(self):
        est = estimate_distance_to_hk(
            families.uniform(200), 2, 0.2, rng=9, num_samples=5000
        )
        assert est.samples_used == 5000.0
