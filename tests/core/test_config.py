"""Tests for the constant profiles."""

import math

import pytest

from repro.core.config import TesterConfig


class TestProfiles:
    def test_paper_profile_literal_constants(self):
        cfg = TesterConfig.paper()
        assert cfg.partition_b_factor == 20.0
        assert cfg.chi2_sample_factor == 20000.0
        assert cfg.learner_eps_fraction == pytest.approx(1 / 60)
        assert cfg.final_eps_fraction == pytest.approx(13 / 30)
        assert cfg.check_tolerance_fraction == pytest.approx(1 / 60)
        assert cfg.sieve_heavy_factor == 10.0
        assert cfg.sieve_residual_factor == 2.0

    def test_practical_profile_smaller(self):
        paper, practical = TesterConfig.paper(), TesterConfig.practical()
        assert practical.chi2_sample_factor < paper.chi2_sample_factor
        assert practical.partition_b_factor < paper.partition_b_factor

    def test_overrides(self):
        cfg = TesterConfig.practical(chi2_sample_factor=3.0)
        assert cfg.chi2_sample_factor == 3.0
        assert cfg.profile == "practical"

    def test_scaled(self):
        cfg = TesterConfig.practical().scaled(0.5)
        assert cfg.budget_scale == 0.5
        with pytest.raises(ValueError):
            TesterConfig.practical().scaled(0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            TesterConfig.practical().chi2_sample_factor = 1.0


class TestConstructionValidation:
    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError, match="chi2_sample_factor"):
            TesterConfig.practical(chi2_sample_factor=-1.0)

    def test_zero_factor_rejected(self):
        with pytest.raises(ValueError, match="partition_b_factor"):
            TesterConfig.paper(partition_b_factor=0.0)

    def test_fraction_above_one_rejected(self):
        with pytest.raises(ValueError, match="learner_eps_fraction"):
            TesterConfig.practical(learner_eps_fraction=1.5)

    def test_fraction_zero_rejected(self):
        with pytest.raises(ValueError, match="sieve_alpha_fraction"):
            TesterConfig.practical(sieve_alpha_fraction=0.0)

    def test_negative_budget_scale_rejected(self):
        with pytest.raises(ValueError, match="budget_scale"):
            TesterConfig.practical(budget_scale=-2.0)

    def test_bad_chi2_repeats_rejected(self):
        with pytest.raises(ValueError, match="chi2_repeats"):
            TesterConfig.practical(chi2_repeats=0)

    def test_boundary_fraction_allowed(self):
        cfg = TesterConfig.practical(chi2_accept_fraction=1.0)
        assert cfg.chi2_accept_fraction == 1.0

    def test_profiles_construct_cleanly(self):
        TesterConfig.paper()
        TesterConfig.practical()


class TestDerived:
    def test_partition_b_formula(self):
        cfg = TesterConfig.paper()
        assert cfg.partition_b(8, 0.5) == pytest.approx(20 * 8 * 3 / 0.5)

    def test_partition_b_small_k_clamps_log(self):
        cfg = TesterConfig.paper()
        assert cfg.partition_b(1, 0.5) == pytest.approx(20 * 1 * 1 / 0.5)

    def test_budget_scale_multiplies_samples(self):
        base = TesterConfig.practical()
        doubled = base.scaled(2.0)
        assert doubled.partition_samples(4, 0.3) == pytest.approx(
            2 * base.partition_samples(4, 0.3), rel=0.01
        )
        assert doubled.chi2_samples(1000, 0.1) == pytest.approx(
            2 * base.chi2_samples(1000, 0.1), rel=0.01
        )
        assert doubled.learner_samples(50, 0.3) == pytest.approx(
            2 * base.learner_samples(50, 0.3), rel=0.01
        )

    def test_chi2_samples_scaling(self):
        cfg = TesterConfig.practical()
        # sqrt(n) scaling.
        assert cfg.chi2_samples(40000, 0.1) == pytest.approx(
            2 * cfg.chi2_samples(10000, 0.1), rel=0.01
        )
        # 1/eps^2 scaling.
        assert cfg.chi2_samples(10000, 0.05) == pytest.approx(
            4 * cfg.chi2_samples(10000, 0.1), rel=0.01
        )

    def test_sieve_rounds_log_k(self):
        cfg = TesterConfig.practical()
        assert cfg.sieve_rounds(2) == 2
        assert cfg.sieve_rounds(16) == 5
        assert cfg.sieve_rounds(17) == 6

    def test_chi2_repeats_explicit(self):
        assert TesterConfig.practical().chi2_repeat_count(100) == 1

    def test_chi2_repeats_derived_is_odd_and_grows(self):
        cfg = TesterConfig.paper()
        r_small = cfg.chi2_repeat_count(2)
        r_big = cfg.chi2_repeat_count(1000)
        assert r_small % 2 == 1 and r_big % 2 == 1
        assert r_big >= r_small

    def test_final_eps(self):
        assert TesterConfig.paper().final_eps(0.3) == pytest.approx(0.13)

    def test_validation(self):
        cfg = TesterConfig.practical()
        with pytest.raises(ValueError):
            cfg.partition_b(0, 0.5)
        with pytest.raises(ValueError):
            cfg.partition_b(2, 1.5)
        with pytest.raises(ValueError):
            cfg.chi2_samples(0, 0.1)
        with pytest.raises(ValueError):
            cfg.chi2_samples(10, 0.0)
        with pytest.raises(ValueError):
            cfg.learner_samples(0, 0.3)

    def test_practical_threshold_margins(self):
        """The calibration invariants the practical profile's docstring
        promises (the completeness/soundness separation of the analysis)."""
        cfg = TesterConfig.practical()
        eps = 0.3
        eps_final = cfg.final_eps(eps)
        final_threshold = cfg.chi2_accept_fraction * eps_final**2
        # Learning error (with 10x Markov slack) below the final threshold.
        learn_error = 10.0 * cfg.learner_eps(eps) ** 2 / cfg.learner_sample_factor
        assert learn_error < final_threshold
        # Sieve-accept residual below the final threshold too.
        sieve_residual = cfg.sieve_accept_factor * cfg.sieve_alpha(eps) ** 2
        assert sieve_residual < 2.1 * final_threshold  # joint margin documented
        # Soundness expectation far above the threshold.
        assert 4.0 * eps_final**2 > 8.0 * final_threshold

    def test_noise_floor_margin(self):
        """Final χ² threshold must sit several σ above the √(2n) noise."""
        cfg = TesterConfig.practical()
        for n in (1000, 10_000, 100_000):
            threshold = cfg.chi2_sample_factor * math.sqrt(n) * cfg.chi2_accept_fraction
            noise_sd = math.sqrt(2.0 * n)
            assert threshold / noise_sd > 4.0
