"""Unit tests for the tester backend registry and the cdkl22 primitives."""

import numpy as np
import pytest

from repro.core.backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    backend_budget,
    validate_backend,
)
from repro.core.backends.cdkl22 import cdkl22_budget, guard_width, trimmed_statistic
from repro.core.budget import algorithm1_budget
from repro.core.config import TesterConfig
from repro.core.tester import TesterPipeline, test_histogram
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import SampleSource
from repro.experiments.workloads import make
from repro.observability.trace import RecordingTracer
from repro.util.intervals import Partition

CONFIG = TesterConfig.practical()


class TestRegistry:
    def test_registry_contents(self):
        assert BACKENDS == ("pods16", "cdkl22")
        assert DEFAULT_BACKEND == "pods16"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_validate_accepts_registered(self, backend):
        validate_backend(backend)  # no raise

    @pytest.mark.parametrize("bogus", ["", "PODS16", "cdkl", "mixed", None])
    def test_validate_rejects_unknown(self, bogus):
        with pytest.raises(ValueError, match="backend"):
            validate_backend(bogus)

    def test_budget_dispatch(self):
        n, k, eps = 2000, 4, 0.3
        assert backend_budget("pods16", n, k, eps, CONFIG) == algorithm1_budget(
            n, k, eps, CONFIG
        )
        assert backend_budget("cdkl22", n, k, eps, CONFIG) == cdkl22_budget(
            n, k, eps, CONFIG
        )


class TestBudget:
    def test_cdkl22_beats_pods16_at_scale(self):
        for n in (600, 2500, 10_000):
            cheap = cdkl22_budget(n, 4, 0.3, CONFIG)
            full = algorithm1_budget(n, 4, 0.3, CONFIG)
            assert 0 < cheap < full / 10  # the whole point of the backend

    def test_monotone_in_n(self):
        budgets = [cdkl22_budget(n, 4, 0.3, CONFIG) for n in (500, 1000, 4000, 16_000)]
        assert budgets == sorted(budgets)

    def test_trivial_regime_is_free(self):
        assert cdkl22_budget(4, 8, 0.3, CONFIG) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cdkl22_budget(-1, 4, 0.3, CONFIG)
        with pytest.raises(ValueError):
            cdkl22_budget(100, 0, 0.3, CONFIG)
        with pytest.raises(ValueError):
            cdkl22_budget(100, 4, 0.0, CONFIG)


class TestConfigDerivations:
    def test_final_eps_never_below_pods16_floor(self):
        for k in (1, 2, 4, 16, 64):
            for eps in (0.1, 0.3, 0.5):
                assert CONFIG.cdkl22_final_eps(k, eps) >= CONFIG.final_eps(eps)
                assert CONFIG.cdkl22_final_eps(k, eps) <= eps

    def test_trim_count_tracks_k(self):
        assert CONFIG.cdkl22_trim_count(1) == 0
        assert CONFIG.cdkl22_trim_count(2) == 1
        assert CONFIG.cdkl22_trim_count(5) == 4

    def test_escalated_m_grows_and_validates(self):
        assert CONFIG.cdkl22_escalated_m(100) >= 100
        with pytest.raises(ValueError):
            CONFIG.cdkl22_escalated_m(0)

    def test_learner_eps_is_coarser_than_pods16(self):
        # Testing-by-learning affords a coarser (cheaper) learner.
        assert CONFIG.cdkl22_learner_eps(0.3) > CONFIG.learner_eps(0.3)


class TestTrimmedStatistic:
    def _fixture(self, seed=0, cells=12, width=8):
        rng = np.random.default_rng(seed)
        n = cells * width
        boundaries = np.arange(0, n + 1, width)
        partition = Partition(boundaries)
        pmf = rng.dirichlet(np.ones(n))
        z = rng.normal(0.0, 5.0, size=cells)
        return z, partition, pmf

    def test_deterministic_and_reconciles(self):
        z, partition, pmf = self._fixture()
        k, eps = 4, 0.3
        first = trimmed_statistic(z, partition, pmf, CONFIG, k, eps)
        second = trimmed_statistic(z, partition, pmf, CONFIG, k, eps)
        np.testing.assert_array_equal(first.trimmed_indices, second.trimmed_indices)
        assert first.statistic == second.statistic
        assert first.raw_statistic == pytest.approx(float(z.sum()))
        assert first.statistic == pytest.approx(
            first.raw_statistic - first.trimmed_sum
        )

    def test_never_trims_more_than_trim_count(self):
        z, partition, pmf = self._fixture(seed=3)
        for k in (1, 2, 4, 10):
            result = trimmed_statistic(z, partition, pmf, CONFIG, k, 0.3)
            assert result.trimmed_indices.size <= CONFIG.cdkl22_trim_count(k)

    def test_only_small_mass_positive_intervals_eligible(self):
        z, partition, pmf = self._fixture(seed=5)
        k, eps = 4, 0.3
        cap = CONFIG.cdkl22_trim_mass_cap(k, eps)
        masses = partition.aggregate(pmf)
        result = trimmed_statistic(z, partition, pmf, CONFIG, k, eps)
        for idx in result.trimmed_indices:
            assert masses[idx] <= cap
            assert z[idx] > 0

    def test_k1_trims_nothing(self):
        z, partition, pmf = self._fixture(seed=7)
        result = trimmed_statistic(z, partition, pmf, CONFIG, 1, 0.3)
        assert result.trimmed_indices.size == 0
        assert result.statistic == result.raw_statistic

    def test_guard_width_scales_with_active_intervals(self):
        narrow = guard_width(CONFIG, np.ones(4, dtype=bool))
        wide = guard_width(CONFIG, np.ones(64, dtype=bool))
        assert 0 < narrow < wide


class TestCdkl22Pipeline:
    def _source(self, workload, n, k, eps, seed):
        dist = make(workload, n, k, eps, rng=np.random.default_rng(seed))
        return SampleSource(dist, rng=np.random.default_rng(seed + 1))

    def test_stage_layout_has_no_sieve(self):
        pipeline = TesterPipeline(
            self._source("staircase", 600, 4, 0.3, 2), 4, 0.3,
            config=CONFIG, backend="cdkl22",
        )
        verdict = pipeline.run()
        assert verdict.accept
        assert "sieve" not in verdict.stage_samples
        assert "check" in verdict.stage_samples or "check" in verdict.stage_timings
        assert verdict.samples_used == sum(verdict.stage_samples.values())

    def test_far_instance_rejects_at_check_gate_sample_free(self):
        """A far-from-H_k instance whose learned pmf projects far must be
        rejected by the testing-by-learning gate without buying final-test
        samples."""
        verdict = test_histogram(
            make("zipf", 600, 4, 0.3, rng=np.random.default_rng(0)),
            4, 0.3, config=CONFIG, rng=1, backend="cdkl22",
        )
        assert not verdict.accept
        assert verdict.stage == "check"
        assert "chi2" not in verdict.stage_samples

    def test_uniform_is_accepted(self):
        verdict = test_histogram(
            DiscreteDistribution.uniform(600), 4, 0.3,
            config=CONFIG, rng=3, backend="cdkl22",
        )
        assert verdict.accept

    def test_forced_escalation_reports_stage_one(self):
        """Guard width → ∞ forces stage 0 into the guard band: the pipeline
        must redraw at the escalated m and decide at stage 1."""
        from dataclasses import replace

        config = replace(CONFIG, cdkl22_guard_sigmas=1e9)
        tracer = RecordingTracer()
        pipeline = TesterPipeline(
            self._source("staircase", 600, 4, 0.3, 9), 4, 0.3,
            config=config, backend="cdkl22", trace=tracer,
        )
        verdict = pipeline.run()
        assert verdict.accept
        assert "after escalation" in verdict.reason
        assert any(e.name.endswith("chi2_escalate") for e in tracer.events)
        # The chi2 ledger stage spans both draws, so the books still balance.
        assert verdict.samples_used == sum(verdict.stage_samples.values())

    def test_unknown_backend_rejected_everywhere(self):
        with pytest.raises(ValueError, match="backend"):
            TesterPipeline(
                self._source("staircase", 600, 4, 0.3, 2), 4, 0.3,
                config=CONFIG, backend="cdkl23",
            )
        with pytest.raises(ValueError, match="backend"):
            test_histogram(
                DiscreteDistribution.uniform(64), 4, 0.3, rng=0, backend="cdkl23"
            )
