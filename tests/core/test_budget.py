"""Tests for the closed-form sample-complexity formulas."""

import math

import pytest

from repro.core.budget import (
    algorithm1_budget,
    budget_table_row,
    cdgr16_budget,
    ilr12_budget,
    learn_offline_budget,
    paninski_lower_bound,
    support_size_lower_bound,
    theorem_lower_bound,
    theorem_upper_bound,
)
from repro.core.config import TesterConfig


class TestTheoremFormulas:
    def test_upper_bound_scalings(self):
        # sqrt(n) in the first term.
        big = theorem_upper_bound(4_000_000, 2, 0.1)
        small = theorem_upper_bound(1_000_000, 2, 0.1)
        assert big / small == pytest.approx(2.0, rel=0.15)
        # ~linear in k for the k-dominated regime.
        assert theorem_upper_bound(100, 512, 0.1) / theorem_upper_bound(100, 256, 0.1) > 1.8

    def test_lower_bound_below_upper(self):
        for n in (10**3, 10**6, 10**9):
            for k in (2, 16, 128):
                for eps in (0.05, 0.25):
                    assert theorem_lower_bound(n, k, eps) <= theorem_upper_bound(n, k, eps)

    def test_lower_bound_components(self):
        n, k, eps = 10**6, 64, 0.1
        assert theorem_lower_bound(n, k, eps) == pytest.approx(
            paninski_lower_bound(n, eps) + support_size_lower_bound(k, eps)
        )

    def test_decoupling_story(self):
        """Section 1.2's point: the new bound decouples n and k, the old
        ones don't — at large n with moderate k, this paper wins by a
        growing factor over both ILR12 and CDGR16."""
        k, eps = 16, 0.1
        for n in (10**6, 10**8):
            ours = theorem_upper_bound(n, k, eps)
            assert ilr12_budget(n, k, eps) > 10 * ours
            assert cdgr16_budget(n, k, eps) > 3 * ours
        # and the advantage grows with n:
        ratio_small = cdgr16_budget(10**6, k, eps) / theorem_upper_bound(10**6, k, eps)
        ratio_big = cdgr16_budget(10**10, k, eps) / theorem_upper_bound(10**10, k, eps)
        assert ratio_big > ratio_small

    def test_sublinear_vs_learn_offline(self):
        # The whole point: o(n) vs Θ(n).
        n = 10**8
        assert theorem_upper_bound(n, 8, 0.1) < learn_offline_budget(n, 0.1) / 100

    def test_ilr12_worse_eps_dependence(self):
        n, k = 10**6, 8
        ratio_coarse = ilr12_budget(n, k, 0.2) / cdgr16_budget(n, k, 0.2)
        ratio_fine = ilr12_budget(n, k, 0.02) / cdgr16_budget(n, k, 0.02)
        assert ratio_fine == pytest.approx(100 * ratio_coarse, rel=0.01)  # eps^-2 gap

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem_upper_bound(0, 2, 0.1)
        with pytest.raises(ValueError):
            theorem_upper_bound(10, 0, 0.1)
        with pytest.raises(ValueError):
            theorem_upper_bound(10, 2, 0.0)


class TestImplementationBudget:
    def test_matches_measured_usage(self):
        from repro.core.tester import test_histogram
        from repro.distributions import families

        n, k, eps = 2000, 4, 0.3
        cfg = TesterConfig.practical()
        bound = algorithm1_budget(n, k, eps, config=cfg)
        v = test_histogram(families.staircase(n, k).to_distribution(), k, eps, config=cfg, rng=0)
        assert v.samples_used <= bound
        # and the bound is not absurdly loose (within ~4x of actual usage).
        assert bound <= 4 * v.samples_used

    def test_trivial_regime_zero(self):
        assert algorithm1_budget(10, 20, 0.3) == 0.0

    def test_scales_with_budget_scale(self):
        cfg = TesterConfig.practical()
        assert algorithm1_budget(10_000, 4, 0.2, cfg.scaled(2.0)) == pytest.approx(
            2 * algorithm1_budget(10_000, 4, 0.2, cfg), rel=0.01
        )

    def test_reuse_mode_cheaper(self):
        fresh = algorithm1_budget(10_000, 8, 0.2, TesterConfig.practical())
        reuse = algorithm1_budget(
            10_000, 8, 0.2, TesterConfig.practical(fresh_sieve_samples=False)
        )
        assert reuse < fresh

    def test_table_row_keys(self):
        row = budget_table_row(1000, 4, 0.1)
        assert set(row) == {
            "n", "k", "eps", "this_paper_ub", "lower_bound", "ilr12", "cdgr16", "learn_offline",
        }


class TestCappedSource:
    def test_cap_is_slack_times_algorithm1_budget(self):
        from repro.core.budget import capped_source
        from repro.distributions.discrete import DiscreteDistribution

        cfg = TesterConfig.practical()
        src = capped_source(
            DiscreteDistribution.uniform(1000), 1000, 4, 0.3,
            config=cfg, slack=1.5, rng=0,
        )
        # Integer-exact: the cap is ceiled exactly once at construction.
        assert src.max_samples == math.ceil(1.5 * algorithm1_budget(1000, 4, 0.3, cfg))
        assert isinstance(src.max_samples, int)
        src.draw(100)  # well under the cap

    def test_runaway_draw_raises(self):
        from repro.core.budget import capped_source
        from repro.distributions.discrete import DiscreteDistribution
        from repro.distributions.sampling import SampleBudgetExceeded

        src = capped_source(
            DiscreteDistribution.uniform(1000), 1000, 4, 0.3, slack=1.0, rng=0,
        )
        with pytest.raises(SampleBudgetExceeded):
            src.draw_counts(int(src.max_samples) + 1)

    def test_validation(self):
        from repro.core.budget import capped_source
        from repro.distributions.discrete import DiscreteDistribution

        with pytest.raises(ValueError):
            capped_source(DiscreteDistribution.uniform(10), 10, 2, 0.3, slack=0.0)
