"""End-to-end tests for Algorithm 1 (Theorem 3.1).

Statistical assertions use 12–20 trials with generous margins; at the
observed per-trial success rates (≥ 0.95 on these workloads) each
assertion's flake probability is below 1e-6 (Chernoff; see
``repro.util.stats.chernoff_flake_bound``).
"""

import numpy as np
import pytest

from repro.core.budget import algorithm1_budget
from repro.core.config import TesterConfig
from repro.core.tester import HistogramTester, Verdict, test_histogram
from repro.distributions import families
from repro.distributions.sampling import SampleSource


N, K, EPS = 3000, 5, 0.3
CFG = TesterConfig.practical()


def accept_rate(make_dist, k=K, eps=EPS, trials=12, config=CFG, seed0=0):
    hits = 0
    for seed in range(trials):
        dist = make_dist(np.random.default_rng(seed))
        hits += test_histogram(dist, k, eps, config=config, rng=1000 + seed).accept
    return hits / trials


class TestCompleteness:
    def test_staircase(self):
        rate = accept_rate(lambda g: families.staircase(N, K).to_distribution())
        assert rate >= 0.75

    def test_random_histograms(self):
        rate = accept_rate(
            lambda g: families.random_histogram(N, K, g, min_width=N // (8 * K)).to_distribution()
        )
        assert rate >= 0.75

    def test_uniform_any_k(self):
        for k in (1, 2, 7):
            assert test_histogram(families.uniform(N), k, EPS, config=CFG, rng=5).accept

    def test_smaller_k_distribution_accepted_at_larger_k(self):
        # H_2 ⊂ H_5: a 2-histogram must be accepted when testing H_5.
        dist = families.staircase(N, 2, ratio=4.0).to_distribution()
        rate = accept_rate(lambda g: dist)
        assert rate >= 0.75


class TestSoundness:
    def test_sawtooth_uniform(self):
        rate = accept_rate(lambda g: families.far_from_hk(N, K, EPS, g))
        assert rate <= 0.25

    def test_sawtooth_staircase_base(self):
        base = families.staircase(N, 2, ratio=1.5)
        rate = accept_rate(lambda g: families.far_from_hk(N, K, EPS, g, base=base))
        assert rate <= 0.25

    def test_paninski_family(self):
        from repro.lowerbounds.paninski import paninski_instance

        rate = accept_rate(lambda g: paninski_instance(N, EPS / 2, g, c=3.0), eps=EPS / 2)
        assert rate <= 0.25

    def test_many_pieces_vs_small_k(self):
        # A strong 12-step staircase is far from H_2.
        from repro.distributions.projection import unconstrained_l1_distance

        dist = families.staircase(N, 12, ratio=2.0).to_distribution()
        eps = 0.2
        assert unconstrained_l1_distance(dist.pmf[: 2048], 2) >= 0  # sanity on shape
        rate = accept_rate(lambda g: dist, k=2, eps=eps)
        assert rate <= 0.25


class TestMechanics:
    def test_trivial_k_geq_n(self):
        v = test_histogram(families.uniform(10), 10, 0.5, rng=0)
        assert v.accept and v.stage == "trivial" and v.samples_used == 0

    def test_plugin_fallback_regime(self):
        # k·log k/eps comparable to n triggers the plug-in path.
        v = test_histogram(families.uniform(64), 20, 0.2, config=CFG, rng=0)
        assert v.stage in ("plugin", "trivial")
        assert v.accept

    def test_plugin_fallback_soundness(self):
        dist = families.far_from_hk(200, 3, 0.4, rng=1)
        v = test_histogram(dist, 40, 0.4, config=CFG, rng=2)
        assert v.stage == "plugin"
        assert not v.accept

    def test_verdict_fields_populated(self):
        dist = families.staircase(N, K).to_distribution()
        v = test_histogram(dist, K, EPS, config=CFG, rng=3)
        assert isinstance(v, Verdict)
        assert v.partition is not None and v.learned is not None
        assert v.sieve is not None
        assert set(v.stage_samples) >= {"partition", "learn", "sieve"}
        assert bool(v) == v.accept

    def test_samples_within_budget_formula(self):
        dist = families.staircase(N, K).to_distribution()
        bound = algorithm1_budget(N, K, EPS, config=CFG)
        for seed in range(5):
            v = test_histogram(dist, K, EPS, config=CFG, rng=seed)
            assert v.samples_used <= bound * 1.01

    def test_stage_samples_sum_exactly(self):
        # Integer-exact accounting: the per-stage ledger must reconcile with
        # the verdict total to the unit, not approximately.
        dist = families.staircase(N, K).to_distribution()
        v = test_histogram(dist, K, EPS, config=CFG, rng=4)
        assert isinstance(v.samples_used, int)
        assert all(isinstance(s, int) for s in v.stage_samples.values())
        assert sum(v.stage_samples.values()) == v.samples_used

    def test_stage_timings_populated(self):
        dist = families.staircase(N, K).to_distribution()
        v = test_histogram(dist, K, EPS, config=CFG, rng=4)
        assert set(v.stage_timings) >= {"partition", "learn", "sieve", "check"}
        assert all(t >= 0.0 for t in v.stage_timings.values())

    def test_projection_engine_never_changes_verdict(self):
        dist = families.staircase(N, K).to_distribution()
        verdicts = [
            test_histogram(dist, K, EPS, config=CFG, rng=7, projection_engine=eng)
            for eng in ("auto", "fast", "dense")
        ]
        assert len({(v.accept, v.stage, v.samples_used) for v in verdicts}) == 1
        with pytest.raises(ValueError):
            test_histogram(dist, K, EPS, config=CFG, rng=7, projection_engine="nope")

    def test_accepts_sample_source(self):
        src = SampleSource(families.uniform(N), rng=0)
        v = test_histogram(src, 1, 0.4, config=CFG)
        assert v.samples_used == pytest.approx(src.samples_drawn)

    def test_validation(self):
        with pytest.raises(ValueError):
            test_histogram(families.uniform(10), 0, 0.3)
        with pytest.raises(ValueError):
            test_histogram(families.uniform(10), 2, 1.5)

    def test_budget_scale_knob(self):
        dist = families.staircase(N, K).to_distribution()
        small = test_histogram(dist, K, EPS, config=CFG.scaled(0.25), rng=5)
        full = test_histogram(dist, K, EPS, config=CFG, rng=6)
        assert small.samples_used < full.samples_used


class TestSieveDisabled:
    """The sieve_enabled=False ablation config (used by experiment E15)."""

    NO_SIEVE = TesterConfig.practical(sieve_enabled=False)

    def test_skips_sieve_stage(self):
        dist = families.uniform(N)
        v = test_histogram(dist, 2, EPS, config=self.NO_SIEVE, rng=0)
        assert v.stage_samples["sieve"] == 0.0
        assert v.sieve is not None and v.sieve.num_removed == 0

    def test_uniform_still_accepted(self):
        # No breakpoints -> nothing for the sieve to do -> still complete.
        assert test_histogram(families.uniform(N), 1, EPS, config=self.NO_SIEVE, rng=1).accept

    def test_misaligned_histogram_now_rejected(self):
        """The Section 1.3 failure mode: without the sieve the breakpoint
        intervals' chi2 blow-up rejects true histograms."""
        dist = families.staircase(N, K, ratio=3.0).to_distribution()
        accepts = sum(
            test_histogram(dist, K, EPS, config=self.NO_SIEVE, rng=s).accept
            for s in range(8)
        )
        assert accepts <= 4  # completeness collapses

    def test_soundness_retained(self):
        hits = 0
        for s in range(8):
            far = families.far_from_hk(N, K, EPS, rng=s)
            hits += not test_histogram(far, K, EPS, config=self.NO_SIEVE, rng=60 + s).accept
        assert hits >= 6

    def test_budget_excludes_sieve(self):
        assert algorithm1_budget(N, K, EPS, self.NO_SIEVE) < algorithm1_budget(N, K, EPS, CFG)


class TestFacade:
    def test_histogram_tester_object(self):
        tester = HistogramTester(K, EPS, CFG)
        v = tester.test(families.staircase(N, K).to_distribution(), rng=0)
        assert isinstance(v, Verdict)
        assert tester.expected_samples(N) == algorithm1_budget(N, K, EPS, config=CFG)

    def test_facade_validation(self):
        with pytest.raises(ValueError):
            HistogramTester(0, 0.3)
        with pytest.raises(ValueError):
            HistogramTester(2, 0.0)

    def test_default_config_is_practical(self):
        assert HistogramTester(2, 0.3).config.profile == "practical"


class TestReproducibility:
    def test_same_seed_same_verdict(self):
        dist = families.staircase(N, K).to_distribution()
        a = test_histogram(dist, K, EPS, config=CFG, rng=42)
        b = test_histogram(dist, K, EPS, config=CFG, rng=42)
        assert a.accept == b.accept
        assert a.samples_used == b.samples_used
        assert a.stage == b.stage
