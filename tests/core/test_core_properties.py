"""Property-based tests on core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import algorithm1_budget, theorem_lower_bound, theorem_upper_bound
from repro.core.chi2 import active_mask, interval_statistics
from repro.core.config import TesterConfig
from repro.distributions.discrete import DiscreteDistribution
from repro.util.intervals import Partition


def random_partition(n: int, seed: int) -> Partition:
    gen = np.random.default_rng(seed)
    cuts = np.unique(gen.integers(1, n, size=gen.integers(0, min(8, n - 1) + 1)))
    return Partition(np.concatenate(([0], cuts, [n])))


class TestStatisticProperties:
    @given(st.integers(4, 40), st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_partition_refinement_preserves_total(self, n, seed):
        """The total statistic is partition-independent (it is a sum of
        per-point terms): any two partitions give the same Z."""
        gen = np.random.default_rng(seed)
        dist = DiscreteDistribution(gen.dirichlet(np.ones(n)))
        ref = gen.dirichlet(np.ones(n)) + 1e-6
        ref /= ref.sum()
        counts = dist.sample_counts_poissonized(500.0, gen)
        mask = np.ones(n, dtype=bool)
        p1 = random_partition(n, seed + 1)
        p2 = random_partition(n, seed + 2)
        z1 = interval_statistics(counts, 500.0, ref, p1, mask).sum()
        z2 = interval_statistics(counts, 500.0, ref, p2, mask).sum()
        assert z1 == pytest.approx(z2, abs=1e-6)

    @given(st.integers(4, 40), st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_mask_monotonicity(self, n, seed):
        """Shrinking the active mask can only remove non-negative terms in
        expectation: E[Z] over a submask <= E[Z] over the full mask."""
        from repro.core.chi2 import expected_statistic

        gen = np.random.default_rng(seed)
        dist = gen.dirichlet(np.ones(n))
        ref = gen.dirichlet(np.ones(n)) + 1e-6
        ref /= ref.sum()
        sub = gen.random(n) > 0.5
        full = expected_statistic(dist, ref, 100.0, eps=0.5, domain_mask=None)
        restricted = expected_statistic(dist, ref, 100.0, eps=0.5, domain_mask=sub)
        assert restricted <= full + 1e-12

    @given(st.floats(0.01, 0.99), st.floats(0.01, 0.99), st.integers(0, 1000))
    @settings(max_examples=40)
    def test_active_mask_monotone_in_eps(self, eps_a, eps_b, seed):
        gen = np.random.default_rng(seed)
        ref = gen.dirichlet(np.ones(30))
        lo, hi = sorted((eps_a, eps_b))
        mask_lo = active_mask(ref, lo, 1 / 50)
        mask_hi = active_mask(ref, hi, 1 / 50)
        # Larger eps -> higher cut -> fewer active points.
        assert np.all(mask_hi <= mask_lo)


class TestBudgetProperties:
    @given(
        st.integers(10, 10**6),
        st.integers(1, 200),
        st.floats(0.02, 1.0),
    )
    @settings(max_examples=100)
    def test_upper_dominates_lower(self, n, k, eps):
        assert theorem_upper_bound(n, k, eps) >= theorem_lower_bound(n, k, eps) - 1e-9

    @given(st.integers(10, 10**5), st.integers(1, 64), st.floats(0.05, 0.9))
    @settings(max_examples=60)
    def test_upper_bound_monotone(self, n, k, eps):
        assert theorem_upper_bound(4 * n, k, eps) >= theorem_upper_bound(n, k, eps)
        assert theorem_upper_bound(n, k + 1, eps) >= theorem_upper_bound(n, k, eps) * 0.99
        assert theorem_upper_bound(n, k, eps / 2) >= theorem_upper_bound(n, k, eps)

    @given(st.integers(100, 10**5), st.integers(1, 32), st.floats(0.1, 0.9))
    @settings(max_examples=40)
    def test_algorithm1_budget_positive_and_scaled(self, n, k, eps):
        cfg = TesterConfig.practical()
        base = algorithm1_budget(n, k, eps, cfg)
        if k >= n:
            assert base == 0.0
            return
        assert base > 0
        assert algorithm1_budget(n, k, eps, cfg.scaled(3.0)) == pytest.approx(
            3 * base, rel=0.02
        )


class TestSymmetry:
    def test_reversal_invariance_of_class(self):
        """H_k is closed under domain reversal; the tester should accept a
        reversed histogram just as it accepts the original (spot check)."""
        from repro.core.tester import test_histogram
        from repro.distributions import families

        cfg = TesterConfig.practical()
        dist = families.staircase(2000, 4, ratio=2.5).to_distribution()
        reversed_dist = DiscreteDistribution(dist.pmf[::-1].copy())
        assert test_histogram(dist, 4, 0.3, config=cfg, rng=0).accept
        assert test_histogram(reversed_dist, 4, 0.3, config=cfg, rng=0).accept

    def test_reversal_preserves_projection_distance(self):
        from repro.distributions.projection import flattening_distance

        gen = np.random.default_rng(3)
        pmf = gen.dirichlet(np.ones(40))
        for k in (1, 3, 6):
            assert flattening_distance(pmf, k) == pytest.approx(
                flattening_distance(pmf[::-1].copy(), k), abs=1e-9
            )

    def test_permutation_invariance_of_symmetric_metrics(self):
        from repro.distributions.distances import hellinger_distance, tv_distance

        gen = np.random.default_rng(4)
        p = gen.dirichlet(np.ones(30))
        q = gen.dirichlet(np.ones(30))
        sigma = gen.permutation(30)
        assert tv_distance(p[sigma], q[sigma]) == pytest.approx(tv_distance(p, q))
        assert hellinger_distance(p[sigma], q[sigma]) == pytest.approx(
            hellinger_distance(p, q)
        )
