"""Fidelity checks under the paper's literal constants.

Because all sampling is count-vector based, even the paper profile's
astronomical budgets (tens of billions of samples) simulate in milliseconds
— numpy draws Poisson/multinomial counts directly.  These tests exercise
Algorithm 1 under ``TesterConfig.paper()`` end to end.
"""

import pytest

from repro.core.budget import algorithm1_budget
from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.distributions import families

PAPER = TesterConfig.paper()
# Large enough that the paper profile's b = 20·k·log k/eps stays clear of the
# degenerate plug-in regime (2b + 2 << n/2) and the full pipeline runs.
N, K, EPS = 10_000, 4, 0.3


class TestPaperProfile:
    def test_completeness(self):
        dist = families.staircase(N, K).to_distribution()
        hits = sum(
            test_histogram(dist, K, EPS, config=PAPER, rng=s).accept for s in range(5)
        )
        assert hits >= 4

    def test_soundness(self):
        hits = 0
        for s in range(5):
            far = families.far_from_hk(N, K, EPS, rng=s)
            hits += not test_histogram(far, K, EPS, config=PAPER, rng=50 + s).accept
        assert hits >= 4

    def test_budget_enormous_but_simulable(self):
        budget = algorithm1_budget(N, K, EPS, config=PAPER)
        assert budget > 1e9  # the paper's constants really are this big
        verdict = test_histogram(
            families.uniform(N), K, EPS, config=PAPER, rng=0
        )
        assert verdict.stage != "plugin"  # the full pipeline actually ran
        assert verdict.samples_used <= budget

    def test_amplification_derived(self):
        # The paper profile derives median-amplification repeats from
        # delta = 1/(10(k+1)); they must exceed the practical profile's 1.
        assert PAPER.chi2_repeat_count(K) > TesterConfig.practical().chi2_repeat_count(K)

    def test_uses_more_samples_than_practical(self):
        paper_v = test_histogram(families.uniform(N), K, EPS, config=PAPER, rng=1)
        prac_v = test_histogram(
            families.uniform(N), K, EPS, config=TesterConfig.practical(), rng=1
        )
        assert paper_v.samples_used > 10 * prac_v.samples_used
