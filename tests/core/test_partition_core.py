"""Tests for APPROXPART (Proposition 3.4)."""

import numpy as np
import pytest

from repro.core.partition import approx_partition, partition_diagnostics
from repro.distributions import families
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import SampleSource


def run_partition(dist, b, factor=16.0, rng=0):
    m = int(factor * b * np.log(b + np.e))
    return approx_partition(SampleSource(dist, rng), b, m)


class TestApproxPartition:
    def test_validation(self):
        src = SampleSource(DiscreteDistribution.uniform(10), rng=0)
        with pytest.raises(ValueError):
            approx_partition(src, 0.5, 10)
        with pytest.raises(ValueError):
            approx_partition(src, 4.0, 0)

    def test_covers_domain(self):
        p = run_partition(families.uniform(500), b=20)
        assert p.n == 500

    def test_uniform_interval_weights(self):
        n, b = 2000, 25
        dist = families.uniform(n)
        p = run_partition(dist, b)
        diag = partition_diagnostics(p, dist.pmf, b)
        assert diag["heavy_not_singleton"] == 0
        assert diag["overweight_non_singletons"] == 0
        assert diag["max_non_singleton_mass"] <= 2.0 / b

    def test_heavy_points_become_singletons(self):
        # Distribution with explicit heavy atoms.
        n, b = 400, 20
        pmf = np.full(n, 0.5 / n)
        pmf[[10, 100, 333]] += (0.5 - 0.5 * 3 / n) / 3  # three ~1/6 atoms
        pmf /= pmf.sum()
        dist = DiscreteDistribution(pmf)
        # Flake: Chernoff at m = 16 b log b puts per-clause failure << 1e-3.
        p = run_partition(dist, b, rng=1)
        diag = partition_diagnostics(p, pmf, b)
        assert diag["heavy_points"] == 3
        assert diag["heavy_not_singleton"] == 0

    def test_interval_count_order_b(self):
        n, b = 3000, 30
        p = run_partition(families.uniform(n), b, rng=2)
        # Greedy construction bound: K = O(b) (paper: 2b+2; ours <= ~4b+2).
        assert len(p) <= 4 * b + 2

    def test_zipf_head_singletons(self):
        n, b = 1000, 12
        dist = families.zipf(n, 1.0)
        p = run_partition(dist, b, rng=3)
        diag = partition_diagnostics(p, dist.pmf, b)
        assert diag["heavy_not_singleton"] == 0
        # The Zipf head (mass >= 1/12) must be singletons.
        assert p[0].is_singleton

    def test_diagnostics_validation(self):
        p = run_partition(families.uniform(100), 10)
        with pytest.raises(ValueError):
            partition_diagnostics(p, np.ones(50) / 50, 10)

    def test_reproducible(self):
        dist = families.zipf(300, 1.0)
        a = run_partition(dist, 10, rng=7)
        b = run_partition(dist, 10, rng=7)
        assert a == b

    def test_light_intervals_bounded_by_singletons(self):
        # Our documented deviation from the two-light clause: light
        # intervals <= singletons + 1.
        n, b = 1500, 15
        dist = families.zipf(n, 1.2)
        p = run_partition(dist, b, rng=4)
        diag = partition_diagnostics(p, dist.pmf, b)
        singletons = sum(1 for iv in p if iv.is_singleton)
        assert diag["light_intervals"] <= singletons + 1
