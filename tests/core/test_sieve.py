"""Tests for the sieving stage (Section 3.2.1)."""

import numpy as np
import pytest

from repro.core.config import TesterConfig
from repro.core.learner import learn_histogram
from repro.core.sieve import sieve_ground_truth_expectations, sieve_intervals
from repro.distributions import families
from repro.distributions.histogram import Histogram, breakpoint_intervals
from repro.distributions.sampling import SampleSource
from repro.util.intervals import Partition


def learned_setup(dist, pieces, m_learn=200_000, rng=0):
    part = Partition.equal_width(dist.n, pieces)
    src = SampleSource(dist, rng)
    learned = learn_histogram(src, part, m_learn)
    return src, learned


class TestSieveCompleteness:
    def test_removes_breakpoint_intervals(self):
        """On a true histogram with misaligned partition, the sieve removes
        exactly the breakpoint intervals (they carry all the χ² mass)."""
        n, k = 3000, 4
        dist = families.staircase(n, k, ratio=3.0).to_distribution()
        src, learned = learned_setup(dist, pieces=21)  # misaligned with k=4 steps
        bps = set(breakpoint_intervals(dist, learned.partition))
        assert bps  # the setup is genuinely misaligned
        result = sieve_intervals(src, learned, k, 0.25, TesterConfig.practical())
        assert not result.rejected
        removed = set(int(j) for j in result.removed)
        # All breakpoint intervals with meaningful mass must go.
        gt = sieve_ground_truth_expectations(dist.pmf, learned, 0.25, TesterConfig.practical())
        heavy_bps = {j for j in bps if gt[j] > result.final_statistic}
        assert heavy_bps <= removed

    def test_aligned_histogram_removes_nothing_much(self):
        n, k = 2000, 4
        hist = families.staircase(n, k)
        dist = hist.to_distribution()
        part = Partition(np.union1d(hist.partition.boundaries, Partition.equal_width(n, 20).boundaries))
        src = SampleSource(dist, rng=1)
        learned = learn_histogram(src, part, 400_000)
        result = sieve_intervals(src, learned, k, 0.3, TesterConfig.practical())
        assert not result.rejected
        assert result.num_removed <= 2  # nothing is genuinely bad

    def test_kept_mask_consistent(self):
        n, k = 1000, 3
        dist = families.staircase(n, k).to_distribution()
        src, learned = learned_setup(dist, pieces=17, rng=2)
        result = sieve_intervals(src, learned, k, 0.3, TesterConfig.practical())
        assert len(result.kept) == len(learned.partition)
        assert np.all(~result.kept[result.removed])
        assert result.num_removed == (~result.kept).sum()


class TestSieveSoundness:
    def test_rejects_when_evidence_is_everywhere(self):
        """A sawtooth-far distribution spreads χ² mass over every interval;
        the sieve cannot remove it all within budget and must reject (or
        leave enough for the final test — here the residual target forces
        rejection)."""
        n, k = 3000, 4
        dist = families.far_from_hk(n, k, 0.25, rng=3)
        src, learned = learned_setup(dist, pieces=21, rng=3)
        rejections = 0
        for seed in range(5):
            src2 = SampleSource(dist, rng=100 + seed)
            result = sieve_intervals(src2, learned, k, 0.25, TesterConfig.practical())
            rejections += result.rejected
        assert rejections >= 4

    def test_never_removes_singletons(self):
        # Heavy singleton with a huge statistic must stay (and force reject).
        n = 500
        pmf = np.full(n, 0.5 / (n - 1))
        pmf[250] = 0.5
        pmf /= pmf.sum()
        from repro.distributions.discrete import DiscreteDistribution

        dist = DiscreteDistribution(pmf)
        # Learn a wrong reference by hand: uniform histogram on a partition
        # where 250 is a singleton.
        bounds = np.unique(np.concatenate((np.arange(0, n + 1, 25), [250, 251])))
        part = Partition(bounds)
        masses = np.full(len(part), 1.0 / len(part))
        learned = Histogram.from_masses(part, masses)
        src = SampleSource(dist, rng=4)
        result = sieve_intervals(src, learned, 3, 0.3, TesterConfig.practical())
        singleton_idx = part.locate(250)
        assert singleton_idx not in set(int(j) for j in result.removed)
        assert result.rejected


class TestSieveMechanics:
    def test_budget_accounting(self):
        n, k = 1000, 2
        cfg = TesterConfig.practical()
        dist = families.uniform(n)
        src, learned = learned_setup(dist, pieces=9, rng=5)
        before = src.samples_drawn
        result = sieve_intervals(src, learned, k, 0.3, cfg)
        assert result.samples_used == pytest.approx(src.samples_drawn - before)
        per_batch = cfg.chi2_samples(n, cfg.sieve_alpha(0.3)) * cfg.chi2_repeat_count(k)
        max_batches = 1 + cfg.sieve_rounds(k)
        assert result.samples_used <= per_batch * max_batches + 1

    def test_reuse_mode_single_batch(self):
        n, k = 1000, 2
        cfg = TesterConfig.practical(fresh_sieve_samples=False)
        dist = families.uniform(n)
        src, learned = learned_setup(dist, pieces=9, rng=6)
        result = sieve_intervals(src, learned, k, 0.3, cfg)
        per_batch = cfg.chi2_samples(n, cfg.sieve_alpha(0.3)) * cfg.chi2_repeat_count(k)
        assert result.samples_used == pytest.approx(per_batch)

    def test_phase_a_reject_on_too_many_heavy(self):
        # A distribution with k+2 strong steps tested against small k: many
        # intervals carry heavy statistics at once.
        n = 2000
        dist = families.staircase(n, 12, ratio=3.0).to_distribution()
        src, learned = learned_setup(dist, pieces=12 * 2 + 1, rng=7)
        result = sieve_intervals(src, learned, 1, 0.2, TesterConfig.practical())
        assert result.rejected

    def test_validation(self):
        dist = families.uniform(100)
        src, learned = learned_setup(dist, pieces=5, m_learn=1000, rng=8)
        with pytest.raises(ValueError):
            sieve_intervals(src, learned, 0, 0.3, TesterConfig.practical())
        with pytest.raises(ValueError):
            sieve_intervals(src, learned, 2, 0.0, TesterConfig.practical())
        other_src = SampleSource(families.uniform(50), rng=0)
        with pytest.raises(ValueError):
            sieve_intervals(other_src, learned, 2, 0.3, TesterConfig.practical())

    def test_ground_truth_expectation_helper(self):
        n = 400
        dist = families.staircase(n, 4).to_distribution()
        part = Partition.equal_width(n, 9)
        learned = Histogram.flattening(dist, part)
        gt = sieve_ground_truth_expectations(dist.pmf, learned, 0.3, TesterConfig.practical())
        bps = breakpoint_intervals(dist, part)
        # chi2 mass concentrates exactly on breakpoint intervals.
        assert set(np.argsort(gt)[::-1][: len(bps)]) == set(bps)
