"""Tests for the ADK15 χ²-vs-TV statistic and tester (Theorem 3.2 / Prop 3.3)."""

import numpy as np
import pytest

from repro.core.chi2 import (
    active_mask,
    chi2_test,
    collect_interval_statistics,
    expected_statistic,
    interval_statistics,
)
from repro.distributions import families
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.distances import chi2_distance, tv_distance
from repro.distributions.sampling import SampleSource
from repro.util.intervals import Partition


class TestActiveMask:
    def test_threshold(self):
        ref = np.array([0.5, 0.4, 0.05, 0.05])
        mask = active_mask(ref, eps=0.8, truncation=1.0 / 2.0)  # cut = 0.1
        assert mask.tolist() == [True, True, False, False]

    def test_domain_mask_intersection(self):
        ref = np.array([0.5, 0.5])
        mask = active_mask(ref, 0.1, 1 / 50, domain_mask=np.array([True, False]))
        assert mask.tolist() == [True, False]

    def test_shape_check(self):
        with pytest.raises(ValueError):
            active_mask(np.ones(3) / 3, 0.1, 0.02, np.array([True]))


class TestStatistic:
    def test_unbiasedness(self):
        """E[Z_j] = m * restricted chi2 — checked by averaging many batches.

        Monte-Carlo flake: 60 batches of the statistic at m=4000; the
        standard error is ~2% of the expectation at these scales; asserting
        within 15% gives flake probability < 1e-8.
        """
        gen = np.random.default_rng(0)
        n, m = 200, 4000.0
        dist = DiscreteDistribution(gen.dirichlet(np.ones(n)))
        ref = DiscreteDistribution(gen.dirichlet(np.ones(n)))
        part = Partition.equal_width(n, 4)
        mask = active_mask(ref.pmf, 0.2, 1 / 50)
        batches = [
            interval_statistics(
                dist.sample_counts_poissonized(m, gen), m, ref.pmf, part, mask
            )
            for _ in range(60)
        ]
        observed = np.mean([b.sum() for b in batches])
        expected = expected_statistic(dist, ref, m, 0.2)
        assert observed == pytest.approx(expected, rel=0.15)

    def test_zero_when_identical(self):
        # Exact counts = expectation gives the negative-N correction only in
        # expectation; with dist == ref the statistic has mean ~0.
        gen = np.random.default_rng(1)
        n, m = 100, 10_000.0
        ref = DiscreteDistribution.uniform(n)
        part = Partition.trivial(n)
        mask = np.ones(n, dtype=bool)
        vals = [
            interval_statistics(
                ref.sample_counts_poissonized(m, gen), m, ref.pmf, part, mask
            ).sum()
            for _ in range(50)
        ]
        # mean ~ 0 with sd ~ sqrt(2n)/sqrt(50)*... ±3 sigma window.
        assert abs(np.mean(vals)) < 3 * np.sqrt(2 * n / 50)

    def test_interval_decomposition(self):
        gen = np.random.default_rng(2)
        n, m = 60, 1000.0
        dist = DiscreteDistribution(gen.dirichlet(np.ones(n)))
        ref = DiscreteDistribution(gen.dirichlet(np.ones(n)))
        counts = dist.sample_counts_poissonized(m, gen)
        mask = np.ones(n, dtype=bool)
        fine = interval_statistics(counts, m, ref.pmf, Partition.equal_width(n, 6), mask)
        total = interval_statistics(counts, m, ref.pmf, Partition.trivial(n), mask)
        assert fine.sum() == pytest.approx(total.sum())

    def test_masked_points_excluded(self):
        n, m = 40, 500.0
        ref = DiscreteDistribution.uniform(n)
        counts = np.zeros(n)
        counts[0] = 100  # huge discrepancy at point 0
        mask = np.ones(n, dtype=bool)
        mask[0] = False
        z = interval_statistics(counts, m, ref.pmf, Partition.trivial(n), mask)
        # Point 0 is invisible; remaining zero counts contribute the
        # deterministic (0 - mu)^2/mu - 0 terms.
        expected = (n - 1) * (m / n)
        assert z.sum() == pytest.approx(expected)

    def test_validation(self):
        ref = np.ones(4) / 4
        part = Partition.trivial(4)
        with pytest.raises(ValueError):
            interval_statistics(np.ones(3), 10.0, ref, part, np.ones(4, dtype=bool))
        with pytest.raises(ValueError):
            interval_statistics(np.ones(4), 0.0, ref, part, np.ones(4, dtype=bool))

    def test_median_amplification_shape(self):
        src = SampleSource(families.uniform(50), rng=3)
        z = collect_interval_statistics(
            src, families.uniform(50), 200.0, Partition.equal_width(50, 5),
            np.ones(50, dtype=bool), repeats=5,
        )
        assert z.shape == (5,)
        assert src.samples_drawn == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            collect_interval_statistics(
                src, families.uniform(50), 200.0, Partition.trivial(50),
                np.ones(50, dtype=bool), repeats=0,
            )


class TestChi2Tester:
    """Theorem 3.2's two clauses, statistically.

    Trials and margins sized so each assertion's flake probability is below
    1e-6 (Chernoff on 20 trials with per-trial success >= 0.95 asserted at
    >= 0.7).
    """

    N = 2000
    EPS = 0.25

    def _m(self):
        return 64.0 * np.sqrt(self.N) / self.EPS**2

    def test_completeness_chi2_close(self):
        # Reference = truth: chi2 distance 0 <= eps^2/500.
        dist = families.staircase(self.N, 5).to_distribution()
        accepted = 0
        for seed in range(20):
            src = SampleSource(dist, rng=seed)
            res = chi2_test(src, dist, self.EPS, m=self._m())
            accepted += res.accept
        assert accepted >= 14

    def test_soundness_tv_far(self):
        ref = families.uniform(self.N)
        far = families.far_from_hk(self.N, 1, self.EPS * 1.1, rng=0)
        assert tv_distance(far, ref) >= self.EPS
        rejected = 0
        for seed in range(20):
            src = SampleSource(far, rng=seed)
            res = chi2_test(src, ref, self.EPS, m=self._m())
            rejected += not res.accept
        assert rejected >= 14

    def test_subdomain_restriction(self):
        # Discrepancy confined to a masked-out region (mass moved within
        # it, the rest untouched): masked test accepts, unmasked rejects.
        n = 1000
        ref = families.uniform(n)
        pmf = np.full(n, 1.0 / n)
        pmf[:50] *= 1.8
        pmf[50:100] *= 0.2
        dist = DiscreteDistribution(pmf)
        mask = np.ones(n, dtype=bool)
        mask[:100] = False
        m = 64.0 * np.sqrt(n) / 0.09
        accepted_masked = 0
        rejected_unmasked = 0
        for seed in range(10):
            res = chi2_test(SampleSource(dist, rng=seed), ref, 0.3, m=m, domain_mask=mask)
            accepted_masked += res.accept
            res2 = chi2_test(SampleSource(dist, rng=100 + seed), ref, 0.04, m=m)
            rejected_unmasked += not res2.accept
        assert accepted_masked >= 8
        assert rejected_unmasked >= 8

    def test_result_fields(self):
        dist = families.uniform(100)
        src = SampleSource(dist, rng=0)
        res = chi2_test(src, dist, 0.5, m=1000.0)
        assert res.threshold == pytest.approx(1000.0 * 0.25 / 10)
        assert res.samples_used == pytest.approx(1000.0)
        assert res.m == 1000.0

    def test_validation(self):
        src = SampleSource(families.uniform(10), rng=0)
        with pytest.raises(ValueError):
            chi2_test(src, families.uniform(10), 0.0, m=100.0)
        with pytest.raises(ValueError):
            chi2_test(src, families.uniform(12), 0.5, m=100.0)

    def test_expected_statistic_closed_form(self):
        dist = np.array([0.5, 0.3, 0.2])
        ref = np.array([0.4, 0.4, 0.2])
        m = 100.0
        manual = m * ((0.1**2) / 0.4 + (0.1**2) / 0.4 + 0.0)
        assert expected_statistic(dist, ref, m, eps=1.0) == pytest.approx(manual)
