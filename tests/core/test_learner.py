"""Tests for the Lemma 3.5 χ² learner."""

import numpy as np
import pytest

from repro.core.learner import empirical_estimate, laplace_estimate, learn_histogram
from repro.distributions import families
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.distances import chi2_distance
from repro.distributions.histogram import breakpoint_intervals, flatten_outside
from repro.distributions.sampling import SampleSource
from repro.util.intervals import Partition


class TestLaplaceEstimate:
    def test_formula_exact(self):
        # m=4 samples over [0,4) with partition {[0,2), [2,4)}: counts (3,1).
        counts = np.array([2, 1, 1, 0])
        part = Partition([0, 2, 4])
        h = laplace_estimate(counts, part)
        # masses: (3+1)/(4+2) = 2/3 and (1+1)/6 = 1/3, per-point /2.
        assert h.values.tolist() == pytest.approx([1 / 3, 1 / 6])

    def test_never_zero(self):
        counts = np.zeros(10)
        h = laplace_estimate(counts, Partition.equal_width(10, 5))
        assert np.all(h.to_pmf() > 0)

    def test_mass_one(self):
        counts = np.array([5, 0, 3, 2])
        h = laplace_estimate(counts, Partition([0, 1, 4]))
        assert h.to_pmf().sum() == pytest.approx(1.0)

    def test_validation(self):
        part = Partition([0, 2, 4])
        with pytest.raises(ValueError):
            laplace_estimate(np.array([1, 2]), part)
        with pytest.raises(ValueError):
            laplace_estimate(np.array([1, -1, 0, 0]), part)

    def test_empirical_estimate(self):
        counts = np.array([2, 2, 0, 0])
        h = empirical_estimate(counts, Partition([0, 2, 4]))
        assert h.values.tolist() == pytest.approx([0.5, 0.0])
        with pytest.raises(ValueError):
            empirical_estimate(np.zeros(4), Partition([0, 2, 4]))

    def test_empirical_chi2_can_be_infinite(self):
        # The reason Laplace smoothing exists: zero-count intervals give an
        # infinite chi2 for the unsmoothed estimator but finite for Laplace.
        dist = DiscreteDistribution(np.array([0.4, 0.4, 0.1, 0.1]))
        part = Partition([0, 2, 4])
        counts = np.array([3, 2, 0, 0])  # the light interval was never hit
        plain = empirical_estimate(counts, part)
        smooth = laplace_estimate(counts, part)
        assert chi2_distance(dist.pmf, plain.to_pmf()) == float("inf")
        assert np.isfinite(chi2_distance(dist.pmf, smooth.to_pmf()))


class TestLearnerGuarantee:
    def test_learn_histogram_budget_accounting(self):
        src = SampleSource(families.uniform(100), rng=0)
        learn_histogram(src, Partition.equal_width(100, 10), 500)
        assert src.samples_drawn == 500

    def test_validation(self):
        src = SampleSource(families.uniform(100), rng=0)
        with pytest.raises(ValueError):
            learn_histogram(src, Partition.equal_width(100, 10), 0)
        with pytest.raises(ValueError):
            learn_histogram(src, Partition.equal_width(50, 5), 10)

    def test_lemma_3_5_chi2_bound(self):
        """The learner's χ² error off breakpoint intervals is ~ l/m.

        Lemma 3.5: E[dχ²(D̃ᴶ ‖ D̂)] ≤ l/m.  We run 30 trials and compare the
        mean against 2·l/m (Markov-style slack; flake probability < 1e-4 by
        the empirical variance observed at this scale).
        """
        n, pieces = 400, 16
        hist = families.staircase(n, 4, ratio=2.0)
        dist = hist.to_distribution()
        part = Partition.equal_width(n, pieces)
        bps = breakpoint_intervals(dist, part)
        target = flatten_outside(dist, part, bps)
        m = 8_000
        errors = []
        for seed in range(30):
            src = SampleSource(dist, rng=seed)
            learned = learn_histogram(src, part, m)
            errors.append(chi2_distance(target.pmf, learned.to_pmf()))
        assert np.mean(errors) <= 2.0 * pieces / m

    def test_more_samples_better_fit(self):
        n = 300
        dist = families.staircase(n, 3).to_distribution()
        part = Partition.equal_width(n, 12)
        bps = breakpoint_intervals(dist, part)
        target = flatten_outside(dist, part, bps)

        def mean_err(m):
            return np.mean(
                [
                    chi2_distance(
                        target.pmf,
                        learn_histogram(SampleSource(dist, rng=s), part, m).to_pmf(),
                    )
                    for s in range(12)
                ]
            )

        assert mean_err(20_000) < mean_err(1_000)

    def test_output_in_h_partition(self):
        src = SampleSource(families.zipf(200, 1.0), rng=1)
        part = Partition.equal_width(200, 8)
        h = learn_histogram(src, part, 1000)
        assert h.partition == part
        assert h.to_pmf().sum() == pytest.approx(1.0)
