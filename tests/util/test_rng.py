"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import child_rng, ensure_rng, seeds_for_trials, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(123, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_reproducible_from_seed(self):
        a = [c.random(3).tolist() for c in spawn_rngs(9, 2)]
        b = [c.random(3).tolist() for c in spawn_rngs(9, 2)]
        assert a == b

    def test_child_rng_differs_from_parent_continuation(self):
        parent = np.random.default_rng(5)
        child = child_rng(parent)
        assert isinstance(child, np.random.Generator)
        assert not np.array_equal(child.random(4), parent.random(4))

    def test_seeds_for_trials(self):
        seeds = seeds_for_trials(3, 10)
        assert len(seeds) == 10
        assert all(isinstance(s, int) for s in seeds)
        assert seeds == seeds_for_trials(3, 10)
