"""Tests for interval algebra and partitions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import Interval, Partition, cover, runs


class TestInterval:
    def test_length_and_contains(self):
        iv = Interval(2, 5)
        assert len(iv) == 3
        assert 2 in iv and 4 in iv
        assert 5 not in iv and 1 not in iv

    def test_non_integer_not_contained(self):
        assert "3" not in Interval(0, 5)

    def test_empty_interval(self):
        assert len(Interval(3, 3)) == 0

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            Interval(5, 2)
        with pytest.raises(ValueError):
            Interval(-1, 3)

    def test_singleton(self):
        assert Interval(4, 5).is_singleton
        assert not Interval(4, 6).is_singleton

    def test_iter_and_slice(self):
        iv = Interval(1, 4)
        assert list(iv) == [1, 2, 3]
        arr = np.arange(10)
        assert arr[iv.slice()].tolist() == [1, 2, 3]

    def test_intersects(self):
        assert Interval(0, 5).intersects(Interval(4, 8))
        assert not Interval(0, 4).intersects(Interval(4, 8))


class TestPartitionConstruction:
    def test_trivial(self):
        p = Partition.trivial(10)
        assert len(p) == 1 and p.n == 10

    def test_singletons(self):
        p = Partition.singletons(5)
        assert len(p) == 5
        assert all(iv.is_singleton for iv in p)

    def test_equal_width(self):
        p = Partition.equal_width(10, 5)
        assert len(p) == 5
        assert p.lengths().tolist() == [2, 2, 2, 2, 2]

    def test_equal_width_uneven(self):
        p = Partition.equal_width(10, 3)
        assert len(p) == 3
        assert p.lengths().sum() == 10

    def test_equal_width_bounds_validation(self):
        with pytest.raises(ValueError):
            Partition.equal_width(5, 6)
        with pytest.raises(ValueError):
            Partition.equal_width(5, 0)

    def test_from_intervals_roundtrip(self):
        p = Partition([0, 3, 7, 10])
        assert Partition.from_intervals(list(p)) == p

    def test_from_intervals_gap_raises(self):
        with pytest.raises(ValueError):
            Partition.from_intervals([Interval(0, 3), Interval(4, 6)])

    def test_bad_boundaries(self):
        with pytest.raises(ValueError):
            Partition([1, 5])  # must start at 0
        with pytest.raises(ValueError):
            Partition([0, 5, 5])  # strictly increasing
        with pytest.raises(ValueError):
            Partition([0])  # too short


class TestPartitionOps:
    def test_locate(self):
        p = Partition([0, 3, 7, 10])
        assert p.locate(0) == 0
        assert p.locate(2) == 0
        assert p.locate(3) == 1
        assert p.locate(9) == 2
        with pytest.raises(IndexError):
            p.locate(10)

    def test_membership_matches_locate(self):
        p = Partition([0, 3, 7, 10])
        labels = p.membership()
        assert all(labels[i] == p.locate(i) for i in range(10))

    def test_aggregate(self):
        p = Partition([0, 2, 5])
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert p.aggregate(values).tolist() == [3.0, 12.0]

    def test_aggregate_shape_check(self):
        with pytest.raises(ValueError):
            Partition([0, 2]).aggregate(np.zeros(3))

    def test_flatten_preserves_mass(self):
        p = Partition([0, 2, 5, 6])
        values = np.array([0.1, 0.3, 0.2, 0.2, 0.1, 0.1])
        flat = p.flatten(values)
        assert flat.sum() == pytest.approx(values.sum())
        assert p.aggregate(flat) == pytest.approx(p.aggregate(values))

    def test_flatten_constant_within_pieces(self):
        p = Partition([0, 3, 6])
        flat = p.flatten(np.array([1.0, 2, 3, 4, 5, 6]))
        assert flat[0] == flat[1] == flat[2] == 2.0
        assert flat[3] == flat[4] == flat[5] == 5.0

    def test_refine(self):
        a = Partition([0, 4, 10])
        b = Partition([0, 2, 10])
        r = a.refine(b)
        assert r.boundaries.tolist() == [0, 2, 4, 10]
        assert r.is_refinement_of(a) and r.is_refinement_of(b)

    def test_refinement_check_negative(self):
        assert not Partition([0, 3, 10]).is_refinement_of(Partition([0, 4, 10]))

    def test_restrict_mask(self):
        p = Partition([0, 2, 5, 8])
        mask = p.restrict_mask([0, 2])
        assert mask.tolist() == [True, True, False, False, False, True, True, True]

    def test_getitem_negative_index(self):
        p = Partition([0, 2, 5])
        assert p[-1] == Interval(2, 5)

    def test_equality_and_hash(self):
        assert Partition([0, 2, 5]) == Partition([0, 2, 5])
        assert Partition([0, 2, 5]) != Partition([0, 3, 5])
        assert hash(Partition([0, 2, 5])) == hash(Partition([0, 2, 5]))

    def test_boundaries_read_only(self):
        p = Partition([0, 2, 5])
        with pytest.raises(ValueError):
            p.boundaries[0] = 1


class TestCover:
    def test_empty(self):
        assert cover([]) == 0

    def test_single_run(self):
        assert cover([3, 4, 5]) == 1

    def test_multiple_runs(self):
        assert cover([0, 2, 3, 7]) == 3

    def test_all_isolated(self):
        assert cover([0, 2, 4, 6]) == 4

    def test_duplicates_ignored(self):
        assert cover([1, 1, 2, 2]) == 1

    def test_bounds_check(self):
        with pytest.raises(ValueError):
            cover([-1])
        with pytest.raises(ValueError):
            cover([5], n=5)

    def test_runs_match_cover(self):
        idx = [0, 1, 4, 5, 6, 9]
        rs = runs(idx)
        assert len(rs) == cover(idx)
        assert [list(r) for r in rs] == [[0, 1], [4, 5, 6], [9]]

    @given(st.sets(st.integers(min_value=0, max_value=40)))
    @settings(max_examples=100)
    def test_cover_matches_bruteforce(self, points):
        def brute(pts):
            pts = sorted(pts)
            if not pts:
                return 0
            count = 1
            for a, b in zip(pts, pts[1:]):
                if b - a > 1:
                    count += 1
            return count

        assert cover(points) == brute(points)


class TestPartitionProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=10)
    )
    @settings(max_examples=100)
    def test_lengths_and_iter_consistent(self, lengths):
        bounds = np.concatenate(([0], np.cumsum(lengths)))
        p = Partition(bounds)
        assert p.lengths().tolist() == lengths
        assert [len(iv) for iv in p] == lengths
        assert p.n == sum(lengths)

    @given(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=8),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100)
    def test_flatten_idempotent(self, lengths, seed):
        bounds = np.concatenate(([0], np.cumsum(lengths)))
        p = Partition(bounds)
        values = np.random.default_rng(seed).random(p.n)
        flat = p.flatten(values)
        assert np.allclose(p.flatten(flat), flat)
