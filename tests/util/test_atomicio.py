"""Tests for the shared durable atomic-write path (repro.util.atomicio).

Every JSON artifact the repo writes — sweep checkpoints, BENCH_*.json,
trace JSONL, serve reports, the distributed store's sidecar files — goes
through this one module, so its contract (atomic replace, no torn files,
tmp cleanup on failure) is load-bearing for crash consistency everywhere.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.util.atomicio import atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(path, "x")
        assert path.read_text() == "x"

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_tmp_cleaned_up_on_write_failure(self, tmp_path, monkeypatch):
        """A failure mid-write must neither leave a tmp file nor touch the
        existing target (the whole point of write-then-rename)."""
        path = tmp_path / "out.txt"
        path.write_text("precious")

        def boom(fd):
            raise OSError("disk full (injected)")

        # Fail at the content fsync: after the tmp write, before the rename.
        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(path, "replacement")
        monkeypatch.undo()
        assert path.read_text() == "precious"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_empty_payload(self, tmp_path):
        path = tmp_path / "empty.txt"
        atomic_write_text(path, "")
        assert path.read_text() == ""


class TestAtomicWriteJson:
    def test_round_trips(self, tmp_path):
        path = tmp_path / "out.json"
        payload = {"b": [1, 2], "a": {"nested": True}}
        atomic_write_json(path, payload)
        assert json.loads(path.read_text()) == payload

    def test_trailing_newline_default(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"x": 1})
        assert path.read_text().endswith("\n")

    def test_no_trailing_newline_opt_out(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"x": 1}, trailing_newline=False)
        assert not path.read_text().endswith("\n")

    def test_sort_keys_stable_bytes(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        atomic_write_json(a, {"z": 1, "a": 2}, sort_keys=True)
        atomic_write_json(b, {"a": 2, "z": 1}, sort_keys=True)
        assert a.read_bytes() == b.read_bytes()


class TestCallersUseAtomicPath:
    """The artifact writers named by the bug report all route through
    atomicio (no bare open(..., 'w') left on these paths)."""

    def test_checkpoint_store(self, tmp_path):
        from repro.robustness.checkpoint import CheckpointStore

        store = CheckpointStore(tmp_path / "ck.json")
        store.save({"fingerprint": {"x": 1}, "rows": [1, 2]})
        assert store.load() == {"fingerprint": {"x": 1}, "rows": [1, 2]}
        assert os.listdir(tmp_path) == ["ck.json"]

    def test_trace_write_jsonl(self, tmp_path):
        from repro.observability.trace import RecordingTracer, read_jsonl, write_jsonl

        tracer = RecordingTracer()
        with tracer.span("root"):
            tracer.event("ping", value=1)
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, tracer.export())
        assert [e["name"] for e in read_jsonl(path)] == ["root/ping", "root"]
        assert os.listdir(tmp_path) == ["trace.jsonl"]

    def test_write_bench_json(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bench_dir = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
        monkeypatch.syspath_prepend(bench_dir)
        from _common import write_bench_json

        out = write_bench_json(
            "t0", params={"n": 1}, columns=["a"], rows=[[1]], path=tmp_path / "b.json"
        )
        data = json.loads(out.read_text())
        assert data["bench"] == "t0"
        assert data["rows"] == [[1]]
