"""Tests for statistical helpers."""

import math

import pytest
from scipy import stats as sps
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    amplification_repeats,
    binomial_tail_above,
    binomial_tail_below,
    chernoff_flake_bound,
    majority,
    median_of_repeats,
    poisson_tail_factor,
    wilson_interval,
)


class TestBinomialTails:
    @pytest.mark.parametrize(
        "n,p,k",
        [(10, 0.5, 5), (20, 0.1, 2), (50, 0.9, 45), (7, 0.3, 0), (100, 0.66, 66)],
    )
    def test_matches_scipy(self, n, p, k):
        assert binomial_tail_below(n, p, k) == pytest.approx(
            sps.binom.cdf(k, n, p), rel=1e-9
        )
        assert binomial_tail_above(n, p, k) == pytest.approx(
            sps.binom.sf(k - 1, n, p), rel=1e-9
        )

    def test_edge_cases(self):
        assert binomial_tail_below(10, 0.5, -1) == 0.0
        assert binomial_tail_below(10, 0.5, 10) == 1.0
        assert binomial_tail_below(10, 0.0, 0) == 1.0
        assert binomial_tail_below(10, 1.0, 5) == 0.0
        assert binomial_tail_above(10, 0.5, 0) == 1.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            binomial_tail_below(10, 1.5, 3)

    def test_complementarity(self):
        total = binomial_tail_below(30, 0.4, 11) + binomial_tail_above(30, 0.4, 12)
        assert total == pytest.approx(1.0)


class TestFlakeBound:
    def test_good_tester_rarely_flakes(self):
        # A 0.9-success tester over 100 trials asserted at >= 2/3.
        assert chernoff_flake_bound(100, 0.9, 2 / 3) < 1e-6

    def test_wrong_side_event_is_rare_below_threshold_too(self):
        # With success_p far below the threshold, "flaking" means landing
        # *above* it — also rare.
        assert chernoff_flake_bound(30, 0.5, 0.9) < 0.01

    def test_marginal_tester_flakes_often(self):
        # Success probability exactly at the threshold: wrong-side mass is
        # about half.
        assert chernoff_flake_bound(30, 0.5, 0.5) > 0.2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            chernoff_flake_bound(10, 0.5, 0.0)


class TestAmplification:
    def test_returns_odd(self):
        for delta in (0.3, 0.1, 0.01, 1e-4):
            assert amplification_repeats(delta) % 2 == 1

    def test_smaller_delta_more_repeats(self):
        assert amplification_repeats(1e-6) > amplification_repeats(0.1)

    def test_majority_actually_meets_delta(self):
        delta = 0.05
        r = amplification_repeats(delta, base_success=2 / 3)
        # P[majority of r coins at 2/3 fails] = P[Bin(r, 2/3) <= r/2].
        fail = binomial_tail_below(r, 2 / 3, r // 2)
        assert fail <= delta

    def test_validation(self):
        with pytest.raises(ValueError):
            amplification_repeats(0.0)
        with pytest.raises(ValueError):
            amplification_repeats(0.1, base_success=0.5)


class TestMajorityAndMedian:
    def test_majority_basic(self):
        assert majority([True, True, False])
        assert not majority([True, False, False])

    def test_majority_tie_rejects(self):
        assert not majority([True, False])

    def test_majority_empty_raises(self):
        with pytest.raises(ValueError):
            majority([])

    def test_median_of_repeats(self):
        values = iter([5.0, 1.0, 3.0])
        assert median_of_repeats(lambda: next(values), 3) == 3.0

    def test_median_validation(self):
        with pytest.raises(ValueError):
            median_of_repeats(lambda: 0.0, 0)


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(60, 100)
        assert low < 0.6 < high

    def test_extremes_clamped(self):
        low, high = wilson_interval(0, 10)
        assert low == pytest.approx(0.0, abs=1e-12)
        low, high = wilson_interval(10, 10)
        assert high == pytest.approx(1.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    @given(st.integers(0, 50), st.integers(1, 50))
    @settings(max_examples=60)
    def test_interval_ordering(self, successes, trials):
        if successes > trials:
            return
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= high <= 1.0


class TestPoissonTail:
    def test_factor_exceeds_mean(self):
        assert poisson_tail_factor(100.0, 0.1) > 100.0

    def test_actually_covers(self):
        lam = poisson_tail_factor(50.0, 0.05)
        assert sps.poisson.cdf(49, lam) <= 0.06  # tiny slack for the bound

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_tail_factor(0.0, 0.1)
        with pytest.raises(ValueError):
            poisson_tail_factor(10.0, 1.5)
