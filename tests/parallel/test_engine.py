"""Tests for the parallel trial-execution engine."""

import os

import numpy as np
import pytest

from repro.parallel.engine import (
    ParallelExecutionError,
    TrialOutcome,
    crash_failure,
    default_worker_count,
    resolve_workers,
    run_trials,
)
from repro.util.rng import seed_sequence_root, spawn_seed_sequences


class DrawOne:
    """Picklable procedure: one uniform draw from the trial's stream."""

    def __call__(self, index, seed):
        gen = np.random.default_rng(seed)
        return TrialOutcome(index=index, value=float(gen.random()))


class CrashOn:
    """Picklable procedure that kills its worker process on one trial."""

    def __init__(self, crash_index):
        self.crash_index = crash_index

    def __call__(self, index, seed):
        if index == self.crash_index and os.getpid() != CrashOn._main_pid:
            os._exit(17)
        gen = np.random.default_rng(seed)
        return TrialOutcome(index=index, value=float(gen.random()))


# Recorded at import so a serial fallback never kills the test process.
CrashOn._main_pid = os.getpid()


class Raises:
    def __call__(self, index, seed):
        raise RuntimeError(f"boom {index}")


class TestResolveWorkers:
    def test_none_and_one_are_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_is_auto(self):
        assert resolve_workers(0) == default_worker_count() >= 1

    def test_explicit_count(self):
        assert resolve_workers(3) == 3

    def test_numpy_integer_accepted(self):
        assert resolve_workers(np.int64(2)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            resolve_workers("4")
        with pytest.raises(TypeError):
            resolve_workers(True)


class TestSeedStreams:
    def test_int_root_reproducible(self):
        a = spawn_seed_sequences(5, 4)
        b = spawn_seed_sequences(5, 4)
        assert [s.entropy for s in a] == [s.entropy for s in b]
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]

    def test_generator_root_advances(self):
        gen = np.random.default_rng(0)
        a = spawn_seed_sequences(gen, 2)
        b = spawn_seed_sequences(gen, 2)
        draws_a = [np.random.default_rng(s).random() for s in a]
        draws_b = [np.random.default_rng(s).random() for s in b]
        assert draws_a != draws_b

    def test_streams_are_independent(self):
        draws = [np.random.default_rng(s).random() for s in spawn_seed_sequences(1, 5)]
        assert len(set(draws)) == 5

    def test_seed_sequence_passthrough(self):
        root = np.random.SeedSequence(9)
        assert seed_sequence_root(root) is root

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)


class TestRunTrials:
    def test_serial_order(self):
        out = run_trials(DrawOne(), spawn_seed_sequences(0, 5))
        assert [o.index for o in out] == list(range(5))
        assert all(o.ok for o in out)

    def test_parallel_matches_serial_exactly(self):
        seeds = spawn_seed_sequences(7, 9)
        serial = run_trials(DrawOne(), seeds)
        for workers in (2, 4):
            parallel = run_trials(DrawOne(), seeds, workers=workers)
            assert parallel == serial

    def test_empty_and_single(self):
        assert run_trials(DrawOne(), []) == []
        out = run_trials(DrawOne(), spawn_seed_sequences(0, 1), workers=4)
        assert len(out) == 1

    def test_unpicklable_falls_back_to_serial(self):
        procedure = lambda i, s: TrialOutcome(index=i, value=i)  # noqa: E731
        with pytest.warns(RuntimeWarning, match="not picklable"):
            out = run_trials(procedure, spawn_seed_sequences(0, 4), workers=2)
        assert [o.value for o in out] == [0, 1, 2, 3]

    def test_procedure_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_trials(Raises(), spawn_seed_sequences(0, 3), workers=2)

    def test_worker_crash_isolated(self):
        seeds = spawn_seed_sequences(3, 6)
        expected = run_trials(DrawOne(), seeds)
        out = run_trials(CrashOn(2), seeds, workers=3, isolate_crashes=True)
        crashed = [o for o in out if not o.ok]
        assert [o.index for o in crashed] == [2]
        assert crashed[0].failure.error_type == "WorkerCrash"
        # every surviving trial recovered its exact serial result
        for o in out:
            if o.ok:
                assert o.value == expected[o.index].value

    def test_worker_crash_raises_without_isolation(self):
        with pytest.raises(ParallelExecutionError) as info:
            run_trials(
                CrashOn(1), spawn_seed_sequences(3, 4), workers=2,
                isolate_crashes=False,
            )
        assert info.value.trial == 1

    def test_crash_failure_record(self):
        failure = crash_failure(5, "sig 9")
        assert failure.trial == 5
        assert failure.error_type == "WorkerCrash"
        assert "sig 9" in failure.message
