"""Tests for the k-modal substrate and the Birgé decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import families
from repro.distributions.distances import tv_distance
from repro.distributions.kmodal import (
    birge_flattening,
    birge_partition,
    is_k_modal,
    kmodal_histogram_pieces,
    modes,
    num_direction_changes,
    random_k_modal,
    robust_direction_changes,
)


class TestDirectionChanges:
    def test_constant_zero(self):
        assert num_direction_changes(np.full(10, 0.1)) == 0

    def test_monotone_zero(self):
        assert num_direction_changes(np.array([1.0, 2, 2, 3, 5])) == 0
        assert num_direction_changes(np.array([5.0, 3, 3, 1])) == 0

    def test_unimodal_one(self):
        assert num_direction_changes(np.array([1.0, 3, 5, 4, 2])) == 1

    def test_plateaus_do_not_count(self):
        assert num_direction_changes(np.array([1.0, 2, 2, 2, 3])) == 0
        assert num_direction_changes(np.array([1.0, 3, 3, 2, 2, 4])) == 2

    def test_alternating(self):
        seq = np.array([1.0, 2, 1, 2, 1, 2])
        assert num_direction_changes(seq) == 4

    def test_modes_positions(self):
        pmf = np.array([0.1, 0.3, 0.2, 0.25, 0.15])
        flips = modes(pmf)
        assert len(flips) == num_direction_changes(pmf)


class TestIsKModal:
    def test_zipf_monotone(self):
        assert is_k_modal(families.zipf(100, 1.0), 0)

    def test_bimodal_needs_three(self):
        bi = families.discretized_gaussian_mixture(200, [0.3, 0.7], [0.05, 0.05])
        assert not is_k_modal(bi, 2)
        assert is_k_modal(bi, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            is_k_modal(families.uniform(10), -1)

    @given(st.integers(2, 60), st.integers(0, 6), st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_random_k_modal_membership(self, n, k, seed):
        d = random_k_modal(n, k, rng=seed)
        assert is_k_modal(d, k)
        assert d.pmf.sum() == pytest.approx(1.0)


class TestRobustDirectionChanges:
    def test_matches_exact_at_zero_tolerance(self):
        gen = np.random.default_rng(0)
        for _ in range(20):
            seq = gen.random(15)
            assert robust_direction_changes(seq, 0.0) == num_direction_changes(seq)

    def test_ignores_subtolerance_wiggles(self):
        base = np.array([1.0, 2.0, 3.0, 4.0])
        noisy = base + np.array([0.0, 0.05, -0.05, 0.0])
        assert robust_direction_changes(noisy, 0.2) == 0

    def test_counts_large_alternation(self):
        seq = np.array([1.0, 3.0, 1.0, 3.0, 1.0])
        assert robust_direction_changes(seq, 0.1) == 3

    def test_noise_never_inflates_count(self):
        gen = np.random.default_rng(1)
        for seed in range(20):
            true = random_k_modal(40, 2, rng=seed).pmf
            noise_scale = 0.05 * true.mean()
            noisy = true + gen.normal(0, noise_scale / 3, size=len(true))
            assert robust_direction_changes(noisy, 2 * noise_scale) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            robust_direction_changes(np.array([]), 0.1)
        with pytest.raises(ValueError):
            robust_direction_changes(np.array([1.0, 2.0]), -0.1)


class TestBirge:
    def test_partition_size_logarithmic(self):
        small = len(birge_partition(1000, 0.1))
        big = len(birge_partition(1_000_000, 0.1))
        assert big < 3 * small  # log growth, not polynomial

    def test_partition_eps_dependence(self):
        assert len(birge_partition(10_000, 0.05)) > len(birge_partition(10_000, 0.2))

    def test_partition_geometric_widths(self):
        p = birge_partition(10_000, 0.2)
        lengths = p.lengths()
        assert lengths[0] == 1
        # Geometric growth everywhere except the final (truncated) interval.
        assert np.all(np.diff(lengths[:-1].astype(float)) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            birge_partition(0, 0.1)
        with pytest.raises(ValueError):
            birge_partition(10, 0.0)

    def test_flattening_close_for_monotone(self):
        # The Birgé guarantee: O(eps) TV error for monotone distributions.
        for dist in (families.zipf(4000, 1.0), families.geometric(4000, 0.999)):
            flat = birge_flattening(dist, 0.1)
            assert tv_distance(dist, flat.to_pmf()) <= 0.1

    def test_flattening_close_for_k_modal(self):
        for seed in range(5):
            dist = random_k_modal(3000, 3, rng=seed)
            flat = birge_flattening(dist, 0.1)
            assert tv_distance(dist, flat.to_pmf()) <= 0.15
            assert flat.num_pieces <= kmodal_histogram_pieces(3000, 3, 0.1)

    def test_pieces_budget_formula(self):
        assert kmodal_histogram_pieces(10_000, 0, 0.1) < kmodal_histogram_pieces(
            10_000, 4, 0.1
        )
