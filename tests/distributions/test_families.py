"""Tests for the synthetic distribution families and farness certificates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import families
from repro.distributions.histogram import Histogram, is_k_histogram, num_pieces
from repro.distributions.projection import unconstrained_l1_distance


class TestCompletenessFamilies:
    def test_uniform(self):
        d = families.uniform(10)
        assert is_k_histogram(d, 1)

    @given(st.integers(2, 50), st.integers(1, 8), st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_random_histogram_membership(self, n, k, seed):
        k = min(k, n)
        h = families.random_histogram(n, k, seed)
        assert is_k_histogram(h.to_pmf(), k)
        assert h.to_pmf().sum() == pytest.approx(1.0)

    def test_random_histogram_min_width(self):
        h = families.random_histogram(100, 5, rng=0, min_width=10)
        assert all(len(iv) >= 10 for iv in h.partition)

    def test_random_histogram_validation(self):
        with pytest.raises(ValueError):
            families.random_histogram(10, 0)
        with pytest.raises(ValueError):
            families.random_histogram(10, 11)
        with pytest.raises(ValueError):
            families.random_histogram(10, 5, min_width=3)

    def test_staircase(self):
        h = families.staircase(100, 4, ratio=2.0)
        assert h.num_pieces == 4
        assert is_k_histogram(h.to_pmf(), 4)
        # Decreasing per-point values.
        assert all(a > b for a, b in zip(h.values, h.values[1:]))

    def test_staircase_validation(self):
        with pytest.raises(ValueError):
            families.staircase(10, 0)
        with pytest.raises(ValueError):
            families.staircase(10, 2, ratio=0.0)

    def test_two_level_comb(self):
        d = families.two_level_comb(40, teeth=4)
        assert num_pieces(d.pmf) == 8
        with pytest.raises(ValueError):
            families.two_level_comb(40, 0)
        with pytest.raises(ValueError):
            families.two_level_comb(40, 4, contrast=1.0)


class TestSmoothFamilies:
    def test_zipf_decreasing(self):
        d = families.zipf(50, 1.0)
        assert np.all(np.diff(d.pmf) <= 0)
        assert d.pmf.sum() == pytest.approx(1.0)

    def test_zipf_alpha_zero_is_uniform(self):
        d = families.zipf(20, 0.0)
        assert np.allclose(d.pmf, 1 / 20)

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            families.zipf(10, -1.0)

    def test_geometric(self):
        d = families.geometric(30, 0.9)
        assert np.all(np.diff(d.pmf) < 0)
        with pytest.raises(ValueError):
            families.geometric(10, 0.0)

    def test_gaussian_mixture(self):
        d = families.discretized_gaussian_mixture(100, [0.3, 0.7], [0.05, 0.05])
        pmf = d.pmf
        assert pmf.sum() == pytest.approx(1.0)
        # Bimodal: both humps present.
        assert pmf[30] > pmf[50] and pmf[70] > pmf[50]

    def test_gaussian_mixture_validation(self):
        with pytest.raises(ValueError):
            families.discretized_gaussian_mixture(10, [], [])
        with pytest.raises(ValueError):
            families.discretized_gaussian_mixture(10, [0.5], [0.0])
        with pytest.raises(ValueError):
            families.discretized_gaussian_mixture(10, [0.5], [0.1], [-1.0])

    def test_sparse_support(self):
        d = families.sparse_support(50, 7, rng=0)
        assert d.support_size() == 7
        assert np.allclose(d.pmf[d.support()], 1 / 7)
        with pytest.raises(ValueError):
            families.sparse_support(10, 0)


class TestFarnessCertificates:
    def test_paired_perturbation_valid_pmf(self):
        base = Histogram.from_pmf(np.full(40, 1 / 40))
        d, pair_mass = families.paired_perturbation(base, 0.2, rng=0)
        assert d.pmf.sum() == pytest.approx(1.0)
        assert np.all(d.pmf >= 0)
        assert pair_mass == pytest.approx(20 * 2 * 0.2 / 40)

    def test_certificate_matches_exact_dp(self):
        # For this construction the pairing bound is tight: verify against
        # the exact unconstrained DP lower bound on a small instance.
        n, k, eps = 40, 3, 0.2
        d = families.far_from_hk(n, k, eps, rng=1)
        dp_lower = unconstrained_l1_distance(d, k)
        assert dp_lower >= eps - 1e-9

    @given(st.integers(1, 6), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_far_from_hk_certificate(self, k, seed):
        n, eps = 60, 0.15
        d = families.far_from_hk(n, k, eps, rng=seed)
        assert unconstrained_l1_distance(d, k) >= eps - 1e-9

    def test_far_from_hk_custom_base(self):
        base = families.staircase(60, 2, ratio=1.5)
        d = families.far_from_hk(60, 2, 0.1, rng=2, base=base)
        assert unconstrained_l1_distance(d, 2) >= 0.1 - 1e-9

    def test_far_from_hk_rejects_impossible(self):
        # Too large eps: per-point masses cannot absorb the amplitude.
        with pytest.raises(ValueError):
            families.far_from_hk(20, 2, 0.9)

    def test_perturbation_too_concentrated_raises(self):
        base = Histogram.from_pmf(
            np.array([0.97] + [0.03 / 9] * 9)
        )
        # delta needed exceeds light pieces' values.
        with pytest.raises(ValueError):
            families.paired_perturbation(base, 0.9)

    def test_deterministic_mode_reproducible(self):
        base = Histogram.from_pmf(np.full(20, 0.05))
        d1, _ = families.paired_perturbation(base, 0.1, deterministic=True)
        d2, _ = families.paired_perturbation(base, 0.1, deterministic=True)
        assert d1 == d2

    def test_certified_distance_helper(self):
        assert families.certified_distance_to_hk(0.5, 0.01, 11) == pytest.approx(0.4)
        assert families.certified_distance_to_hk(0.1, 0.05, 100) == 0.0
        with pytest.raises(ValueError):
            families.certified_distance_to_hk(0.5, 0.01, 0)
