"""Tests for the discrete-distribution substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.discrete import DiscreteDistribution


class TestConstruction:
    def test_valid_pmf(self):
        d = DiscreteDistribution(np.array([0.2, 0.3, 0.5]))
        assert d.n == 3
        assert d.pmf.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            DiscreteDistribution(np.array([0.5, -0.1, 0.6]))

    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError, match="sums to"):
            DiscreteDistribution(np.array([0.5, 0.6]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            DiscreteDistribution(np.array([np.nan, 1.0]))

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(np.array([]))
        with pytest.raises(ValueError):
            DiscreteDistribution(np.ones((2, 2)) / 4)

    def test_pmf_read_only(self):
        d = DiscreteDistribution.uniform(4)
        with pytest.raises(ValueError):
            d.pmf[0] = 1.0

    def test_uniform(self):
        d = DiscreteDistribution.uniform(8)
        assert np.allclose(d.pmf, 1 / 8)
        with pytest.raises(ValueError):
            DiscreteDistribution.uniform(0)

    def test_point_mass(self):
        d = DiscreteDistribution.point_mass(5, 3)
        assert d[3] == 1.0 and d.support_size() == 1
        with pytest.raises(ValueError):
            DiscreteDistribution.point_mass(5, 5)

    def test_from_weights(self):
        d = DiscreteDistribution.from_weights(np.array([2.0, 6.0]))
        assert d.pmf.tolist() == [0.25, 0.75]
        with pytest.raises(ValueError):
            DiscreteDistribution.from_weights(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            DiscreteDistribution.from_weights(np.array([-1.0, 2.0]))

    def test_from_counts(self):
        d = DiscreteDistribution.from_counts(np.array([1, 3]))
        assert d.pmf.tolist() == [0.25, 0.75]

    def test_equality_and_hash(self):
        a = DiscreteDistribution.uniform(3)
        b = DiscreteDistribution.uniform(3)
        assert a == b and hash(a) == hash(b)
        assert a != DiscreteDistribution.point_mass(3, 0)


class TestAccessors:
    def test_support(self):
        d = DiscreteDistribution(np.array([0.5, 0.0, 0.5]))
        assert d.support().tolist() == [0, 2]
        assert d.support_size() == 2

    def test_min_nonzero(self):
        d = DiscreteDistribution(np.array([0.9, 0.0, 0.1]))
        assert d.min_nonzero() == pytest.approx(0.1)

    def test_mass(self):
        d = DiscreteDistribution(np.array([0.1, 0.2, 0.7]))
        assert d.mass(np.array([0, 2])) == pytest.approx(0.8)


class TestSampling:
    def test_sample_shape_and_range(self):
        d = DiscreteDistribution.uniform(10)
        s = d.sample(1000, rng=0)
        assert s.shape == (1000,)
        assert s.min() >= 0 and s.max() < 10

    def test_sample_zero(self):
        assert len(DiscreteDistribution.uniform(3).sample(0, rng=0)) == 0

    def test_sample_negative_raises(self):
        with pytest.raises(ValueError):
            DiscreteDistribution.uniform(3).sample(-1)

    def test_sample_respects_zero_mass(self):
        d = DiscreteDistribution(np.array([0.5, 0.0, 0.5]))
        s = d.sample(5000, rng=1)
        assert not np.any(s == 1)

    def test_sample_counts_total(self):
        d = DiscreteDistribution.uniform(5)
        c = d.sample_counts(777, rng=2)
        assert c.sum() == 777

    def test_sample_marginals_close(self):
        # Flake risk: binomial(20000, 0.3) within 4 sigma — < 1e-4.
        d = DiscreteDistribution(np.array([0.3, 0.7]))
        c = d.sample_counts(20000, rng=3)
        sigma = np.sqrt(20000 * 0.3 * 0.7)
        assert abs(c[0] - 6000) < 4 * sigma

    def test_poissonized_counts_mean(self):
        d = DiscreteDistribution.uniform(4)
        total = sum(d.sample_counts_poissonized(1000, rng=s).sum() for s in range(20))
        assert abs(total / 20 - 1000) < 50  # Poisson(1000) mean over 20 reps

    def test_poissonized_negative_raises(self):
        with pytest.raises(ValueError):
            DiscreteDistribution.uniform(3).sample_counts_poissonized(-1.0)

    def test_empirical(self):
        d = DiscreteDistribution.uniform(4)
        e = d.empirical(100, rng=4)
        assert e.n == 4
        assert e.pmf.sum() == pytest.approx(1.0)

    def test_empirical_zero_samples_uniform(self):
        e = DiscreteDistribution.point_mass(4, 0).empirical(0, rng=0)
        assert np.allclose(e.pmf, 0.25)

    def test_sampling_reproducible(self):
        d = DiscreteDistribution.uniform(6)
        assert np.array_equal(d.sample(50, rng=9), d.sample(50, rng=9))


class TestStructuralOps:
    def test_permute_relabels(self):
        d = DiscreteDistribution(np.array([0.1, 0.2, 0.7]))
        sigma = np.array([2, 0, 1])  # old i -> new sigma[i]
        p = d.permute(sigma)
        assert p.pmf.tolist() == pytest.approx([0.2, 0.7, 0.1])

    def test_permute_identity(self):
        d = DiscreteDistribution(np.array([0.4, 0.6]))
        assert d.permute(np.array([0, 1])) == d

    def test_permute_validation(self):
        d = DiscreteDistribution.uniform(3)
        with pytest.raises(ValueError):
            d.permute(np.array([0, 0, 1]))

    def test_permute_samples_match_distribution(self):
        # sigma(s) for s ~ D must match samples of D∘sigma^-1: check marginals.
        d = DiscreteDistribution(np.array([0.8, 0.1, 0.1]))
        sigma = np.array([1, 2, 0])
        p = d.permute(sigma)
        counts = p.sample_counts(30000, rng=5) / 30000
        assert abs(counts[1] - 0.8) < 0.02  # 4+ sigma margin

    def test_embed(self):
        d = DiscreteDistribution(np.array([0.5, 0.5]))
        e = d.embed(5, offset=2)
        assert e.pmf.tolist() == [0.0, 0.0, 0.5, 0.5, 0.0]
        with pytest.raises(ValueError):
            d.embed(3, offset=2)

    def test_mix(self):
        a = DiscreteDistribution(np.array([1.0, 0.0]))
        b = DiscreteDistribution(np.array([0.0, 1.0]))
        m = a.mix(b, 0.25)
        assert m.pmf.tolist() == [0.75, 0.25]
        with pytest.raises(ValueError):
            a.mix(b, 1.5)
        with pytest.raises(ValueError):
            a.mix(DiscreteDistribution.uniform(3), 0.5)

    def test_conditioned_on(self):
        d = DiscreteDistribution(np.array([0.2, 0.3, 0.5]))
        c = d.conditioned_on(np.array([True, False, True]))
        assert c.pmf.tolist() == pytest.approx([2 / 7, 0.0, 5 / 7])
        with pytest.raises(ValueError):
            d.conditioned_on(np.array([False, False, False]))

    def test_restrict_subdistribution(self):
        d = DiscreteDistribution(np.array([0.2, 0.3, 0.5]))
        r = d.restrict(np.array([True, False, True]))
        assert r.tolist() == [0.2, 0.0, 0.5]
        assert r.sum() < 1.0  # genuinely a sub-distribution


class TestProperties:
    @given(st.integers(2, 30), st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_random_permutation_preserves_multiset(self, n, seed):
        gen = np.random.default_rng(seed)
        d = DiscreteDistribution(gen.dirichlet(np.ones(n)))
        sigma = gen.permutation(n)
        p = d.permute(sigma)
        assert np.allclose(np.sort(p.pmf), np.sort(d.pmf))

    @given(st.integers(1, 20), st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_pmf_always_normalised(self, n, seed):
        gen = np.random.default_rng(seed)
        d = DiscreteDistribution.from_weights(gen.random(n) + 1e-12)
        assert d.pmf.sum() == pytest.approx(1.0)
        assert np.all(d.pmf >= 0)
