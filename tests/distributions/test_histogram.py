"""Tests for the histogram representation and the class H_k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import (
    Histogram,
    breakpoint_intervals,
    breakpoints,
    flatten_outside,
    is_k_histogram,
    num_pieces,
)
from repro.util.intervals import Partition


def staircase_pmf(n: int = 12) -> np.ndarray:
    pmf = np.zeros(n)
    pmf[: n // 3] = 2.0
    pmf[n // 3 : n // 2] = 0.5
    pmf[n // 2 :] = 1.0
    return pmf / pmf.sum()


class TestHistogramBasics:
    def test_construction(self):
        h = Histogram(Partition([0, 2, 4]), np.array([0.3, 0.2]))
        assert h.n == 4 and h.num_pieces == 2
        assert h.piece_masses().tolist() == pytest.approx([0.6, 0.4])

    def test_mass_validation(self):
        with pytest.raises(ValueError, match="mass"):
            Histogram(Partition([0, 2, 4]), np.array([0.3, 0.3]))

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            Histogram(Partition([0, 2, 4]), np.array([0.6, -0.1]))

    def test_value_count_mismatch(self):
        with pytest.raises(ValueError):
            Histogram(Partition([0, 2, 4]), np.array([0.5]))

    def test_from_masses(self):
        h = Histogram.from_masses(Partition([0, 1, 4]), np.array([0.4, 0.6]))
        assert h.values.tolist() == pytest.approx([0.4, 0.2])

    def test_to_pmf_roundtrip(self):
        pmf = staircase_pmf()
        h = Histogram.from_pmf(pmf)
        assert np.allclose(h.to_pmf(), pmf)
        assert h.num_pieces == 3

    def test_to_distribution_samples(self):
        h = Histogram.from_pmf(staircase_pmf())
        d = h.to_distribution()
        assert isinstance(d, DiscreteDistribution)
        assert d.n == 12

    def test_minimal_merges_equal_pieces(self):
        h = Histogram(Partition([0, 2, 4]), np.array([0.25, 0.25]))
        assert h.num_pieces == 2
        assert h.minimal().num_pieces == 1

    def test_flattening(self):
        d = DiscreteDistribution(np.array([0.1, 0.3, 0.2, 0.4]))
        part = Partition([0, 2, 4])
        h = Histogram.flattening(d, part)
        assert h.values.tolist() == pytest.approx([0.2, 0.3])
        assert h.piece_masses().tolist() == pytest.approx([0.4, 0.6])

    def test_flattening_domain_mismatch(self):
        with pytest.raises(ValueError):
            Histogram.flattening(DiscreteDistribution.uniform(4), Partition([0, 3]))


class TestBreakpoints:
    def test_uniform_no_breakpoints(self):
        assert len(breakpoints(np.full(10, 0.1))) == 0
        assert num_pieces(np.full(10, 0.1)) == 1

    def test_staircase_breakpoints(self):
        pmf = staircase_pmf(12)
        bps = breakpoints(pmf)
        assert bps.tolist() == [3, 5]
        assert num_pieces(pmf) == 3

    def test_is_k_histogram(self):
        pmf = staircase_pmf()
        assert is_k_histogram(pmf, 3)
        assert is_k_histogram(pmf, 5)
        assert not is_k_histogram(pmf, 2)
        assert is_k_histogram(DiscreteDistribution(pmf), 3)

    def test_is_k_histogram_k_geq_n(self):
        gen = np.random.default_rng(0)
        pmf = gen.dirichlet(np.ones(6))
        assert is_k_histogram(pmf, 6)

    def test_is_k_histogram_validation(self):
        with pytest.raises(ValueError):
            is_k_histogram(staircase_pmf(), 0)

    def test_breakpoint_intervals_interior_only(self):
        pmf = staircase_pmf(12)  # jumps at 2->3 boundary index 2/3 and 5/6
        # Partition aligned with the jumps: no interior breakpoints.
        aligned = Partition([0, 4, 6, 12])
        assert breakpoint_intervals(pmf, aligned) == []
        # Partition straddling both jumps in its first interval.
        straddle = Partition([0, 7, 12])
        assert breakpoint_intervals(pmf, straddle) == [0]

    def test_breakpoint_intervals_count_bound(self):
        # A k-histogram has at most k-1 breakpoint intervals in any partition.
        gen = np.random.default_rng(1)
        for _ in range(10):
            from repro.distributions.families import random_histogram

            h = random_histogram(60, 5, gen)
            part = Partition.equal_width(60, 9)
            assert len(breakpoint_intervals(h.to_pmf(), part)) <= 4


class TestFlattenOutside:
    def test_keeps_exact_on_selected(self):
        pmf = staircase_pmf(12)
        d = DiscreteDistribution(pmf)
        part = Partition([0, 4, 8, 12])
        result = flatten_outside(d, part, keep_exact=[1])
        # Interval 1 keeps the original values.
        assert np.allclose(result.pmf[4:8], pmf[4:8])
        # Others are flattened.
        assert np.allclose(result.pmf[0:4], pmf[0:4].mean())

    def test_total_mass_preserved(self):
        pmf = staircase_pmf(12)
        result = flatten_outside(DiscreteDistribution(pmf), Partition([0, 5, 12]), [0])
        assert result.pmf.sum() == pytest.approx(1.0)

    def test_histogram_flattening_identity(self):
        # Flattening a histogram on an aligned partition is the identity.
        pmf = staircase_pmf(12)
        aligned = Partition([0, 4, 6, 12])
        result = flatten_outside(DiscreteDistribution(pmf), aligned, [])
        assert np.allclose(result.pmf, pmf)


class TestProperties:
    @given(st.integers(2, 40), st.integers(1, 8), st.integers(0, 100000))
    @settings(max_examples=80)
    def test_random_histograms_are_k_histograms(self, n, k, seed):
        from repro.distributions.families import random_histogram

        k = min(k, n)
        h = random_histogram(n, k, seed)
        assert is_k_histogram(h.to_pmf(), k)
        assert h.num_pieces <= k

    @given(st.integers(2, 30), st.integers(0, 100000))
    @settings(max_examples=60)
    def test_from_pmf_is_minimal(self, n, seed):
        gen = np.random.default_rng(seed)
        pmf = gen.dirichlet(np.ones(n))
        h = Histogram.from_pmf(pmf)
        assert h.num_pieces == num_pieces(pmf)
        assert np.allclose(h.to_pmf(), pmf)
