"""Tests for histogram serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import families
from repro.distributions.serialize import (
    FORMAT,
    histogram_from_dict,
    histogram_from_json,
    histogram_to_dict,
    histogram_to_json,
)


class TestRoundTrip:
    def test_dict_round_trip(self):
        hist = families.staircase(100, 5)
        back = histogram_from_dict(histogram_to_dict(hist))
        assert back.partition == hist.partition
        assert np.allclose(back.to_pmf(), hist.to_pmf())

    def test_json_round_trip(self):
        hist = families.random_histogram(200, 7, rng=0)
        back = histogram_from_json(histogram_to_json(hist))
        assert np.allclose(back.to_pmf(), hist.to_pmf())

    @given(st.integers(2, 60), st.integers(1, 8), st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_round_trip_property(self, n, k, seed):
        hist = families.random_histogram(n, min(k, n), seed)
        back = histogram_from_json(histogram_to_json(hist))
        assert np.allclose(back.to_pmf(), hist.to_pmf(), atol=1e-12)

    def test_format_tag_present(self):
        payload = histogram_to_dict(families.staircase(10, 2))
        assert payload["format"] == FORMAT


class TestValidation:
    def good(self):
        return histogram_to_dict(families.staircase(20, 4))

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            histogram_from_dict([1, 2])

    def test_rejects_wrong_format(self):
        payload = self.good()
        payload["format"] = "other/v9"
        with pytest.raises(ValueError, match="format"):
            histogram_from_dict(payload)

    def test_rejects_missing_keys(self):
        payload = self.good()
        del payload["masses"]
        with pytest.raises(ValueError, match="malformed"):
            histogram_from_dict(payload)

    def test_rejects_inconsistent_n(self):
        payload = self.good()
        payload["n"] = 99
        with pytest.raises(ValueError, match="n="):
            histogram_from_dict(payload)

    def test_rejects_mass_count_mismatch(self):
        payload = self.good()
        payload["masses"] = payload["masses"][:-1]
        with pytest.raises(ValueError, match="one mass per piece"):
            histogram_from_dict(payload)

    def test_rejects_negative_mass(self):
        payload = self.good()
        payload["masses"][0] = -0.1
        with pytest.raises(ValueError, match="non-negative"):
            histogram_from_dict(payload)

    def test_rejects_badly_unnormalised(self):
        payload = self.good()
        payload["masses"] = [m * 2 for m in payload["masses"]]
        with pytest.raises(ValueError, match="sum to"):
            histogram_from_dict(payload)

    def test_tolerates_json_roundoff(self):
        payload = self.good()
        payload["masses"][0] += 5e-7
        hist = histogram_from_dict(payload)
        assert hist.to_pmf().sum() == pytest.approx(1.0)

    def test_rejects_invalid_json(self):
        with pytest.raises(ValueError, match="invalid JSON"):
            histogram_from_json("{not json")
