"""Tests for the SampleSource access discipline."""

import numpy as np
import pytest

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import (
    PairedSampleSource,
    SampleBudgetExceeded,
    SampleSource,
    as_source,
    counts_from_samples,
)


class TestCountsFromSamples:
    def test_basic(self):
        counts = counts_from_samples(np.array([0, 2, 2, 1]), 4)
        assert counts.tolist() == [1, 1, 2, 0]

    def test_empty(self):
        assert counts_from_samples(np.array([], dtype=np.int64), 3).tolist() == [0, 0, 0]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            counts_from_samples(np.array([3]), 3)
        with pytest.raises(ValueError):
            counts_from_samples(np.array([-1]), 3)


class TestSampleSource:
    def test_budget_accounting(self):
        src = SampleSource(DiscreteDistribution.uniform(10), rng=0)
        src.draw(100)
        src.draw_counts(50)
        src.draw_counts_poissonized(25.5)
        # Fractional Poissonized expectations are billed as ceil(m): the
        # ledger keeps integer-exact accounting and never under-charges.
        assert src.samples_drawn == 176
        assert isinstance(src.samples_drawn, int)

    def test_reset_budget(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        src.draw(10)
        src.reset_budget()
        assert src.samples_drawn == 0.0

    def test_negative_draws_raise(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        with pytest.raises(ValueError):
            src.draw(-1)
        with pytest.raises(ValueError):
            src.draw_counts(-1)
        with pytest.raises(ValueError):
            src.draw_counts_poissonized(-0.5)

    def test_n_exposed(self):
        assert SampleSource(DiscreteDistribution.uniform(7)).n == 7

    def test_spawn_independent_budget(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        src.draw(10)
        child = src.spawn()
        assert child.samples_drawn == 0.0
        child.draw(5)
        assert src.samples_drawn == 10.0

    def test_spawn_reproducible(self):
        a = SampleSource(DiscreteDistribution.uniform(6), rng=5).spawn().draw(20)
        b = SampleSource(DiscreteDistribution.uniform(6), rng=5).spawn().draw(20)
        assert np.array_equal(a, b)

    def test_permuted_source_marginals(self):
        d = DiscreteDistribution(np.array([0.9, 0.05, 0.05]))
        sigma = np.array([2, 0, 1])
        src = SampleSource(d, rng=1).permuted(sigma)
        counts = src.draw_counts(20_000)
        # Mass 0.9 moved to position sigma[0] = 2.  4+ sigma margin.
        assert counts[2] / 20_000 == pytest.approx(0.9, abs=0.02)


class TestLifetimeAccounting:
    def test_lifetime_survives_reset(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        src.draw(10)
        src.reset_budget()
        src.draw(7)
        # Per-trial and lifetime counters diverge after a reset.
        assert src.samples_drawn == 7.0
        assert src.lifetime_drawn == 17.0

    def test_lifetime_counts_every_draw_kind(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        src.draw(10)
        src.draw_counts(5)
        src.draw_counts_poissonized(2.5)
        assert src.lifetime_drawn == 18  # ceil(2.5) billed for the Poisson draw
        assert isinstance(src.lifetime_drawn, int)
        assert src.samples_drawn == src.lifetime_drawn


class TestBudgetCap:
    def test_cap_raises_typed_error(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0, max_samples=100)
        src.draw(90)
        with pytest.raises(SampleBudgetExceeded) as info:
            src.draw(11)
        assert info.value.requested == 11
        assert info.value.drawn == 90.0
        assert info.value.max_samples == 100.0
        # The failed draw served (and charged) nothing.
        assert src.samples_drawn == 90.0
        src.draw(10)  # exactly the cap is allowed

    def test_cap_applies_to_all_draw_kinds(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0, max_samples=10)
        with pytest.raises(SampleBudgetExceeded):
            src.draw_counts(11)
        with pytest.raises(SampleBudgetExceeded):
            src.draw_counts_poissonized(10.5)

    def test_reset_restores_headroom(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0, max_samples=10)
        src.draw(10)
        src.reset_budget()
        src.draw(10)
        assert src.lifetime_drawn == 20.0

    def test_uncapped_by_default(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        assert src.max_samples is None
        src.draw(10**6)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            SampleSource(DiscreteDistribution.uniform(4), max_samples=0)

    def test_spawn_inherits_cap_with_fresh_headroom(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0, max_samples=10)
        src.draw(10)
        child = src.spawn()
        assert child.max_samples == 10.0
        child.draw(10)  # full headroom again
        with pytest.raises(SampleBudgetExceeded):
            child.draw(1)


class TestPairedSampleSource:
    """Joint budget over two streams: the accounting surface of the
    closeness tester (the paired-budget satellite of this PR)."""

    def _pair(self, **kwargs):
        return PairedSampleSource(
            DiscreteDistribution.uniform(6),
            DiscreteDistribution.uniform(6),
            rng=0,
            **kwargs,
        )

    def test_each_stream_keeps_its_own_audit_trail(self):
        pair = self._pair()
        pair.p.draw(30)
        pair.q.draw_counts(12)
        pair.q.draw_counts_poissonized(7.5)
        assert pair.p.samples_drawn == 30
        assert pair.q.samples_drawn == 20  # ceil(7.5) billed
        assert pair.p.lifetime_drawn == 30
        assert pair.q.lifetime_drawn == 20

    def test_joint_total_is_the_stream_sum(self):
        pair = self._pair()
        pair.p.draw(30)
        pair.q.draw(12)
        assert pair.samples_drawn == 42
        assert pair.samples_drawn == pair.p.samples_drawn + pair.q.samples_drawn
        assert pair.lifetime_drawn == 42
        assert pair.draw_calls == 2
        assert isinstance(pair.samples_drawn, int)

    def test_one_joint_cap_governs_both_streams(self):
        pair = self._pair(max_samples=100)
        pair.p.draw(60)
        pair.q.draw(30)
        with pytest.raises(SampleBudgetExceeded) as info:
            pair.q.draw(11)  # fine per-stream, over jointly
        assert info.value.drawn == 90
        assert info.value.max_samples == 100
        # The refused draw charged nothing anywhere.
        assert pair.samples_drawn == 90
        assert pair.q.samples_drawn == 30
        pair.p.draw(10)  # exactly the joint cap is allowed

    def test_stream_max_samples_reports_the_joint_cap(self):
        pair = self._pair(max_samples=50)
        assert pair.max_samples == 50
        assert pair.p.max_samples == 50
        assert pair.q.max_samples == 50
        assert self._pair().max_samples is None

    def test_reset_budget_resets_joint_and_streams(self):
        pair = self._pair(max_samples=40)
        pair.p.draw(25)
        pair.q.draw(15)
        pair.reset_budget()
        assert pair.samples_drawn == 0
        assert pair.p.samples_drawn == 0 and pair.q.samples_drawn == 0
        assert pair.lifetime_drawn == 40  # lifetime never resets
        pair.p.draw(40)  # full joint headroom restored

    def test_charge_first_survives_faulting_base(self):
        """Streams charge before delegating, so the joint invariant
        ``pair.samples_drawn == p + q`` holds even when a wrapped base
        source faults mid-draw."""

        class FaultingSource(SampleSource):
            def draw_counts(self, m):
                self._charge(m)
                raise RuntimeError("injected mid-draw fault")

        pair = PairedSampleSource(
            FaultingSource(DiscreteDistribution.uniform(6), rng=0),
            SampleSource(DiscreteDistribution.uniform(6), rng=1),
        )
        pair.q.draw(10)
        with pytest.raises(RuntimeError, match="injected"):
            pair.p.draw_counts(5)
        assert pair.samples_drawn == pair.p.samples_drawn + pair.q.samples_drawn

    def test_underlying_per_source_cap_stays_enforced(self):
        capped = SampleSource(DiscreteDistribution.uniform(6), rng=0, max_samples=10)
        pair = PairedSampleSource(
            capped, SampleSource(DiscreteDistribution.uniform(6), rng=1)
        )
        with pytest.raises(SampleBudgetExceeded):
            pair.p.draw(11)
        pair.q.draw(11)  # the other stream is unaffected

    def test_spawn_gives_fresh_pair_with_same_cap(self):
        pair = self._pair(max_samples=30)
        pair.p.draw(30)
        child = pair.spawn()
        assert isinstance(child, PairedSampleSource)
        assert child.max_samples == 30
        assert child.samples_drawn == 0
        child.q.draw(30)  # full joint headroom

    def test_streams_cannot_be_spawned_or_permuted_alone(self):
        pair = self._pair()
        with pytest.raises(TypeError, match="spawn the\n?.*PairedSampleSource"):
            pair.p.spawn()
        with pytest.raises(TypeError, match="permutation"):
            pair.q.permuted(np.arange(6))

    def test_domains_must_match(self):
        with pytest.raises(ValueError, match="share a domain"):
            PairedSampleSource(
                DiscreteDistribution.uniform(4),
                DiscreteDistribution.uniform(5),
                rng=0,
            )

    def test_existing_sources_cannot_be_reseeded(self):
        with pytest.raises(ValueError, match="cannot reseed"):
            PairedSampleSource(
                SampleSource(DiscreteDistribution.uniform(4), rng=0),
                SampleSource(DiscreteDistribution.uniform(4), rng=1),
                rng=2,
            )

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="max_samples must be positive"):
            self._pair(max_samples=0)

    def test_seeded_pair_is_reproducible(self):
        a, b = self._pair(), self._pair()
        assert np.array_equal(a.p.draw(20), b.p.draw(20))
        assert np.array_equal(a.q.draw(20), b.q.draw(20))


class TestAsSource:
    def test_wraps_distribution(self):
        src = as_source(DiscreteDistribution.uniform(5), rng=0)
        assert isinstance(src, SampleSource)

    def test_passes_source_through(self):
        src = SampleSource(DiscreteDistribution.uniform(5), rng=0)
        assert as_source(src) is src

    def test_rejects_reseeding_a_source(self):
        src = SampleSource(DiscreteDistribution.uniform(5), rng=0)
        with pytest.raises(ValueError):
            as_source(src, rng=1)
