"""Tests for the SampleSource access discipline."""

import numpy as np
import pytest

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import (
    SampleBudgetExceeded,
    SampleSource,
    as_source,
    counts_from_samples,
)


class TestCountsFromSamples:
    def test_basic(self):
        counts = counts_from_samples(np.array([0, 2, 2, 1]), 4)
        assert counts.tolist() == [1, 1, 2, 0]

    def test_empty(self):
        assert counts_from_samples(np.array([], dtype=np.int64), 3).tolist() == [0, 0, 0]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            counts_from_samples(np.array([3]), 3)
        with pytest.raises(ValueError):
            counts_from_samples(np.array([-1]), 3)


class TestSampleSource:
    def test_budget_accounting(self):
        src = SampleSource(DiscreteDistribution.uniform(10), rng=0)
        src.draw(100)
        src.draw_counts(50)
        src.draw_counts_poissonized(25.5)
        # Fractional Poissonized expectations are billed as ceil(m): the
        # ledger keeps integer-exact accounting and never under-charges.
        assert src.samples_drawn == 176
        assert isinstance(src.samples_drawn, int)

    def test_reset_budget(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        src.draw(10)
        src.reset_budget()
        assert src.samples_drawn == 0.0

    def test_negative_draws_raise(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        with pytest.raises(ValueError):
            src.draw(-1)
        with pytest.raises(ValueError):
            src.draw_counts(-1)
        with pytest.raises(ValueError):
            src.draw_counts_poissonized(-0.5)

    def test_n_exposed(self):
        assert SampleSource(DiscreteDistribution.uniform(7)).n == 7

    def test_spawn_independent_budget(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        src.draw(10)
        child = src.spawn()
        assert child.samples_drawn == 0.0
        child.draw(5)
        assert src.samples_drawn == 10.0

    def test_spawn_reproducible(self):
        a = SampleSource(DiscreteDistribution.uniform(6), rng=5).spawn().draw(20)
        b = SampleSource(DiscreteDistribution.uniform(6), rng=5).spawn().draw(20)
        assert np.array_equal(a, b)

    def test_permuted_source_marginals(self):
        d = DiscreteDistribution(np.array([0.9, 0.05, 0.05]))
        sigma = np.array([2, 0, 1])
        src = SampleSource(d, rng=1).permuted(sigma)
        counts = src.draw_counts(20_000)
        # Mass 0.9 moved to position sigma[0] = 2.  4+ sigma margin.
        assert counts[2] / 20_000 == pytest.approx(0.9, abs=0.02)


class TestLifetimeAccounting:
    def test_lifetime_survives_reset(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        src.draw(10)
        src.reset_budget()
        src.draw(7)
        # Per-trial and lifetime counters diverge after a reset.
        assert src.samples_drawn == 7.0
        assert src.lifetime_drawn == 17.0

    def test_lifetime_counts_every_draw_kind(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        src.draw(10)
        src.draw_counts(5)
        src.draw_counts_poissonized(2.5)
        assert src.lifetime_drawn == 18  # ceil(2.5) billed for the Poisson draw
        assert isinstance(src.lifetime_drawn, int)
        assert src.samples_drawn == src.lifetime_drawn


class TestBudgetCap:
    def test_cap_raises_typed_error(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0, max_samples=100)
        src.draw(90)
        with pytest.raises(SampleBudgetExceeded) as info:
            src.draw(11)
        assert info.value.requested == 11
        assert info.value.drawn == 90.0
        assert info.value.max_samples == 100.0
        # The failed draw served (and charged) nothing.
        assert src.samples_drawn == 90.0
        src.draw(10)  # exactly the cap is allowed

    def test_cap_applies_to_all_draw_kinds(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0, max_samples=10)
        with pytest.raises(SampleBudgetExceeded):
            src.draw_counts(11)
        with pytest.raises(SampleBudgetExceeded):
            src.draw_counts_poissonized(10.5)

    def test_reset_restores_headroom(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0, max_samples=10)
        src.draw(10)
        src.reset_budget()
        src.draw(10)
        assert src.lifetime_drawn == 20.0

    def test_uncapped_by_default(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0)
        assert src.max_samples is None
        src.draw(10**6)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            SampleSource(DiscreteDistribution.uniform(4), max_samples=0)

    def test_spawn_inherits_cap_with_fresh_headroom(self):
        src = SampleSource(DiscreteDistribution.uniform(4), rng=0, max_samples=10)
        src.draw(10)
        child = src.spawn()
        assert child.max_samples == 10.0
        child.draw(10)  # full headroom again
        with pytest.raises(SampleBudgetExceeded):
            child.draw(1)


class TestAsSource:
    def test_wraps_distribution(self):
        src = as_source(DiscreteDistribution.uniform(5), rng=0)
        assert isinstance(src, SampleSource)

    def test_passes_source_through(self):
        src = SampleSource(DiscreteDistribution.uniform(5), rng=0)
        assert as_source(src) is src

    def test_rejects_reseeding_a_source(self):
        src = SampleSource(DiscreteDistribution.uniform(5), rng=0)
        with pytest.raises(ValueError):
            as_source(src, rng=1)
