"""Tests for the distance library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.distances import (
    ak_distance,
    chi2_distance,
    empirical_tv,
    hellinger_distance,
    ks_distance,
    l1_distance,
    l2_distance,
    tv_chi2_inequality_gap,
    tv_distance,
)


def dirichlet_pair(n, seed):
    gen = np.random.default_rng(seed)
    return gen.dirichlet(np.ones(n)), gen.dirichlet(np.ones(n))


class TestTV:
    def test_known_value(self):
        p = np.array([0.5, 0.5, 0.0])
        q = np.array([0.25, 0.25, 0.5])
        assert tv_distance(p, q) == pytest.approx(0.5)
        assert l1_distance(p, q) == pytest.approx(1.0)

    def test_accepts_distribution_objects(self):
        a = DiscreteDistribution.uniform(4)
        b = DiscreteDistribution.point_mass(4, 0)
        assert tv_distance(a, b) == pytest.approx(0.75)

    def test_identity(self):
        p, _ = dirichlet_pair(10, 0)
        assert tv_distance(p, p) == 0.0

    def test_disjoint_supports_give_one(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert tv_distance(p, q) == pytest.approx(1.0)

    def test_restricted_tv(self):
        p = np.array([0.5, 0.3, 0.2])
        q = np.array([0.2, 0.3, 0.5])
        mask = np.array([True, False, False])
        assert tv_distance(p, q, mask) == pytest.approx(0.15)

    def test_domain_mismatch(self):
        with pytest.raises(ValueError):
            tv_distance(np.ones(3) / 3, np.ones(4) / 4)

    def test_mask_shape_check(self):
        with pytest.raises(ValueError):
            tv_distance(np.ones(3) / 3, np.ones(3) / 3, np.array([True, False]))


class TestChi2:
    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        expected = (0.25**2) / 0.25 + (0.25**2) / 0.75
        assert chi2_distance(p, q) == pytest.approx(expected)

    def test_asymmetric(self):
        p, q = dirichlet_pair(6, 1)
        assert chi2_distance(p, q) != pytest.approx(chi2_distance(q, p))

    def test_infinite_when_reference_zero(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        assert chi2_distance(p, q) == float("inf")

    def test_zero_zero_contributes_nothing(self):
        p = np.array([1.0, 0.0])
        q = np.array([1.0, 0.0])
        assert chi2_distance(p, q) == 0.0

    def test_restricted(self):
        p = np.array([0.5, 0.5, 0.0])
        q = np.array([0.25, 0.25, 0.5])
        mask = np.array([True, False, False])
        assert chi2_distance(p, q, mask) == pytest.approx(0.25)

    def test_second_form_identity(self):
        # dchi2 = -1 + sum p^2/q for full distributions.
        p, q = dirichlet_pair(8, 2)
        q = q + 1e-6
        q /= q.sum()
        alt = -1.0 + float(np.sum(p * p / q))
        assert chi2_distance(p, q) == pytest.approx(alt, abs=1e-9)


class TestOtherMetrics:
    def test_l2(self):
        assert l2_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(
            np.sqrt(2)
        )

    def test_ks_vs_tv_bound(self):
        p, q = dirichlet_pair(12, 3)
        assert ks_distance(p, q) <= tv_distance(p, q) + 1e-12

    def test_hellinger_range(self):
        p, q = dirichlet_pair(12, 4)
        h = hellinger_distance(p, q)
        assert 0 <= h <= 1

    def test_empirical_tv(self):
        c1 = np.array([10, 10])
        c2 = np.array([5, 15])
        assert empirical_tv(c1, c2) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            empirical_tv(np.array([0, 0]), c2)


class TestMetricProperties:
    @given(st.integers(2, 20), st.integers(0, 10_000))
    @settings(max_examples=80)
    def test_tv_axioms(self, n, seed):
        p, q = dirichlet_pair(n, seed)
        r, _ = dirichlet_pair(n, seed + 1)
        assert 0 <= tv_distance(p, q) <= 1 + 1e-12
        assert tv_distance(p, q) == pytest.approx(tv_distance(q, p))
        assert tv_distance(p, r) <= tv_distance(p, q) + tv_distance(q, r) + 1e-12

    @given(st.integers(2, 20), st.integers(0, 10_000))
    @settings(max_examples=80)
    def test_tv_le_half_sqrt_chi2(self, n, seed):
        # dTV^2 <= chi2/4 (Cauchy-Schwarz) — the inequality Algorithm 1's
        # completeness/soundness interplay rests on.
        p, q = dirichlet_pair(n, seed)
        q = (q + 1e-9) / (q + 1e-9).sum()
        assert tv_chi2_inequality_gap(p, q) >= -1e-12

    @given(st.integers(2, 20), st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_hellinger_vs_tv(self, n, seed):
        p, q = dirichlet_pair(n, seed)
        h, tv = hellinger_distance(p, q), tv_distance(p, q)
        assert h * h <= tv + 1e-12
        assert tv <= np.sqrt(2) * h + 1e-12


class TestAkDistance:
    def test_ell_n_equals_tv(self):
        p, q = dirichlet_pair(15, 5)
        assert ak_distance(p, q, 15) == pytest.approx(tv_distance(p, q))

    def test_ell_one_is_zero_for_distributions(self):
        # With partitions (not arbitrary interval collections), one interval
        # means the full domain, where two distributions always agree.
        p = np.array([0.6, 0.2, 0.2])
        q = np.array([0.2, 0.2, 0.6])
        assert ak_distance(p, q, 1) == pytest.approx(0.0)

    def test_ell_two_known_value(self):
        p = np.array([0.6, 0.2, 0.2])
        q = np.array([0.2, 0.2, 0.6])
        # Cut after the first point: |0.4| + |-0.4| = 0.8, halved.
        assert ak_distance(p, q, 2) == pytest.approx(0.4)

    def test_monotone_in_ell(self):
        p, q = dirichlet_pair(30, 6)
        values = [ak_distance(p, q, ell) for ell in (1, 2, 4, 8, 16, 30)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(tv_distance(p, q))

    def test_sawtooth_invisible_at_small_ell(self):
        # The Proposition 4.1 phenomenon: pair-level alternation has tiny
        # A_l distance for small l but large TV.
        n = 200
        pmf = np.full(n, 1.0 / n)
        pmf[0::2] += 0.5 / n
        pmf[1::2] -= 0.5 / n
        u = np.full(n, 1.0 / n)
        assert tv_distance(pmf, u) == pytest.approx(0.25)
        assert ak_distance(pmf, u, 4) < 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            ak_distance(np.ones(2) / 2, np.ones(2) / 2, 0)

    @given(st.integers(2, 8), st.integers(0, 5_000))
    @settings(max_examples=60)
    def test_matches_bruteforce(self, n, seed):
        from itertools import combinations

        p, q = dirichlet_pair(n, seed)
        d = np.concatenate(([0.0], np.cumsum(p - q)))
        for ell in range(1, n + 1):
            best = 0.0
            for r in range(1, ell + 1):
                for cuts in combinations(range(1, n), r - 1):
                    bounds = (0,) + cuts + (n,)
                    best = max(
                        best,
                        sum(abs(d[bounds[i + 1]] - d[bounds[i]]) for i in range(r)),
                    )
            assert ak_distance(p, q, ell) == pytest.approx(0.5 * best, abs=1e-9)
