"""Tests for the continuous-domain gridding adapter."""

import numpy as np
import pytest

from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.distributions.continuous import GriddedSource
from repro.distributions.sampling import SampleSource


def uniform_sampler(gen, m):
    return gen.random(m)


def step_sampler(gen, m):
    """Piecewise-constant density: 3x weight on [0, 0.25)."""
    u = gen.random(m)
    lo = gen.random(m) * 0.25
    hi = 0.25 + gen.random(m) * 0.75
    return np.where(u < 0.5, lo, hi)


def comb_sampler(gen, m):
    """Fine alternation: heavy on [2j/n', (2j+1)/n') cells at n'=512 scale."""
    base = gen.integers(0, 256, size=m) * 2
    jitter = gen.random(m)
    odd = gen.random(m) < 0.2
    cell = base + odd.astype(int)
    return (cell + jitter) / 512.0


class TestGriddedSource:
    def test_is_sample_source(self):
        src = GriddedSource(uniform_sampler, 64, rng=0)
        assert isinstance(src, SampleSource)
        assert src.n == 64

    def test_draw_in_range(self):
        src = GriddedSource(uniform_sampler, 100, rng=1)
        s = src.draw(5000)
        assert s.min() >= 0 and s.max() < 100

    def test_out_of_range_clipped(self):
        src = GriddedSource(lambda g, m: np.full(m, 5.0), 10, rng=2)
        assert np.all(src.draw(20) == 9)

    def test_budget_accounting(self):
        src = GriddedSource(uniform_sampler, 32, rng=3)
        src.draw(100)
        src.draw_counts(50)
        src.draw_counts_poissonized(25.0)
        assert src.samples_drawn == pytest.approx(175.0)
        src.reset_budget()
        assert src.samples_drawn == 0.0

    def test_poissonized_counts_independent_poisson(self):
        src = GriddedSource(uniform_sampler, 16, rng=4)
        counts = src.draw_counts_poissonized(1600.0)
        assert counts.shape == (16,)
        assert counts.sum() > 0

    def test_custom_range(self):
        src = GriddedSource(lambda g, m: g.uniform(-1, 1, m), 10, low=-1, high=1, rng=5)
        counts = src.draw_counts(5000)
        assert counts.sum() == 5000
        assert np.all(counts > 0)

    def test_spawn_independent(self):
        src = GriddedSource(uniform_sampler, 8, rng=6)
        child = src.spawn()
        src.draw(10)
        assert child.samples_drawn == 0.0

    def test_permuted_unsupported(self):
        src = GriddedSource(uniform_sampler, 8, rng=7)
        with pytest.raises(NotImplementedError):
            src.permuted(np.arange(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            GriddedSource(uniform_sampler, 0)
        with pytest.raises(ValueError):
            GriddedSource(uniform_sampler, 10, low=1.0, high=0.0)
        src = GriddedSource(uniform_sampler, 8, rng=8)
        with pytest.raises(ValueError):
            src.draw(-1)
        with pytest.raises(ValueError):
            src.draw_counts_poissonized(-1.0)


class TestEndToEndGridding:
    """The Section 2 claim: the testers work on gridded continuous data."""

    CFG = TesterConfig.practical()

    def test_uniform_density_accepted(self):
        src = GriddedSource(uniform_sampler, 1000, rng=0)
        assert test_histogram(src, 1, 0.3, config=self.CFG).accept

    def test_step_density_accepted_at_k2(self):
        hits = 0
        for seed in range(6):
            src = GriddedSource(step_sampler, 1000, rng=seed)
            hits += test_histogram(src, 2, 0.3, config=self.CFG).accept
        assert hits >= 4

    def test_comb_density_rejected_at_small_k(self):
        hits = 0
        for seed in range(6):
            src = GriddedSource(comb_sampler, 512, rng=seed)
            hits += not test_histogram(src, 4, 0.25, config=self.CFG).accept
        assert hits >= 4
