"""Tests for the distance-to-H_k dynamic programs."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.families import random_histogram
from repro.distributions.histogram import is_k_histogram
from repro.distributions.projection import (
    coarse_flattening_projection,
    exists_close_histogram,
    flattening_distance,
    histogram_distance_bounds,
    project_flattening,
    project_pmf,
    unconstrained_l1_distance,
)
from repro.util.intervals import Partition


def brute_force_flattening(pmf: np.ndarray, k: int) -> float:
    """Exhaustive minimum of tv(p, flatten) over <= k-interval partitions."""
    n = len(pmf)
    best = np.inf
    for r in range(1, min(k, n) + 1):
        for cuts in combinations(range(1, n), r - 1):
            bounds = (0,) + cuts + (n,)
            err = 0.0
            for a, b in zip(bounds, bounds[1:]):
                seg = pmf[a:b]
                err += np.abs(seg - seg.mean()).sum()
            best = min(best, 0.5 * err)
    return float(best)


def brute_force_median(pmf: np.ndarray, k: int) -> float:
    """Exhaustive minimum of half-l1 to <= k-piece functions (median fit)."""
    n = len(pmf)
    best = np.inf
    for r in range(1, min(k, n) + 1):
        for cuts in combinations(range(1, n), r - 1):
            bounds = (0,) + cuts + (n,)
            err = 0.0
            for a, b in zip(bounds, bounds[1:]):
                seg = np.sort(pmf[a:b])
                med = seg[(len(seg) - 1) // 2]
                err += np.abs(seg - med).sum()
            best = min(best, 0.5 * err)
    return float(best)


class TestExactDP:
    @given(st.integers(2, 9), st.integers(1, 5), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_flattening_matches_bruteforce(self, n, k, seed):
        pmf = np.random.default_rng(seed).dirichlet(np.ones(n))
        assert flattening_distance(pmf, k) == pytest.approx(
            brute_force_flattening(pmf, k), abs=1e-9
        )

    @given(st.integers(2, 8), st.integers(1, 4), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_unconstrained_matches_bruteforce(self, n, k, seed):
        pmf = np.random.default_rng(seed).dirichlet(np.ones(n))
        assert unconstrained_l1_distance(pmf, k) == pytest.approx(
            brute_force_median(pmf, k), abs=1e-9
        )

    def test_histogram_projects_to_zero(self):
        h = random_histogram(40, 4, rng=0)
        assert flattening_distance(h.to_pmf(), 4) == pytest.approx(0.0, abs=1e-12)
        assert unconstrained_l1_distance(h.to_pmf(), 4) == pytest.approx(0.0, abs=1e-12)

    def test_k_one_is_distance_to_uniform_mean(self):
        pmf = np.array([0.4, 0.1, 0.5])
        # Flattening with one piece = the uniform distribution.
        expected = 0.5 * np.abs(pmf - 1 / 3).sum()
        assert flattening_distance(pmf, 1) == pytest.approx(expected)

    def test_monotone_in_k(self):
        pmf = np.random.default_rng(7).dirichlet(np.ones(30))
        dists = [flattening_distance(pmf, k) for k in (1, 2, 4, 8, 16, 30)]
        assert all(a >= b - 1e-12 for a, b in zip(dists, dists[1:]))
        assert dists[-1] == pytest.approx(0.0, abs=1e-12)

    @given(st.integers(3, 9), st.integers(1, 4), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_sandwich_and_factor_two(self, n, k, seed):
        pmf = np.random.default_rng(seed).dirichlet(np.ones(n))
        lower, upper = histogram_distance_bounds(pmf, k)
        assert lower <= upper + 1e-12
        assert upper <= 2.0 * lower + 1e-9  # mean is a 2-approx of median

    def test_profile_matches_per_k_calls(self):
        from repro.distributions.projection import flattening_profile

        pmf = np.random.default_rng(11).dirichlet(np.ones(25))
        profile = flattening_profile(pmf, 8)
        for k in (1, 2, 5, 8):
            assert profile[k - 1] == pytest.approx(flattening_distance(pmf, k), abs=1e-9)

    def test_profile_monotone_and_extends_past_n(self):
        from repro.distributions.projection import flattening_profile

        pmf = np.random.default_rng(12).dirichlet(np.ones(10))
        profile = flattening_profile(pmf, 15)
        assert len(profile) == 15
        assert all(a >= b - 1e-12 for a, b in zip(profile, profile[1:]))
        assert profile[9] == pytest.approx(0.0, abs=1e-12)
        assert profile[14] == pytest.approx(0.0, abs=1e-12)

    def test_profile_validation(self):
        from repro.distributions.projection import flattening_profile

        with pytest.raises(ValueError):
            flattening_profile(np.ones(4) / 4, 0)

    def test_projection_object(self):
        pmf = np.random.default_rng(3).dirichlet(np.ones(20))
        proj = project_flattening(pmf, 3)
        assert proj.histogram.num_pieces <= 3
        hist_pmf = proj.histogram.to_pmf()
        assert 0.5 * np.abs(hist_pmf - pmf).sum() == pytest.approx(proj.distance)
        assert is_k_histogram(hist_pmf, 3)

    def test_project_pmf_is_distribution(self):
        pmf = np.random.default_rng(4).dirichlet(np.ones(15))
        d = project_pmf(pmf, 2)
        assert d.pmf.sum() == pytest.approx(1.0)
        assert is_k_histogram(d, 2)

    def test_masked_distance_ignores_masked_points(self):
        pmf = np.array([0.1, 0.1, 0.1, 0.7])
        mask = np.array([True, True, True, False])
        # With the outlier masked away, a 1-piece fit has no visible error
        # beyond the mean shift.
        masked = flattening_distance(pmf, 1, mask)
        unmasked = flattening_distance(pmf, 1)
        assert masked < unmasked

    def test_validation(self):
        with pytest.raises(ValueError):
            flattening_distance(np.ones(4) / 4, 0)
        with pytest.raises(ValueError):
            flattening_distance(np.ones(4) / 4, 2, np.array([True]))
        with pytest.raises(ValueError):
            flattening_distance(np.ones(4) / 4, 2, engine="nope")

    def test_size_caps_per_engine(self):
        # Over the dense cap: explicit dense refuses, auto routes to the
        # fast engine and succeeds (a uniform pmf is one flat piece).
        big = np.ones(9000) / 9000
        with pytest.raises(ValueError):
            flattening_distance(big, 2, engine="dense")
        assert flattening_distance(big, 2) == pytest.approx(0.0, abs=1e-12)


class TestCoarseDP:
    def test_matches_exact_when_base_is_singletons(self):
        pmf = np.random.default_rng(5).dirichlet(np.ones(12))
        base = Partition.singletons(12)
        coarse = coarse_flattening_projection(pmf, base, 3)
        assert coarse.distance == pytest.approx(flattening_distance(pmf, 3), abs=1e-9)

    def test_restricted_breakpoints_upper_bound_exact(self):
        pmf = np.random.default_rng(6).dirichlet(np.ones(24))
        base = Partition.equal_width(24, 6)
        coarse = coarse_flattening_projection(pmf, base, 3)
        # Searching a subclass can only do worse than the exact DP...
        assert coarse.distance >= flattening_distance(pmf, 3) - 1e-9
        # ...more pieces can only help...
        finer = coarse_flattening_projection(pmf, base, 6)
        assert finer.distance <= coarse.distance + 1e-9
        # ...and flattening on the full base is itself a candidate at k = 6.
        full_base_err = 0.5 * np.abs(pmf - base.flatten(pmf)).sum()
        assert finer.distance <= full_base_err + 1e-9

    def test_aligned_histogram_zero(self):
        h = random_histogram(48, 4, rng=1)
        base = Partition(np.union1d(h.partition.boundaries, Partition.equal_width(48, 8).boundaries))
        coarse = coarse_flattening_projection(h.to_pmf(), base, 4)
        assert coarse.distance == pytest.approx(0.0, abs=1e-12)

    def test_kept_mask_excludes_error(self):
        pmf = np.random.default_rng(8).dirichlet(np.ones(20))
        base = Partition.equal_width(20, 5)
        kept = np.array([True, True, False, True, True])
        with_mask = coarse_flattening_projection(pmf, base, 2, kept)
        without = coarse_flattening_projection(pmf, base, 2)
        assert with_mask.distance <= without.distance + 1e-12

    def test_piecewise_fast_path_matches_generic(self):
        # A pmf constant on the base hits the vectorised path; a jittered
        # copy hits the generic path; on the constant input both must agree.
        gen = np.random.default_rng(9)
        base = Partition.equal_width(30, 6)
        pmf = base.flatten(gen.dirichlet(np.ones(30)))
        kept = gen.random(6) > 0.3
        fast = coarse_flattening_projection(pmf, base, 3, kept)
        # Force the generic path by perturbing infinitesimally below tol.
        generic = coarse_flattening_projection(
            pmf + 0.0, Partition.singletons(30), 3, np.repeat(kept, base.lengths())
        )
        assert fast.distance == pytest.approx(generic.distance, abs=1e-9)

    def test_coarsening_path_is_upper_bound(self):
        # Force the coarsening (max_base below K) and check the reported
        # distance upper-bounds the uncoarsened one.
        gen = np.random.default_rng(10)
        n = 200
        pmf = gen.dirichlet(np.ones(n))
        base = Partition.singletons(n)
        exact = coarse_flattening_projection(pmf, base, 4)
        coarsened = coarse_flattening_projection(pmf, base, 4, max_base=32)
        assert coarsened.distance >= exact.distance - 1e-9

    def test_coarsening_near_lossless_for_histograms(self):
        h = random_histogram(400, 5, rng=11)
        base = Partition.singletons(400)
        proj = coarse_flattening_projection(h.to_pmf(), base, 5, max_base=64)
        assert proj.distance == pytest.approx(0.0, abs=1e-6)

    def test_validation(self):
        base = Partition.equal_width(10, 2)
        with pytest.raises(ValueError):
            coarse_flattening_projection(np.ones(8) / 8, base, 1)
        with pytest.raises(ValueError):
            coarse_flattening_projection(np.ones(10) / 10, base, 0)
        with pytest.raises(ValueError):
            coarse_flattening_projection(np.ones(10) / 10, base, 1, np.array([True]))


class TestExistsClose:
    def test_accepts_true_histogram(self):
        h = random_histogram(60, 3, rng=2)
        base = Partition(np.union1d(h.partition.boundaries, np.arange(0, 61, 5)))
        kept = np.ones(len(base), dtype=bool)
        assert exists_close_histogram(h.to_pmf(), base, 3, kept, tolerance=1e-9)

    def test_rejects_far_distribution(self):
        gen = np.random.default_rng(12)
        pmf = gen.dirichlet(np.full(40, 0.2))
        base = Partition.singletons(40)
        kept = np.ones(40, dtype=bool)
        true_dist = flattening_distance(pmf, 2)
        assert true_dist > 0.05
        assert not exists_close_histogram(pmf, base, 2, kept, tolerance=true_dist / 2)

    def test_negative_tolerance_raises(self):
        with pytest.raises(ValueError):
            exists_close_histogram(
                np.ones(4) / 4, Partition.trivial(4), 1, np.array([True]), -0.1
            )
