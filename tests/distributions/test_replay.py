"""Tests for the dataset-backed ReplaySource."""

import numpy as np
import pytest

from repro.distributions.replay import InsufficientSamples, ReplaySource


def dataset(size=1000, n=10, seed=0):
    return np.random.default_rng(seed).integers(0, n, size=size)


class TestConstruction:
    def test_infers_domain(self):
        src = ReplaySource(np.array([0, 3, 7]), shuffle=False)
        assert src.n == 8

    def test_explicit_domain(self):
        src = ReplaySource(np.array([0, 1]), n=100)
        assert src.n == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplaySource(np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            ReplaySource(np.array([-1, 2]))
        with pytest.raises(ValueError):
            ReplaySource(np.array([5]), n=3)


class TestDrawing:
    def test_serves_exact_multiset(self):
        data = dataset(500)
        src = ReplaySource(data, rng=0)
        served = src.draw(500)
        assert np.array_equal(np.sort(served), np.sort(data))

    def test_no_shuffle_preserves_order(self):
        data = np.array([3, 1, 4, 1, 5])
        src = ReplaySource(data, shuffle=False)
        assert np.array_equal(src.draw(3), [3, 1, 4])
        assert np.array_equal(src.draw(2), [1, 5])

    def test_counts(self):
        src = ReplaySource(np.array([0, 0, 1, 2]), shuffle=False)
        assert src.draw_counts(4).tolist() == [2, 1, 1]

    def test_exhaustion_raises(self):
        src = ReplaySource(dataset(100), rng=1)
        src.draw(90)
        with pytest.raises(InsufficientSamples) as excinfo:
            src.draw(20)
        assert excinfo.value.remaining == 10
        # The failed draw consumed nothing.
        assert src.remaining == 10

    def test_poissonized_consumes_realised(self):
        src = ReplaySource(dataset(10_000), rng=2)
        counts = src.draw_counts_poissonized(100.0)
        assert counts.sum() == 10_000 - src.remaining
        assert src.samples_drawn == pytest.approx(100.0)

    def test_budget_tracking(self):
        src = ReplaySource(dataset(200), rng=3)
        src.draw(50)
        src.draw_counts(30)
        assert src.samples_drawn == 80.0
        src.reset_budget()
        assert src.samples_drawn == 0.0

    def test_rewind(self):
        src = ReplaySource(dataset(50), rng=4)
        first = src.draw(50).copy()
        src.rewind()
        assert np.array_equal(src.draw(50), first)

    def test_negative_draws(self):
        src = ReplaySource(dataset(10), rng=5)
        with pytest.raises(ValueError):
            src.draw(-1)
        with pytest.raises(ValueError):
            src.draw_counts_poissonized(-1.0)


class TestStructural:
    def test_spawn_unsupported(self):
        with pytest.raises(NotImplementedError):
            ReplaySource(dataset(10), rng=6).spawn()

    def test_permuted_relabels_remaining(self):
        src = ReplaySource(np.array([0, 1, 2, 0]), n=3, shuffle=False)
        src.draw(1)  # consume the leading 0
        sigma = np.array([2, 0, 1])
        perm = src.permuted(sigma)
        assert np.array_equal(perm.draw(3), [0, 1, 2])  # sigma([1,2,0])

    def test_permuted_validation(self):
        src = ReplaySource(dataset(10, n=4), rng=7)
        with pytest.raises(ValueError):
            src.permuted(np.array([0, 0, 1, 2]))


class TestEndToEnd:
    def test_tester_runs_on_dataset(self):
        from repro.core.budget import algorithm1_budget
        from repro.core.config import TesterConfig
        from repro.core.tester import test_histogram
        from repro.distributions import families

        # Small domain keeps the dataset around 100 MB at the full budget.
        cfg = TesterConfig.practical()
        dist = families.staircase(300, 3).to_distribution()
        size = int(algorithm1_budget(300, 3, 0.35, cfg)) + 1000
        data = dist.sample(size, rng=0)
        verdict = test_histogram(ReplaySource(data, n=300, rng=1), 3, 0.35, config=cfg)
        assert verdict.accept
