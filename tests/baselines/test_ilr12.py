"""Tests for the ILR12-style bisection baseline."""

import numpy as np
import pytest

from repro.baselines.ilr12 import ilr12_budget_practical, ilr12_test
from repro.distributions import families


N, K, EPS = 4096, 5, 0.3


class TestBudget:
    def test_formula_scalings(self):
        assert ilr12_budget_practical(4 * N, K, EPS) > ilr12_budget_practical(N, K, EPS)
        assert ilr12_budget_practical(N, K, 0.1) > ilr12_budget_practical(N, K, 0.3)
        with pytest.raises(ValueError):
            ilr12_budget_practical(1, K, EPS)


class TestCompleteness:
    def test_staircase(self):
        dist = families.staircase(N, K).to_distribution()
        hits = sum(ilr12_test(dist, K, EPS, rng=s).accept for s in range(12))
        assert hits >= 9

    def test_uniform(self):
        hits = sum(ilr12_test(families.uniform(N), 1, EPS, rng=s).accept for s in range(12))
        assert hits >= 9

    def test_random_histograms(self):
        hits = 0
        for s in range(12):
            gen = np.random.default_rng(s)
            dist = families.random_histogram(N, K, gen, min_width=N // (8 * K)).to_distribution()
            hits += ilr12_test(dist, K, EPS, rng=gen).accept
        assert hits >= 9


class TestSoundness:
    def test_sawtooth(self):
        hits = 0
        for s in range(12):
            dist = families.far_from_hk(N, K, EPS, rng=s)
            hits += not ilr12_test(dist, K, EPS, rng=100 + s).accept
        assert hits >= 9

    def test_strong_comb_vs_k1(self):
        dist = families.two_level_comb(N, teeth=64, contrast=4.0)
        hits = sum(not ilr12_test(dist, 1, EPS, rng=s).accept for s in range(12))
        assert hits >= 9


class TestMechanics:
    def test_trivial_k(self):
        v = ilr12_test(families.uniform(16), 16, 0.5, rng=0)
        assert v.accept

    def test_verdict_fields(self):
        v = ilr12_test(families.staircase(N, K).to_distribution(), K, EPS, rng=1)
        assert v.flat_leaves <= v.leaf_budget
        assert v.samples_used > 0

    def test_explicit_sample_budget(self):
        v = ilr12_test(families.uniform(N), 1, EPS, num_samples=5000, rng=2)
        assert v.samples_used == 5000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ilr12_test(families.uniform(N), 0, EPS)
        with pytest.raises(ValueError):
            ilr12_test(families.uniform(N), 2, 0.0)
