"""Tests for the collision/ℓ2 substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.l2 import (
    collision_count,
    conditional_flatness_test,
    l2_norm_squared_estimate,
    uniformity_l2_gap,
)
from repro.distributions.discrete import DiscreteDistribution


class TestCollisionCount:
    def test_known_values(self):
        assert collision_count(np.array([2, 0, 1])) == 1.0
        assert collision_count(np.array([3, 3])) == 6.0
        assert collision_count(np.array([1, 1, 1])) == 0.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            collision_count(np.array([-1, 2]))

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_matches_pair_enumeration(self, counts):
        counts = np.asarray(counts)
        expected = sum(c * (c - 1) // 2 for c in counts)
        assert collision_count(counts) == expected


class TestL2Estimate:
    def test_unbiased_for_uniform(self):
        """E[estimate] = ||D||^2; averaged over batches (flake < 1e-6 at
        these margins)."""
        n, m = 50, 400
        d = DiscreteDistribution.uniform(n)
        gen = np.random.default_rng(0)
        estimates = [
            l2_norm_squared_estimate(d.sample_counts(m, gen)) for _ in range(300)
        ]
        assert np.mean(estimates) == pytest.approx(1.0 / n, rel=0.1)

    def test_unbiased_for_skewed(self):
        pmf = np.array([0.5, 0.25, 0.25])
        d = DiscreteDistribution(pmf)
        gen = np.random.default_rng(1)
        estimates = [
            l2_norm_squared_estimate(d.sample_counts(200, gen)) for _ in range(300)
        ]
        assert np.mean(estimates) == pytest.approx(float(pmf @ pmf), rel=0.05)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            l2_norm_squared_estimate(np.array([1, 0]))


class TestFlatness:
    def test_gap_zero_for_uniform_in_expectation(self):
        n, m = 20, 500
        d = DiscreteDistribution.uniform(n)
        gen = np.random.default_rng(2)
        gaps = [uniformity_l2_gap(d.sample_counts(m, gen), n) for _ in range(200)]
        assert abs(np.mean(gaps)) < 0.2 / n

    def test_gap_positive_for_spiky(self):
        pmf = np.zeros(20)
        pmf[0] = 1.0
        d = DiscreteDistribution(pmf)
        gap = uniformity_l2_gap(d.sample_counts(100, rng=0), 20)
        assert gap == pytest.approx(1.0 - 1 / 20)

    def test_conditional_flatness_accepts_flat(self):
        d = DiscreteDistribution.uniform(64)
        counts = d.sample_counts(5000, rng=3)
        assert conditional_flatness_test(counts, 64, tolerance=1.0 / 64)

    def test_conditional_flatness_rejects_spike(self):
        pmf = np.full(64, 0.5 / 63)
        pmf[10] = 0.5
        pmf /= pmf.sum()
        counts = DiscreteDistribution(pmf).sample_counts(5000, rng=4)
        assert not conditional_flatness_test(counts, 64, tolerance=1.0 / 64)

    def test_too_few_samples_defaults_flat(self):
        assert conditional_flatness_test(np.array([1, 0]), 2, tolerance=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniformity_l2_gap(np.array([2, 2]), 0)
        with pytest.raises(ValueError):
            conditional_flatness_test(np.array([2, 2]), 2, tolerance=-1.0)
