"""Tests for the known-partition (DK16 setting) tester."""

import numpy as np
import pytest

from repro.baselines.known_partition import known_partition_budget, test_known_partition
from repro.distributions import families
from repro.distributions.discrete import DiscreteDistribution
from repro.util.intervals import Partition


N, EPS = 2000, 0.3


class TestKnownPartition:
    def test_accepts_aligned_histogram(self):
        hist = families.staircase(N, 6)
        dist = hist.to_distribution()
        hits = sum(
            test_known_partition(dist, hist.partition, EPS, rng=s).accept for s in range(10)
        )
        assert hits >= 8

    def test_accepts_coarser_truth(self):
        # D constant everywhere is a histogram on ANY partition.
        part = Partition.equal_width(N, 9)
        hits = sum(
            test_known_partition(families.uniform(N), part, EPS, rng=s).accept
            for s in range(10)
        )
        assert hits >= 8

    def test_rejects_misaligned(self):
        # Strong steps misaligned with the given partition.
        hist = families.staircase(N, 8, ratio=3.0)
        # Offset partition: borders shifted by half a band.
        shift = N // 16
        bounds = np.clip(hist.partition.boundaries + shift, 0, N)
        bounds[0], bounds[-1] = 0, N
        part = Partition(np.unique(bounds))
        dist = hist.to_distribution()
        hits = sum(
            not test_known_partition(dist, part, EPS, rng=s).accept for s in range(10)
        )
        assert hits >= 8

    def test_rejects_sawtooth_within_pieces(self):
        part = Partition.equal_width(N, 4)
        dist = families.far_from_hk(N, 4, EPS, rng=0)
        hits = sum(
            not test_known_partition(dist, part, EPS, rng=s).accept for s in range(10)
        )
        assert hits >= 8

    def test_budget_cheaper_than_full_problem(self):
        from repro.core.budget import algorithm1_budget

        assert known_partition_budget(10**6, 8, 0.2) < algorithm1_budget(10**6, 8, 0.2)

    def test_fields_and_accounting(self):
        hist = families.staircase(N, 3)
        v = test_known_partition(hist.to_distribution(), hist.partition, EPS, rng=1)
        assert v.samples_used > 0
        assert v.learned.partition == hist.partition

    def test_validation(self):
        part = Partition.equal_width(100, 4)
        with pytest.raises(ValueError):
            test_known_partition(families.uniform(100), part, 0.0)
        with pytest.raises(ValueError):
            test_known_partition(families.uniform(200), part, 0.3)
