"""Tests for the CDGR16-style testing-by-learning baseline."""

import numpy as np
import pytest

from repro.baselines.cdgr16 import cdgr16_budget_practical, cdgr16_test
from repro.distributions import families


N, K, EPS = 4096, 5, 0.3


class TestBudget:
    def test_scalings(self):
        assert cdgr16_budget_practical(N, K, 0.1) > cdgr16_budget_practical(N, K, 0.3)
        assert cdgr16_budget_practical(4 * N, K, EPS) == pytest.approx(
            2.2 * cdgr16_budget_practical(N, K, EPS), rel=0.15
        )  # sqrt(n)·log n growth

    def test_validation(self):
        with pytest.raises(ValueError):
            cdgr16_budget_practical(1, K, EPS)


class TestCompleteness:
    def test_staircase(self):
        dist = families.staircase(N, K).to_distribution()
        hits = sum(cdgr16_test(dist, K, EPS, rng=s).accept for s in range(10))
        assert hits >= 7

    def test_uniform(self):
        hits = sum(cdgr16_test(families.uniform(N), 1, EPS, rng=s).accept for s in range(10))
        assert hits >= 7


class TestSoundness:
    def test_sawtooth_caught_by_collisions(self):
        hits = 0
        for s in range(10):
            dist = families.far_from_hk(N, K, EPS, rng=s)
            hits += not cdgr16_test(dist, K, EPS, rng=100 + s).accept
        assert hits >= 7

    def test_mass_displacement_caught_by_ak(self):
        # A 16-step strong staircase vs k=2: interval-level displacement.
        dist = families.staircase(N, 16, ratio=2.0).to_distribution()
        from repro.distributions.projection import coarse_flattening_projection
        from repro.util.intervals import Partition

        hits = sum(not cdgr16_test(dist, 2, 0.2, rng=s).accept for s in range(10))
        assert hits >= 7


class TestMechanics:
    def test_verdict_fields(self):
        v = cdgr16_test(families.uniform(N), 2, EPS, rng=0)
        assert v.ak_threshold > 0 and v.collision_threshold > 0
        assert v.learned.num_pieces <= 2
        assert v.samples_used > 0

    def test_explicit_samples(self):
        v = cdgr16_test(families.uniform(N), 2, EPS, num_samples=4000, rng=1)
        assert v.samples_used > 4000  # learning stage comes on top

    def test_validation(self):
        with pytest.raises(ValueError):
            cdgr16_test(families.uniform(N), 0, EPS)
        with pytest.raises(ValueError):
            cdgr16_test(families.uniform(N), 2, 1.5)
