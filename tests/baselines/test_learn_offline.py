"""Tests for the Θ(n)-sample plug-in baseline."""

import pytest

from repro.baselines.learn_offline import (
    learn_offline_budget_practical,
    learn_offline_test,
)
from repro.distributions import families


class TestBudget:
    def test_linear_in_n(self):
        assert learn_offline_budget_practical(2000, 0.2) == pytest.approx(
            2 * learn_offline_budget_practical(1000, 0.2)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            learn_offline_budget_practical(0, 0.2)


class TestSmallDomainExactDP:
    N, K, EPS = 600, 4, 0.3

    def test_completeness(self):
        dist = families.staircase(self.N, self.K).to_distribution()
        hits = sum(learn_offline_test(dist, self.K, self.EPS, rng=s).accept for s in range(8))
        assert hits >= 6

    def test_soundness(self):
        hits = 0
        for s in range(8):
            dist = families.far_from_hk(self.N, self.K, self.EPS, rng=s)
            hits += not learn_offline_test(dist, self.K, self.EPS, rng=50 + s).accept
        assert hits >= 6


class TestLargeDomainGridPath:
    N, K, EPS = 5000, 4, 0.3

    def test_completeness(self):
        dist = families.staircase(self.N, self.K).to_distribution()
        hits = sum(learn_offline_test(dist, self.K, self.EPS, rng=s).accept for s in range(6))
        assert hits >= 4

    def test_soundness_sawtooth(self):
        # The fine-grained perturbation must still be visible through the
        # within-cell deviation term.
        hits = 0
        for s in range(6):
            dist = families.far_from_hk(self.N, self.K, self.EPS, rng=s)
            hits += not learn_offline_test(dist, self.K, self.EPS, rng=60 + s).accept
        assert hits >= 4

    def test_sparse_support_histogram_accepted(self):
        # Regression: sparse supports need singleton isolation in the grid.
        dist = families.sparse_support(3000, 10, rng=0)
        v = learn_offline_test(dist, 21, 0.3, rng=1)
        assert v.accept


class TestMechanics:
    def test_fields(self):
        v = learn_offline_test(families.uniform(500), 2, 0.4, rng=0)
        assert v.threshold == pytest.approx(0.2)
        assert v.plugin_distance >= 0
        assert v.samples_used == learn_offline_budget_practical(500, 0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            learn_offline_test(families.uniform(100), 0, 0.3)
        with pytest.raises(ValueError):
            learn_offline_test(families.uniform(100), 2, 0.0)
