"""Tests for the k=1 uniformity testers."""

import numpy as np
import pytest

from repro.baselines.uniformity import (
    chi2_uniformity_test,
    collision_budget,
    collision_uniformity_test,
)
from repro.distributions import families
from repro.distributions.sampling import SampleSource
from repro.lowerbounds.paninski import paninski_instance


N, EPS = 2000, 0.2


class TestCollisionTester:
    def test_budget_formula(self):
        assert collision_budget(10_000, 0.1) == pytest.approx(8 * 100 / 0.01, rel=0.01)
        with pytest.raises(ValueError):
            collision_budget(0, 0.1)
        with pytest.raises(ValueError):
            collision_budget(10, 2.0)

    def test_accepts_uniform(self):
        hits = sum(
            collision_uniformity_test(families.uniform(N), EPS, rng=s).accept
            for s in range(15)
        )
        assert hits >= 12

    def test_rejects_paninski(self):
        # Q_eps at c=6 is >= 2*eps far from uniform.
        hits = sum(
            not collision_uniformity_test(paninski_instance(N, EPS, rng=s, c=4.0), EPS, rng=50 + s).accept
            for s in range(15)
        )
        assert hits >= 12

    def test_rejects_point_mass_mix(self):
        from repro.distributions.discrete import DiscreteDistribution

        heavy = DiscreteDistribution.point_mass(N, 0).mix(families.uniform(N), 0.5)
        assert not collision_uniformity_test(heavy, EPS, rng=0).accept

    def test_fields(self):
        v = collision_uniformity_test(families.uniform(N), EPS, num_samples=500, rng=1)
        assert v.samples_used == 500.0
        assert v.threshold == pytest.approx((1 + 2 * EPS**2) / N)

    def test_source_budget_accounting(self):
        src = SampleSource(families.uniform(N), rng=2)
        collision_uniformity_test(src, EPS)
        assert src.samples_drawn == collision_budget(N, EPS)


class TestChi2Uniformity:
    def test_accepts_uniform(self):
        hits = sum(
            chi2_uniformity_test(families.uniform(N), EPS, rng=s).accept for s in range(15)
        )
        assert hits >= 12

    def test_rejects_far(self):
        hits = sum(
            not chi2_uniformity_test(paninski_instance(N, EPS, rng=s, c=4.0), EPS, rng=99 + s).accept
            for s in range(15)
        )
        assert hits >= 12

    def test_rejects_zipf(self):
        assert not chi2_uniformity_test(families.zipf(N, 1.0), EPS, rng=3).accept
