"""Tests for the reduction-based k-modality tester."""

import pytest

from repro.baselines.kmodal_tester import test_k_modal
from repro.distributions import families
from repro.distributions.kmodal import random_k_modal
from repro.distributions.sampling import SampleSource

N, EPS = 2500, 0.3


class TestCompleteness:
    def test_monotone_at_k0(self):
        dist = families.staircase(N, 8, ratio=1.6).to_distribution()
        hits = sum(test_k_modal(dist, 0, EPS, rng=s).accept for s in range(8))
        assert hits >= 6

    def test_uniform_at_k0(self):
        assert test_k_modal(families.uniform(N), 0, EPS, rng=0).accept

    def test_random_k_modal(self):
        hits = 0
        for s in range(8):
            dist = random_k_modal(N, 2, rng=s)
            hits += test_k_modal(dist, 3, EPS, rng=100 + s).accept
        assert hits >= 6

    def test_bimodal_mixture(self):
        dist = families.discretized_gaussian_mixture(N, [0.3, 0.7], [0.05, 0.08])
        hits = sum(test_k_modal(dist, 3, EPS, rng=s).accept for s in range(8))
        assert hits >= 6


class TestSoundness:
    def test_sawtooth_far_from_k_modal(self):
        # Pairwise alternation is far from every O(1)-modal distribution.
        hits = 0
        for s in range(8):
            dist = families.far_from_hk(N, 50, EPS, rng=s)
            hits += not test_k_modal(dist, 3, EPS, rng=200 + s).accept
        assert hits >= 6

    def test_strong_multimodal_vs_k0(self):
        # 8 strong humps tested for monotonicity.
        dist = families.discretized_gaussian_mixture(
            N,
            centers=[0.1, 0.22, 0.35, 0.47, 0.6, 0.72, 0.85, 0.95],
            widths=[0.02] * 8,
        )
        hits = sum(not test_k_modal(dist, 0, EPS, rng=s).accept for s in range(8))
        assert hits >= 6


class TestMechanics:
    def test_verdict_fields(self):
        v = test_k_modal(families.uniform(N), 1, EPS, rng=0)
        assert v.pieces_tested >= 1
        assert v.histogram_verdict is not None
        assert v.samples_used > 0

    def test_budget_accounting(self):
        src = SampleSource(families.uniform(N), rng=1)
        v = test_k_modal(src, 0, EPS)
        assert v.samples_used == pytest.approx(src.samples_drawn)

    def test_validation(self):
        with pytest.raises(ValueError):
            test_k_modal(families.uniform(N), -1, EPS)
        with pytest.raises(ValueError):
            test_k_modal(families.uniform(N), 1, 0.0)
