"""Backend-agnostic Verdict and accounting invariants (Hypothesis).

Whatever the backend, a tester run must keep its books: the verdict's
``samples_used`` equals the sum of its per-stage attributions, the sample
ledger reconciles to integer exactness on *every* exit path (verdicts,
degradations, and evictions alike — exercised through the serve chaos
drill, which is the only place the failure paths occur organically), and a
fixed ``SeedSequence`` replays to an identical verdict.  These are the
properties the backend knob is *not* allowed to change, which is what makes
``backend={pods16,cdkl22}`` a safe extension point.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends import BACKENDS
from repro.core.config import TesterConfig
from repro.core.tester import test_histogram
from repro.experiments.workloads import make
from repro.serve import ChaosConfig, ServiceConfig, TesterService, build_requests
from repro.serve.session import SessionState

CONFIG = TesterConfig.practical()

WORKLOADS = ("staircase", "random-histogram", "uniform", "sawtooth-uniform", "zipf")


@st.composite
def histogram_cases(draw):
    """(dist, k, eps, seed, backend) spanning plugin and full-pipeline regimes."""
    n = draw(st.sampled_from([64, 300, 700, 1600]))
    k = draw(st.integers(min_value=1, max_value=6))
    eps = draw(st.sampled_from([0.25, 0.3, 0.4]))
    workload = draw(st.sampled_from(WORKLOADS))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    backend = draw(st.sampled_from(BACKENDS))
    dist = make(workload, n, k, eps, rng=np.random.default_rng(seed))
    return dist, k, eps, seed, backend


class TestVerdictInvariants:
    @given(histogram_cases())
    @settings(max_examples=40, deadline=None)
    def test_samples_used_equals_stage_sum(self, case):
        dist, k, eps, seed, backend = case
        verdict = test_histogram(dist, k, eps, config=CONFIG, rng=seed + 1, backend=backend)
        assert verdict.samples_used == sum(verdict.stage_samples.values())
        assert all(s >= 0 for s in verdict.stage_samples.values())

    @given(histogram_cases())
    @settings(max_examples=20, deadline=None)
    def test_seedsequence_replay_is_identical(self, case):
        dist, k, eps, seed, backend = case
        first = test_histogram(dist, k, eps, config=CONFIG, rng=seed + 1, backend=backend)
        second = test_histogram(dist, k, eps, config=CONFIG, rng=seed + 1, backend=backend)
        assert first.accept == second.accept
        assert first.stage == second.stage
        assert first.reason == second.reason
        assert first.samples_used == second.samples_used
        assert first.stage_samples == second.stage_samples

    @given(histogram_cases())
    @settings(max_examples=20, deadline=None)
    def test_cdkl22_never_runs_a_sieve(self, case):
        dist, k, eps, seed, _ = case
        verdict = test_histogram(dist, k, eps, config=CONFIG, rng=seed + 1, backend="cdkl22")
        # The trimmed final statistic replaces the sieve: no samples may ever
        # be attributed to a sieve stage under cdkl22, in either regime.
        assert "sieve" not in verdict.stage_samples


@st.composite
def drill_cases(draw):
    """Small chaos drills spanning clean and faulty populations per backend."""
    backend = draw(st.sampled_from(BACKENDS + ("mixed",)))
    sessions = draw(st.integers(min_value=4, max_value=10))
    fault_rate = draw(st.sampled_from([0.0, 0.3, 0.6]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return ChaosConfig(
        sessions=sessions,
        fault_rate=fault_rate,
        seed=seed,
        backend=backend,
    )


def run_drill(chaos: ChaosConfig):
    service = TesterService(ServiceConfig(tester=CONFIG))
    for request in build_requests(chaos):
        service.submit(request)
    return service.run()


class TestServeExitPaths:
    """Ledger accounting must reconcile on every terminal state, not just
    clean verdicts — degradations and evictions abort mid-stage, which is
    exactly where a backend with a new stage layout would leak samples."""

    @given(drill_cases())
    @settings(max_examples=15, deadline=None)
    def test_every_exit_path_reconciles(self, chaos):
        report = run_drill(chaos)
        assert len(report.outcomes) == chaos.sessions
        for outcome in report.outcomes:
            assert outcome.state in SessionState.TERMINAL + ("REJECTED",)
            assert outcome.samples_total == sum(outcome.attempt_samples)
            assert all(
                isinstance(s, int) and s >= 0 for s in outcome.attempt_samples
            )
            if outcome.state == SessionState.EVICTED:
                # An evicted session burned real attempts; each one still
                # reconciled its ledger before landing in attempt_samples.
                assert outcome.attempts == len(outcome.attempt_samples) >= 1

    @given(drill_cases())
    @settings(max_examples=8, deadline=None)
    def test_drill_replays_byte_identically(self, chaos):
        first = run_drill(chaos)
        second = run_drill(chaos)
        assert first.canonical_json() == second.canonical_json()


@pytest.mark.parametrize("backend", BACKENDS)
def test_degraded_and_evicted_paths_reconcile(backend):
    """Deterministic pin of the two non-verdict exits for each backend: a
    fault-heavy drill must produce at least one eviction and no session may
    escape the terminal-state set."""
    chaos = ChaosConfig(sessions=10, fault_rate=0.5, seed=7, backend=backend)
    report = run_drill(chaos)
    states = {outcome.state for outcome in report.outcomes}
    assert SessionState.EVICTED in states
    for outcome in report.outcomes:
        assert outcome.state in SessionState.TERMINAL + ("REJECTED",)
        assert outcome.samples_total == sum(outcome.attempt_samples)
