"""Property-based tests for the interval algebra (``repro.util.intervals``).

Hypothesis generates arbitrary partitions of small domains and checks the
algebraic laws the rest of the pipeline leans on: flattening preserves
per-piece mass and is an idempotent projection, point location agrees with
the vectorised membership map, refinement is a join, and ``cover``/``runs``
describe the same decomposition.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intervals import Interval, Partition, cover, runs

MAX_N = 64


@st.composite
def partitions(draw, max_n=MAX_N):
    n = draw(st.integers(min_value=1, max_value=max_n))
    inner = draw(st.sets(st.integers(min_value=1, max_value=max(1, n - 1)), max_size=n - 1))
    return Partition(sorted({0, n} | inner))


@st.composite
def partitions_with_values(draw):
    partition = draw(partitions())
    values = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False),
            min_size=partition.n,
            max_size=partition.n,
        )
    )
    return partition, np.asarray(values, dtype=np.float64)


class TestFlatten:
    @given(partitions_with_values())
    def test_preserves_per_piece_mass(self, case):
        partition, values = case
        flat = partition.flatten(values)
        np.testing.assert_allclose(
            partition.aggregate(flat), partition.aggregate(values), atol=1e-9
        )

    @given(partitions_with_values())
    def test_idempotent(self, case):
        partition, values = case
        once = partition.flatten(values)
        np.testing.assert_allclose(partition.flatten(once), once, atol=1e-12)

    @given(partitions_with_values())
    def test_constant_on_each_piece(self, case):
        partition, values = case
        flat = partition.flatten(values)
        for interval in partition:
            piece = flat[interval.slice()]
            assert np.all(piece == piece[0])

    @given(partitions())
    def test_aggregate_of_ones_is_lengths(self, partition):
        np.testing.assert_array_equal(
            partition.aggregate(np.ones(partition.n)), partition.lengths()
        )


class TestStructure:
    @given(partitions())
    def test_intervals_tile_the_domain(self, partition):
        assert sum(len(iv) for iv in partition) == partition.n
        assert int(partition.lengths().sum()) == partition.n

    @given(partitions())
    def test_membership_agrees_with_locate(self, partition):
        labels = partition.membership()
        for i in range(partition.n):
            assert labels[i] == partition.locate(i)
            assert i in partition[labels[i]]

    @given(partitions())
    def test_from_intervals_round_trip(self, partition):
        assert Partition.from_intervals(list(partition)) == partition

    @given(partitions(), st.data())
    def test_refine_is_a_join(self, partition, data):
        inner = data.draw(
            st.sets(st.integers(min_value=1, max_value=max(1, partition.n - 1)))
        )
        other = Partition(sorted({0, partition.n} | inner))
        merged = partition.refine(other)
        assert merged.is_refinement_of(partition)
        assert merged.is_refinement_of(other)
        assert partition.refine(partition) == partition
        assert partition.is_refinement_of(Partition.trivial(partition.n))
        assert Partition.singletons(partition.n).is_refinement_of(partition)

    @given(partitions_with_values(), st.data())
    def test_refinement_flattening_composes(self, case, data):
        coarse, values = case
        extra = data.draw(
            st.sets(st.integers(min_value=1, max_value=max(1, coarse.n - 1)))
        )
        fine = Partition(sorted(set(coarse.boundaries.tolist()) | extra | {0, coarse.n}))
        assert fine.is_refinement_of(coarse)
        np.testing.assert_allclose(
            coarse.flatten(fine.flatten(values)), coarse.flatten(values), atol=1e-9
        )


class TestCoverRuns:
    @given(st.sets(st.integers(min_value=0, max_value=200)))
    def test_cover_counts_runs(self, indices):
        assert cover(indices) == len(runs(indices))

    @given(st.sets(st.integers(min_value=0, max_value=200)))
    def test_runs_tile_exactly_the_set(self, indices):
        segments = runs(indices)
        recovered = sorted(i for iv in segments for i in iv)
        assert recovered == sorted(indices)
        # maximality: consecutive runs never touch
        for a, b in zip(segments, segments[1:]):
            assert a.stop < b.start

    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=1, max_value=20))
    def test_single_block_has_cover_one(self, start, length):
        block = range(start, start + length)
        assert cover(block) == 1
        assert runs(block) == [Interval(start, start + length)]
