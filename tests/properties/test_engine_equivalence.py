"""Golden equivalence: the fast oracle engine must match the dense DP.

The fast engine (:mod:`repro.distributions.projection_engine`) prunes its
candidate space with admissible lower bounds and a verified two-pass DP; a
single inadmissible bound silently corrupts distances.  These tests pin it
against the dense cost-matrix reference on random pmfs, masks (including
fully masked domains), piece counts, and the piecewise-constant coarse
path — agreement to 1e-12, well below any statistical tolerance.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.distributions.projection import (
    coarse_flattening_projection,
    flattening_distance,
    flattening_profile,
    project_flattening,
    unconstrained_l1_distance,
)
from repro.kernels import available_kernels, use_kernel
from repro.util.intervals import Partition

ATOL = 1e-12


@st.composite
def masked_pmfs(draw, max_n=96):
    """(pmf, mask, k): weights with zeros and spikes, any mask incl. empty."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    weights = np.asarray(
        draw(
            st.lists(
                st.one_of(st.just(0.0), st.floats(1e-6, 100.0, allow_nan=False)),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.float64,
    )
    total = weights.sum()
    pmf = weights / total if total > 0 else np.full(n, 1.0 / n)
    mask = np.asarray(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    k = draw(st.integers(min_value=1, max_value=n + 2))
    return pmf, mask, k


class TestEngineEquivalence:
    @given(masked_pmfs())
    def test_flattening_distance_matches_dense(self, case):
        pmf, mask, k = case
        fast = flattening_distance(pmf, k, mask, engine="fast")
        dense = flattening_distance(pmf, k, mask, engine="dense")
        assert abs(fast - dense) <= ATOL

    @given(masked_pmfs())
    def test_unconstrained_l1_matches_dense(self, case):
        pmf, mask, k = case
        fast = unconstrained_l1_distance(pmf, k, mask, engine="fast")
        dense = unconstrained_l1_distance(pmf, k, mask, engine="dense")
        assert abs(fast - dense) <= ATOL

    @given(masked_pmfs())
    def test_profile_matches_dense(self, case):
        pmf, mask, k = case
        fast = flattening_profile(pmf, k, mask, engine="fast")
        dense = flattening_profile(pmf, k, mask, engine="dense")
        np.testing.assert_allclose(fast, dense, atol=ATOL, rtol=0)

    @given(masked_pmfs())
    def test_fast_projection_realises_its_distance(self, case):
        # The fast engine's boundaries must *realise* the cost it reports —
        # a pruned-away optimal parent would break this, not just the total.
        pmf, mask, k = case
        proj = project_flattening(pmf, k, mask, engine="fast")
        assert proj.histogram.num_pieces <= k
        realised = 0.5 * (np.abs(pmf - proj.histogram.to_pmf()) * mask).sum()
        assert abs(proj.distance - realised) <= ATOL

    @given(st.integers(1, 64), st.integers(0, 10_000))
    def test_single_piece_matches_dense(self, n, seed):
        pmf = np.random.default_rng(seed).dirichlet(np.ones(n))
        fast = flattening_distance(pmf, 1, engine="fast")
        dense = flattening_distance(pmf, 1, engine="dense")
        assert abs(fast - dense) <= ATOL

    def test_all_masked_is_zero_on_both_engines(self):
        pmf = np.random.default_rng(0).dirichlet(np.ones(40))
        mask = np.zeros(40, dtype=bool)
        for k in (1, 3, 40):
            assert flattening_distance(pmf, k, mask, engine="fast") <= ATOL
            assert flattening_distance(pmf, k, mask, engine="dense") <= ATOL

    def test_singleton_domain(self):
        pmf = np.ones(1)
        for engine in ("fast", "dense"):
            assert flattening_distance(pmf, 1, engine=engine) <= ATOL


class TestKernelEngineMatrix:
    """The issue's acceptance matrix: every (kernel, engine) cell agrees.

    ``kernel`` selects how the hot loops execute (numpy vs numba),
    ``engine`` selects which DP runs (fast vs dense); neither may move a
    distance by more than 1e-12, and the fast engine must be bit-identical
    to itself across kernels (the native kernels' accumulation-order
    contract).  The numba column joins automatically wherever the
    ``repro[native]`` extra is installed.
    """

    @given(masked_pmfs(max_n=64))
    def test_all_cells_agree(self, case):
        pmf, mask, k = case
        results = {}
        for kernel in available_kernels():
            for engine in ("fast", "dense"):
                with use_kernel(kernel):
                    results[(kernel, engine)] = flattening_distance(
                        pmf, k, mask, engine=engine
                    )
        reference = flattening_distance(pmf, k, mask, engine="dense")
        for cell, value in results.items():
            assert abs(value - reference) <= ATOL, (cell, value, reference)

    @given(masked_pmfs(max_n=64))
    def test_fast_engine_bit_identical_across_kernels(self, case):
        pmf, mask, k = case
        profiles = []
        for kernel in available_kernels():
            with use_kernel(kernel):
                profiles.append(flattening_profile(pmf, k, mask, engine="fast"))
        for other in profiles[1:]:
            assert np.array_equal(profiles[0], other)

    @given(masked_pmfs(max_n=64))
    def test_explicit_python_kernel_matches_auto(self, case):
        pmf, mask, k = case
        with use_kernel("python"):
            pinned = flattening_distance(pmf, k, mask, engine="fast")
        with use_kernel("auto"):
            auto = flattening_distance(pmf, k, mask, engine="fast")
        if available_kernels() == ("python",):
            assert pinned == auto  # same resolved kernel → same bits
        else:
            assert abs(pinned - auto) <= ATOL


class TestCoarseEquivalence:
    @st.composite
    def coarse_cases(draw, max_cells=48):
        cells = draw(st.integers(min_value=1, max_value=max_cells))
        widths = np.asarray(
            draw(st.lists(st.integers(1, 4), min_size=cells, max_size=cells))
        )
        boundaries = np.concatenate(([0], np.cumsum(widths)))
        masses = np.asarray(
            draw(
                st.lists(st.floats(0.0, 100.0, allow_nan=False),
                         min_size=cells, max_size=cells)
            )
        )
        total = masses.sum()
        masses = masses / total if total > 0 else np.full(cells, 1.0 / cells)
        pmf = np.repeat(masses / widths, widths)
        kept = np.asarray(
            draw(st.lists(st.booleans(), min_size=cells, max_size=cells)), dtype=bool
        )
        k = draw(st.integers(min_value=1, max_value=cells))
        return pmf, Partition(boundaries), kept, k

    @given(coarse_cases())
    def test_piecewise_constant_path_matches_dense(self, case):
        # The fast engine's weighted pwc path (non-unit lengths, masses as
        # mean numerators) vs the dense per-cell matrix.
        pmf, base, kept, k = case
        fast = coarse_flattening_projection(pmf, base, k, kept, engine="fast")
        dense = coarse_flattening_projection(pmf, base, k, kept, engine="dense")
        assert abs(fast.distance - dense.distance) <= ATOL
