"""Property-based tests for histogram structure and ``H_k`` projections.

Random pmfs over small domains (the point-granularity DPs are O(n²), so n
stays ≤ 40) exercise the analytic guarantees the testers rely on: the
unconstrained ℓ1 relaxation lower-bounds the flattening projection, the
flattening over-shoots it by at most a factor of two, both shrink as ``k``
grows, and genuine k-histograms project to distance zero.  Histogram
round-trips pin the succinct representation against the explicit pmf.
"""

import numpy as np
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.distributions.histogram import (
    Histogram,
    is_k_histogram,
    num_pieces,
)
from repro.distributions.projection import (
    flattening_distance,
    flattening_profile,
    histogram_distance_bounds,
    project_flattening,
    unconstrained_l1_distance,
)
from repro.util.intervals import Partition

MAX_N = 40
ATOL = 1e-9


@st.composite
def pmfs(draw, max_n=MAX_N):
    n = draw(st.integers(min_value=1, max_value=max_n))
    weights = np.asarray(
        draw(
            st.lists(
                st.floats(0.0, 100.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.float64,
    )
    assume(weights.sum() > 0)
    return weights / weights.sum()


@st.composite
def histograms(draw, max_n=MAX_N):
    """A genuine k-histogram pmf together with its piece count."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    inner = draw(st.sets(st.integers(min_value=1, max_value=max(1, n - 1)), max_size=6))
    partition = Partition(sorted({0, n} | inner))
    masses = np.asarray(
        draw(
            st.lists(
                st.floats(0.01, 100.0, allow_nan=False),
                min_size=len(partition),
                max_size=len(partition),
            )
        ),
        dtype=np.float64,
    )
    pmf = Histogram.from_masses(partition, masses / masses.sum()).to_pmf()
    return pmf, len(partition)


@st.composite
def pmf_and_k(draw):
    pmf = draw(pmfs())
    k = draw(st.integers(min_value=1, max_value=len(pmf)))
    return pmf, k


class TestProjectionBounds:
    @given(pmf_and_k())
    def test_lower_bound_at_most_upper_bound(self, case):
        pmf, k = case
        lower, upper = histogram_distance_bounds(pmf, k)
        assert 0.0 <= lower <= upper + ATOL

    @given(pmf_and_k())
    def test_flattening_within_factor_two_of_relaxation(self, case):
        # The interval mean 2-approximates the ℓ1-optimal constant, so the
        # best flattening costs at most twice the unconstrained optimum.
        pmf, k = case
        assert flattening_distance(pmf, k) <= 2 * unconstrained_l1_distance(pmf, k) + ATOL

    @given(pmfs())
    def test_distance_non_increasing_in_k(self, pmf):
        profile = flattening_profile(pmf, len(pmf))
        assert np.all(np.diff(profile) <= ATOL)
        assert profile[-1] <= ATOL  # n pieces always fit exactly

    @given(pmf_and_k())
    def test_profile_matches_pointwise_distance(self, case):
        pmf, k = case
        profile = flattening_profile(pmf, k)
        assert abs(profile[k - 1] - flattening_distance(pmf, k)) <= ATOL

    @given(histograms())
    def test_true_histograms_project_to_zero(self, case):
        pmf, k = case
        assert is_k_histogram(pmf, k)
        assert flattening_distance(pmf, k) <= ATOL
        assert unconstrained_l1_distance(pmf, k) <= ATOL

    @given(pmf_and_k())
    def test_projection_result_is_consistent(self, case):
        pmf, k = case
        projection = project_flattening(pmf, k)
        assert projection.histogram.num_pieces <= k
        # The reported distance is exactly the TV distance to the projection.
        realised = 0.5 * np.abs(pmf - projection.histogram.to_pmf()).sum()
        assert abs(projection.distance - realised) <= ATOL


class TestHistogramRepresentation:
    @given(pmfs())
    def test_from_pmf_round_trip(self, pmf):
        # from_pmf merges jumps below the breakpoint tolerance (1e-12), so
        # the round-trip is exact up to that quantisation, not bitwise.
        hist = Histogram.from_pmf(pmf)
        np.testing.assert_allclose(hist.to_pmf(), pmf, atol=1e-10)
        assert hist.num_pieces == num_pieces(pmf)

    @given(histograms())
    def test_minimal_is_idempotent(self, case):
        pmf, _ = case
        minimal = Histogram.from_pmf(pmf).minimal()
        again = minimal.minimal()
        assert again.partition == minimal.partition
        np.testing.assert_array_equal(again.values, minimal.values)

    @given(histograms())
    def test_piece_masses_sum_to_one(self, case):
        pmf, _ = case
        hist = Histogram.from_pmf(pmf)
        assert abs(hist.piece_masses().sum() - 1.0) <= ATOL
        assert is_k_histogram(pmf, hist.num_pieces)

    @given(pmfs(), st.data())
    def test_flattening_matches_partition_flatten(self, pmf, data):
        from repro.distributions.discrete import DiscreteDistribution

        n = len(pmf)
        inner = data.draw(st.sets(st.integers(min_value=1, max_value=max(1, n - 1))))
        partition = Partition(sorted({0, n} | inner))
        hist = Histogram.flattening(DiscreteDistribution(pmf), partition)
        np.testing.assert_allclose(hist.to_pmf(), partition.flatten(pmf), atol=1e-12)
