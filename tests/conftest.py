"""Shared test configuration: slow-test gating and reproducible hypothesis.

* Tests marked ``slow`` (the statistical-calibration suite) are skipped by
  default; run them with ``--run-slow`` or ``RUN_SLOW=1`` (the nightly CI
  job does).
* Hypothesis is pinned to a reproducible profile: under CI the ``ci``
  profile derandomizes example generation entirely (a failure reproduces
  from the log alone, no shuffle-plugin interference — the ``-p
  no:randomly``-safe seed pin); locally the ``dev`` profile keeps random
  exploration but prints the failing seed.
"""

import os

import pytest

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    settings = None

if settings is not None:
    settings.register_profile(
        "ci",
        derandomize=True,
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "dev",
        deadline=None,
        print_blob=True,
    )
    settings.load_profile(
        "ci" if os.environ.get("CI") or os.environ.get("HYPOTHESIS_PROFILE") == "ci"
        else "dev"
    )


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run tests marked slow (statistical calibration; nightly CI)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow") or os.environ.get("RUN_SLOW"):
        return
    skip_slow = pytest.mark.skip(reason="slow: pass --run-slow (or RUN_SLOW=1) to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
