"""Unit tests for the integer-exact sample ledger."""

import pytest

from repro.observability.ledger import LedgerError, SampleLedger


class TestRecord:
    def test_record_and_total(self):
        led = SampleLedger()
        led.record("partition", 10)
        led.record("learn", 32)
        assert led.total == 42
        assert led.stages == {"partition": 10, "learn": 32}
        assert "partition" in led and len(led) == 2
        assert list(led) == ["partition", "learn"]  # record order

    def test_double_counting_raises(self):
        led = SampleLedger()
        led.record("learn", 5)
        with pytest.raises(LedgerError, match="double-counting"):
            led.record("learn", 5)

    @pytest.mark.parametrize("bad", [2.5, True, -1])
    def test_non_integer_counts_rejected(self, bad):
        with pytest.raises(LedgerError):
            SampleLedger().record("s", bad)

    def test_integer_valued_float_accepted(self):
        led = SampleLedger()
        led.record("s", 7.0)  # integer-valued is fine, stored as int
        assert led.stages["s"] == 7
        assert isinstance(led.stages["s"], int)


class TestReconcile:
    def test_exact_match(self):
        led = SampleLedger()
        led.record("a", 3)
        led.record("b", 4)
        assert led.reconcile(7) == 7

    def test_leak_detected(self):
        led = SampleLedger()
        led.record("a", 3)
        with pytest.raises(LedgerError, match="leak"):
            led.reconcile(4)  # source drew one more than the ledger saw

    def test_overcount_detected(self):
        led = SampleLedger()
        led.record("a", 5)
        with pytest.raises(LedgerError, match="double-counting"):
            led.reconcile(4)

    def test_off_by_one_is_an_error(self):
        # Integer equality, no tolerance: the regression the float-era
        # accounting allowed (fractional Poisson charges drifting the sum).
        led = SampleLedger()
        led.record("a", 1_000_000)
        with pytest.raises(LedgerError):
            led.reconcile(1_000_001)

    def test_non_integer_samples_used_rejected(self):
        led = SampleLedger()
        led.record("a", 3)
        with pytest.raises(LedgerError, match="integer"):
            led.reconcile(3.5)

    def test_empty_ledger_reconciles_zero(self):
        assert SampleLedger().reconcile(0) == 0


class TestBudgetCap:
    def test_cap_respected(self):
        led = SampleLedger(budget_cap=10)
        led.record("a", 10)
        assert led.reconcile(10) == 10

    def test_cap_overrun_raises(self):
        led = SampleLedger(budget_cap=10)
        led.record("a", 11)
        with pytest.raises(LedgerError, match="budget cap"):
            led.reconcile(11)

    def test_cap_must_be_integer(self):
        with pytest.raises(LedgerError):
            SampleLedger(budget_cap=10.5)

    def test_cap_stored_as_int(self):
        assert SampleLedger(budget_cap=10.0).budget_cap == 10
        assert isinstance(SampleLedger(budget_cap=10.0).budget_cap, int)


class TestAsAttrs:
    def test_trace_attrs_shape(self):
        led = SampleLedger(budget_cap=100)
        led.record("a", 9)
        assert led.as_attrs() == {
            "stages": {"a": 9},
            "total": 9,
            "budget_cap": 100,
        }
