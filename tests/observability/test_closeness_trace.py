"""Integration tests: closeness pipeline × tracer × ledger.

The two-sample sibling of ``test_tester_trace.py``: one deterministic
(paired workload, config, seed) per closeness verdict stage — trivial,
sieve-reject, check-reject, chi2 reject (degenerate regime) and chi2
accept — each asserting the same accounting contract, now over the *joint*
draw total of both streams.
"""

import numpy as np
import pytest

from repro.core.closeness import (
    CLOSENESS_STAGE_ORDER,
    ClosenessPipeline,
    closeness_budget,
    test_closeness,
)
from repro.core.config import TesterConfig
from repro.distributions import families
from repro.experiments.workloads import make_pair
from repro.observability.trace import RecordingTracer

CFG = TesterConfig.practical()


def _named_pair(name, n, k, eps):
    return lambda: make_pair(name, n, k, eps, np.random.default_rng(0))


def _promise_violating_pair():
    return (
        families.far_from_hk(2000, 4, 0.4, np.random.default_rng(0)),
        families.staircase(2000, 4).to_distribution(),
    )


#: name -> (pair factory, k, eps, seed, expected stage, expected accept,
#: stages that must appear in the audit dicts).
EXIT_PATHS = {
    "trivial-accept": (
        lambda: (families.uniform(1), families.uniform(1)), 3, 0.5, 0,
        "trivial", True, set()),
    "sieve-reject": (
        _promise_violating_pair, 4, 0.4, 0, "sieve", False,
        {"partition", "learn", "sieve"}),
    "check-reject": (
        _named_pair("shifted-staircase", 2000, 4, 0.4), 4, 0.4, 0,
        "check", False, {"partition", "learn", "sieve", "check"}),
    "chi2-reject-degenerate": (
        _named_pair("flattening-blind", 400, 4, 0.3), 4, 0.3, 0,
        "chi2", False, {"chi2"}),
    "chi2-accept": (
        _named_pair("identical-staircase", 2000, 4, 0.4), 4, 0.4, 0,
        "chi2", True, {"partition", "learn", "sieve", "check", "chi2"}),
}


def _run(case, trace=None):
    factory, k, eps, seed, *_ = EXIT_PATHS[case]
    p, q = factory()
    kwargs = {} if trace is None else {"trace": trace}
    return test_closeness(p, q, k, eps, config=CFG, rng=seed, **kwargs)


@pytest.mark.parametrize("case", sorted(EXIT_PATHS))
class TestEveryClosenessExitPath:
    def test_expected_stage_and_verdict(self, case):
        *_, stage, accept, _stages = EXIT_PATHS[case]
        v = _run(case)
        assert (v.stage, v.accept) == (stage, accept)

    def test_all_executed_stages_recorded(self, case):
        *_, expected_stages = EXIT_PATHS[case]
        v = _run(case)
        assert set(v.stage_samples) == expected_stages
        assert set(v.stage_timings) == expected_stages
        order = [s for s in v.stage_samples]
        assert order == [s for s in CLOSENESS_STAGE_ORDER if s in expected_stages]

    def test_integer_exact_joint_reconciliation(self, case):
        """Satellite contract: joint total == per-stream split == stage
        sums, all exact integers, on every exit path."""
        v = _run(case)
        assert isinstance(v.samples_used, int)
        assert isinstance(v.samples_p, int) and isinstance(v.samples_q, int)
        assert v.samples_used == v.samples_p + v.samples_q
        assert all(
            isinstance(s, int) and not isinstance(s, bool)
            for s in v.stage_samples.values()
        )
        assert sum(v.stage_samples.values()) == v.samples_used

    def test_trace_spans_mirror_stage_samples(self, case):
        tracer = RecordingTracer()
        v = _run(case, trace=tracer)
        by_name = {}
        for e in tracer.events:
            by_name.setdefault(e.name, []).append(e)
        for stage, samples in v.stage_samples.items():
            (span,) = by_name[f"test_closeness/{stage}"]
            assert span.kind == "span"
            assert span.attrs["samples"] == samples

    def test_ledger_event_reconciles(self, case):
        tracer = RecordingTracer()
        v = _run(case, trace=tracer)
        (ledger,) = [e for e in tracer.events if e.name.endswith("/ledger")]
        assert ledger.attrs["total"] == v.samples_used
        assert ledger.attrs["stages"] == dict(v.stage_samples)

    def test_tracing_never_changes_the_verdict(self, case):
        plain = _run(case)
        traced = _run(case, trace=RecordingTracer())
        assert (plain.accept, plain.stage, plain.samples_used) == (
            traced.accept, traced.stage, traced.samples_used)
        assert plain.stage_samples == traced.stage_samples


class TestClosenessPipelineTrace:
    def _trace(self):
        tracer = RecordingTracer()
        v = _run("chi2-accept", trace=tracer)
        return v, tracer

    def test_root_span_carries_verdict_and_task(self):
        v, tracer = self._trace()
        root = tracer.events[-1]
        assert root.name == "test_closeness" and root.depth == 0
        assert root.attrs["task"] == "closeness"
        assert root.attrs["accept"] is True
        assert root.attrs["samples_used"] == v.samples_used

    def test_ledger_cap_is_the_closeness_budget(self):
        v, tracer = self._trace()
        (ledger,) = [e for e in tracer.events if e.name.endswith("/ledger")]
        assert ledger.attrs["budget_cap"] == int(
            np.ceil(closeness_budget(2000, 4, 0.4, CFG))
        )
        assert v.samples_used <= ledger.attrs["budget_cap"]

    def test_event_stream_is_deterministic(self):
        from repro.observability.trace import canonical_jsonl

        t1, t2 = RecordingTracer(), RecordingTracer()
        _run("chi2-accept", trace=t1)
        _run("chi2-accept", trace=t2)
        assert canonical_jsonl(t1.export()) == canonical_jsonl(t2.export())


class TestAbortReconciliation:
    """A mid-flight abort must still land the partial joint draws in the
    ledger — the closeness half of the exit-path accounting satellite."""

    def _pipeline(self, trace):
        p, q = make_pair("identical-staircase", 2000, 4, 0.4,
                         np.random.default_rng(0))
        return ClosenessPipeline(p, q, 4, 0.4, config=CFG, rng=0, trace=trace)

    def test_abort_mid_sieve_emits_balanced_ledger(self):
        tracer = RecordingTracer()
        pipeline = self._pipeline(tracer)
        assert pipeline.prepare() is None
        pipeline.run_partition()
        pipeline.run_learn()
        drawn = pipeline.pair.samples_drawn
        assert pipeline.abort() == drawn
        (ledger,) = [e for e in tracer.events if e.name == "ledger"]
        assert ledger.attrs["total"] == drawn
        assert sum(ledger.attrs["stages"].values()) == drawn

    def test_abort_during_final_test_closes_open_stage(self):
        tracer = RecordingTracer()
        pipeline = self._pipeline(tracer)
        pipeline.prepare()
        pipeline.run_partition()
        pipeline.run_learn()
        pipeline.run_sieve()
        pipeline.run_check()
        pipeline.begin_final_test()
        pipeline.draw_final_counts()
        drawn = pipeline.pair.samples_drawn
        assert pipeline.abort() == drawn
        (ledger,) = [e for e in tracer.events if e.name == "ledger"]
        assert ledger.attrs["total"] == drawn
        assert "chi2" in ledger.attrs["stages"]
        assert sum(ledger.attrs["stages"].values()) == drawn
