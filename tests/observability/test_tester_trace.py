"""Integration tests: Algorithm 1 × tracer × ledger.

The exit-path matrix below pins one deterministic (workload, config, seed)
per verdict stage — trivial, plugin, sieve-reject, check-reject, chi2
reject and chi2 accept — and asserts the PR's accounting contract on each:
every executed stage is recorded, the integer stage sums reconcile exactly,
and the trace tells the same story as the verdict.
"""

import numpy as np
import pytest

from repro.core.budget import algorithm1_budget
from repro.core.config import TesterConfig
from repro.core.tester import STAGE_ORDER, test_histogram
from repro.distributions import families
from repro.observability.trace import RecordingTracer

CFG = TesterConfig.practical()
NO_SIEVE = TesterConfig.practical(sieve_enabled=False)


def _far(n, k, eps, seed):
    return families.far_from_hk(n, k, eps, np.random.default_rng(seed))


#: name -> (dist factory, k, eps, config, seed, expected stage, expected
#: accept, stages that must appear in the audit dicts).
EXIT_PATHS = {
    "trivial-accept": (
        lambda: families.uniform(10), 10, 0.5, CFG, 0, "trivial", True, set()),
    "plugin-accept": (
        lambda: families.uniform(64), 20, 0.2, CFG, 0, "plugin", True, {"plugin"}),
    "sieve-reject": (
        lambda: _far(2000, 4, 0.4, 0), 4, 0.4, CFG, 0, "sieve", False,
        {"partition", "learn", "sieve"}),
    "check-reject": (
        lambda: families.zipf(2000, alpha=1.0), 4, 0.3, CFG, 0, "check", False,
        {"partition", "learn", "sieve", "check"}),
    "chi2-reject": (
        lambda: _far(1000, 2, 0.4, 0), 2, 0.4, NO_SIEVE, 0, "chi2", False,
        {"partition", "learn", "sieve", "check", "chi2"}),
    "chi2-accept": (
        lambda: families.staircase(2000, 4).to_distribution(), 4, 0.4, CFG, 0,
        "chi2", True, {"partition", "learn", "sieve", "check", "chi2"}),
}


def _run(case, trace=None):
    factory, k, eps, config, seed, *_ = EXIT_PATHS[case]
    kwargs = {} if trace is None else {"trace": trace}
    return test_histogram(factory(), k, eps, config=config, rng=seed, **kwargs)


@pytest.mark.parametrize("case", sorted(EXIT_PATHS))
class TestEveryExitPath:
    def test_expected_stage_and_verdict(self, case):
        *_, stage, accept, _stages = EXIT_PATHS[case]
        v = _run(case)
        assert (v.stage, v.accept) == (stage, accept)

    def test_all_executed_stages_recorded(self, case):
        """The bug this PR fixes: early returns used to drop stage entries."""
        *_, expected_stages = EXIT_PATHS[case]
        v = _run(case)
        assert set(v.stage_samples) == expected_stages
        assert set(v.stage_timings) == expected_stages
        # Recorded stages follow the canonical pipeline order.
        order = [s for s in v.stage_samples]
        assert order == [s for s in STAGE_ORDER if s in expected_stages]

    def test_integer_exact_reconciliation(self, case):
        """Satellite regression: samples_used == Σ stage_samples, exactly."""
        v = _run(case)
        assert isinstance(v.samples_used, int)
        assert all(
            isinstance(s, int) and not isinstance(s, bool)
            for s in v.stage_samples.values()
        )
        assert sum(v.stage_samples.values()) == v.samples_used

    def test_trace_spans_mirror_stage_samples(self, case):
        tracer = RecordingTracer()
        v = _run(case, trace=tracer)
        by_name = {}
        for e in tracer.events:
            by_name.setdefault(e.name, []).append(e)
        for stage, samples in v.stage_samples.items():
            (span,) = by_name[f"test/{stage}"]
            assert span.kind == "span"
            assert span.attrs["samples"] == samples

    def test_ledger_event_reconciles(self, case):
        tracer = RecordingTracer()
        v = _run(case, trace=tracer)
        (ledger,) = [e for e in tracer.events if e.name.endswith("/ledger")]
        assert ledger.attrs["total"] == v.samples_used
        assert ledger.attrs["stages"] == dict(v.stage_samples)

    def test_tracing_never_changes_the_verdict(self, case):
        plain = _run(case)
        traced = _run(case, trace=RecordingTracer())
        assert (plain.accept, plain.stage, plain.samples_used) == (
            traced.accept, traced.stage, traced.samples_used)
        assert plain.stage_samples == traced.stage_samples


class TestFullPipelineTrace:
    def _trace(self):
        tracer = RecordingTracer()
        v = _run("chi2-accept", trace=tracer)
        return v, tracer

    def test_root_span_carries_verdict(self):
        v, tracer = self._trace()
        root = tracer.events[-1]
        assert root.name == "test" and root.depth == 0
        assert root.attrs["accept"] is True
        assert root.attrs["samples_used"] == v.samples_used

    def test_sieve_rounds_traced(self):
        _, tracer = self._trace()
        rounds = [e for e in tracer.events if e.name == "test/sieve/round"]
        assert rounds  # per-round Phase B spans
        assert all("samples" in e.attrs and "removed" in e.attrs for e in rounds)
        phase_a = [e for e in tracer.events if e.name == "test/sieve/phase_a"]
        assert len(phase_a) == 1

    def test_ledger_cap_is_the_algorithm1_budget(self):
        v, tracer = self._trace()
        (ledger,) = [e for e in tracer.events if e.name == "test/ledger"]
        assert ledger.attrs["budget_cap"] == int(
            algorithm1_budget(2000, 4, 0.4, CFG)
        )
        assert v.samples_used <= ledger.attrs["budget_cap"]

    def test_event_stream_is_deterministic(self):
        from repro.observability.trace import canonical_jsonl

        t1, t2 = RecordingTracer(), RecordingTracer()
        _run("chi2-accept", trace=t1)
        _run("chi2-accept", trace=t2)
        assert canonical_jsonl(t1.export()) == canonical_jsonl(t2.export())
