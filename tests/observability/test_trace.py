"""Unit tests for the span tracer and its JSONL serialisation layer."""

import json

import pytest

from repro.observability.trace import (
    EVENT_KEYS,
    NULL_TRACER,
    RecordingTracer,
    TraceEvent,
    Tracer,
    canonical_jsonl,
    read_jsonl,
    strip_wall_clock,
    validate_event,
    validate_trace,
    write_jsonl,
)


class FakeClock:
    """Deterministic monotone clock: every call advances by `step`."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestNullTracer:
    def test_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_span_is_shared_and_noop(self):
        a = NULL_TRACER.span("x", foo=1)
        b = NULL_TRACER.span("y")
        assert a is b  # one shared stateless span, no allocation per call
        with a as span:
            span.set(whatever=1)

    def test_event_and_absorb_are_noops(self):
        NULL_TRACER.event("e", x=1)
        NULL_TRACER.absorb([{"bogus": True}])  # not even validated: dropped

    def test_base_class_is_the_null_tracer(self):
        assert isinstance(NULL_TRACER, Tracer)
        assert type(NULL_TRACER) is Tracer


class TestRecordingTracer:
    def test_nesting_produces_slash_paths_and_depths(self):
        t = RecordingTracer(clock=FakeClock())
        with t.span("test"):
            with t.span("sieve"):
                with t.span("round", round=0):
                    pass
                t.event("note", x=1)
        names = [e.name for e in t.events]
        depths = [e.depth for e in t.events]
        # Events append at close, innermost first.
        assert names == ["test/sieve/round", "test/sieve/note", "test/sieve", "test"]
        assert depths == [2, 2, 1, 0]

    def test_seq_strictly_increasing(self):
        t = RecordingTracer(clock=FakeClock())
        with t.span("a"):
            t.event("e1")
            t.event("e2")
        seqs = [e.seq for e in t.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_set_attaches_attrs_before_close(self):
        t = RecordingTracer(clock=FakeClock())
        with t.span("s", fixed=1) as span:
            span.set(result=42)
        assert t.events[0].attrs == {"fixed": 1, "result": 42}

    def test_durations_from_injected_clock(self):
        t = RecordingTracer(clock=FakeClock(step=0.5))
        with t.span("s"):
            pass
        assert t.events[0].duration_s == pytest.approx(0.5)

    def test_point_events_have_no_duration(self):
        t = RecordingTracer(clock=FakeClock())
        t.event("e")
        assert t.events[0].duration_s is None

    def test_bad_names_rejected(self):
        t = RecordingTracer()
        with pytest.raises(ValueError):
            t.span("a/b")
        with pytest.raises(ValueError):
            t.event("")

    def test_span_closes_on_exception(self):
        t = RecordingTracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with t.span("s"):
                raise RuntimeError("boom")
        assert [e.name for e in t.events] == ["s"]


class TestAbsorb:
    def _sub_trace(self) -> list:
        sub = RecordingTracer(clock=FakeClock())
        with sub.span("test"):
            sub.event("ledger", total=3)
        return sub.export()

    def test_reroots_resequences_and_merges_attrs(self):
        parent = RecordingTracer(clock=FakeClock())
        with parent.span("bench"):
            parent.absorb(self._sub_trace(), trial=7)
        names = [e.name for e in parent.events]
        assert names == ["bench/test/ledger", "bench/test", "bench"]
        assert all(e.attrs.get("trial") == 7 for e in parent.events[:2])
        seqs = [e.seq for e in parent.events]
        assert seqs == sorted(seqs)

    def test_absorb_none_or_empty_is_noop(self):
        parent = RecordingTracer()
        parent.absorb(None)
        parent.absorb([])
        assert parent.events == []

    def test_absorb_validates(self):
        parent = RecordingTracer()
        with pytest.raises(ValueError):
            parent.absorb([{"kind": "span"}])  # missing keys

    def test_trial_order_splice_matches_serial(self):
        """Absorbing exported sub-traces in trial order reproduces the event
        stream of running the trials inline — the determinism contract."""
        subs = []
        for trial in range(3):
            sub = RecordingTracer(clock=FakeClock())
            with sub.span("test", trial=trial):
                pass
            subs.append(sub.export())

        spliced = RecordingTracer(clock=FakeClock())
        for trial, sub in enumerate(subs):
            spliced.absorb(sub, trial=trial)

        inline = RecordingTracer(clock=FakeClock())
        for trial in range(3):
            with inline.span("test", trial=trial) as span:
                span.set(trial=trial)
        assert canonical_jsonl(spliced.export()) == canonical_jsonl(inline.export())


class TestSerialisation:
    def _events(self):
        t = RecordingTracer(clock=FakeClock())
        with t.span("test", n=100):
            t.event("ledger", total=5)
        return t.export()

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = self._events()
        write_jsonl(path, events)
        assert read_jsonl(path) == events
        assert validate_trace(path) == len(events)

    def test_write_is_sorted_keys(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, self._events())
        for line in path.read_text().splitlines():
            raw = json.loads(line)
            assert list(raw) == sorted(raw)

    def test_strip_wall_clock(self):
        event = self._events()[0]
        stripped = strip_wall_clock(event)
        assert "duration_s" not in stripped
        assert set(stripped) == EVENT_KEYS - {"duration_s"}

    def test_canonical_jsonl_ignores_durations(self):
        fast = RecordingTracer(clock=FakeClock(step=0.001))
        slow = RecordingTracer(clock=FakeClock(step=10.0))
        for t in (fast, slow):
            with t.span("s"):
                pass
        assert canonical_jsonl(fast.export()) == canonical_jsonl(slow.export())

    def test_read_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            read_jsonl(path)
        path.write_text('{"kind": "span"}\n')
        with pytest.raises(ValueError, match="missing"):
            read_jsonl(path)

    def test_validate_trace_rejects_nonincreasing_seq(self, tmp_path):
        path = tmp_path / "seq.jsonl"
        event = TraceEvent("event", "e", 0, 0).to_json()
        write_jsonl(path, [event, event])
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_trace(path)


class TestValidateEvent:
    def good(self) -> dict:
        return TraceEvent("span", "test", 0, 0, {"x": 1}, 0.1).to_json()

    def test_accepts_good_event(self):
        validate_event(self.good())

    @pytest.mark.parametrize(
        "patch",
        [
            {"kind": "bogus"},
            {"name": ""},
            {"name": 3},
            {"seq": -1},
            {"seq": True},
            {"depth": -2},
            {"attrs": []},
            {"duration_s": "fast"},
            {"duration_s": -0.1},
        ],
    )
    def test_rejects_bad_fields(self, patch):
        event = {**self.good(), **patch}
        with pytest.raises(ValueError):
            validate_event(event)

    def test_rejects_extra_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            validate_event({**self.good(), "extra": 1})

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_event([1, 2, 3])
