"""Unit tests for the metrics registry."""

import pytest

from repro.observability.metrics import (
    Counter,
    Distribution,
    Gauge,
    MetricsRegistry,
    get_metrics,
)


class TestCounter:
    def test_monotone(self):
        c = Counter("c", {})
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c", {}).inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g", {})
        assert g.value is None
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5


class TestDistribution:
    def test_streaming_summary(self):
        d = Distribution("d", {})
        assert d.mean is None
        for v in (1, 5, 3):
            d.observe(v)
        assert (d.count, d.total, d.min, d.max) == (3, 9.0, 1, 5)
        assert d.mean == pytest.approx(3.0)


class TestRegistry:
    def test_same_series_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a", phase="A") is reg.counter("a", phase="A")

    def test_labels_split_series(self):
        reg = MetricsRegistry()
        reg.counter("a", phase="A").inc()
        reg.counter("a", phase="B").inc(2)
        assert reg.counter("a", phase="A").value == 1
        assert reg.counter("a", phase="B").value == 2
        assert len(reg) == 2

    def test_label_order_does_not_split_series(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x=1, y=2) is reg.counter("a", y=2, x=1)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.counter("a").value == 0  # fresh series after reset

    def test_snapshot_stable_keys(self):
        reg = MetricsRegistry()
        reg.counter("sieve.removed", phase="A").inc(3)
        reg.gauge("cap").set(10)
        reg.distribution("rounds").observe(2)
        snap = reg.snapshot()
        assert snap["sieve.removed{phase=A}"] == 3
        assert snap["cap"] == 10
        assert snap["rounds"]["count"] == 1


class TestGlobalRegistry:
    def test_get_metrics_is_process_wide(self):
        assert get_metrics() is get_metrics()

    def test_library_counters_flow_through_global(self):
        get_metrics().reset()
        from repro.core.tester import test_histogram
        from repro.distributions import families

        test_histogram(families.uniform(10), 10, 0.5, rng=0)  # trivial accept
        counter = get_metrics().counter("tester.verdicts", stage="trivial", accept=True)
        assert counter.value == 1
        get_metrics().reset()
