"""Fast backend-matrix calibration slice — runs on every push (NOT slow).

The full nightly suite (:mod:`tests.calibration.test_error_rates`) runs 120
trials per cell; this slice runs a reduced trial count over one canonical
yes-instance and one certified ε-far instance for *each* backend, against
the same exact-binomial bound recomputed for the smaller sample.  It cannot
detect subtle calibration drift — that is the nightly's job — but it turns
"a backend's verdicts flipped wholesale" from a nightly surprise into a
push-blocking failure.

Shares ``error_count`` (and the N, K, EPS operating point) with the nightly
module so the two suites can never silently measure different things.
"""

import pytest
from scipy import stats

from repro.core.backends import BACKENDS

from .test_error_rates import EPS, FLAKE_P, K, N, TesterConfig, error_count

TRIALS_CI = 40

#: Binomial bound at the reduced trial count: if the per-trial error rate
#: really were 1/3, seeing more than this many errors among TRIALS_CI has
#: probability below FLAKE_P.
MAX_ERRORS_CI = int(stats.binom.ppf(1 - FLAKE_P, TRIALS_CI, 1.0 / 3.0))

CONFIG = TesterConfig.practical()


def test_ci_closeness_false_negative_rate():
    from .test_closeness_error_rates import closeness_error_count

    errors = closeness_error_count(
        "identical-staircase", CONFIG, seed=700, far=False, trials=TRIALS_CI
    )
    assert errors <= MAX_ERRORS_CI, (
        f"identical-staircase [closeness]: {errors}/{TRIALS_CI} completeness "
        f"errors exceeds the binomial bound {MAX_ERRORS_CI} for per-trial rate 1/3"
    )


def test_ci_closeness_false_positive_rate():
    from .test_closeness_error_rates import closeness_error_count

    errors = closeness_error_count(
        "shifted-staircase", CONFIG, seed=800, far=True, trials=TRIALS_CI
    )
    assert errors <= MAX_ERRORS_CI, (
        f"shifted-staircase [closeness]: {errors}/{TRIALS_CI} soundness "
        f"errors exceeds the binomial bound {MAX_ERRORS_CI} for per-trial rate 1/3"
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_ci_false_negative_rate(backend):
    errors = error_count(
        "staircase", CONFIG, seed=500, far=False, backend=backend, trials=TRIALS_CI
    )
    assert errors <= MAX_ERRORS_CI, (
        f"staircase [{backend}]: {errors}/{TRIALS_CI} completeness errors "
        f"exceeds the binomial bound {MAX_ERRORS_CI} for per-trial rate 1/3"
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_ci_false_positive_rate(backend):
    errors = error_count(
        "sawtooth-uniform", CONFIG, seed=600, far=True, backend=backend, trials=TRIALS_CI
    )
    assert errors <= MAX_ERRORS_CI, (
        f"sawtooth-uniform [{backend}]: {errors}/{TRIALS_CI} soundness errors "
        f"exceeds the binomial bound {MAX_ERRORS_CI} for per-trial rate 1/3"
    )
