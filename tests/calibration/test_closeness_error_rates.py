"""Statistical calibration of the closeness tester (nightly, ``slow``).

The DKN17 guarantee mirrors the one-sample tester's: identical pairs are
accepted and certified ε-far pairs rejected, each with probability ≥ 2/3.
Measured over many fixed-seed trials against exact binomial bounds, same
protocol as :mod:`tests.calibration.test_error_rates` — if the per-trial
error probability really were above 1/3, observing more than
``binom.ppf(1 − FLAKE_P, TRIALS, 1/3)`` errors would itself have
probability below ``FLAKE_P``.

Two operating points: the main path (the b-interval reduction runs) and
the degenerate raw-domain regime — the flattening-blind lower-bound pair
is *only* distinguishable there, which is exactly the construction's
point, so it is pinned to the degenerate grid.
"""

import pytest
from scipy import stats

from repro.core.config import TesterConfig
from repro.experiments.runner import acceptance_probability
from repro.experiments.sweeps import PairedClosenessTester
from repro.experiments.workloads import BoundPairedWorkload

pytestmark = pytest.mark.slow

TRIALS = 120
#: Main-path operating point (2b + 2 < n/2: partition/learn/sieve all run).
N, K, EPS = 2000, 4, 0.4
#: Degenerate operating point (paired plug-in on the raw domain).
N_DEGEN, K_DEGEN, EPS_DEGEN = 400, 4, 0.3
FLAKE_P = 1e-6

MAX_ERRORS = int(stats.binom.ppf(1 - FLAKE_P, TRIALS, 1.0 / 3.0))

CONFIG = TesterConfig.practical()


def closeness_error_count(
    workload_name: str,
    config: TesterConfig,
    seed: int,
    *,
    far: bool,
    n: int = N,
    k: int = K,
    eps: float = EPS,
    trials: int = TRIALS,
) -> int:
    estimate = acceptance_probability(
        BoundPairedWorkload(workload_name, n, k, eps),
        PairedClosenessTester(k, eps, config),
        trials=trials,
        rng=seed,
        workers=0,  # auto: exercises the parallel path on multi-core runners
    )
    accepted = round(estimate.rate * estimate.trials)
    return accepted if far else estimate.trials - accepted


class TestMainPath:
    @pytest.mark.parametrize("name", ["identical-staircase", "identical-random"])
    def test_false_negative_rate(self, name):
        errors = closeness_error_count(name, CONFIG, seed=100, far=False)
        assert errors <= MAX_ERRORS, (
            f"{name}: {errors}/{TRIALS} completeness errors exceeds the "
            f"binomial bound {MAX_ERRORS} for per-trial rate 1/3"
        )

    @pytest.mark.parametrize("name", ["shifted-staircase", "offset-combs"])
    def test_false_positive_rate(self, name):
        errors = closeness_error_count(name, CONFIG, seed=200, far=True)
        assert errors <= MAX_ERRORS, (
            f"{name}: {errors}/{TRIALS} soundness errors exceeds the "
            f"binomial bound {MAX_ERRORS} for per-trial rate 1/3"
        )


class TestDegenerateRegime:
    def test_false_negative_rate(self):
        errors = closeness_error_count(
            "identical-staircase", CONFIG, seed=300, far=False,
            n=N_DEGEN, k=K_DEGEN, eps=EPS_DEGEN,
        )
        assert errors <= MAX_ERRORS

    def test_flattening_blind_pair_rejected(self):
        """The lower-bound pair has identical interval masses on every
        coarse partition; only the raw-domain regime can see it — and
        must."""
        errors = closeness_error_count(
            "flattening-blind", CONFIG, seed=400, far=True,
            n=N_DEGEN, k=K_DEGEN, eps=EPS_DEGEN,
        )
        assert errors <= MAX_ERRORS
