"""Statistical calibration of the tester's error rates (nightly, ``slow``).

The paper's guarantee is two-sided with failure probability at most 1/3:
instances in ``H_k`` are accepted and certified ε-far instances rejected,
each with probability ≥ 2/3.  These tests measure the empirical false-
positive and false-negative rates over many independent fixed-seed trials
on canonical yes/no instances and check them against exact binomial
confidence bounds: if the per-trial error probability really were above
1/3, observing at most ``binom.ppf(FLAKE_P, TRIALS, 1/3)`` errors would
have probability below ``FLAKE_P``.  In practice the tester is far better
calibrated than the worst-case bound, so the margins are wide.

Seeds are pinned, so every run draws the same trials — the suite is a
regression net for calibration drift (threshold or budget changes that
silently degrade error rates), not a source of CI flakes.  Marked ``slow``
and skipped by default; the nightly CI job runs it with ``--run-slow``.
"""

import pytest
from scipy import stats

from repro.core.backends import BACKENDS
from repro.core.config import TesterConfig
from repro.experiments.runner import acceptance_probability
from repro.experiments.sweeps import HistogramTester
from repro.experiments.workloads import BoundWorkload

pytestmark = pytest.mark.slow

TRIALS = 120
N, K, EPS = 2500, 4, 0.3
#: Target flake probability per assertion if the tester only just met the
#: paper's 1/3 error bound (the true rates observed are far lower).
FLAKE_P = 1e-6

#: Most errors we may observe among TRIALS at per-trial error rate 1/3
#: before the excess itself is FLAKE_P-significant.
MAX_ERRORS = int(stats.binom.ppf(1 - FLAKE_P, TRIALS, 1.0 / 3.0))


def error_count(
    workload_name: str,
    config: TesterConfig,
    seed: int,
    *,
    far: bool,
    backend: str = "pods16",
    trials: int = TRIALS,
) -> int:
    estimate = acceptance_probability(
        BoundWorkload(workload_name, N, K, EPS),
        HistogramTester(K, EPS, config, backend),
        trials=trials,
        rng=seed,
        workers=0,  # auto: exercises the parallel path on multi-core runners
    )
    accepted = round(estimate.rate * estimate.trials)
    return accepted if far else estimate.trials - accepted


@pytest.mark.parametrize("backend", BACKENDS)
class TestPracticalProfile:
    """Both backends must clear the same binomial bar: the cdkl22 budget is
    an order of magnitude smaller, so a calibration regression there (e.g.
    the trimmed statistic eating too much of ε′) shows up here first."""

    CONFIG = TesterConfig.practical()

    @pytest.mark.parametrize("name", ["staircase", "uniform", "random-histogram"])
    def test_false_negative_rate(self, name, backend):
        errors = error_count(name, self.CONFIG, seed=100, far=False, backend=backend)
        assert errors <= MAX_ERRORS, (
            f"{name} [{backend}]: {errors}/{TRIALS} completeness errors exceeds "
            f"the binomial bound {MAX_ERRORS} for per-trial rate 1/3"
        )

    @pytest.mark.parametrize("name", ["sawtooth-uniform", "sawtooth-staircase"])
    def test_false_positive_rate(self, name, backend):
        errors = error_count(name, self.CONFIG, seed=200, far=True, backend=backend)
        assert errors <= MAX_ERRORS, (
            f"{name} [{backend}]: {errors}/{TRIALS} soundness errors exceeds "
            f"the binomial bound {MAX_ERRORS} for per-trial rate 1/3"
        )


@pytest.mark.parametrize("backend", BACKENDS)
class TestPaperProfile:
    """The paper-faithful constants are far more conservative; spot-check
    one instance per side at the same binomial bar."""

    CONFIG = TesterConfig.paper()

    def test_false_negative_rate(self, backend):
        errors = error_count("staircase", self.CONFIG, seed=300, far=False, backend=backend)
        assert errors <= MAX_ERRORS

    def test_false_positive_rate(self, backend):
        errors = error_count("sawtooth-uniform", self.CONFIG, seed=400, far=True, backend=backend)
        assert errors <= MAX_ERRORS
