"""Tests for the doubling-search model-selection pipeline."""

import pytest

from repro.core.config import TesterConfig
from repro.distributions import families
from repro.distributions.distances import tv_distance
from repro.distributions.projection import flattening_distance
from repro.learning.model_selection import select_k


CFG = TesterConfig.practical()


class TestSelectK:
    def test_uniform_selects_one(self):
        result = select_k(families.uniform(1500), 0.3, k_max=64, repeats=3, rng=0, config=CFG)
        assert result.k == 1
        assert result.tests_run == 1

    def test_selected_k_is_epsilon_sufficient(self):
        dist = families.staircase(1500, 8, ratio=3.0).to_distribution()
        result = select_k(dist, 0.25, k_max=64, repeats=3, rng=1, config=CFG)
        # The accepted k must genuinely be eps-sufficient (up to the
        # tester's own tolerance: check at 2*eps with the exact DP).
        assert flattening_distance(dist.pmf[:1500], result.k) <= 2 * 0.25

    def test_not_wildly_over(self):
        # A strong 6-step staircase should not select k far above 6.
        dist = families.staircase(1200, 6, ratio=3.0).to_distribution()
        result = select_k(dist, 0.2, k_max=64, repeats=3, rng=2, config=CFG)
        assert result.k <= 12

    def test_learned_histogram_matches_selection(self):
        dist = families.staircase(1000, 4, ratio=2.0).to_distribution()
        result = select_k(dist, 0.3, k_max=32, repeats=3, rng=3, config=CFG)
        assert result.histogram.num_pieces <= result.k
        assert tv_distance(dist, result.histogram.to_pmf()) <= 0.45

    def test_trace_records_all_probes(self):
        dist = families.staircase(1000, 4, ratio=3.0).to_distribution()
        result = select_k(dist, 0.25, k_max=32, repeats=3, rng=4, config=CFG)
        assert result.tests_run == len(result.accepted_trace)
        assert result.accepted_trace[result.k] is True

    def test_raises_when_nothing_fits(self):
        # Paninski-style alternation is far from every small-k histogram.
        dist = families.far_from_hk(1024, 8, 0.3, rng=5)
        with pytest.raises(ValueError, match="no k"):
            select_k(dist, 0.25, k_max=4, repeats=3, rng=6, config=CFG)

    def test_samples_accounted(self):
        result = select_k(families.uniform(800), 0.3, k_max=8, repeats=3, rng=7, config=CFG)
        assert result.samples_used > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            select_k(families.uniform(100), 0.0, config=CFG)
        with pytest.raises(ValueError):
            select_k(families.uniform(100), 0.3, k_max=0, config=CFG)
        with pytest.raises(ValueError):
            select_k(families.uniform(100), 0.3, repeats=0, config=CFG)
