"""Tests for the agnostic merge learner."""

import numpy as np
import pytest

from repro.distributions import families
from repro.distributions.distances import tv_distance
from repro.distributions.histogram import is_k_histogram
from repro.distributions.projection import flattening_distance
from repro.distributions.sampling import SampleSource
from repro.learning.merge import (
    histogram_from_counts,
    learn_histogram_agnostic,
    merge_learner_samples,
    quantile_partition,
)


class TestQuantilePartition:
    def test_equal_mass_cells(self):
        counts = np.ones(100)
        p = quantile_partition(counts, 10)
        masses = p.aggregate(counts)
        assert np.all(masses <= 2 * counts.sum() / 10)

    def test_heavy_points_isolated(self):
        counts = np.zeros(50)
        counts[7] = 100
        counts[30] = 50
        counts += 1
        p = quantile_partition(counts, 10)
        assert p[p.locate(7)].is_singleton
        assert p[p.locate(30)].is_singleton

    def test_zero_counts_fallback(self):
        p = quantile_partition(np.zeros(20), 4)
        assert p.n == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            quantile_partition(np.ones(10), 0)


class TestBudget:
    def test_formula(self):
        assert merge_learner_samples(4, 0.2) == pytest.approx(4 * 4 / 0.04, rel=0.01)
        with pytest.raises(ValueError):
            merge_learner_samples(0, 0.2)
        with pytest.raises(ValueError):
            merge_learner_samples(2, 0.0)


class TestAgnosticGuarantee:
    def test_output_is_k_histogram(self):
        h = learn_histogram_agnostic(families.zipf(500, 1.0), 6, 0.2, rng=0)
        assert h.num_pieces <= 6
        assert is_k_histogram(h.to_pmf(), 6)

    def test_learns_true_histogram_well(self):
        """On a true k-histogram, TV error ~ eps (opt = 0).

        Mean over 10 runs asserted below 2x the nominal accuracy; observed
        means sit near eps/2, so flake probability is negligible.
        """
        dist = families.staircase(800, 4, ratio=2.5).to_distribution()
        errors = [
            tv_distance(dist, learn_histogram_agnostic(dist, 4, 0.15, rng=s).to_pmf())
            for s in range(10)
        ]
        assert np.mean(errors) <= 0.3

    def test_agnostic_error_competitive(self):
        # On a non-histogram, error <= C*opt + eps with modest C.
        dist = families.zipf(600, 1.0)
        opt = flattening_distance(dist, 5)
        errors = [
            tv_distance(dist, learn_histogram_agnostic(dist, 5, 0.1, rng=s).to_pmf())
            for s in range(10)
        ]
        assert np.mean(errors) <= 3.0 * opt + 0.15

    def test_more_samples_help(self):
        dist = families.staircase(500, 3).to_distribution()

        def mean_err(m):
            return np.mean(
                [
                    tv_distance(
                        dist,
                        learn_histogram_agnostic(dist, 3, 0.3, rng=s, num_samples=m).to_pmf(),
                    )
                    for s in range(8)
                ]
            )

        assert mean_err(50_000) < mean_err(500)

    def test_budget_accounting(self):
        src = SampleSource(families.uniform(200), rng=0)
        learn_histogram_agnostic(src, 3, 0.2)
        assert src.samples_drawn == merge_learner_samples(3, 0.2)

    def test_histogram_from_counts_zero_total(self):
        h = histogram_from_counts(np.zeros(30), 3, 0.2)
        assert h.num_pieces == 1

    def test_sparse_support_fit(self):
        # Heavy-point isolation at work: a 5-point support learned exactly.
        dist = families.sparse_support(400, 5, rng=1)
        h = learn_histogram_agnostic(dist, 11, 0.1, rng=2)
        assert tv_distance(dist, h.to_pmf()) < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            learn_histogram_agnostic(families.uniform(50), 0, 0.2)
        with pytest.raises(ValueError):
            learn_histogram_agnostic(families.uniform(50), 2, 0.0)
