"""Fault-tolerant experiment execution.

Three pillars, each exercised by experiment E20 and the robust trial runner
in :mod:`repro.experiments.runner`:

* :mod:`repro.robustness.faults` — corrupted sample streams (Huber
  contamination, out-of-domain samples, stale reads, scheduled failures);
* :mod:`repro.robustness.resilience` — bounded deterministic retry,
  wall-clock deadlines, structured trial-failure isolation;
* :mod:`repro.robustness.checkpoint` — atomic JSON checkpoint/resume for
  long-running sweeps.
"""

from repro.robustness.checkpoint import (
    CheckpointError,
    CheckpointStore,
    load_if_matching,
    resolve_store,
)
from repro.robustness.faults import (
    CorruptSampleError,
    FaultConfig,
    FaultInjectingSource,
    InjectedStreamFailure,
)
from repro.robustness.resilience import (
    ISOLATED_ERRORS,
    TRANSIENT_ERRORS,
    Deadline,
    DeadlineSource,
    RetryPolicy,
    TooManyTrialFailures,
    TrialFailure,
    TrialPolicy,
    TrialTimeout,
    run_with_retry,
)

__all__ = [
    "ISOLATED_ERRORS",
    "TRANSIENT_ERRORS",
    "CheckpointError",
    "CheckpointStore",
    "CorruptSampleError",
    "Deadline",
    "DeadlineSource",
    "FaultConfig",
    "FaultInjectingSource",
    "InjectedStreamFailure",
    "RetryPolicy",
    "TooManyTrialFailures",
    "TrialFailure",
    "TrialPolicy",
    "TrialTimeout",
    "load_if_matching",
    "resolve_store",
    "run_with_retry",
]
