"""Atomic JSON checkpointing for long-running sweeps.

A multi-hour sweep must survive interruption (SIGINT, OOM kill, machine
reboot) without losing completed work.  :class:`CheckpointStore` persists a
JSON state dict with the classic write-to-temp-then-``os.replace`` dance, so
the file on disk is always either the previous complete state or the new
complete state — never a torn write.  Consumers
(:func:`repro.experiments.sweeps.complexity_sweep`,
``benchmarks/_common.checkpointed_loop``) store a *fingerprint* of the run
parameters alongside the payload and discard stale checkpoints whose
fingerprint no longer matches, so resuming with changed parameters can never
silently splice incompatible results together.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.util.atomicio import atomic_write_json


class CheckpointError(RuntimeError):
    """The checkpoint file exists but cannot be parsed.

    Atomic replace means a torn write cannot produce this; a corrupt file
    indicates external interference, which deserves a loud failure rather
    than a silent restart-from-scratch.  Delete the file (or call
    :meth:`CheckpointStore.clear`) to start over deliberately.
    """


class CheckpointStore:
    """A single JSON checkpoint file with atomic replace semantics."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> dict[str, Any] | None:
        """The last saved state, or ``None`` when no checkpoint exists."""
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return None
        try:
            state = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} is not valid JSON ({exc}); delete it "
                "to restart from scratch"
            ) from exc
        if not isinstance(state, dict):
            raise CheckpointError(f"checkpoint {self.path} does not hold an object")
        return state

    def save(self, state: dict[str, Any]) -> None:
        """Atomically *and durably* replace the checkpoint with ``state``.

        Routed through :func:`repro.util.atomicio.atomic_write_json`: temp
        file in the target's directory, contents fsynced before the rename,
        directory entry table fsynced after it.  Rename atomicity alone only
        protects against torn writes, not against a power loss that reorders
        the rename ahead of the data blocks or drops the new directory entry
        entirely.
        """
        atomic_write_json(self.path, state, indent=2, trailing_newline=False)

    def clear(self) -> None:
        """Remove the checkpoint (no-op when absent)."""
        self.path.unlink(missing_ok=True)


def resolve_store(
    checkpoint: "str | os.PathLike | CheckpointStore | None",
) -> CheckpointStore | None:
    """Normalise a ``checkpoint`` argument (path or store) into a store."""
    if checkpoint is None:
        return None
    if isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint)


def load_if_matching(
    store: CheckpointStore | None, fingerprint: dict[str, Any]
) -> dict[str, Any] | None:
    """The stored state when its fingerprint matches, else ``None``.

    A mismatched fingerprint means the checkpoint belongs to a *different*
    run configuration; it is left on disk untouched (the caller decides
    whether to overwrite) but its contents are not reused.  A checkpoint
    with *no* fingerprint field at all is not a resumable checkpoint —
    that's a foreign or hand-edited file, and splicing from it (or crashing
    with a bare ``KeyError`` deep in a resume path) would both be wrong, so
    it is rejected loudly with :class:`CheckpointError`.
    """
    if store is None:
        return None
    state = store.load()
    if state is None:
        return None
    if "fingerprint" not in state:
        raise CheckpointError(
            f"checkpoint {store.path} has no fingerprint field — not a "
            "resumable checkpoint; delete it (or CheckpointStore.clear) to "
            "start over deliberately"
        )
    if state["fingerprint"] != fingerprint:
        return None
    return state
