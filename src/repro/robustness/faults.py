"""Fault-injecting sample sources.

The corrigendum's lesson is that sample-stream subtleties can silently
invalidate an analysis.  This module makes such subtleties *injectable*: a
:class:`FaultInjectingSource` wraps any
:class:`~repro.distributions.sampling.SampleSource` and corrupts its stream
under a configurable :class:`FaultConfig` — so the experiment suite can
measure how Algorithm 1's guarantees degrade under contamination (experiment
E20) and so the trial-isolation machinery of
:mod:`repro.experiments.runner` has realistic failures to isolate.

Fault models
------------

* **Huber ε-contamination** — each sample is independently replaced, with
  probability ``contamination_rate``, by a draw from a contaminating
  distribution ``Q`` (an adversarial instance, or uniform noise by default).
  The delivered stream is i.i.d. from the mixture
  ``(1 − r)·D + r·Q``; count-vector draws realise the mixture *exactly*
  (binomial splitting for multinomial draws, Poisson thinning for
  Poissonized draws), so the model stays cheap even at paper-profile sample
  sizes.
* **Out-of-domain corruption** — samples are replaced, with probability
  ``out_of_domain_rate``, by indices ``≥ n`` (bit-flips, schema drift,
  upstream bugs).  Sequential draws deliver the corrupt indices and let the
  consumer crash (``counts_from_samples`` raises); count-vector draws raise
  :class:`CorruptSampleError` whenever at least one corrupted sample lands
  in the batch, modelling the downstream crash directly.
* **Duplication / staleness** — each sequentially-drawn sample is replaced,
  with probability ``duplication_rate``, by its predecessor in the stream (a
  stale read).  This violates independence without changing marginals much —
  exactly the kind of sample *reuse* the corrigendum is about.  Count-vector
  draws have no stream order, so this model applies to :meth:`draw` only.
* **Injected stream failures** — a deterministic (seeded) schedule of draw
  *calls* that raise :class:`InjectedStreamFailure` instead of returning.
  Failures are transient: the failed call consumes its slot in the
  schedule, so a retry with a fresh call proceeds.

Fault decisions consume a dedicated RNG stream, never the wrapped source's:
with every rate at zero and no schedule, the wrapper is a byte-identical
passthrough (same seed ⇒ same samples as the bare source).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import SampleSource, charge_units
from repro.observability.metrics import get_metrics
from repro.util.rng import RandomState, child_rng, ensure_rng


class InjectedStreamFailure(RuntimeError):
    """A scheduled, transient stream failure fired on this draw call."""

    def __init__(self, call: int) -> None:
        super().__init__(f"injected stream failure on draw call #{call}")
        self.call = call


class CorruptSampleError(RuntimeError):
    """A count-vector draw included out-of-domain (corrupted) samples."""

    def __init__(self, corrupted: int, requested: float) -> None:
        super().__init__(
            f"{corrupted} of ~{requested:,.0f} samples fell outside the domain"
        )
        self.corrupted = corrupted
        self.requested = requested


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultConfig:
    """Configuration of every fault model (all off by default)."""

    #: Huber contamination rate ``r``: P[sample replaced by contaminant].
    contamination_rate: float = 0.0
    #: The contaminating distribution ``Q`` (``None`` → uniform over the
    #: wrapped domain; pass an adversarial instance for worst-case studies).
    contaminant: DiscreteDistribution | None = None
    #: P[sample replaced by an out-of-domain index].
    out_of_domain_rate: float = 0.0
    #: P[sequential sample replaced by its predecessor (stale read)].
    duplication_rate: float = 0.0
    #: 1-based draw-call numbers that raise :class:`InjectedStreamFailure`.
    fail_at_draws: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        _check_rate("contamination_rate", self.contamination_rate)
        _check_rate("out_of_domain_rate", self.out_of_domain_rate)
        _check_rate("duplication_rate", self.duplication_rate)
        object.__setattr__(self, "fail_at_draws", frozenset(self.fail_at_draws))
        if any(c < 1 for c in self.fail_at_draws):
            raise ValueError("fail_at_draws entries are 1-based call numbers")

    @property
    def is_noop(self) -> bool:
        """True when every fault model is disabled (exact passthrough)."""
        return (
            self.contamination_rate == 0.0
            and self.out_of_domain_rate == 0.0
            and self.duplication_rate == 0.0
            and not self.fail_at_draws
        )

    def with_failure_schedule(
        self, seed: int, mean_interval: float, horizon: int
    ) -> "FaultConfig":
        """A copy with a deterministic seeded failure schedule.

        Failure call numbers are generated by i.i.d. geometric gaps with the
        given mean, up to ``horizon`` calls — same seed, same schedule.
        """
        if mean_interval < 1:
            raise ValueError(f"mean_interval must be ≥ 1, got {mean_interval}")
        if horizon < 1:
            raise ValueError(f"horizon must be positive, got {horizon}")
        gen = np.random.default_rng(seed)
        calls: list[int] = []
        position = 0
        while True:
            position += int(gen.geometric(1.0 / mean_interval))
            if position > horizon:
                break
            calls.append(position)
        return replace(self, fail_at_draws=frozenset(calls))


class FaultInjectingSource(SampleSource):
    """A :class:`SampleSource` serving a corrupted view of another source.

    Budget accounting passes through to the wrapped source (corrupted
    samples still cost budget — the tester cannot tell them apart), so
    ``samples_drawn`` / ``lifetime_drawn`` / ``max_samples`` enforcement all
    behave exactly as for the bare source.  Fault randomness comes from a
    separate stream (``fault_rng``), keeping the base stream untouched.
    """

    def __init__(
        self,
        source: SampleSource,
        config: FaultConfig,
        fault_rng: RandomState = None,
    ) -> None:
        self._base = source
        self._faults = config
        self._fault_rng = ensure_rng(fault_rng)
        self._calls = 0
        self._last_sample: int | None = None
        if config.contaminant is not None and config.contaminant.n != source.n:
            raise ValueError(
                f"contaminant domain {config.contaminant.n} != source domain {source.n}"
            )
        self._contaminant = (
            config.contaminant
            if config.contaminant is not None
            else DiscreteDistribution.uniform(source.n)
        )

    # -- passthrough accounting --------------------------------------------

    @property
    def n(self) -> int:
        return self._base.n

    @property
    def samples_drawn(self) -> int:
        return self._base.samples_drawn

    @property
    def lifetime_drawn(self) -> int:
        return self._base.lifetime_drawn

    @property
    def draw_calls(self) -> int:
        return self._base.draw_calls

    @property
    def max_samples(self) -> int | None:
        return self._base.max_samples

    def reset_budget(self) -> None:
        self._base.reset_budget()

    @property
    def fault_config(self) -> FaultConfig:
        return self._faults

    @property
    def calls_made(self) -> int:
        """Draw calls seen so far (including ones that raised)."""
        return self._calls

    # -- fault machinery ----------------------------------------------------

    def _tick(self) -> None:
        self._calls += 1
        if self._calls in self._faults.fail_at_draws:
            get_metrics().counter("faults.injected_failures").inc()
            raise InjectedStreamFailure(self._calls)

    def _corrupt_sequential(self, clean: np.ndarray) -> np.ndarray:
        """Apply per-sample faults to a sequentially-drawn batch.

        Order: contamination, then out-of-domain corruption, then
        duplication (a stale read repeats whatever was *delivered* before
        it, corrupted or not).
        """
        m = len(clean)
        if m == 0:
            return clean
        out = np.array(clean)
        cfg = self._faults
        if cfg.contamination_rate > 0.0:
            mask = self._fault_rng.random(m) < cfg.contamination_rate
            hits = int(mask.sum())
            if hits:
                out[mask] = self._contaminant.sample(hits, self._fault_rng)
        if cfg.out_of_domain_rate > 0.0:
            mask = self._fault_rng.random(m) < cfg.out_of_domain_rate
            hits = int(mask.sum())
            if hits:
                out[mask] = self.n + self._fault_rng.integers(
                    0, max(1, self.n), size=hits
                )
        if cfg.duplication_rate > 0.0:
            first = out[0] if self._last_sample is None else self._last_sample
            prev = np.concatenate(([first], out[:-1]))
            mask = self._fault_rng.random(m) < cfg.duplication_rate
            out[mask] = prev[mask]
        self._last_sample = int(out[-1])
        return out

    def _check_corruption(self, corrupted: int, requested: float) -> None:
        if corrupted > 0:
            get_metrics().counter("faults.corrupt_batches").inc()
            raise CorruptSampleError(corrupted, requested)

    # -- draw paths ---------------------------------------------------------

    def draw(self, m: int) -> np.ndarray:
        self._tick()
        clean = self._base.draw(m)
        if self._faults.is_noop:
            return clean
        return self._corrupt_sequential(clean)

    def draw_counts(self, m: int) -> np.ndarray:
        self._tick()
        cfg = self._faults
        if cfg.is_noop:
            return self._base.draw_counts(m)
        if m < 0:
            raise ValueError(f"sample size must be non-negative, got {m}")
        # Reach into the wrapped source's accounting so the *full* batch is
        # budget-checked up front, then charge the contaminated remainder
        # after the clean sub-batch was served (friend-module access).
        self._base._check_budget(m)
        if cfg.out_of_domain_rate > 0.0:
            corrupted = int(self._fault_rng.binomial(m, cfg.out_of_domain_rate))
            self._check_corruption(corrupted, m)
        # Exact Huber mixture by binomial splitting: of the m samples,
        # Binomial(m, r) are contaminant draws, the rest are clean.
        bad = (
            int(self._fault_rng.binomial(m, cfg.contamination_rate))
            if cfg.contamination_rate > 0.0
            else 0
        )
        counts = self._base.draw_counts(m - bad)
        self._base._record(bad)
        if bad:
            counts = counts + self._contaminant.sample_counts(bad, self._fault_rng)
        return counts

    def draw_counts_poissonized(self, m: float) -> np.ndarray:
        self._tick()
        cfg = self._faults
        if cfg.is_noop:
            return self._base.draw_counts_poissonized(m)
        if m < 0:
            raise ValueError(f"expected sample size must be non-negative, got {m}")
        self._base._check_budget(m)
        if cfg.out_of_domain_rate > 0.0:
            corrupted = int(self._fault_rng.poisson(m * cfg.out_of_domain_rate))
            self._check_corruption(corrupted, m)
        # Exact Huber mixture by Poisson thinning:
        # Poisson(m·mix) = Poisson((1−r)·m·D) + Poisson(r·m·Q).
        # Charge the contaminant share as the *remainder* against ceil(m),
        # so the wrapped batch bills exactly what a clean batch would —
        # ceiling both halves independently could over-charge by one.
        rate = cfg.contamination_rate
        clean = (1.0 - rate) * m
        counts = self._base.draw_counts_poissonized(clean)
        self._base._record(charge_units(m) - charge_units(clean))
        if rate > 0.0:
            counts = counts + self._contaminant.sample_counts_poissonized(
                rate * m, self._fault_rng
            )
        return counts

    # -- derived sources ----------------------------------------------------

    def spawn(self) -> "FaultInjectingSource":
        """An independent faulty source: fresh base stream, fresh fault
        stream, same fault model, call counter restarted."""
        return FaultInjectingSource(
            self._base.spawn(), self._faults, child_rng(self._fault_rng)
        )

    def permuted(self, sigma: np.ndarray) -> "FaultInjectingSource":
        """Relabel both the base source and the contaminant by σ, so the
        corruption travels through the Section-4.2 reduction coherently."""
        cfg = self._faults
        if cfg.contaminant is not None:
            cfg = replace(cfg, contaminant=cfg.contaminant.permute(sigma))
        return FaultInjectingSource(
            self._base.permuted(sigma), cfg, child_rng(self._fault_rng)
        )
