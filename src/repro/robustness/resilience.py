"""Bounded retry, wall-clock deadlines, and trial-failure records.

Everything here is deliberately *deterministic*: backoff jitter is seeded
(the delay schedule is a pure function of the policy, so experiments replay
bit-for-bit given a seed) and deadlines are cooperative (checked at every
draw through :class:`DeadlineSource`), so a timed-out trial aborts at a
well-defined point in its sample stream instead of being killed
mid-arithmetic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

import numpy as np

from repro.distributions.sampling import SampleBudgetExceeded, SampleSource
from repro.observability.metrics import get_metrics
from repro.robustness.faults import CorruptSampleError, InjectedStreamFailure

T = TypeVar("T")


class TrialTimeout(RuntimeError):
    """A trial exceeded its wall-clock deadline (raised cooperatively)."""

    def __init__(self, seconds: float) -> None:
        super().__init__(f"trial exceeded its {seconds:g}s wall-clock deadline")
        self.seconds = seconds


#: Exceptions that model recoverable stream trouble: retrying the trial on a
#: fresh stream is sound (the failure is transient or stream-specific, not a
#: programming error).
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (InjectedStreamFailure,)

#: Exceptions a trial may raise that the isolation machinery records as a
#: structured :class:`TrialFailure` instead of propagating: stream faults,
#: budget exhaustion, deadline overruns, and corrupt-data crashes
#: (``ValueError`` covers ``counts_from_samples`` on out-of-domain samples).
ISOLATED_ERRORS: tuple[type[BaseException], ...] = (
    InjectedStreamFailure,
    CorruptSampleError,
    SampleBudgetExceeded,
    TrialTimeout,
    ValueError,
    ArithmeticError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic, seeded-jitter exponential backoff.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means up to
    two retries.  ``base_delay=0`` (the default) disables sleeping entirely,
    which is what simulation loops want — the backoff schedule still exists
    for callers that wrap real I/O.

    ``jitter`` spreads each delay uniformly over ``[delay·(1 − jitter),
    delay]``: many sessions retrying the same transient outage would
    otherwise re-draw in lockstep and hammer the source again simultaneously
    (the thundering herd the serve layer must avoid).  The jitter stream is
    seeded by ``jitter_seed`` and indexed by the attempt number, so the
    whole schedule is a pure function of the policy — two policies with the
    same fields produce byte-identical delay sequences, and two sessions
    with different ``jitter_seed`` values de-synchronise.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    retry_on: tuple[type[BaseException], ...] = TRANSIENT_ERRORS
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be ≥ 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be ≥ 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter == 0.0 or base == 0.0:
            return base
        # One throwaway generator per (seed, attempt): the draw depends only
        # on the policy fields, never on shared RNG state, so concurrent
        # sessions computing delays cannot perturb each other's schedules.
        seq = np.random.SeedSequence(self.jitter_seed, spawn_key=(attempt,))
        fraction = float(np.random.default_rng(seq).random())
        return base * (1.0 - self.jitter * fraction)


def run_with_retry(
    fn: Callable[[int], T],
    policy: RetryPolicy | None = None,
    *,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[T, int]:
    """Call ``fn(attempt)`` under the retry policy.

    ``fn`` receives the 1-based attempt number so it can derive a *fresh*
    RNG sub-stream per attempt — retrying a deterministic failure on the
    same stream would fail identically forever.  Returns ``(result,
    attempts_used)``; after the last allowed attempt the exception
    propagates.
    """
    if policy is None:
        policy = RetryPolicy()
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn(attempt), attempt
        except policy.retry_on:
            if attempt == policy.max_attempts:
                raise
            get_metrics().counter("robustness.retries").inc()
            pause = policy.delay(attempt)
            if pause > 0:
                sleep(pause)
    raise AssertionError("unreachable")  # pragma: no cover


class Deadline:
    """A wall-clock deadline with an injectable clock (for tests)."""

    def __init__(
        self, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._expires = clock() + seconds

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires

    def remaining(self) -> float:
        return max(0.0, self._expires - self._clock())

    def check(self) -> None:
        """Raise :class:`TrialTimeout` once the deadline has passed."""
        if self.expired:
            raise TrialTimeout(self.seconds)


class DeadlineSource(SampleSource):
    """A :class:`SampleSource` proxy that enforces a deadline on every draw.

    Testers spend their time in sample-draw loops, so checking at each draw
    bounds overruns tightly without preemption.
    """

    def __init__(self, source: SampleSource, deadline: Deadline) -> None:
        self._base = source
        self._deadline = deadline

    @property
    def n(self) -> int:
        return self._base.n

    @property
    def samples_drawn(self) -> int:
        return self._base.samples_drawn

    @property
    def lifetime_drawn(self) -> int:
        return self._base.lifetime_drawn

    @property
    def draw_calls(self) -> int:
        return self._base.draw_calls

    @property
    def max_samples(self) -> int | None:
        return self._base.max_samples

    def reset_budget(self) -> None:
        self._base.reset_budget()

    def draw(self, m: int) -> np.ndarray:
        self._deadline.check()
        return self._base.draw(m)

    def draw_counts(self, m: int) -> np.ndarray:
        self._deadline.check()
        return self._base.draw_counts(m)

    def draw_counts_poissonized(self, m: float) -> np.ndarray:
        self._deadline.check()
        return self._base.draw_counts_poissonized(m)

    @property
    def deadline(self) -> Deadline:
        """The shared deadline object (one per session, never copied)."""
        return self._deadline

    def spawn(self) -> "DeadlineSource":
        """A fresh sub-stream under the *same* :class:`Deadline` object.

        Sharing (not copying) the parent deadline is load-bearing: a spawned
        sub-source must not outlive the session that spawned it, so its
        draws keep checking the original expiry, not a restarted one.
        """
        return DeadlineSource(self._base.spawn(), self._deadline)

    def permuted(self, sigma: np.ndarray) -> "DeadlineSource":
        """The σ-relabelled source, still under the shared parent deadline."""
        return DeadlineSource(self._base.permuted(sigma), self._deadline)


@dataclass(frozen=True)
class TrialFailure:
    """Structured record of one isolated (non-fatal) trial failure."""

    trial: int
    error_type: str
    message: str
    attempts: int
    elapsed: float

    def __str__(self) -> str:
        return (
            f"trial {self.trial}: {self.error_type} after {self.attempts} "
            f"attempt(s) in {self.elapsed:.2f}s — {self.message}"
        )


class TooManyTrialFailures(RuntimeError):
    """The trial-failure rate exceeded the policy's rejection threshold."""

    def __init__(
        self, failures: tuple[TrialFailure, ...], trials: int, threshold: float
    ) -> None:
        detail = "; ".join(str(f) for f in failures[:3])
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(
            f"{len(failures)}/{trials} trials failed "
            f"(threshold {threshold:.0%}): {detail}{more}"
        )
        self.failures = failures
        self.trials = trials
        self.threshold = threshold


@dataclass(frozen=True)
class TrialPolicy:
    """Fault-tolerance policy for a repeated-trial estimate.

    * ``retry`` — per-trial bounded retry on transient stream errors;
    * ``trial_timeout`` — per-trial wall-clock deadline in seconds
      (``None`` → unlimited), enforced via :class:`DeadlineSource`;
    * ``max_samples`` — per-trial hard sample cap passed to each trial's
      source (``None`` → uncapped);
    * ``max_failure_rate`` — once retries are exhausted a trial is recorded
      as a :class:`TrialFailure` and the estimate proceeds *without* it;
      only when failures exceed this fraction of all trials does the
      estimate itself fail, with :class:`TooManyTrialFailures`;
    * ``isolate`` — the exception types eligible for isolation (anything
      else propagates immediately: programming errors must stay loud).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    trial_timeout: float | None = None
    max_samples: float | None = None
    max_failure_rate: float = 0.25
    isolate: tuple[type[BaseException], ...] = ISOLATED_ERRORS

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_failure_rate < 1.0:
            raise ValueError(
                f"max_failure_rate must be in [0, 1), got {self.max_failure_rate}"
            )
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ValueError(f"trial_timeout must be positive, got {self.trial_timeout}")
