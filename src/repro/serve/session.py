"""The per-stream session state machine.

A :class:`StreamSession` owns one submitted test request through its whole
service lifetime::

    ACCEPTED ──start_attempt──▶ SAMPLING ──verdict──▶ VERDICT
        ▲                          │  │
        │   (retry w/ backoff)     │  └──degrade──▶ DEGRADED
        └──────────────────────────┘
                                   └──give up───▶ EVICTED

Every attempt gets a *fresh* tester pipeline, sample source, and
:class:`~repro.observability.ledger.SampleLedger` — retrying a failed
attempt on the same stream would re-trigger a deterministic failure
forever, and reusing samples across attempts is exactly the corrigendum
bug class this repo exists to avoid.  Each attempt's ledger reconciles
*exactly* (integer equality) whether the attempt finished or died
mid-stage: pipeline stages record their draws in ``finally`` blocks, and
the failure path calls :meth:`~repro.core.tester.TesterPipeline.abort`.

Determinism: attempt ``a`` of session ``i`` draws from
``SeedSequence(entropy=request.seed, spawn_key=(i, a))``; the fault stream
(when the request carries a fault model) uses ``spawn_key=(i, a, 1)``.
Nothing depends on wall-clock time — deadlines run on the service's
virtual step clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.backends import DEFAULT_BACKEND, validate_backend
from repro.core.config import TesterConfig
from repro.core.tester import CheckOracle, ProjectOracle, TesterPipeline, Verdict
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import SampleSource
from repro.kernels import validate_kernel
from repro.observability.trace import RecordingTracer
from repro.robustness.faults import FaultConfig, FaultInjectingSource
from repro.robustness.resilience import Deadline, DeadlineSource


class SessionState:
    """Terminal and transient states of a stream session (str constants)."""

    ACCEPTED = "ACCEPTED"
    SAMPLING = "SAMPLING"
    VERDICT = "VERDICT"
    DEGRADED = "DEGRADED"
    EVICTED = "EVICTED"

    #: States a retired session may end in — anything else is a crash.
    TERMINAL = (VERDICT, DEGRADED, EVICTED)


#: Confidence of an undegraded Algorithm 1 verdict (Theorem 3.1's 2/3).
FULL_CONFIDENCE = 2.0 / 3.0

#: Confidence after the partial-pipeline degradation: the learn/sieve/check
#: prefix passed but the final χ² test never completed, so only the
#: learner's implicit evidence supports the accept.
PARTIAL_CONFIDENCE = 0.5


@dataclass(frozen=True)
class StreamRequest:
    """One submitted test: a stream plus its test parameters and limits."""

    request_id: str
    dist: DiscreteDistribution
    k: int
    eps: float
    seed: int
    #: Upstream grouping key for the per-source circuit breaker: sessions on
    #: one flaky ingest share a breaker, so repeated failures there stop
    #: burning budget without touching healthy sources.
    source_id: str = "default"
    #: Fault model applied to the stream (``None``/no-op → clean stream).
    faults: Optional[FaultConfig] = None
    #: Session deadline in virtual clock ticks (``None`` → no deadline).
    #: The deadline spans *all* attempts: it is created once per session and
    #: shared by every attempt's :class:`DeadlineSource`.
    deadline_ticks: Optional[int] = None
    #: Per-attempt hard sample cap (``None`` → the service derives one from
    #: the Algorithm 1 budget formula with its configured slack).
    max_samples: Optional[int] = None
    #: Projection DP engine for the check stage.
    engine: str = "auto"
    #: Compute-kernel knob for the hot loops ("auto" | "python" | "numba").
    #: Like ``engine`` — and unlike ``backend`` — every kernel pair is
    #: bit-identical, so it stays out of pricing, grouping identity, and
    #: replay fingerprints; mixed-kernel rounds are still grouped apart in
    #: the final batch so one vectorized call never mixes kernels.
    kernel: str = "auto"
    #: Chaos knob: make the fast projection engine fail once for this
    #: session, exercising the dense-fallback degradation path.
    projection_fault: bool = False
    #: Tester backend for this session ("pods16" | "cdkl22").  Part of the
    #: batch grouping key — mixed-backend rounds batch same-shape *and*
    #: same-backend sessions together — and of the admission cost formula.
    backend: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        if self.deadline_ticks is not None and self.deadline_ticks < 1:
            raise ValueError(f"deadline_ticks must be ≥ 1, got {self.deadline_ticks}")
        if self.max_samples is not None and self.max_samples < 1:
            raise ValueError(f"max_samples must be ≥ 1, got {self.max_samples}")
        validate_backend(self.backend)
        validate_kernel(self.kernel)


@dataclass(frozen=True)
class SessionOutcome:
    """The immutable record of one retired session.

    ``attempt_samples`` holds each attempt's *reconciled* ledger total, so
    ``samples_total == sum(attempt_samples)`` by construction and each entry
    passed the exact integer reconciliation before landing here.
    """

    request_id: str
    source_id: str
    state: str
    accept: Optional[bool]
    stage: Optional[str]
    reason: str
    attempts: int
    samples_total: int
    attempt_samples: tuple
    confidence: Optional[float]
    degraded_mode: Optional[str]
    admitted_round: int
    retired_round: int
    #: Wall-clock seconds from admission to retirement — observational only,
    #: excluded from the canonical report (it would break replay identity).
    wall_seconds: float = 0.0

    def canonical(self) -> dict:
        """The deterministic view used for byte-identical replay checks."""
        return {
            "request_id": self.request_id,
            "source_id": self.source_id,
            "state": self.state,
            "accept": self.accept,
            "stage": self.stage,
            "reason": self.reason,
            "attempts": self.attempts,
            "samples_total": self.samples_total,
            "attempt_samples": list(self.attempt_samples),
            "confidence": self.confidence,
            "degraded_mode": self.degraded_mode,
            "admitted_round": self.admitted_round,
            "retired_round": self.retired_round,
        }


class StreamSession:
    """One admitted stream working its way to a terminal state."""

    def __init__(
        self,
        index: int,
        request: StreamRequest,
        *,
        config: TesterConfig,
        budget_cap: Optional[int],
        clock: Callable[[], float],
        admitted_round: int,
        check_oracle: Optional[CheckOracle] = None,
        project_oracle: Optional[ProjectOracle] = None,
    ) -> None:
        self.index = index
        self.request = request
        self.config = config
        self.budget_cap = budget_cap
        self.clock = clock
        self.state = SessionState.ACCEPTED
        self.attempt = 0
        self.admitted_round = admitted_round
        self.admitted_wall: float = 0.0
        self.not_before: float = 0.0  # virtual time gate for retry backoff
        self.attempt_samples: list[int] = []
        self.degraded_mode: Optional[str] = None
        self.projection_fault_pending = request.projection_fault
        self.check_oracle = check_oracle
        self.project_oracle = project_oracle
        self.tracer = RecordingTracer()
        self.pipeline: Optional[TesterPipeline] = None
        self._test_span = None
        # One deadline for the whole session, shared by every attempt's
        # DeadlineSource (never copied): a retry cannot reset the clock.
        self.deadline: Optional[Deadline] = (
            Deadline(float(request.deadline_ticks), clock=clock)
            if request.deadline_ticks is not None
            else None
        )

    # -- attempt lifecycle ---------------------------------------------------

    def start_attempt(self) -> TesterPipeline:
        """Open attempt ``self.attempt + 1`` with a fresh source + pipeline."""
        self.attempt += 1
        self.state = SessionState.SAMPLING
        req = self.request
        seq = np.random.SeedSequence(entropy=req.seed, spawn_key=(self.index, self.attempt))
        source: SampleSource = SampleSource(
            req.dist,
            rng=np.random.default_rng(seq),
            max_samples=req.max_samples if req.max_samples is not None else self.budget_cap,
        )
        if req.faults is not None and not req.faults.is_noop:
            fault_seq = np.random.SeedSequence(
                entropy=req.seed, spawn_key=(self.index, self.attempt, 1)
            )
            source = FaultInjectingSource(
                source, req.faults, fault_rng=np.random.default_rng(fault_seq)
            )
        if self.deadline is not None:
            source = DeadlineSource(source, self.deadline)
        self._test_span = self.tracer.span(
            "attempt",
            n=req.dist.n,
            k=req.k,
            eps=req.eps,
            attempt=self.attempt,
            backend=req.backend,
        )
        self._test_span.__enter__()
        self.pipeline = TesterPipeline(
            source,
            req.k,
            req.eps,
            config=self.config,
            backend=req.backend,
            projection_engine=req.engine,
            kernel=req.kernel,
            check_oracle=self.check_oracle,
            project_oracle=self.project_oracle,
            trace=self.tracer,
        )
        return self.pipeline

    def close_attempt(self, reconciled_samples: int) -> None:
        """Record one finished (or aborted-and-reconciled) attempt."""
        self.attempt_samples.append(int(reconciled_samples))
        if self._test_span is not None:
            self._test_span.set(samples=int(reconciled_samples))
            self._test_span.__exit__(None, None, None)
            self._test_span = None
        self.pipeline = None

    def abort_attempt(self) -> int:
        """Abandon the in-flight attempt; its ledger must still reconcile."""
        assert self.pipeline is not None
        reconciled = self.pipeline.abort()
        self.close_attempt(reconciled)
        return reconciled

    def degrade(self, mode: str) -> None:
        """Flag a degradation mode (the first one sticks)."""
        if self.degraded_mode is None:
            self.degraded_mode = mode

    @property
    def samples_total(self) -> int:
        return sum(self.attempt_samples)

    # -- retirement ----------------------------------------------------------

    def retire_verdict(self, verdict: Verdict, round_index: int, wall: float) -> SessionOutcome:
        state = SessionState.DEGRADED if self.degraded_mode else SessionState.VERDICT
        confidence = FULL_CONFIDENCE
        self.state = state
        return self._outcome(
            state=state,
            accept=verdict.accept,
            stage=verdict.stage,
            reason=verdict.reason,
            confidence=confidence,
            round_index=round_index,
            wall=wall,
        )

    def retire_degraded_partial(
        self, reason: str, round_index: int, wall: float
    ) -> SessionOutcome:
        """The partial-pipeline degradation: the learn/sieve/check prefix
        passed but the final χ² test could not complete (deadline or budget
        died mid-draw).  Accept on the prefix evidence with an explicit
        confidence downgrade instead of crashing the session."""
        self.degrade("partial-pipeline")
        self.state = SessionState.DEGRADED
        return self._outcome(
            state=SessionState.DEGRADED,
            accept=True,
            stage="check",
            reason=reason,
            confidence=PARTIAL_CONFIDENCE,
            round_index=round_index,
            wall=wall,
        )

    def retire_evicted(self, reason: str, round_index: int, wall: float) -> SessionOutcome:
        self.state = SessionState.EVICTED
        return self._outcome(
            state=SessionState.EVICTED,
            accept=None,
            stage=None,
            reason=reason,
            confidence=None,
            round_index=round_index,
            wall=wall,
        )

    def _outcome(
        self,
        *,
        state: str,
        accept: Optional[bool],
        stage: Optional[str],
        reason: str,
        confidence: Optional[float],
        round_index: int,
        wall: float,
    ) -> SessionOutcome:
        return SessionOutcome(
            request_id=self.request.request_id,
            source_id=self.request.source_id,
            state=state,
            accept=accept,
            stage=stage,
            reason=reason,
            attempts=self.attempt,
            samples_total=self.samples_total,
            attempt_samples=tuple(self.attempt_samples),
            confidence=confidence,
            degraded_mode=self.degraded_mode,
            admitted_round=self.admitted_round,
            retired_round=round_index,
            wall_seconds=wall,
        )
