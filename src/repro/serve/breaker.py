"""Per-source circuit breakers.

Sessions carry a ``source_id`` naming the upstream they sample from.  When
one upstream starts failing repeatedly (injected stream failures, corrupt
batches, deadline overruns), retrying every session against it burns
budget on a source that is plainly down.  The breaker watches *consecutive*
failures per source and trips after ``failure_threshold`` of them:

* **CLOSED** — healthy; traffic flows.
* **OPEN** — tripped; sessions on this source wait (they are *not*
  evicted — their own deadlines and retry budgets decide that).  After
  ``cooldown_rounds`` service rounds the breaker moves to HALF_OPEN.
* **HALF_OPEN** — exactly one probe session is allowed through; its
  success closes the breaker, its failure re-opens it for another cooldown.

Cooldowns are counted in service rounds (virtual time), so breaker
behaviour replays identically under a fixed seed.
"""

from __future__ import annotations

CLOSED = "CLOSED"
OPEN = "OPEN"
HALF_OPEN = "HALF_OPEN"


class CircuitBreaker:
    """One source's breaker: consecutive-failure trip with scheduled re-probe."""

    def __init__(self, failure_threshold: int = 3, cooldown_rounds: int = 2) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be ≥ 1, got {failure_threshold}")
        if cooldown_rounds < 1:
            raise ValueError(f"cooldown_rounds must be ≥ 1, got {cooldown_rounds}")
        self.failure_threshold = failure_threshold
        self.cooldown_rounds = cooldown_rounds
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._cooldown_left = 0
        self._probe_inflight = False

    def tick(self) -> None:
        """Advance one service round (counts down an open breaker's cooldown)."""
        if self.state == OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.state = HALF_OPEN
                self._probe_inflight = False

    def allow(self) -> bool:
        """May a session on this source start (or continue) an attempt now?

        In HALF_OPEN only the first caller per round window gets through —
        it becomes the probe whose outcome decides the breaker's fate.
        """
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probe_inflight = False
        self.state = CLOSED

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self._probe_inflight = False
        if self.state == HALF_OPEN or self.consecutive_failures >= self.failure_threshold:
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self._cooldown_left = self.cooldown_rounds
            self.consecutive_failures = 0
