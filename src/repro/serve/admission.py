"""Admission control: the service's global in-flight budget.

Overload must shed load *deterministically* — a service that corrupts
verdicts under pressure is worse than one that says no.  The controller
enforces three independent limits:

* **session slots** — at most ``max_sessions`` streams in flight;
* **sample budget** — the sum of admitted sessions' worst-case sample caps
  never exceeds ``max_inflight_samples`` (sessions × samples, the quantity
  that actually bounds memory and sampling work);
* **admission rate** — a token bucket refilled each round smooths bursts;
  an admission costs one token.

Requests wait in a bounded FIFO queue; a full queue sheds the newcomer
with a structured :class:`Rejection` (never an exception — rejection is an
outcome, not an error).  Admission is strict FIFO with head-of-line
blocking: if the head request does not fit, nothing behind it is admitted
either.  Skipping ahead would admit whichever small request happens to be
queued — order would then depend on arrival interleaving, and replay
identity would be lost.

Conservation invariant (property-tested): at all times
``admitted_units − released_units == inflight_units ≤ max_inflight_samples``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class AdmissionConfig:
    """Limits for the admission controller."""

    max_sessions: int = 64
    #: Global sessions × samples budget.  Admission charges each session its
    #: *worst-case* per-attempt cap (≈ 50M samples for an n=512 practical-
    #: profile request), so the default admits roughly ten such sessions at
    #: once; size it to taste for bigger domains.
    max_inflight_samples: int = 500_000_000
    queue_limit: int = 256
    #: Tokens added per round (admissions allowed per round, amortised).
    refill_tokens: int = 16
    token_capacity: int = 32

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError(f"max_sessions must be ≥ 1, got {self.max_sessions}")
        if self.max_inflight_samples < 1:
            raise ValueError(
                f"max_inflight_samples must be ≥ 1, got {self.max_inflight_samples}"
            )
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be ≥ 1, got {self.queue_limit}")
        if self.refill_tokens < 1:
            raise ValueError(f"refill_tokens must be ≥ 1, got {self.refill_tokens}")
        if self.token_capacity < self.refill_tokens:
            raise ValueError("token_capacity must be ≥ refill_tokens")


@dataclass(frozen=True)
class Rejection:
    """A deterministically shed request (an outcome, not an error)."""

    request_id: str
    reason: str

    def canonical(self) -> dict:
        return {"request_id": self.request_id, "reason": self.reason}


class AdmissionController:
    """Token-bucket admission over a bounded FIFO queue."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self.tokens = self.config.token_capacity
        self.inflight_units = 0
        self.active_sessions = 0
        self.admitted_units = 0
        self.released_units = 0
        self._queue: deque[tuple[str, int]] = deque()
        self._inflight: dict[str, int] = {}

    # -- intake ---------------------------------------------------------------

    def submit(self, request_id: str, units: int) -> Rejection | None:
        """Queue a request costing ``units`` samples; ``None`` means queued.

        A request whose cost can *never* fit the global budget is rejected
        immediately (queuing it would head-of-line-block the queue forever).
        """
        if units < 0:
            raise ValueError(f"units must be non-negative, got {units}")
        if request_id in self._inflight or any(r == request_id for r, _ in self._queue):
            raise ValueError(f"duplicate request_id {request_id!r}")
        if units > self.config.max_inflight_samples:
            return Rejection(
                request_id,
                f"budget {units} exceeds the global in-flight cap "
                f"{self.config.max_inflight_samples} — unservable at any load",
            )
        if len(self._queue) >= self.config.queue_limit:
            return Rejection(
                request_id,
                f"wait queue full ({self.config.queue_limit}) — shed under backpressure",
            )
        self._queue.append((request_id, units))
        return None

    # -- per-round machinery --------------------------------------------------

    def refill(self) -> None:
        """Add this round's tokens (clamped at the bucket capacity)."""
        self.tokens = min(self.config.token_capacity, self.tokens + self.config.refill_tokens)

    def admit_ready(self) -> list[str]:
        """Admit queued requests in strict FIFO order until a limit binds."""
        admitted: list[str] = []
        while self._queue:
            request_id, units = self._queue[0]
            if (
                self.tokens < 1
                or self.active_sessions >= self.config.max_sessions
                or self.inflight_units + units > self.config.max_inflight_samples
            ):
                break  # head-of-line blocking keeps admission order replayable
            self._queue.popleft()
            self.tokens -= 1
            self.active_sessions += 1
            self.inflight_units += units
            self.admitted_units += units
            self._inflight[request_id] = units
            admitted.append(request_id)
        return admitted

    def shed_queued(self, reason: str) -> list[Rejection]:
        """Shed every queued (not-yet-admitted) request as a structured
        :class:`Rejection` — the drain path: in-flight sessions keep their
        slots and finish; waiting ones are turned away deterministically in
        queue order.  Conservation invariants are untouched (queued
        requests never held units)."""
        shed = [Rejection(request_id, reason) for request_id, _units in self._queue]
        self._queue.clear()
        return shed

    def release(self, request_id: str) -> None:
        """Return a retired session's slot and sample units to the pool.

        Called on *every* retirement — verdict, degraded, or evicted — so
        tokens-worth of budget is conserved across evictions too.
        """
        units = self._inflight.pop(request_id)
        self.active_sessions -= 1
        self.inflight_units -= units
        self.released_units += units

    # -- introspection --------------------------------------------------------

    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in flight."""
        return not self._queue and not self._inflight

    def check_invariants(self) -> None:
        """Raise AssertionError if any conservation invariant is violated."""
        assert 0 <= self.inflight_units <= self.config.max_inflight_samples
        assert 0 <= self.active_sessions <= self.config.max_sessions
        assert 0 <= self.tokens <= self.config.token_capacity
        assert self.admitted_units - self.released_units == self.inflight_units
        assert sum(self._inflight.values()) == self.inflight_units
        assert len(self._inflight) == self.active_sessions
