"""Deterministic fault-schedule replay for service drills.

``repro serve --chaos`` and the E24 soak benchmark need *reproducible*
adversity: a request population where a configured fraction of sessions
carries a fault, the faults cover every failure mode the service claims to
survive, and the whole schedule is a pure function of the seed.  No
randomness is sampled at service time — every fault is baked into the
:class:`~repro.serve.session.StreamRequest` list up front, so two runs of
the same :class:`ChaosConfig` exercise byte-identical schedules.

Fault kinds cycle deterministically over the faulty sessions:

* ``stream``        — a seeded schedule of injected draw-call failures
  (transient; exercises retry + the circuit breaker — these sessions all
  share the ``flaky`` source);
* ``contamination`` — Huber mixture at 5% (the tester should usually still
  reach a verdict; exercises verdict robustness, not the failure paths);
* ``corruption``    — out-of-domain samples (raises on count draws;
  exercises retry and eviction);
* ``timeout``       — a deadline in virtual ticks too tight for the final
  test (exercises eviction and the partial-pipeline degradation);
* ``projection``    — an injected fast-engine failure in the check stage
  (exercises the dense fallback → DEGRADED path).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends import BACKENDS, validate_backend
from repro.kernels import validate_kernel
from repro.experiments.workloads import make
from repro.robustness.faults import FaultConfig
from repro.serve.session import StreamRequest

FAULT_KINDS = ("stream", "contamination", "corruption", "timeout", "projection")


@dataclass(frozen=True)
class ChaosConfig:
    """Parameters of one deterministic chaos drill."""

    sessions: int = 40
    n: int = 512
    k: int = 4
    eps: float = 0.3
    fault_rate: float = 0.1
    seed: int = 0
    workloads: tuple = ("staircase", "random-histogram", "uniform", "zipf")
    #: Healthy sessions are spread over this many sources; all ``stream``
    #: fault sessions share one extra ``flaky`` source so repeated failures
    #: there actually trip its breaker.
    healthy_sources: int = 3
    #: Virtual-tick deadline given to ``timeout`` fault sessions (each draw
    #: call reads the virtual clock once, so single digits expire mid-run).
    timeout_ticks: int = 5
    #: Tester backend for the population: one of the registered backends,
    #: or ``"mixed"`` to alternate per session (exercising the same-shape,
    #: different-backend batch-grouping path).
    backend: str = "pods16"
    #: Compute-kernel knob applied to every session (execution only; the
    #: drill's canonical report is identical under any kernel).
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError(f"sessions must be ≥ 1, got {self.sessions}")
        if self.backend != "mixed":
            validate_backend(self.backend)
        validate_kernel(self.kernel)
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {self.fault_rate}")
        if self.healthy_sources < 1:
            raise ValueError("healthy_sources must be ≥ 1")


def build_requests(config: ChaosConfig) -> list:
    """The deterministic request population for one drill.

    Session ``i`` is faulty iff ``i`` is one of the
    ``round(sessions × fault_rate)`` indices evenly spread over the
    population; its fault kind cycles through :data:`FAULT_KINDS`.  All
    per-session randomness (workload instance parameters) flows through
    ``SeedSequence(config.seed, spawn_key=(i,))``.
    """
    faulty_count = int(round(config.sessions * config.fault_rate))
    stride = config.sessions / faulty_count if faulty_count else 0.0
    faulty_indices = {int(j * stride) for j in range(faulty_count)}

    requests: list[StreamRequest] = []
    fault_cursor = 0
    for i in range(config.sessions):
        workload = config.workloads[i % len(config.workloads)]
        rng = np.random.default_rng(np.random.SeedSequence(config.seed, spawn_key=(i,)))
        dist = make(workload, config.n, config.k, config.eps, rng=rng)
        faults = None
        deadline_ticks = None
        projection_fault = False
        source_id = f"src-{i % config.healthy_sources}"
        if i in faulty_indices:
            kind = FAULT_KINDS[fault_cursor % len(FAULT_KINDS)]
            fault_cursor += 1
            if kind == "stream":
                source_id = "flaky"
                faults = FaultConfig().with_failure_schedule(
                    seed=config.seed + i, mean_interval=3.0, horizon=64
                )
            elif kind == "contamination":
                faults = FaultConfig(contamination_rate=0.05)
            elif kind == "corruption":
                faults = FaultConfig(out_of_domain_rate=0.01)
            elif kind == "timeout":
                deadline_ticks = config.timeout_ticks
            else:  # projection
                projection_fault = True
        backend = (
            BACKENDS[i % len(BACKENDS)] if config.backend == "mixed" else config.backend
        )
        requests.append(
            StreamRequest(
                request_id=f"chaos-{i:04d}",
                dist=dist,
                k=config.k,
                eps=config.eps,
                seed=config.seed * 1_000_003 + i,
                source_id=source_id,
                faults=faults,
                deadline_ticks=deadline_ticks,
                projection_fault=projection_fault,
                backend=backend,
                kernel=config.kernel,
            )
        )
    return requests
