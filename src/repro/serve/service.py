"""The round-driven service loop: admission → attempts → batched verdicts.

:class:`TesterService` runs in *rounds*.  Each round it (1) advances the
virtual clock and the breakers' cooldowns, (2) refills and drains the
admission queue, (3) steps every eligible session through its attempt up
to the final χ² test, catching stream faults / timeouts / budget overruns
per session, and (4) computes all pending final tests in one vectorized
batch (:mod:`repro.serve.batch`) and retires the verdicts.  The loop ends
when nothing is queued or in flight — every submitted request has become a
VERDICT, a DEGRADED verdict, an EVICTED outcome, or a structured
:class:`~repro.serve.admission.Rejection`.  No session crashes the loop:
only programming errors propagate.

Degradation policy (in order of preference):

1. **retry** — transient stream faults (injected failures, corrupt
   batches) get a fresh attempt after a seeded, jittered backoff in
   virtual time, up to the retry policy's attempt limit;
2. **fallback** — a projection-oracle error during the check stage falls
   back from the requested engine to the exact-but-slower dense DP and
   flags the verdict ``projection-dense-fallback``;
3. **partial-pipeline** — a deadline or budget death *after* the check
   stage passed accepts on the prefix evidence with an explicit confidence
   downgrade (2/3 → 1/2);
4. **evict** — anything else retires the session with a reason string.

Time is virtual (a step clock advanced one tick per round plus one per
deadline check), retry jitter is seeded per session, and attempt RNG
streams are spawned from the request seed — so a full run is byte-identical
across replays with the same inputs, which ``ServiceReport.canonical_json``
makes checkable with a string compare.
"""

from __future__ import annotations

import json
import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.baselines.learn_offline import learn_offline_budget_practical
from repro.core.backends import backend_budget
from repro.core.config import TesterConfig
from repro.core.tester import TesterPipeline, Verdict
from repro.distributions.projection import (
    Projection,
    coarse_flattening_projection,
    exists_close_histogram,
)
from repro.distributions.sampling import SampleBudgetExceeded
from repro.observability.metrics import get_metrics
from repro.robustness.faults import CorruptSampleError, InjectedStreamFailure
from repro.robustness.resilience import RetryPolicy, TrialTimeout
from repro.serve.admission import AdmissionConfig, AdmissionController, Rejection
from repro.serve.batch import FinalBatchItem, compute_final_statistics
from repro.serve.breaker import CircuitBreaker
from repro.serve.session import SessionOutcome, SessionState, StreamRequest, StreamSession


class ProjectionOracleError(RuntimeError):
    """An injected (or real) failure of the fast projection engine."""


#: Failures the service absorbs per session; anything else is a bug and
#: propagates (crashing loudly beats serving silently-wrong verdicts).
SESSION_FAILURES = (
    InjectedStreamFailure,
    CorruptSampleError,
    SampleBudgetExceeded,
    TrialTimeout,
)

#: Failures that count against the *source's* circuit breaker (stream
#: trouble).  Budget exhaustion is the session's own doing, not the
#: upstream's, so it never trips a breaker.
SOURCE_FAILURES = (InjectedStreamFailure, CorruptSampleError, TrialTimeout)


class StepClock:
    """Virtual time: each *reading* advances one tick.

    Deadlines constructed over this clock expire after a deterministic
    number of clock reads (≈ draw calls + rounds), so timeout behaviour
    replays identically — no wall-clock anywhere in the control flow.
    """

    def __init__(self) -> None:
        self._now = 0.0

    def __call__(self) -> float:
        self._now += 1.0
        return self._now

    def peek(self) -> float:
        """Read without advancing (for backoff gates and reporting)."""
        return self._now

    def advance(self, ticks: float) -> None:
        if ticks < 0:
            raise ValueError(f"cannot rewind the clock by {ticks}")
        self._now += ticks


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the always-on service."""

    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    tester: TesterConfig = field(default_factory=TesterConfig.practical)
    #: Per-session retry policy; ``jitter_seed`` is re-seeded per session
    #: (with the session index) so concurrent retries de-synchronise.
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=3,
            base_delay=2.0,
            multiplier=2.0,
            max_delay=32.0,
            jitter=0.5,
            retry_on=(InjectedStreamFailure, CorruptSampleError),
        )
    )
    breaker_failure_threshold: int = 3
    breaker_cooldown_rounds: int = 2
    #: Per-attempt sample caps are ``slack ×`` the Algorithm 1 budget
    #: (mirrors :func:`repro.core.budget.capped_source`).
    budget_slack: float = 1.5
    check_cache_size: int = 128
    #: Worker processes for the batched final-test statistics (None=serial).
    workers: Optional[int] = None
    #: Hard stop for the round loop — a liveness backstop, not a tunable.
    max_rounds: int = 100_000


@dataclass(frozen=True)
class ServiceReport:
    """Everything one service run produced, in submission order."""

    outcomes: tuple
    rejections: tuple
    rounds: int
    wall_seconds: float
    #: True when the run ended via a graceful drain (SIGTERM/SIGINT):
    #: in-flight sessions finished, queued requests were shed as rejections.
    drained: bool = False

    def counts(self) -> dict:
        tally = {state: 0 for state in SessionState.TERMINAL}
        for outcome in self.outcomes:
            tally[outcome.state] += 1
        tally["REJECTED"] = len(self.rejections)
        return tally

    def canonical_json(self) -> str:
        """Deterministic serialisation (no wall-clock): two same-seed runs
        must produce byte-identical strings — the replay contract."""
        payload = {
            "outcomes": [outcome.canonical() for outcome in self.outcomes],
            "rejections": [rejection.canonical() for rejection in self.rejections],
            "rounds": self.rounds,
            "drained": self.drained,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def request_units(
    request: StreamRequest, config: TesterConfig, slack: float
) -> int:
    """The admission cost of a request: its per-attempt hard sample cap.

    Priced by the request's backend — a cdkl22 request admits at its own
    (much smaller) worst case, escalation reserve included, so the same
    capacity serves proportionally more cdkl22 sessions.
    """
    if request.max_samples is not None:
        return int(request.max_samples)
    n, k = request.dist.n, request.k
    if k >= n:
        return 0
    b = config.partition_b(k, request.eps)
    if 2.0 * b + 2.0 >= n / 2.0:
        # Plug-in regime: the backend budget formulas do not apply; the
        # offline learner's Θ(n/ε²) budget does.
        return int(math.ceil(slack * learn_offline_budget_practical(n, request.eps)))
    return int(math.ceil(slack * backend_budget(request.backend, n, k, request.eps, config)))


class TesterService:
    """A long-lived multiplexer of test sessions over the batch-first core."""

    __test__ = False  # "Test"-prefixed product class; not a pytest suite

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.clock = StepClock()
        self.admission = AdmissionController(self.config.admission)
        self.breakers: dict[str, CircuitBreaker] = {}
        self.sessions: "OrderedDict[str, StreamSession]" = OrderedDict()
        self._requests: dict[str, StreamRequest] = {}
        self._submission_order: list[str] = []
        self._outcomes: dict[str, SessionOutcome] = {}
        self._rejections: list[Rejection] = []
        self._session_counter = 0
        self._check_cache: "OrderedDict[tuple, bool]" = OrderedDict()
        self._project_cache: "OrderedDict[tuple, Projection]" = OrderedDict()
        #: Cache keys whose fast projection engine failed *deterministically*:
        #: later calls (any session) go straight to the dense DP instead of
        #: re-driving the fast path into the same failure.  Injected chaos
        #: faults are transient and deliberately never land here.
        self._fast_path_failed: set[tuple] = set()
        self.rounds_run = 0
        self._draining = False
        #: Per-session exported trace events (request_id → event tuple),
        #: captured at retirement for post-hoc audit (`repro serve --trace-dir`).
        self.session_traces: dict[str, tuple] = {}

    # -- graceful drain -------------------------------------------------------

    def request_drain(self) -> None:
        """Ask the run loop to wind down (signal-handler safe: just a flag).

        From the next round on, no queued request is admitted — the queue
        is shed as structured rejections — while every in-flight session
        runs to its terminal outcome, so the final report still accounts
        for every submitted request and its ledger reconciles exactly.
        """
        self._draining = True

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (call from the main thread)."""
        import signal

        def _handler(signum: int, frame: object) -> None:
            self.request_drain()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    # -- intake ---------------------------------------------------------------

    def submit(self, request: StreamRequest) -> Rejection | None:
        """Queue a request; returns the :class:`Rejection` when shed."""
        if request.request_id in self._requests:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        units = request_units(request, self.config.tester, self.config.budget_slack)
        rejection = self.admission.submit(request.request_id, units)
        if rejection is not None:
            self._rejections.append(rejection)
            self._submission_order.append(request.request_id)
            get_metrics().counter("serve.rejected").inc()
            return rejection
        self._requests[request.request_id] = request
        self._submission_order.append(request.request_id)
        return None

    # -- the round loop -------------------------------------------------------

    def run(self) -> ServiceReport:
        """Drive every submitted request to a terminal outcome."""
        started = time.perf_counter()
        while not self.admission.idle:
            self.rounds_run += 1
            if self.rounds_run > self.config.max_rounds:
                raise RuntimeError(
                    f"service made no terminal progress within "
                    f"{self.config.max_rounds} rounds — liveness bug"
                )
            self._round(self.rounds_run)
        outcomes = tuple(
            self._outcomes[rid]
            for rid in self._submission_order
            if rid in self._outcomes
        )
        report = ServiceReport(
            outcomes=outcomes,
            rejections=tuple(self._rejections),
            rounds=self.rounds_run,
            wall_seconds=time.perf_counter() - started,
            drained=self._draining,
        )
        metrics = get_metrics()
        for state, count in report.counts().items():
            metrics.gauge("serve.outcomes", state=state).set(count)
        return report

    def _round(self, round_index: int) -> None:
        self.clock.advance(1.0)  # a round is at least one virtual tick
        for breaker in self.breakers.values():
            breaker.tick()
        self.admission.refill()
        if self._draining:
            # Drain mode: shed the queue as structured rejections, admit
            # nothing new; the sessions already in flight run to retirement.
            for rejection in self.admission.shed_queued(
                "service draining (shutdown requested) — shed before admission"
            ):
                self._requests.pop(rejection.request_id, None)
                self._rejections.append(rejection)
                get_metrics().counter("serve.rejected").inc()
        else:
            for request_id in self.admission.admit_ready():
                self._open_session(request_id, round_index)
        get_metrics().gauge("serve.inflight_units").set(self.admission.inflight_units)

        batch_items: list[FinalBatchItem] = []
        batch_sessions: list[StreamSession] = []
        # Iterate over a snapshot: retirements mutate self.sessions.
        for session in list(self.sessions.values()):
            if self.clock.peek() < session.not_before:
                continue  # still backing off
            if session.deadline is not None and session.pipeline is None:
                # The session-scoped deadline keeps running through backoff
                # waits; don't start an attempt that is already dead.
                if session.deadline.expired:
                    self._retire(
                        session,
                        session.retire_evicted(
                            f"deadline of {session.request.deadline_ticks} ticks "
                            f"expired after {session.attempt} attempt(s)",
                            round_index,
                            self._wall(session),
                        ),
                    )
                    continue
            breaker = self._breaker(session.request.source_id)
            if not breaker.allow():
                continue  # source breaker open; wait for the re-probe window
            item = self._step_to_final(session, round_index)
            if item is not None:
                batch_items.append(item)
                batch_sessions.append(session)

        # Inner loop: a cdkl22 session whose stage-0 statistic is ambiguous
        # escalates (finish returns None) — it redraws fresh counts at the
        # larger batch size and joins the next inner batch, still within
        # this round.  pods16 sessions always retire on the first pass.
        while batch_items:
            statistics = compute_final_statistics(
                batch_items, workers=self.config.workers
            )
            next_items: list[FinalBatchItem] = []
            next_sessions: list[StreamSession] = []
            for session, z in zip(batch_sessions, statistics):
                verdict = session.pipeline.finish_final_test(z)
                if verdict is not None:
                    self._retire_with_verdict(session, verdict, round_index)
                    continue
                try:
                    item = self._final_item(session.pipeline)
                except SESSION_FAILURES as exc:
                    self._on_failure(session, exc, round_index)
                    continue
                next_items.append(item)
                next_sessions.append(session)
            batch_items, batch_sessions = next_items, next_sessions

    # -- session stepping -----------------------------------------------------

    def _open_session(self, request_id: str, round_index: int) -> None:
        request = self._requests.pop(request_id)
        index = self._session_counter
        self._session_counter += 1
        session = StreamSession(
            index,
            request,
            config=self.config.tester,
            budget_cap=request_units(
                request, self.config.tester, self.config.budget_slack
            )
            or None,
            clock=self.clock,
            admitted_round=round_index,
        )
        session.check_oracle = self._make_check_oracle(session)
        session.project_oracle = self._make_project_oracle(session)
        session.admitted_wall = time.perf_counter()
        self.sessions[request_id] = session
        get_metrics().counter("serve.admitted").inc()

    def _step_to_final(
        self, session: StreamSession, round_index: int
    ) -> FinalBatchItem | None:
        """Run one attempt up to the final test; absorb session failures.

        Returns the session's pending final-test item when it reached the
        χ² stage with its counts drawn; ``None`` when it retired, failed,
        or is waiting.
        """
        try:
            pipeline = session.start_attempt()
            verdict = pipeline.prepare()
            if verdict is None:
                pipeline.run_partition()
                pipeline.run_learn()
                verdict = pipeline.run_sieve()
            if verdict is None:
                verdict = pipeline.run_check()
            if verdict is not None:
                self._retire_with_verdict(session, verdict, round_index)
                return None
            pipeline.begin_final_test()
            return self._final_item(pipeline)
        except SESSION_FAILURES as exc:
            self._on_failure(session, exc, round_index)
            return None

    def _final_item(self, pipeline: TesterPipeline) -> FinalBatchItem:
        """Draw counts for the pipeline's *current* plan (stage 0 or an
        escalated stage 1) and package them for the batch executor."""
        plan = pipeline.final_plan
        counts = pipeline.draw_final_counts()
        return FinalBatchItem(
            counts=counts,
            m=plan.m,
            reference_pmf=plan.reference_pmf,
            mask=plan.mask,
            partition=pipeline.partition,
            backend=plan.backend,
            kernel=pipeline.kernel,
        )

    def _on_failure(
        self, session: StreamSession, exc: BaseException, round_index: int
    ) -> None:
        """Apply the degradation policy to one failed attempt."""
        prefix_passed = session.pipeline.final_in_flight
        session.abort_attempt()  # reconciles the partial ledger exactly
        metrics = get_metrics()
        metrics.counter("serve.failures", kind=type(exc).__name__).inc()
        breaker = self._breaker(session.request.source_id)
        if isinstance(exc, SOURCE_FAILURES):
            breaker.record_failure()
            if breaker.state == "OPEN":
                metrics.counter(
                    "serve.breaker_trips", source=session.request.source_id
                ).inc()

        if isinstance(exc, (TrialTimeout, SampleBudgetExceeded)):
            # Terminal resource exhaustion: retrying cannot help (the
            # deadline spans attempts; the budget is per-attempt worst-case).
            if prefix_passed:
                self._retire(
                    session,
                    session.retire_degraded_partial(
                        f"final χ² test died ({type(exc).__name__}: {exc}) after "
                        "the check stage passed — accepting on prefix evidence",
                        round_index,
                        self._wall(session),
                    ),
                )
            else:
                self._retire(
                    session,
                    session.retire_evicted(
                        f"{type(exc).__name__} during attempt {session.attempt}: {exc}",
                        round_index,
                        self._wall(session),
                    ),
                )
            return

        # Transient stream faults: retry with seeded jittered backoff.
        policy = replace(self.config.retry, jitter_seed=session.index)
        if session.attempt >= policy.max_attempts:
            self._retire(
                session,
                session.retire_evicted(
                    f"retries exhausted after {session.attempt} attempt(s); "
                    f"last failure: {type(exc).__name__}: {exc}",
                    round_index,
                    self._wall(session),
                ),
            )
            return
        pause = policy.delay(session.attempt)
        session.not_before = self.clock.peek() + pause
        session.state = SessionState.ACCEPTED
        metrics.counter("serve.retries").inc()

    # -- retirement -----------------------------------------------------------

    def _retire_with_verdict(
        self, session: StreamSession, verdict: Verdict, round_index: int
    ) -> None:
        session.close_attempt(verdict.samples_used)
        self._breaker(session.request.source_id).record_success()
        get_metrics().counter(
            "tester.verdicts", stage=verdict.stage, accept=verdict.accept
        ).inc()
        self._retire(
            session, session.retire_verdict(verdict, round_index, self._wall(session))
        )

    def _retire(self, session: StreamSession, outcome: SessionOutcome) -> None:
        assert outcome.state in SessionState.TERMINAL
        self._outcomes[outcome.request_id] = outcome
        self.session_traces[outcome.request_id] = session.tracer.export()
        self.admission.release(outcome.request_id)
        del self.sessions[outcome.request_id]
        get_metrics().counter("serve.retired", state=outcome.state).inc()

    def _wall(self, session: StreamSession) -> float:
        return time.perf_counter() - session.admitted_wall

    # -- shared check oracle --------------------------------------------------

    def _breaker(self, source_id: str) -> CircuitBreaker:
        breaker = self.breakers.get(source_id)
        if breaker is None:
            breaker = CircuitBreaker(
                self.config.breaker_failure_threshold,
                self.config.breaker_cooldown_rounds,
            )
            self.breakers[source_id] = breaker
        return breaker

    @staticmethod
    def _array_key(values) -> tuple:
        """Byte key of one array operand: raw bytes *plus* shape and dtype.

        Bytes alone are ambiguous — a float32 pmf whose buffer coincides
        with half of a float64 one, or a (2, n) stack sharing bytes with a
        (2n,) vector, must never collide — so every byte-keyed cache here
        keys on ``(tobytes, shape, dtype.str)``.
        """
        arr = np.ascontiguousarray(values)
        return (arr.tobytes(), arr.shape, arr.dtype.str)

    def _check_key(self, pmf, partition, k, kept, tolerance, engine) -> tuple:
        return (
            self._array_key(pmf),
            int(k),
            self._array_key(partition.boundaries),
            self._array_key(kept),
            float(tolerance),
            engine,
        )

    def _check_cached(self, pmf, partition, k, kept, tolerance, engine) -> bool:
        """The shared projection-check cache (LRU over exact byte keys).

        The key covers the engine but deliberately not the compute kernel:
        kernels are bit-identical, so a hit computed under one kernel is the
        exact answer under any other.  (The pipeline's ``use_kernel`` scope
        still governs which kernel computes a miss.)
        """
        key = self._check_key(pmf, partition, k, kept, tolerance, engine)
        metrics = get_metrics()
        if key in self._check_cache:
            self._check_cache.move_to_end(key)
            metrics.counter("serve.check_cache", result="hit").inc()
            return self._check_cache[key]
        metrics.counter("serve.check_cache", result="miss").inc()
        value = bool(
            exists_close_histogram(pmf, partition, k, kept, tolerance, engine=engine)
        )
        self._check_cache[key] = value
        while len(self._check_cache) > self.config.check_cache_size:
            self._check_cache.popitem(last=False)
        return value

    def _note_fallback(self, session: StreamSession) -> None:
        """Account one *observed* fast-path fault and degrade the session.

        ``serve.projection_fallbacks`` counts faults — actual fast-engine
        failures as they happen — never the cheap dense re-routes of a
        memoized known-bad key; :meth:`StreamSession.degrade` is
        first-mode-sticks, so a session degrades at most once per reason
        however many oracle calls it makes.
        """
        get_metrics().counter("serve.projection_fallbacks").inc()
        session.degrade("projection-dense-fallback")

    def _make_check_oracle(self, session: StreamSession):
        """A per-session oracle: shared cache + dense-engine fallback.

        A failure of the requested engine (injected by chaos, or a real
        fast-path error) falls back to the exact dense DP and marks the
        session's verdict ``projection-dense-fallback`` — degraded but
        correct beats crashed.  A dense-path failure propagates: there is
        no further fallback, and masking it would hide a real bug.

        A *deterministic* fast-path failure is memoized by cache key: later
        calls on the same inputs route straight to the dense DP (still
        degrading their session, exactly once) without re-failing the fast
        engine or inflating the fallback counter.
        """

        def oracle(pmf, partition, k, kept, tolerance, engine="auto"):
            if session.projection_fault_pending:
                # Injected chaos fault: transient, so it counts as a fault
                # and is never memoized against the key.
                session.projection_fault_pending = False
                if engine == "dense":
                    raise ProjectionOracleError(
                        "injected projection-oracle fault (chaos schedule)"
                    )
                self._note_fallback(session)
                return self._check_cached(pmf, partition, k, kept, tolerance, "dense")
            key = self._check_key(pmf, partition, k, kept, tolerance, engine)
            if engine != "dense" and key in self._fast_path_failed:
                session.degrade("projection-dense-fallback")
                return self._check_cached(pmf, partition, k, kept, tolerance, "dense")
            try:
                return self._check_cached(pmf, partition, k, kept, tolerance, engine)
            except SESSION_FAILURES:
                raise  # stream faults are not oracle faults
            except Exception:
                if engine == "dense":
                    raise
                self._fast_path_failed.add(key)
                self._note_fallback(session)
                return self._check_cached(pmf, partition, k, kept, tolerance, "dense")

        return oracle

    def _project_key(self, pmf, partition, k, kept, engine) -> tuple:
        return (
            self._array_key(pmf),
            int(k),
            self._array_key(partition.boundaries),
            self._array_key(kept),
            engine,
        )

    def _project_cached(self, pmf, partition, k, kept, engine) -> Projection:
        """The shared cdkl22 projection cache (LRU over exact byte keys).

        Caches the full :class:`Projection` (distance *and* reference
        histogram): repeated sessions on the same learned pmf skip the DP
        entirely.  Entries are immutable, so sharing across sessions is safe.
        """
        key = self._project_key(pmf, partition, k, kept, engine)
        metrics = get_metrics()
        if key in self._project_cache:
            self._project_cache.move_to_end(key)
            metrics.counter("serve.project_cache", result="hit").inc()
            return self._project_cache[key]
        metrics.counter("serve.project_cache", result="miss").inc()
        value = coarse_flattening_projection(pmf, partition, k, kept, engine=engine)
        self._project_cache[key] = value
        while len(self._project_cache) > self.config.check_cache_size:
            self._project_cache.popitem(last=False)
        return value

    def _make_project_oracle(self, session: StreamSession):
        """Per-session cdkl22 projection oracle: shared cache + the same
        dense-engine fallback and fast-path-failure memoization policy as
        the pods16 check oracle."""

        def oracle(pmf, partition, k, kept, engine="auto"):
            if session.projection_fault_pending:
                session.projection_fault_pending = False
                if engine == "dense":
                    raise ProjectionOracleError(
                        "injected projection-oracle fault (chaos schedule)"
                    )
                self._note_fallback(session)
                return self._project_cached(pmf, partition, k, kept, "dense")
            key = self._project_key(pmf, partition, k, kept, engine)
            if engine != "dense" and key in self._fast_path_failed:
                session.degrade("projection-dense-fallback")
                return self._project_cached(pmf, partition, k, kept, "dense")
            try:
                return self._project_cached(pmf, partition, k, kept, engine)
            except SESSION_FAILURES:
                raise  # stream faults are not oracle faults
            except Exception:
                if engine == "dense":
                    raise
                self._fast_path_failed.add(key)
                self._note_fallback(session)
                return self._project_cached(pmf, partition, k, kept, "dense")

        return oracle
