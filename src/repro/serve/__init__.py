"""The always-on service layer: many concurrent test sessions, one core.

``repro.serve`` multiplexes long-lived streams of "is my traffic still a
k-histogram?" queries over the batch-first tester core
(:class:`repro.core.tester.TesterPipeline`):

* :mod:`repro.serve.session` — the per-stream state machine
  (ACCEPTED → SAMPLING → VERDICT / DEGRADED / EVICTED) with per-attempt
  sample ledgers and a session-scoped deadline;
* :mod:`repro.serve.admission` — the global in-flight budget
  (sessions × samples) with token-bucket refill, a bounded wait queue, and
  deterministic load shedding;
* :mod:`repro.serve.breaker` — per-source circuit breakers with scheduled
  re-probes;
* :mod:`repro.serve.batch` — the vectorized final-test executor
  (streams × repeats × domain matrices through one χ² kernel call);
* :mod:`repro.serve.service` — the round-driven event loop tying the above
  together, with a shared projection-check cache and graceful degradation;
* :mod:`repro.serve.chaos` — deterministic fault-schedule replay for the
  ``repro serve --chaos`` drill and the E24 soak benchmark.

Everything is deterministic under a fixed seed: time is virtual (a step
clock advanced by deadline checks and backoff sleeps), per-attempt RNG
streams are spawned from the request seed, and retry jitter is seeded —
two runs of the same request set produce byte-identical reports.
"""

from repro.serve.admission import AdmissionConfig, AdmissionController, Rejection
from repro.serve.batch import compute_final_statistics
from repro.serve.breaker import CircuitBreaker
from repro.serve.chaos import ChaosConfig, build_requests
from repro.serve.service import ServiceConfig, ServiceReport, TesterService
from repro.serve.session import SessionOutcome, SessionState, StreamRequest, StreamSession

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ChaosConfig",
    "CircuitBreaker",
    "Rejection",
    "ServiceConfig",
    "ServiceReport",
    "SessionOutcome",
    "SessionState",
    "StreamRequest",
    "StreamSession",
    "TesterService",
    "build_requests",
    "compute_final_statistics",
]
