"""Vectorized final-test execution across many sessions.

Sessions pause at the final χ² test with their Poissonized count matrices
already drawn (``(repeats, n)`` each — drawing stays per-session so every
stream's RNG and budget accounting is untouched).  This module computes all
their per-interval statistics in one pass: sessions with equal ``(n,
repeats)`` are stacked into a ``(streams, repeats, n)`` tensor and pushed
through a single :func:`~repro.core.chi2.chi2_point_terms` call with the
per-stream expected sizes broadcast as ``(streams, 1, 1)``.

The χ² arithmetic is elementwise, so the stacked result is **bit-identical**
to running each session through the scalar path — the equality the
``tests/serve`` suite asserts literally.  Only the partition aggregation and
the median stay per-session (partitions differ per stream).

Group computations run through the generic batch executor
(:func:`repro.parallel.engine.run_tasks`), so a service configured with
workers fans independent groups out to processes; the default stays serial
and allocation-light.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.backends import DEFAULT_BACKEND
from repro.core.chi2 import chi2_point_terms
from repro.kernels import dispatch, use_kernel
from repro.parallel.engine import TrialOutcome, run_tasks
from repro.util.intervals import Partition


@dataclass(frozen=True)
class FinalBatchItem:
    """One session's pending final test: pre-drawn counts + test plan.

    ``backend`` joins the grouping key: the χ² point-term kernel is shared,
    but grouping same-shape *and* same-backend sessions keeps each group's
    membership meaningful for audit and leaves room for backends to diverge
    in kernel without silently mixing.

    ``kernel`` also joins the grouping key — not because results could
    differ (every kernel pair is bit-identical) but so one vectorized group
    call runs under exactly one dispatch setting; an explicit
    ``kernel="numba"`` session must fail loudly when the native extra is
    missing rather than silently compute under a groupmate's kernel.
    """

    counts: np.ndarray  # (repeats, n) Poissonized count matrix
    m: float
    reference_pmf: np.ndarray  # (n,)
    mask: np.ndarray  # (n,) bool
    partition: Partition
    backend: str = DEFAULT_BACKEND
    kernel: str = "auto"


def _group_statistics(index: int, payload: dict) -> TrialOutcome:
    """Compute one group's per-interval statistics (module-level: picklable).

    ``payload`` carries the stacked tensors of a same-shape group::

        counts     (S, R, n)   m     (S, 1, 1)
        references (S, 1, n)   masks (S, 1, n)
        partitions  list of S Partition objects
        kernel      the group's dispatch setting

    Returns the S median-amplified per-interval statistic vectors.  The
    per-session aggregation batches all R repeats through one
    ``serve.aggregate_rows`` call (``np.add.reduceat`` semantics per row —
    exactly what ``partition.aggregate`` does, so the result is
    bit-identical to the historical per-repeat loop).
    """
    with use_kernel(payload["kernel"]):
        terms = chi2_point_terms(
            payload["counts"], payload["m"], payload["references"], payload["masks"]
        )
        aggregate_rows = dispatch("serve.aggregate_rows")
        statistics: list[np.ndarray] = []
        for s, partition in enumerate(payload["partitions"]):
            per_repeat = aggregate_rows(terms[s], partition.boundaries[:-1])
            statistics.append(np.median(per_repeat, axis=0))
    return TrialOutcome(index=index, value=statistics)


def compute_final_statistics(
    items: Sequence[FinalBatchItem], *, workers: "int | None" = None
) -> list[np.ndarray]:
    """Per-interval statistics for every item, in item order.

    Items are grouped by ``(n, repeats, backend, kernel)``; each group is
    one vectorized kernel call.  Group order is sorted by key and membership
    follows item order, so the computation is replay-deterministic
    regardless of how the caller assembled the batch.
    """
    if not items:
        return []
    groups: dict[tuple[int, int, str, str], list[int]] = {}
    for position, item in enumerate(items):
        repeats, n = item.counts.shape
        groups.setdefault((n, repeats, item.backend, item.kernel), []).append(position)

    payloads: list[dict] = []
    membership: list[list[int]] = []
    for key in sorted(groups):
        positions = groups[key]
        members = [items[p] for p in positions]
        payloads.append(
            {
                "counts": np.stack([it.counts for it in members]),
                "m": np.asarray(
                    [it.m for it in members], dtype=np.float64
                ).reshape(-1, 1, 1),
                "references": np.stack(
                    [np.asarray(it.reference_pmf, dtype=np.float64) for it in members]
                )[:, None, :],
                "masks": np.stack(
                    [np.asarray(it.mask, dtype=bool) for it in members]
                )[:, None, :],
                "partitions": [it.partition for it in members],
                "kernel": key[3],
            }
        )
        membership.append(positions)

    outcomes = run_tasks(_group_statistics, payloads, workers=workers)
    results: list[Any] = [None] * len(items)
    for outcome, positions in zip(outcomes, membership):
        assert outcome.ok, f"batched statistics group failed: {outcome.failure}"
        for position, z in zip(positions, outcome.value):
            results[position] = z
    return results
