"""Dataset-driven sample access: testing a *fixed* table of observations.

The testers are written against the sampling oracle of the property-testing
model, but a practitioner has a concrete dataset — a column of values, not
a distribution.  :class:`ReplaySource` bridges the two: it serves draws
from a fixed array of observations, in order, and refuses (with
:class:`InsufficientSamples`) once the dataset is exhausted — surfacing
"your table is too small for this (k, ε)" as an explicit, catchable
condition rather than a silent accuracy loss.

Statistical fine print (documented, not hidden): if the dataset rows are
themselves i.i.d. from the unknown distribution, then disjoint consecutive
blocks served by this source are i.i.d. samples, exactly matching the
model.  Poissonized draws are served by realising ``Poisson(m)`` and
consuming that many observations.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.sampling import SampleSource
from repro.util.rng import RandomState, ensure_rng


class InsufficientSamples(RuntimeError):
    """The fixed dataset cannot cover the requested draw."""

    def __init__(self, requested: float, remaining: int) -> None:
        super().__init__(
            f"dataset exhausted: draw of {requested:,.0f} requested with only "
            f"{remaining:,} observations left — collect more data or relax "
            "(k, eps), see repro.core.budget.algorithm1_budget"
        )
        self.requested = requested
        self.remaining = remaining


class ReplaySource(SampleSource):
    """A :class:`SampleSource` backed by a fixed observation array.

    Parameters
    ----------
    observations:
        Integer array of domain values in ``{0, …, n-1}``.  Consumed
        front-to-back; pass ``shuffle=True`` (default) to randomise the
        order first, which makes block-order artefacts (sorted exports,
        time-clustered logs) harmless under the i.i.d. assumption.
    n:
        Domain size (inferred as ``max+1`` when omitted).
    """

    def __init__(
        self,
        observations: np.ndarray,
        n: int | None = None,
        *,
        shuffle: bool = True,
        rng: RandomState = None,
        max_samples: float | None = None,
    ) -> None:
        data = np.asarray(observations, dtype=np.int64)
        if data.ndim != 1 or len(data) == 0:
            raise ValueError("observations must be a non-empty 1-d integer array")
        if data.min() < 0:
            raise ValueError("observations contain negative values")
        inferred = int(data.max()) + 1
        if n is None:
            n = inferred
        elif n < inferred:
            raise ValueError(f"n={n} smaller than max observation {inferred - 1}")
        self._rng = ensure_rng(rng)
        if shuffle:
            data = self._rng.permutation(data)
        self._data = data
        self._n = int(n)
        self._cursor = 0
        self._init_accounting(max_samples)

    @property
    def n(self) -> int:
        return self._n

    @property
    def remaining(self) -> int:
        """Observations not yet served."""
        return len(self._data) - self._cursor

    def rewind(self) -> None:
        """Restart from the beginning (reuses data — only statistically
        sound for *independent* analyses, not within one tester run)."""
        self._cursor = 0

    def _take(self, count: int) -> np.ndarray:
        if count > self.remaining:
            raise InsufficientSamples(count, self.remaining)
        block = self._data[self._cursor : self._cursor + count]
        self._cursor += count
        return block

    def draw(self, m: int) -> np.ndarray:
        self._check_budget(m)
        block = self._take(m)
        self._record(m)
        return block

    def draw_counts(self, m: int) -> np.ndarray:
        return np.bincount(self.draw(m), minlength=self._n).astype(np.int64)

    def draw_counts_poissonized(self, m: float) -> np.ndarray:
        self._check_budget(m)
        realised = int(self._rng.poisson(m))
        block = self._take(realised)
        self._record(m)
        return np.bincount(block, minlength=self._n).astype(np.int64)

    def spawn(self) -> "ReplaySource":
        raise NotImplementedError(
            "a fixed dataset cannot provide independent parallel streams; "
            "split the observations yourself and build separate ReplaySources"
        )

    def permuted(self, sigma: np.ndarray) -> "ReplaySource":
        """Relabel the remaining observations by σ (fresh source)."""
        sigma = np.asarray(sigma, dtype=np.int64)
        if sigma.shape != (self._n,) or not np.array_equal(
            np.sort(sigma), np.arange(self._n)
        ):
            raise ValueError("sigma must be a permutation of the domain")
        remaining = self._data[self._cursor :]
        return ReplaySource(
            sigma[remaining],
            self._n,
            shuffle=False,
            rng=self._rng,
            max_samples=self._max_samples,
        )
