"""Histogram (de)serialization — the summary as a storable artifact.

The database motivation ends with a histogram living in a catalog; this
module round-trips :class:`~repro.distributions.histogram.Histogram`
through a plain JSON-compatible dict (and strings), with validation on the
way back in.  The format stores interval boundaries and per-piece *masses*
(masses survive rounding better than per-point values, whose sum-to-one
constraint couples to interval widths).
"""

from __future__ import annotations

import json

import numpy as np

from repro.distributions.histogram import Histogram
from repro.util.intervals import Partition

#: Format identifier embedded in every payload.
FORMAT = "repro.histogram/v1"


def histogram_to_dict(hist: Histogram) -> dict:
    """A JSON-compatible representation of a histogram summary."""
    return {
        "format": FORMAT,
        "n": hist.n,
        "boundaries": [int(b) for b in hist.partition.boundaries],
        "masses": [float(m) for m in hist.piece_masses()],
    }


def histogram_from_dict(payload: dict) -> Histogram:
    """Rebuild a histogram from :func:`histogram_to_dict` output.

    Validates the format tag, the partition structure, and renormalises the
    masses exactly (tolerating JSON round-off up to 1e-6).
    """
    if not isinstance(payload, dict):
        raise ValueError("payload must be a dict")
    if payload.get("format") != FORMAT:
        raise ValueError(f"unknown format {payload.get('format')!r}, expected {FORMAT!r}")
    try:
        boundaries = np.asarray(payload["boundaries"], dtype=np.int64)
        masses = np.asarray(payload["masses"], dtype=np.float64)
        n = int(payload["n"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed histogram payload: {exc}") from exc
    partition = Partition(boundaries)
    if partition.n != n:
        raise ValueError(f"boundaries cover [0, {partition.n}) but n={n}")
    if masses.shape != (len(partition),):
        raise ValueError("need exactly one mass per piece")
    if np.any(masses < 0):
        raise ValueError("masses must be non-negative")
    total = masses.sum()
    if not 1 - 1e-6 <= total <= 1 + 1e-6:
        raise ValueError(f"masses sum to {total}, expected 1 (±1e-6)")
    return Histogram.from_masses(partition, masses / total)


def histogram_to_json(hist: Histogram) -> str:
    """Serialise to a JSON string."""
    return json.dumps(histogram_to_dict(hist))


def histogram_from_json(text: str) -> Histogram:
    """Parse a histogram from :func:`histogram_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON: {exc}") from exc
    return histogram_from_dict(payload)
