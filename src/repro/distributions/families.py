"""Synthetic distribution families used as workloads.

Completeness-side families are exact ``k``-histograms (so a sound tester
must accept).  Soundness-side families either carry an analytic farness
certificate (the paired-perturbation construction below, following the
Paninski argument the paper adapts in Proposition 4.1) or are certified far
by the projection DP (:mod:`repro.distributions.projection`).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import Histogram
from repro.util.intervals import Partition
from repro.util.rng import RandomState, ensure_rng


def uniform(n: int) -> DiscreteDistribution:
    """The uniform distribution (the 1-histogram)."""
    return DiscreteDistribution.uniform(n)


def random_histogram(
    n: int,
    k: int,
    rng: RandomState = None,
    *,
    min_width: int = 1,
    concentration: float = 1.0,
) -> Histogram:
    """A random ``k``-histogram: random breakpoints, Dirichlet piece masses.

    Piece masses are drawn ``Dirichlet(concentration, …)``; lower
    concentration produces spikier histograms.  The result has *exactly*
    ``k`` pieces in its stored partition (adjacent pieces may collide in
    value with probability zero).
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if min_width < 1 or min_width * k > n:
        raise ValueError(f"cannot fit {k} pieces of width >= {min_width} in [0, {n})")
    gen = ensure_rng(rng)
    # Choose k-1 interior breakpoints leaving room for min_width everywhere:
    # pick from the "slack" positions then re-inflate.
    slack = n - k * min_width
    interior = np.sort(gen.choice(slack + 1, size=k - 1, replace=True))
    bounds = np.concatenate(([0], interior + min_width * np.arange(1, k), [n]))
    partition = Partition(np.unique(bounds))
    masses = gen.dirichlet(np.full(len(partition), concentration))
    return Histogram.from_masses(partition, masses)


def staircase(n: int, k: int, *, ratio: float = 2.0) -> Histogram:
    """A deterministic ``k``-histogram with geometrically decaying steps.

    Piece ``j`` has per-point value proportional to ``ratio**(-j)``; equal
    piece widths.  A reproducible, strongly non-uniform completeness case.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    partition = Partition.equal_width(n, k)
    values = ratio ** -np.arange(len(partition), dtype=np.float64)
    masses = values * partition.lengths()
    return Histogram.from_masses(partition, masses / masses.sum())


def zipf(n: int, alpha: float = 1.0) -> DiscreteDistribution:
    """Zipf/power-law: ``D(i) ∝ (i+1)^(-alpha)``.

    The canonical database frequency skew; not a k-histogram for any small
    k, so a natural soundness-side workload (certify farness with the
    projection DP at the chosen ``n``, ``k``).
    """
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    return DiscreteDistribution.from_weights((np.arange(1, n + 1, dtype=np.float64)) ** -alpha)


def geometric(n: int, decay: float = 0.99) -> DiscreteDistribution:
    """Truncated geometric: ``D(i) ∝ decay^i`` — smooth monotone decay."""
    if not 0 < decay <= 1:
        raise ValueError(f"decay must be in (0, 1], got {decay}")
    return DiscreteDistribution.from_weights(decay ** np.arange(n, dtype=np.float64))


def discretized_gaussian_mixture(
    n: int,
    centers: list[float],
    widths: list[float],
    weights: list[float] | None = None,
) -> DiscreteDistribution:
    """A mixture of discretised Gaussians (centers/widths in [0, 1] units).

    Smooth multi-modal shapes — e.g. the bimodal attribute-value profiles
    query optimisers see — that are far from coarse histograms but close to
    fine ones.
    """
    if len(centers) != len(widths) or not centers:
        raise ValueError("need matching non-empty centers and widths")
    if weights is None:
        weights = [1.0] * len(centers)
    if len(weights) != len(centers) or min(weights) < 0 or sum(weights) <= 0:
        raise ValueError("weights must be non-negative with positive total")
    grid = (np.arange(n) + 0.5) / n
    pmf = np.zeros(n)
    for center, width, weight in zip(centers, widths, weights):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        pmf += weight * np.exp(-0.5 * ((grid - center) / width) ** 2)
    return DiscreteDistribution.from_weights(pmf)


def paired_perturbation(
    base: Histogram | DiscreteDistribution,
    epsilon: float,
    rng: RandomState = None,
    *,
    deterministic: bool = False,
) -> tuple[DiscreteDistribution, float]:
    """Perturb a histogram by ``±δ`` on consecutive pairs *within pieces*,
    returning the perturbed distribution and a certified lower bound on its
    TV distance to ``H_k`` (valid for every ``k`` up to a pair-count limit).

    This generalises Paninski's family (Proposition 4.1): pair up adjacent
    points inside each constant piece and move ``δ = 2ε'/n`` of probability
    from one to the other (sign per pair random, or alternating when
    ``deterministic``).  Any ``D* ∈ H_k`` must equalise all but ``k − 1``
    pairs, paying ``2δ`` per equalised pair, so

        ``dTV(result, H_k) ≥ (P − (k − 1)) · δ``

    where ``P`` is the number of perturbed pairs.  The second return value
    is ``P·δ`` — callers subtract ``(k−1)·δ`` for their ``k`` via
    :func:`certified_distance_to_hk`.
    """
    hist = base if isinstance(base, Histogram) else Histogram.from_pmf(base.pmf)
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    gen = ensure_rng(rng)
    pmf = hist.to_pmf().copy()
    n = len(pmf)
    delta = 2.0 * epsilon / n
    pairs = 0
    for interval in hist.partition:
        value = pmf[interval.start]
        if value < delta:
            continue  # cannot perturb without going negative
        start, stop = interval.start, interval.stop
        usable = (stop - start) // 2
        for q in range(usable):
            left = start + 2 * q
            sign = 1.0 if (q % 2 == 0 if deterministic else gen.random() < 0.5) else -1.0
            pmf[left] += sign * delta
            pmf[left + 1] -= sign * delta
            pairs += 1
    if pairs == 0:
        raise ValueError("base histogram too concentrated to perturb at this epsilon")
    return DiscreteDistribution(pmf), pairs * delta


def certified_distance_to_hk(pair_mass: float, pairs_delta: float, k: int) -> float:
    """Lower bound ``dTV(D, H_k) ≥ pair_mass − (k − 1)·δ`` from the paired
    construction; ``pair_mass = P·δ`` and ``pairs_delta = δ``."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    return max(0.0, pair_mass - (k - 1) * pairs_delta)


def far_from_hk(
    n: int,
    k: int,
    epsilon: float,
    rng: RandomState = None,
    *,
    base: Histogram | None = None,
) -> DiscreteDistribution:
    """A distribution certified to be at TV distance ≥ ``epsilon`` from
    ``H_k``, built by paired perturbation of a base histogram.

    The perturbation amplitude is chosen so the *certified* distance (after
    accounting for the ``k − 1`` pairs a k-histogram may leave unequalised)
    still clears ``epsilon``.
    """
    if base is None:
        base = Histogram.from_pmf(np.full(n, 1.0 / n))
    if base.n != n:
        raise ValueError("base histogram has the wrong domain size")
    usable_pairs = sum((len(iv) // 2) for iv in base.partition)
    if usable_pairs <= k - 1:
        raise ValueError(f"not enough perturbable pairs ({usable_pairs}) for k={k}")
    # Certified distance is (P − (k − 1))·δ, so pick δ to land exactly on
    # epsilon, then check every piece can absorb that amplitude.
    delta = epsilon / (usable_pairs - (k - 1))
    for j, interval in enumerate(base.partition):
        if len(interval) >= 2 and base.values[j] < delta:
            raise ValueError(
                f"piece {j} has per-point mass {base.values[j]:.3g} < delta "
                f"{delta:.3g}; epsilon too large for this base/k"
            )
    target = delta * n / 2.0
    perturbed, pair_mass = paired_perturbation(base, target, rng)
    certified = certified_distance_to_hk(pair_mass, delta, k)
    if certified < epsilon - 1e-9:
        raise AssertionError(
            f"construction certifies {certified:.4g} < requested {epsilon}"
        )
    return perturbed


def closeness_pair(
    n: int,
    k: int,
    epsilon: float,
    *,
    ratio: float = 1.3,
) -> tuple[Histogram, Histogram, float]:
    """Two exact ``k``-histograms on the same partition at *exact* TV
    distance ``epsilon`` — the certified-far instance family for two-sample
    closeness testing (DKN17).

    ``p`` is the :func:`staircase`; ``q`` moves ``epsilon`` of probability
    mass between consecutive piece pairs (piece ``2i`` donates, piece
    ``2i+1`` receives), so both stay ``k``-histograms on the same partition
    and ``dTV(p, q) = ½·Σ_j |P_j − Q_j| = epsilon`` exactly.  Crucially the
    distance lives at *piece* granularity, so any interval refinement of
    the pieces (in particular the union-sample ``APPROXPART`` partition)
    preserves it under flattening — unlike the within-pair perturbations of
    :func:`paired_perturbation`, which flattening erases (see
    :func:`closeness_lower_bound_pair`).

    Returns ``(p, q, exact_tv)``.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if k < 2:
        raise ValueError("closeness_pair needs k >= 2 (one piece cannot donate)")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    p = staircase(n, k, ratio=ratio)
    masses = p.piece_masses()
    pairs = len(masses) // 2
    delta = epsilon / pairs
    donors = masses[0 : 2 * pairs : 2]
    if donors.min() <= delta:
        raise ValueError(
            f"epsilon={epsilon} too large: smallest donor piece holds "
            f"{donors.min():.4g} <= per-pair transfer {delta:.4g}; lower "
            "epsilon or bring ratio closer to 1"
        )
    q_masses = masses.copy()
    q_masses[0 : 2 * pairs : 2] -= delta
    q_masses[1 : 2 * pairs + 1 : 2] += delta
    q = Histogram.from_masses(p.partition, q_masses)
    exact_tv = 0.5 * float(np.abs(p.to_pmf() - q.to_pmf()).sum())
    return p, q, exact_tv


def closeness_lower_bound_pair(
    n: int,
    epsilon: float,
    rng: RandomState = None,
) -> tuple[DiscreteDistribution, DiscreteDistribution, float]:
    """The Paninski-style *lower-bound* pair for closeness testing.

    ``p`` is uniform; ``q`` moves ``δ = 2ε/n`` between the two halves of
    every consecutive pair of points (random signs), so
    ``dTV(p, q) = epsilon`` exactly — but every pair's *total* mass is
    unchanged, so any flattening at granularity coarser than single points
    sees two identical distributions.  This is the construction showing the
    histogram *promise* is load-bearing: ``q`` is an n-histogram, not a
    k-histogram, and the DKN17 interval reduction is provably blind to it
    (the tester must accept at the promised k; only the raw-domain
    degenerate regime can reject).  Returns ``(p, q, exact_tv)``.
    """
    if n < 2 or n % 2:
        raise ValueError(f"need even n >= 2, got {n}")
    if not 0 < epsilon < 0.5:
        # δ = 2ε/n must keep 1/n − δ non-negative.
        raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
    gen = ensure_rng(rng)
    pmf = np.full(n, 1.0 / n)
    delta = 2.0 * epsilon / n
    signs = np.where(gen.random(n // 2) < 0.5, 1.0, -1.0)
    perturbed = pmf.copy()
    perturbed[0::2] += signs * delta
    perturbed[1::2] -= signs * delta
    q = DiscreteDistribution(perturbed)
    exact_tv = 0.5 * float(np.abs(pmf - perturbed).sum())
    return DiscreteDistribution(pmf), q, exact_tv


def two_level_comb(n: int, teeth: int, contrast: float = 3.0) -> DiscreteDistribution:
    """A comb alternating heavy/light blocks: an exact ``2·teeth``-histogram.

    Useful both as a completeness case for ``k = 2·teeth`` and a soundness
    case for ``k' ≪ teeth`` (certify with the projection DP).
    """
    if teeth < 1 or 2 * teeth > n:
        raise ValueError(f"need 1 <= teeth <= n/2, got teeth={teeth}, n={n}")
    if contrast <= 1.0:
        raise ValueError(f"contrast must exceed 1, got {contrast}")
    labels = Partition.equal_width(n, 2 * teeth).membership()
    weights = np.where(labels % 2 == 0, contrast, 1.0)
    return DiscreteDistribution.from_weights(weights)


def sparse_support(n: int, support_size: int, rng: RandomState = None) -> DiscreteDistribution:
    """Uniform over a random size-``support_size`` subset of the domain.

    The shape of the support-size lower-bound instances (Section 4.2): its
    histogram complexity is governed by ``cover`` of the support.
    """
    if not 1 <= support_size <= n:
        raise ValueError(f"need 1 <= support_size <= n, got {support_size}")
    gen = ensure_rng(rng)
    points = gen.choice(n, size=support_size, replace=False)
    pmf = np.zeros(n)
    pmf[points] = 1.0 / support_size
    return DiscreteDistribution(pmf, validate=False)
