"""Piecewise-constant ("histogram") distributions and the class ``H_k``.

A distribution ``D`` over ``{0, …, n-1}`` is a *k-histogram* when its pmf is
constant on each interval of some partition of the domain into at most ``k``
contiguous intervals (Section 2 of the paper).  :class:`Histogram` is the
succinct representation — the partition plus one value per piece — which is
what the learning stage of Algorithm 1 outputs and what a downstream user
would store in place of the full pmf.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.util.intervals import Interval, Partition

#: Two adjacent pmf values are considered equal (no breakpoint) when they
#: differ by less than this relative-ish tolerance.  Exact synthetic
#: histograms have exactly equal values; the tolerance only matters for
#: pmfs that went through floating-point arithmetic.
_BREAKPOINT_ATOL = 1e-12


@dataclass(frozen=True)
class Histogram:
    """A piecewise-constant pmf: a partition and one value per piece.

    ``values[j]`` is the per-*point* probability on interval ``j`` (so the
    piece's total mass is ``values[j] * len(interval_j)``).
    """

    partition: Partition
    values: np.ndarray

    def __post_init__(self) -> None:
        vals = np.asarray(self.values, dtype=np.float64)
        if vals.shape != (len(self.partition),):
            raise ValueError(
                f"need one value per piece: {vals.shape} vs {len(self.partition)} pieces"
            )
        if np.any(vals < 0) or not np.all(np.isfinite(vals)):
            raise ValueError("piece values must be finite and non-negative")
        total = float(vals @ self.partition.lengths())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"histogram mass is {total}, expected 1")
        object.__setattr__(self, "values", vals)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_masses(cls, partition: Partition, masses: np.ndarray) -> "Histogram":
        """Build from per-piece total masses (divided evenly inside pieces)."""
        masses = np.asarray(masses, dtype=np.float64)
        if masses.shape != (len(partition),):
            raise ValueError("need one mass per piece")
        return cls(partition, masses / partition.lengths())

    @classmethod
    def flattening(cls, dist: DiscreteDistribution, partition: Partition) -> "Histogram":
        """The flattening of ``dist`` on ``partition``.

        Each piece receives the same total mass as under ``dist``, spread
        uniformly — the map the paper writes ``D̃`` (and uses both in the
        learner's target and in the known-partition baseline).
        """
        if dist.n != partition.n:
            raise ValueError("distribution and partition cover different domains")
        return cls.from_masses(partition, partition.aggregate(dist.pmf))

    @classmethod
    def from_pmf(cls, pmf: np.ndarray) -> "Histogram":
        """Minimal histogram representation of an explicit pmf."""
        pmf = np.asarray(pmf, dtype=np.float64)
        bounds = _breakpoint_boundaries(pmf)
        partition = Partition(bounds)
        values = pmf[partition.boundaries[:-1]]
        return cls(partition, values)

    # -- accessors -----------------------------------------------------------

    @property
    def n(self) -> int:
        """Domain size."""
        return self.partition.n

    @property
    def num_pieces(self) -> int:
        """Number of pieces in *this* representation (maybe non-minimal)."""
        return len(self.partition)

    def piece_masses(self) -> np.ndarray:
        """Total probability mass of each piece."""
        return self.values * self.partition.lengths()

    def to_pmf(self) -> np.ndarray:
        """Expand to the explicit length-``n`` probability vector."""
        return np.repeat(self.values, self.partition.lengths())

    def to_distribution(self) -> DiscreteDistribution:
        """Expand into a sampleable :class:`DiscreteDistribution`."""
        return DiscreteDistribution(self.to_pmf())

    def minimal(self) -> "Histogram":
        """Canonical representation merging adjacent equal-valued pieces."""
        return Histogram.from_pmf(self.to_pmf())

    def breakpoints(self) -> np.ndarray:
        """Minimal breakpoints: points ``i`` with ``pmf[i] != pmf[i+1]``."""
        return breakpoints(self.to_pmf())

    def __repr__(self) -> str:
        return f"Histogram(n={self.n}, pieces={self.num_pieces})"


def _breakpoint_boundaries(pmf: np.ndarray) -> np.ndarray:
    """Boundary array of the minimal piecewise-constant partition of ``pmf``."""
    if pmf.ndim != 1 or len(pmf) == 0:
        raise ValueError("pmf must be a non-empty 1-d array")
    diffs = np.abs(np.diff(pmf))
    cuts = np.flatnonzero(diffs > _BREAKPOINT_ATOL) + 1
    return np.concatenate(([0], cuts, [len(pmf)]))


def breakpoints(pmf: np.ndarray) -> np.ndarray:
    """Indices ``i`` such that ``pmf[i] != pmf[i+1]`` (paper's breakpoints).

    The paper's convention calls ``i`` a breakpoint of ``D`` when
    ``D(i) ≠ D(i+1)``; here the returned indices are 0-based positions of
    the *left* neighbour of each jump.
    """
    pmf = np.asarray(pmf, dtype=np.float64)
    return np.flatnonzero(np.abs(np.diff(pmf)) > _BREAKPOINT_ATOL)


def num_pieces(pmf: np.ndarray) -> int:
    """Minimal number of constant pieces required to represent ``pmf``."""
    return len(breakpoints(pmf)) + 1


def is_k_histogram(dist: DiscreteDistribution | np.ndarray, k: int) -> bool:
    """Exact membership test ``D ∈ H_k`` for an explicitly known pmf.

    This is *not* a sampling algorithm — it is the ground-truth oracle used
    by experiments and tests.  ``H_k`` for ``k >= n`` is all of ``Δ([n])``.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    pmf = dist.pmf if isinstance(dist, DiscreteDistribution) else np.asarray(dist)
    return num_pieces(pmf) <= k


def breakpoint_intervals(dist: DiscreteDistribution | np.ndarray, partition: Partition) -> list[int]:
    """Indices of partition intervals containing a breakpoint of ``dist``.

    An interval ``I`` is a *breakpoint interval* (paper, Section 3.2) when
    some jump of the pmf happens strictly inside it — i.e. there is an ``i``
    with both ``i`` and ``i+1`` in ``I`` and ``pmf[i] != pmf[i+1]``.  Jumps
    across interval borders do not count: a histogram aligned with the
    partition has no breakpoint intervals.
    """
    pmf = dist.pmf if isinstance(dist, DiscreteDistribution) else np.asarray(dist)
    if len(pmf) != partition.n:
        raise ValueError("distribution and partition cover different domains")
    bps = breakpoints(pmf)
    hits: set[int] = set()
    for bp in bps:
        j = partition.locate(int(bp))
        if int(bp) + 1 < partition[j].stop:
            hits.add(j)
    return sorted(hits)


def flatten_outside(
    dist: DiscreteDistribution, partition: Partition, keep_exact: list[int]
) -> DiscreteDistribution:
    """The paper's ``D̃^J``: keep ``dist`` exactly on intervals in
    ``keep_exact`` and flatten it on every other interval.

    With ``keep_exact`` the breakpoint intervals of a ``D ∈ H_k``, the result
    is the idealised target the learner of Lemma 3.5 is compared against.
    """
    if dist.n != partition.n:
        raise ValueError("distribution and partition cover different domains")
    flat = partition.flatten(dist.pmf).copy()
    for j in keep_exact:
        iv: Interval = partition[j]
        flat[iv.slice()] = dist.pmf[iv.slice()]
    return DiscreteDistribution(flat, validate=False)
