"""Near-linear ``H_k`` projection engine: lazy cost oracles + verified D&C DP.

The dense path in :mod:`repro.distributions.projection` materialises an
``(n+1)×(n+1)`` interval-cost matrix (Θ(n³) work for the flattening build)
and runs the classic layered DP over it.  This module replaces both halves
for large domains while reproducing the dense results to within an
explicit tolerance:

**Interval cost oracle** (:class:`IntervalCostOracle`).  Costs are over
weighted values ``(v_q, w_q)`` with a boolean "don't-care" mask — one
engine covers both the point-granularity DPs (``w ≡ 1``, ``v = p``) and
the coarse piecewise-constant Step-10 variant (``w`` = interval lengths,
``v`` = interval values).  The flattening cost of ``[a, b)`` is
``Σ_{q∈[a,b), masked} w_q·|v_q − μ|`` with ``μ`` the *full*-interval
weighted mean (mass-1 constraint), and decomposes through prefix sums once
the elements below/above ``μ`` can be aggregated:

    ``below = μ·W_{<μ} − S_{<μ}``,   ``above = (S − S_{≤μ}) − μ·(W − W_{≤μ})``

where ``W_{<c}(a, b)`` / ``S_{<c}(a, b)`` are the masked weight / masked
weight·value totals of elements with value below ``c``.  Those are served
by a Fenwick-block rank tree (:class:`_RankTree`): prefix ``[0, x)``
decomposes into the blocks given by the set bits of ``x``; each level
stores its blocks sorted by **integer global value rank** (a float
"offset" key would lose low-order bits and misclassify values within a few
ulp of ``μ``) together with running sums of the masked weights in that
order, so a batched query is one ``searchsorted`` + gathers per level —
O(log n) amortised per interval after an O(n log² n) preprocess.  The
median (unconstrained ℓ1) variant binary-searches the weighted lower
median over global value ranks with the same primitive, matching the
dense two-heap tracker's lower-median convention.

**Verified divide-and-conquer DP** (:func:`project_intervals`).  The
textbook D&C argmin-splitting optimisation is *not exact* here: the
flattening cost violates the quadrangle inequality (``p = [0, 10, 0, 0]``
gives ``C(0,2)+C(1,4) > C(0,4)+C(1,2)``), and the median cost is only
Monge on sorted data — empirically plain D&C mislabels ~15% of random
instances.  Each layer therefore runs two passes:

1. a breadth-first D&C pass producing upper bounds ``g_ub(j)`` and
   candidate parents with O(n log n) oracle calls;
2. a verification pass that re-examines every candidate ``i`` whose
   admissible lower bound is below ``g_ub(j) − tol``.  The bound must be
   *length-aware* — the masked value range ``R(i, j)`` alone prunes almost
   nothing on noise-like inputs because it does not grow with ``|j − i|``.
   The engine therefore precomputes, for every level ``b``, the optimal
   masked ℓ1 cost of each aligned block ``[m·2^b, (m+1)·2^b)`` against its
   own best constant.  Costs are superadditive (a single constant over a
   union can only do worse than per-block optima), so any disjoint aligned
   cover of ``[i, j)`` sums to a lower bound on both objectives.  Two uses:

   * **candidate generation** — at one fixed small level ``s`` the bound
     separates into ``φ(i) = f_prev(i) − PB[⌈i/s⌉]`` versus
     ``ψ(j) = T(j) − PB[⌊j/s⌋]`` (``PB`` = prefix sums of block costs), so
     the exact set ``{i : φ(i) < ψ(j)}`` falls out of one argsort of ``φ``
     and a ``searchsorted`` per layer — no monotonicity assumption on
     ``f_prev`` (which is *not* monotone under masks) is needed;
   * **per-pair refinement** — surviving pairs are filtered again with the
     canonical segment-tree cover (mixed levels, no edge slack) and with
     ``R(i, j)`` (valid since both call sites have weights ≥ 1; the
     general form scales by the minimum masked weight), before the
     remaining few are batch-evaluated through the oracle.

Missed candidates provably cost at least ``g_ub − tol``, so each layer is
exact to ``tol`` (default 1e-14) and a k-layer run to ``k·tol`` — far
inside the 1e-12 budget of the golden-equivalence suite.  Ties between
verified candidates resolve to the smallest ``i``, matching the dense
``np.argmin`` convention.  Memory is O(n·k) for the parent table plus
O(n log n) for the tree and tables.
"""

from __future__ import annotations

import numpy as np

#: Per-layer exactness slack of the verification pass; total error over a
#: k-layer run is at most k times this.
DEFAULT_TOL = 1e-14

#: Cap on simultaneously evaluated (i, j) candidate pairs.
_CHUNK = 1 << 18


_OBJECTIVES = ("flattening", "median")


def _count_cost_evals(objective: str, pairs: int) -> None:
    """Meter oracle cost evaluations (one count per (a, b) pair queried)."""
    from repro.observability.metrics import get_metrics

    get_metrics().counter("projection.oracle_cost_evals", objective=objective).inc(pairs)


def _sparse_table(arr: np.ndarray, op) -> np.ndarray:
    """``st[b, i] = op-reduce(arr[i : i + 2**b])`` for all valid ``i``."""
    n = len(arr)
    levels = max(1, int(np.frexp(n)[1]))  # floor(log2 n) + 1, exact
    st = np.empty((levels, n), dtype=np.float64)
    st[0] = arr
    for b in range(1, levels):
        half = 1 << (b - 1)
        valid = n - (1 << b) + 1
        st[b, :valid] = op(st[b - 1, :valid], st[b - 1, half : half + valid])
        st[b, valid:] = st[b - 1, valid:]  # never queried; keeps shape
    return st


def _block_l1_costs(v: np.ndarray, wm: np.ndarray, b: int) -> np.ndarray:
    """Optimal masked ℓ1 cost of every aligned level-``b`` block against its
    own best constant (the weighted median).  The trailing partial block is
    scored over its actual elements, so every entry is a valid bound."""
    n = len(v)
    size = 1 << b
    nblocks = -(n // -size)
    pad = nblocks * size - n
    vp = np.concatenate((v, np.zeros(pad)))
    wp = np.concatenate((wm, np.zeros(pad)))
    order = np.argsort(vp.reshape(nblocks, size), axis=1, kind="stable")
    sv = np.take_along_axis(vp.reshape(nblocks, size), order, axis=1)
    sw = np.take_along_axis(wp.reshape(nblocks, size), order, axis=1)
    cumw = np.cumsum(sw, axis=1)
    cumwv = np.cumsum(sw * sv, axis=1)
    tot = cumw[:, -1]
    totv = cumwv[:, -1]
    rows = np.arange(nblocks)
    pos = (cumw >= 0.5 * tot[:, None]).argmax(axis=1)
    c = sv[rows, pos]
    w_lt = np.where(pos > 0, cumw[rows, pos - 1], 0.0)
    wv_lt = np.where(pos > 0, cumwv[rows, pos - 1], 0.0)
    below = c * w_lt - wv_lt
    above = (totv - wv_lt) - c * (tot - w_lt)
    return np.maximum(below, 0.0) + np.maximum(above, 0.0)


class _RankTree:
    """Fenwick-block structure for batched masked prefix statistics.

    ``prefix_stats(x, L)`` returns, for each query, the masked weight and
    masked weight·value totals over elements at positions ``< x`` whose
    global value rank is ``< L``.  Value ranks are dense integer indices
    into ``unique_vals``, so all comparisons are exact.
    """

    __slots__ = ("unique_vals", "_stride", "_levels")

    def __init__(self, values: np.ndarray, wm: np.ndarray, wvm: np.ndarray):
        n = len(values)
        self.unique_vals = np.unique(values)
        stride = len(self.unique_vals) + 1
        self._stride = stride
        ranks = np.searchsorted(self.unique_vals, values).astype(np.int64)
        levels = []
        b = 0
        while (n >> b) >= 1:
            nblocks = n >> b
            covered = nblocks << b
            resh = ranks[:covered].reshape(nblocks, 1 << b)
            order = np.argsort(resh, axis=1, kind="stable")
            block_base = (np.arange(nblocks, dtype=np.int64) << b)[:, None]
            flat = (order + block_base).ravel()
            keys = (
                np.take_along_axis(resh, order, axis=1)
                + np.arange(nblocks, dtype=np.int64)[:, None] * stride
            ).ravel()
            cw = np.concatenate(([0.0], np.cumsum(wm[flat])))
            cwv = np.concatenate(([0.0], np.cumsum(wvm[flat])))
            levels.append((keys, cw, cwv))
            b += 1
        self._levels = levels

    def prefix_stats(self, x: np.ndarray, L: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        w = np.zeros(len(x), dtype=np.float64)
        wv = np.zeros(len(x), dtype=np.float64)
        for b, (keys, cw, cwv) in enumerate(self._levels):
            idx = np.flatnonzero((x >> b) & 1)
            if idx.size == 0:
                continue
            blk = (x[idx] >> b) - 1
            start = blk << b
            pos = np.searchsorted(keys, blk * self._stride + L[idx], side="left")
            w[idx] += cw[pos] - cw[start]
            wv[idx] += cwv[pos] - cwv[start]
        return w, wv


class IntervalCostOracle:
    """Batched interval costs over weighted masked values.

    ``flattening_costs(a, b)`` evaluates the masked ℓ1 error against the
    full-interval weighted mean; ``median_costs(a, b)`` the masked ℓ1
    optimum over constants (weighted lower median).  ``mean_numerator``
    optionally overrides the per-element numerator of the mean (the coarse
    path passes interval masses so ``μ`` matches the dense build bitwise).
    """

    def __init__(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        mask: np.ndarray,
        *,
        mean_numerator: np.ndarray | None = None,
    ):
        v = np.ascontiguousarray(values, dtype=np.float64)
        w = np.ascontiguousarray(weights, dtype=np.float64)
        m = np.ascontiguousarray(mask, dtype=bool)
        n = len(v)
        if w.shape != (n,) or m.shape != (n,):
            raise ValueError("values, weights and mask must share one shape")
        if n and float(w.min()) <= 0.0:
            raise ValueError("weights must be strictly positive")
        self.n = n
        num = w * v if mean_numerator is None else np.asarray(mean_numerator, np.float64)
        wm = np.where(m, w, 0.0)
        wvm = wm * v
        self._w_pre = np.concatenate(([0.0], np.cumsum(w)))
        self._num_pre = np.concatenate(([0.0], np.cumsum(num)))
        self._mw_pre = np.concatenate(([0.0], np.cumsum(wm)))
        self._mwv_pre = np.concatenate(([0.0], np.cumsum(wvm)))
        self._tree = _RankTree(v, wm, wvm)
        self._st_hi = _sparse_table(np.where(m, v, -np.inf), np.maximum)
        self._st_lo = _sparse_table(np.where(m, v, np.inf), np.minimum)
        masked_w = w[m]
        self._r_scale = float(min(1.0, masked_w.min())) if masked_w.size else 1.0
        self._block_costs = []
        self._block_prefix = []
        b = 0
        while n and (1 << b) <= n:
            costs = _block_l1_costs(v, wm, b)
            self._block_costs.append(costs)
            self._block_prefix.append(np.concatenate(([0.0], np.cumsum(costs))))
            b += 1
        # Padded 2D copy of the per-level prefixes so a per-pair,
        # length-adaptive level can be gathered in one fancy-index.
        if self._block_prefix:
            self._block_prefix2d = np.zeros((len(self._block_prefix), n + 1))
            for lev, pref in enumerate(self._block_prefix):
                self._block_prefix2d[lev, : len(pref)] = pref
        else:
            self._block_prefix2d = np.zeros((0, n + 1))

    # -- admissible lower bound ------------------------------------------

    def range_lower_bound(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``max(0, masked-max − masked-min)`` over ``[a, b)``, scaled by
        ``min(1, min masked weight)`` — a lower bound on both objectives."""
        out = np.zeros(len(a), dtype=np.float64)
        length = b - a
        nz = length > 0
        if nz.any():
            lev = (np.frexp(length[nz].astype(np.float64))[1] - 1).astype(np.int64)
            aa = a[nz]
            tail = b[nz] - (np.int64(1) << lev)
            hi = np.maximum(self._st_hi[lev, aa], self._st_hi[lev, tail])
            lo = np.minimum(self._st_lo[lev, aa], self._st_lo[lev, tail])
            out[nz] = np.maximum(hi - lo, 0.0) * self._r_scale
        return out

    def cover_lower_bound(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Sum of per-block optimal ℓ1 costs over the canonical segment-tree
        cover of ``[a, b)`` — superadditivity makes it a lower bound on both
        objectives, with no edge slack."""
        out = np.zeros(len(a), dtype=np.float64)
        l = a.astype(np.int64).copy()
        r = b.astype(np.int64).copy()
        for costs in self._block_costs:
            live = l < r
            if not live.any():
                break
            odd_l = live & ((l & 1) == 1)
            out[odd_l] += costs[l[odd_l]]
            l[odd_l] += 1
            odd_r = live & ((r & 1) == 1)
            r[odd_r] -= 1
            out[odd_r] += costs[r[odd_r]]
            l >>= 1
            r >>= 1
        return out

    def aligned_lower_bound(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Sum of aligned-block costs fully inside ``[a, b)`` at a per-pair
        level of roughly a quarter of the interval length — weaker than the
        canonical cover but only two gathers, so it runs first."""
        length = b - a
        lev = np.frexp(np.maximum(length, 1).astype(np.float64))[1] - 2
        np.clip(lev, 0, len(self._block_costs) - 1, out=lev)
        step = np.int64(1) << lev
        lo_blk = -(a // -step)
        hi_blk = b >> lev
        diff = self._block_prefix2d[lev, hi_blk] - self._block_prefix2d[lev, lo_blk]
        # lo_blk may land past the last full block (zero padding), which
        # would overstate the bound — such pairs contribute nothing.
        return np.where(lo_blk < hi_blk, np.maximum(diff, 0.0), 0.0)

    def window_terms(self, f_prev: np.ndarray, T: np.ndarray, b: int):
        """Separable candidate test at block level ``b``: candidate ``(i, j)``
        pairs are exactly ``{φ(i) < ψ(j)}``, an admissible relaxation of
        ``f_prev(i) + block-cost(i, j) < T(j)``."""
        prefix = self._block_prefix[b]
        idx = np.arange(self.n + 1, dtype=np.int64)
        phi = f_prev - prefix[-(idx // -(1 << b))]
        psi = T - prefix[idx >> b]
        return phi, psi

    @property
    def num_levels(self) -> int:
        return len(self._block_costs)

    # -- shared helpers ---------------------------------------------------

    def _below_above(self, a, b, c, L_lt):
        """Masked ℓ1 error of ``[a, b)`` against per-interval constant ``c``,
        given the rank cut-off for strict (< c) membership.  Elements equal
        to ``c`` contribute zero either side, so the strict cut suffices."""
        xs = np.concatenate((a, b))
        Ls = np.concatenate((L_lt, L_lt))
        w, wv = self._tree.prefix_stats(xs, Ls)
        m = len(a)
        w_lt = w[m:] - w[:m]
        wv_lt = wv[m:] - wv[:m]
        mw = self._mw_pre[b] - self._mw_pre[a]
        mwv = self._mwv_pre[b] - self._mwv_pre[a]
        below = c * w_lt - wv_lt
        above = (mwv - wv_lt) - c * (mw - w_lt)
        return np.maximum(below, 0.0) + np.maximum(above, 0.0)

    # -- objectives -------------------------------------------------------

    def flattening_costs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        _count_cost_evals("flattening", len(a))
        out = np.zeros(len(a), dtype=np.float64)
        nz = b > a
        if not nz.any():
            return out
        aa, bb = a[nz], b[nz]
        sw = self._w_pre[bb] - self._w_pre[aa]
        mu = (self._num_pre[bb] - self._num_pre[aa]) / sw
        uv = self._tree.unique_vals
        L_lt = np.searchsorted(uv, mu, side="left").astype(np.int64)
        out[nz] = self._below_above(aa, bb, mu, L_lt)
        return out

    def median_costs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        _count_cost_evals("median", len(a))
        out = np.zeros(len(a), dtype=np.float64)
        mw = self._mw_pre[b] - self._mw_pre[a]
        nz = (b > a) & (mw > 0.0)
        if not nz.any():
            return out
        aa, bb = a[nz], b[nz]
        half = 0.5 * mw[nz]
        nq = len(aa)
        uv = self._tree.unique_vals
        lo = np.zeros(nq, dtype=np.int64)
        hi = np.full(nq, len(uv) - 1, dtype=np.int64)
        # Weighted lower median: smallest value whose masked cumulative
        # weight reaches half the interval's masked weight (the dense
        # two-heap tracker's convention).
        while True:
            run = np.flatnonzero(lo < hi)
            if run.size == 0:
                break
            mid = (lo[run] + hi[run]) >> 1
            xs = np.concatenate((aa[run], bb[run]))
            Ls = np.concatenate((mid + 1, mid + 1))
            w, _ = self._tree.prefix_stats(xs, Ls)
            wle = w[len(run) :] - w[: len(run)]
            reach = wle >= half[run]
            hi[run[reach]] = mid[reach]
            lo[run[~reach]] = mid[~reach] + 1
        c = uv[lo]
        out[nz] = self._below_above(aa, bb, c, lo)
        return out


# ---------------------------------------------------------------------------
# Verified divide-and-conquer DP
# ---------------------------------------------------------------------------


def _segment_first_min(vals, starts, i_arr):
    """Per-segment minimum value and the smallest ``i`` attaining it
    (matching the dense ``np.argmin`` first-minimum convention; ``i_arr``
    need not be sorted within a segment)."""
    mins = np.minimum.reduceat(vals, starts)
    sizes = np.diff(np.append(starts, len(vals)))
    rep = np.repeat(mins, sizes)
    cand = np.where(vals == rep, i_arr, np.iinfo(np.int64).max)
    argi = np.minimum.reduceat(cand, starts)
    return mins, argi


def _dc_upper_bound(f_prev, cost_fn, n):
    """Breadth-first D&C pass: upper bounds + candidate parents per ``j``."""
    g = np.empty(n + 1, dtype=np.float64)
    par = np.zeros(n + 1, dtype=np.int64)
    jlo = np.array([0], dtype=np.int64)
    jhi = np.array([n], dtype=np.int64)
    ilo = np.array([0], dtype=np.int64)
    ihi = np.array([n], dtype=np.int64)
    while len(jlo):
        jm = (jlo + jhi) >> 1
        top = np.minimum(ihi, jm)
        counts = top - ilo + 1
        starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        total = int(counts.sum())
        i_arr = np.repeat(ilo - starts, counts) + np.arange(total, dtype=np.int64)
        j_arr = np.repeat(jm, counts)
        vals = f_prev[i_arr] + cost_fn(i_arr, j_arr)
        mins, argi = _segment_first_min(vals, starts, i_arr)
        g[jm] = mins
        par[jm] = argi
        left = jm - 1 >= jlo
        right = jm + 1 <= jhi
        jlo = np.concatenate((jlo[left], jm[right] + 1))
        jhi = np.concatenate((jm[left] - 1, jhi[right]))
        ilo = np.concatenate((ilo[left], argi[right]))
        ihi = np.concatenate((argi[left], ihi[right]))
    return g, par


#: Neighbour-propagation sweeps in the pass-1 polish; one sweep captures
#: nearly all of the threshold tightening at half the polish cost.
_POLISH_SWEEPS = 1


def _polish_upper_bound(f_prev, g, par, cost_fn, n, prev_par=None):
    """Cheap post-D&C polish of the upper bound: for every ``j`` probe the
    neighbours' incumbent split points, the previous layer's parent, and
    geometric offsets around the incumbent, keeping ``g``/``par`` admissible
    upper bounds throughout.  A tight ``g`` is what makes the verification
    threshold ``T`` sharp, so this directly shrinks the candidate flood."""
    j = np.arange(n + 1, dtype=np.int64)
    for _ in range(_POLISH_SWEEPS):
        cand = [
            np.minimum(np.concatenate(([0], par[:-1])), j),
            np.minimum(np.concatenate((par[1:], [par[-1]])), j),
        ]
        if prev_par is not None:
            cand.append(np.minimum(prev_par.astype(np.int64), j))
        t = 1
        while t <= n:
            cand.append(np.clip(par - t, 0, j))
            cand.append(np.clip(par + t, 0, j))
            t <<= 1
        i_mat = np.stack(cand)
        m = i_mat.shape[0]
        flat = i_mat.ravel()
        vals = (f_prev[flat] + cost_fn(flat, np.tile(j, m))).reshape(m, n + 1)
        val_min = vals.min(axis=0)
        i_min = np.where(vals == val_min[None, :], i_mat, np.int64(n + 2)).min(axis=0)
        better = (val_min < g) | ((val_min == g) & (i_min < par))
        g[better] = val_min[better]
        par[better] = i_min[better]


def _dp_refine_layers(r: int) -> list[int]:
    """Earlier layers used for per-pair DP-consistency refinement:
    geometrically spaced steps back from the current layer ``r``."""
    ms = []
    step = 1
    while r - step >= 1:
        ms.append(r - step)
        step <<= 1
    return ms


def _verify_layer(fs, g, par, oracle, cost_fn, tol):
    """Exactness pass: evaluate every candidate whose admissible lower bound
    beats ``g − tol``; updates ``g``/``par`` in place.

    Two separable test families generate candidates, and each ``j`` uses
    whichever single test admits fewest:

    * block levels — ``f_prev(i) + S_b(i, j) < T(j)`` with ``S_b`` the
      aligned-block cost sum (noise-like inputs favour small blocks,
      piecewise-constant inputs piece-scale ones);
    * DP consistency — ``f_{m+1}(j) ≤ f_m(i) + C(i, j)`` for every earlier
      layer ``m``, so ``f_r(i) − f_m(i) ≥ T(j) − f_{m+1}(j)`` prunes.
      Marginal piece gains shrink with ``r``, which makes this the
      decisive test in early layers where block densities are flat.
    """
    f_prev = fs[-1]
    r = len(fs) - 1
    T = g - tol
    inactive = T <= 0.0
    tests = []  # (phi, psi) pairs; all admissible relaxations
    for b in range(oracle.num_levels):
        phi, psi = oracle.window_terms(f_prev, T, b)
        psi[inactive] = -np.inf
        tests.append((phi, psi))
    for m in range(1, r):
        phi = f_prev - fs[m]
        psi = T - fs[m + 1]
        psi[inactive] = -np.inf
        tests.append((phi, psi))
    orders = []
    cnts = []
    for phi, psi in tests:
        order = np.argsort(phi, kind="stable").astype(np.int64)
        orders.append(order)
        cnts.append(np.searchsorted(phi[order], psi, side="left"))
    cnt_all = np.stack(cnts)
    best = np.argmin(cnt_all, axis=0)
    cnt = cnt_all[best, np.arange(cnt_all.shape[1])]
    refine_ms = _dp_refine_layers(r)
    for b in range(len(tests)):
        js = np.flatnonzero((best == b) & (cnt > 0)).astype(np.int64)
        if js.size == 0:
            continue
        order = orders[b]
        counts = cnt[js]
        cum = np.cumsum(counts)
        pos = 0
        base = 0
        while pos < len(js):
            end = int(np.searchsorted(cum, base + _CHUNK, side="right"))
            end = max(end, pos + 1)
            group = counts[pos:end]
            seg_starts = np.concatenate(([0], np.cumsum(group)))[:-1]
            local = np.arange(int(group.sum()), dtype=np.int64) - np.repeat(
                seg_starts, group
            )
            i_arr = order[local]
            j_arr = np.repeat(js[pos:end], group)
            keep = i_arr <= j_arr
            i_arr, j_arr = i_arr[keep], j_arr[keep]
            if len(i_arr):
                # Cheap bounds first (a few gathers each); the pricier
                # canonical cover and range bounds only see survivors.
                cost_lb = oracle.aligned_lower_bound(i_arr, j_arr)
                for m in refine_ms:
                    np.maximum(
                        cost_lb,
                        fs[m + 1][j_arr] - fs[m][i_arr],
                        out=cost_lb,
                    )
                keep = f_prev[i_arr] + cost_lb < T[j_arr]
                i_arr, j_arr = i_arr[keep], j_arr[keep]
            if len(i_arr):
                cost_lb = np.maximum(
                    oracle.range_lower_bound(i_arr, j_arr),
                    oracle.cover_lower_bound(i_arr, j_arr),
                )
                keep = f_prev[i_arr] + cost_lb < T[j_arr]
                i_arr, j_arr = i_arr[keep], j_arr[keep]
            if len(i_arr):
                vals = f_prev[i_arr] + cost_fn(i_arr, j_arr)
                ju, starts = np.unique(j_arr, return_index=True)
                mins, argi = _segment_first_min(vals, starts, i_arr)
                better = (mins < g[ju]) | ((mins == g[ju]) & (argi < par[ju]))
                g[ju[better]] = mins[better]
                par[ju[better]] = argi[better]
            base = cum[end - 1]
            pos = end


def project_intervals(
    values,
    weights,
    mask,
    pieces: int,
    *,
    objective: str = "flattening",
    tol: float = DEFAULT_TOL,
    return_profile: bool = False,
    mean_numerator=None,
):
    """Minimise the total interval cost of splitting ``[0, n)`` into at most
    ``pieces`` intervals; the fast equivalent of building a dense cost
    matrix and running ``_interval_dp`` over it.

    Returns ``(total_cost, boundaries)`` — the raw ℓ1 sum (callers halve
    for TV) and the dense-convention boundary array (``np.unique`` of the
    backtracked cut points).  With ``return_profile=True`` a third element
    gives the optimal total after each layer ``r+1 = 1..pieces``.
    """
    if objective not in _OBJECTIVES:
        raise ValueError(f"objective must be one of {_OBJECTIVES}, got {objective!r}")
    v = np.asarray(values, dtype=np.float64)
    n = len(v)
    pieces = min(int(pieces), n)
    if pieces < 1:
        raise ValueError(f"need at least one piece, got {pieces}")
    oracle = IntervalCostOracle(v, weights, mask, mean_numerator=mean_numerator)
    cost_fn = (
        oracle.flattening_costs if objective == "flattening" else oracle.median_costs
    )
    f = np.full(n + 1, np.inf)
    f[0] = 0.0
    fs = [f]
    parents = np.zeros((pieces, n + 1), dtype=np.int32)
    profile = np.empty(pieces, dtype=np.float64)
    prev_par = None
    for r in range(pieces):
        g, par = _dc_upper_bound(f, cost_fn, n)
        _polish_upper_bound(f, g, par, cost_fn, n, prev_par)
        _verify_layer(fs, g, par, oracle, cost_fn, tol)
        f = g
        fs.append(f)
        prev_par = par
        parents[r] = par
        profile[r] = f[n]
    bounds = [n]
    j = n
    for r in range(pieces - 1, -1, -1):
        j = int(parents[r, j])
        bounds.append(j)
    if bounds[-1] != 0:
        raise AssertionError("DP backtrack did not reach the origin")
    boundary = np.unique(np.asarray(bounds, dtype=np.int64))
    total = float(f[n])
    if return_profile:
        return total, boundary, profile
    return total, boundary
