"""Near-linear ``H_k`` projection engine: lazy cost oracles + verified D&C DP.

The dense path in :mod:`repro.distributions.projection` materialises an
``(n+1)×(n+1)`` interval-cost matrix (Θ(n³) work for the flattening build)
and runs the classic layered DP over it.  This module replaces both halves
for large domains while reproducing the dense results to within an
explicit tolerance:

**Interval cost oracle** (:class:`IntervalCostOracle`).  Costs are over
weighted values ``(v_q, w_q)`` with a boolean "don't-care" mask — one
engine covers both the point-granularity DPs (``w ≡ 1``, ``v = p``) and
the coarse piecewise-constant Step-10 variant (``w`` = interval lengths,
``v`` = interval values).  The flattening cost of ``[a, b)`` is
``Σ_{q∈[a,b), masked} w_q·|v_q − μ|`` with ``μ`` the *full*-interval
weighted mean (mass-1 constraint), and decomposes through prefix sums once
the elements below/above ``μ`` can be aggregated:

    ``below = μ·W_{<μ} − S_{<μ}``,   ``above = (S − S_{≤μ}) − μ·(W − W_{≤μ})``

where ``W_{<c}(a, b)`` / ``S_{<c}(a, b)`` are the masked weight / masked
weight·value totals of elements with value below ``c``.  Those are served
by a Fenwick-block rank tree (the ``rank_tree.*`` ops of
:mod:`repro.kernels`): prefix ``[0, x)`` decomposes into the blocks given
by the set bits of ``x``; each level stores its blocks sorted by
**integer global value rank** (a float "offset" key would lose low-order
bits and misclassify values within a few ulp of ``μ``) together with
running sums of the masked weights in that order.  The tree is stored as
flat arrays with per-level key offsets so a batched query across *all*
levels of *all* queries is a single ``searchsorted`` (python kernel) or a
jitted per-query bisect loop (numba kernel) — O(log n) amortised per
interval after an O(n log² n) preprocess.  The
median (unconstrained ℓ1) variant binary-searches the weighted lower
median over global value ranks with the same primitive, matching the
dense two-heap tracker's lower-median convention.

**Verified divide-and-conquer DP** (:func:`project_intervals`).  The
textbook D&C argmin-splitting optimisation is *not exact* here: the
flattening cost violates the quadrangle inequality (``p = [0, 10, 0, 0]``
gives ``C(0,2)+C(1,4) > C(0,4)+C(1,2)``), and the median cost is only
Monge on sorted data — empirically plain D&C mislabels ~15% of random
instances.  Each layer therefore runs two passes:

1. a breadth-first D&C pass producing upper bounds ``g_ub(j)`` and
   candidate parents with O(n log n) oracle calls;
2. a verification pass that re-examines every candidate ``i`` whose
   admissible lower bound is below ``g_ub(j) − tol``.  The bound must be
   *length-aware* — the masked value range ``R(i, j)`` alone prunes almost
   nothing on noise-like inputs because it does not grow with ``|j − i|``.
   The engine therefore precomputes, for every level ``b``, the optimal
   masked ℓ1 cost of each aligned block ``[m·2^b, (m+1)·2^b)`` against its
   own best constant.  Costs are superadditive (a single constant over a
   union can only do worse than per-block optima), so any disjoint aligned
   cover of ``[i, j)`` sums to a lower bound on both objectives.  Two uses:

   * **candidate generation** — at one fixed small level ``s`` the bound
     separates into ``φ(i) = f_prev(i) − PB[⌈i/s⌉]`` versus
     ``ψ(j) = T(j) − PB[⌊j/s⌋]`` (``PB`` = prefix sums of block costs), so
     the exact set ``{i : φ(i) < ψ(j)}`` falls out of one argsort of ``φ``
     and a ``searchsorted`` per layer — no monotonicity assumption on
     ``f_prev`` (which is *not* monotone under masks) is needed;
   * **per-pair refinement** — surviving pairs are filtered again with the
     canonical segment-tree cover (mixed levels, no edge slack) and with
     ``R(i, j)`` (valid since both call sites have weights ≥ 1; the
     general form scales by the minimum masked weight), before the
     remaining few are batch-evaluated through the oracle.

Missed candidates provably cost at least ``g_ub − tol``, so each layer is
exact to ``tol`` (default 1e-14) and a k-layer run to ``k·tol`` — far
inside the 1e-12 budget of the golden-equivalence suite.  Ties between
verified candidates resolve to the smallest ``i``, matching the dense
``np.argmin`` convention.  Memory is O(n·k) for the parent table plus
O(n log n) for the tree and tables.

The hot primitives — rank-tree build/query, aligned-block cost tables, the
canonical cover walk, per-segment first-minima — live in
:mod:`repro.kernels` and dispatch on the fingerprint-safe ``kernel`` knob
(``python``/``numba``); both implementations of every op are bit-identical,
so the engine's results are independent of the kernel in use.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import dispatch, resolve_kernel
from repro.observability.metrics import get_metrics

#: Per-layer exactness slack of the verification pass; total error over a
#: k-layer run is at most k times this.
DEFAULT_TOL = 1e-14

#: Cap on simultaneously evaluated (i, j) candidate pairs.
_CHUNK = 1 << 18


_OBJECTIVES = ("flattening", "median")


def _count_cost_evals(objective: str, pairs: int) -> None:
    """Meter oracle cost evaluations (one count per (a, b) pair queried)."""
    get_metrics().counter("projection.oracle_cost_evals", objective=objective).inc(pairs)


def _count_cache_hits(objective: str, pairs: int) -> None:
    get_metrics().counter("projection.oracle_cache_hits", objective=objective).inc(pairs)


#: Fibonacci-hash multiplier (2⁶⁴/φ as a signed int64 bit pattern).
_HASH_MULT = np.int64(0x9E3779B97F4A7C15 - (1 << 64))


class _PairCostCache:
    """Direct-mapped exact-value cache for per-pair interval costs.

    The verified DP re-queries the same ``(a, b)`` pairs across layers
    (~3.5× repetition at the E22 anchor), and interval costs are
    layer-independent, so a small cache recovers most of that work.
    Direct-mapped with the stored key as the collision check: a hit
    returns the *exact* float computed earlier (never an approximation),
    so results — and cross-kernel bit-identity — are unchanged; a
    collision simply overwrites (stale entries cost a re-evaluation, not
    correctness).  The table is sized O(n) (512 slots per element, capped
    at 2²⁰ → ≤ 16 MB), which preserves the engine's O(n·k) peak-memory
    contract — an exhaustive pair map would be Θ(n²).
    """

    __slots__ = ("keys", "vals", "shift", "mask")

    def __init__(self, n: int):
        bits = min(20, max(14, (max(int(n), 1) * 512).bit_length() - 1))
        size = 1 << bits
        self.keys = np.full(size, -1, dtype=np.int64)
        self.vals = np.empty(size, dtype=np.float64)
        self.shift = np.int64(63 - bits)
        self.mask = np.int64(size - 1)

    def lookup(self, key: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(slot, hit-mask, cached values-where-hit) for a key batch."""
        slot = ((key * _HASH_MULT) >> self.shift) & self.mask
        hit = self.keys[slot] == key
        return slot, hit, self.vals[slot]

    def store(self, slot: np.ndarray, key: np.ndarray, vals: np.ndarray) -> None:
        self.keys[slot] = key
        self.vals[slot] = vals


def _sparse_table(arr: np.ndarray, op) -> np.ndarray:
    """``st[b, i] = op-reduce(arr[i : i + 2**b])`` for all valid ``i``."""
    n = len(arr)
    levels = max(1, int(np.frexp(n)[1]))  # floor(log2 n) + 1, exact
    st = np.empty((levels, n), dtype=np.float64)
    st[0] = arr
    for b in range(1, levels):
        half = 1 << (b - 1)
        valid = n - (1 << b) + 1
        st[b, :valid] = op(st[b - 1, :valid], st[b - 1, half : half + valid])
        st[b, valid:] = st[b - 1, valid:]  # never queried; keeps shape
    return st


class IntervalCostOracle:
    """Batched interval costs over weighted masked values.

    ``flattening_costs(a, b)`` evaluates the masked ℓ1 error against the
    full-interval weighted mean; ``median_costs(a, b)`` the masked ℓ1
    optimum over constants (weighted lower median).  ``mean_numerator``
    optionally overrides the per-element numerator of the mean (the coarse
    path passes interval masses so ``μ`` matches the dense build bitwise).
    ``kernel`` selects the implementation family for the hot primitives
    (resolved once at construction; ``None`` follows the thread's current
    kernel) — results are bit-identical across kernels.
    """

    def __init__(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        mask: np.ndarray,
        *,
        mean_numerator: np.ndarray | None = None,
        kernel: str | None = None,
    ):
        v = np.ascontiguousarray(values, dtype=np.float64)
        w = np.ascontiguousarray(weights, dtype=np.float64)
        m = np.ascontiguousarray(mask, dtype=bool)
        n = len(v)
        if w.shape != (n,) or m.shape != (n,):
            raise ValueError("values, weights and mask must share one shape")
        if n and float(w.min()) <= 0.0:
            raise ValueError("weights must be strictly positive")
        self.n = n
        self.kernel = resolve_kernel(kernel)
        num = w * v if mean_numerator is None else np.asarray(mean_numerator, np.float64)
        wm = np.where(m, w, 0.0)
        wvm = wm * v
        self._w_pre = np.concatenate(([0.0], np.cumsum(w)))
        self._num_pre = np.concatenate(([0.0], np.cumsum(num)))
        self._mw_pre = np.concatenate(([0.0], np.cumsum(wm)))
        self._mwv_pre = np.concatenate(([0.0], np.cumsum(wvm)))
        self._tree = dispatch("rank_tree.build", self.kernel)(v, wm, wvm)
        self._prefix_stats = dispatch("rank_tree.prefix_stats", self.kernel)
        self._interval_stats = dispatch("rank_tree.interval_stats", self.kernel)
        self._st_hi = _sparse_table(np.where(m, v, -np.inf), np.maximum)
        self._st_lo = _sparse_table(np.where(m, v, np.inf), np.minimum)
        masked_w = w[m]
        self._r_scale = float(min(1.0, masked_w.min())) if masked_w.size else 1.0
        # Flat per-level aligned-block cost tables (preallocated build; the
        # padded 2-D prefix lets a per-pair, length-adaptive level be
        # gathered in one fancy-index).
        self._bc_flat, self._bc_off, self._block_prefix2d, self._bc_levels = dispatch(
            "blocks.build", self.kernel
        )(v, wm)
        self._cover_walk = dispatch("blocks.cover_walk", self.kernel)
        self._cost_cache: dict[str, _PairCostCache] = {}

    # -- admissible lower bound ------------------------------------------

    def range_lower_bound(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``max(0, masked-max − masked-min)`` over ``[a, b)``, scaled by
        ``min(1, min masked weight)`` — a lower bound on both objectives."""
        out = np.zeros(len(a), dtype=np.float64)
        length = b - a
        nz = length > 0
        if nz.any():
            lev = (np.frexp(length[nz].astype(np.float64))[1] - 1).astype(np.int64)
            aa = a[nz]
            tail = b[nz] - (np.int64(1) << lev)
            hi = np.maximum(self._st_hi[lev, aa], self._st_hi[lev, tail])
            lo = np.minimum(self._st_lo[lev, aa], self._st_lo[lev, tail])
            out[nz] = np.maximum(hi - lo, 0.0) * self._r_scale
        return out

    def cover_lower_bound(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Sum of per-block optimal ℓ1 costs over the canonical segment-tree
        cover of ``[a, b)`` — superadditivity makes it a lower bound on both
        objectives, with no edge slack."""
        return self._cover_walk(self._bc_flat, self._bc_off, self._bc_levels, a, b)

    def aligned_lower_bound(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Sum of aligned-block costs fully inside ``[a, b)`` at a per-pair
        level of roughly a quarter of the interval length — weaker than the
        canonical cover but only two gathers, so it runs first."""
        length = b - a
        lev = np.frexp(np.maximum(length, 1).astype(np.float64))[1] - 2
        np.clip(lev, 0, self._bc_levels - 1, out=lev)
        step = np.int64(1) << lev
        lo_blk = (a + step - 1) >> lev  # ceil(a / step) via shifts, a >= 0
        hi_blk = b >> lev
        diff = self._block_prefix2d[lev, hi_blk] - self._block_prefix2d[lev, lo_blk]
        # lo_blk may land past the last full block (zero padding), which
        # would overstate the bound — such pairs contribute nothing.
        return np.where(lo_blk < hi_blk, np.maximum(diff, 0.0), 0.0)

    def window_terms(self, f_prev: np.ndarray, T: np.ndarray, b: int):
        """Separable candidate test at block level ``b``: candidate ``(i, j)``
        pairs are exactly ``{φ(i) < ψ(j)}``, an admissible relaxation of
        ``f_prev(i) + block-cost(i, j) < T(j)``."""
        prefix = self._block_prefix2d[b]
        idx = np.arange(self.n + 1, dtype=np.int64)
        phi = f_prev - prefix[-(idx // -(1 << b))]
        psi = T - prefix[idx >> b]
        return phi, psi

    @property
    def num_levels(self) -> int:
        return self._bc_levels

    # -- shared helpers ---------------------------------------------------

    def _below_above(self, a, b, c, L_lt):
        """Masked ℓ1 error of ``[a, b)`` against per-interval constant ``c``,
        given the rank cut-off for strict (< c) membership.  Elements equal
        to ``c`` contribute zero either side, so the strict cut suffices."""
        w_lt, wv_lt = self._interval_stats(self._tree, a, b, L_lt)
        mw = self._mw_pre[b] - self._mw_pre[a]
        mwv = self._mwv_pre[b] - self._mwv_pre[a]
        below = c * w_lt - wv_lt
        above = (mwv - wv_lt) - c * (mw - w_lt)
        return np.maximum(below, 0.0) + np.maximum(above, 0.0)

    # -- objectives -------------------------------------------------------

    def _cached(self, objective: str, a, b, raw) -> np.ndarray:
        """Serve exact per-pair costs through the direct-mapped cache.

        Each query pair is independent of its batchmates (the same
        argument that lets the kernels chunk queries), so evaluating only
        the misses and splicing in previously computed values changes
        nothing but the work done.  Eval order is deterministic, hence so
        is the cache state — verdicts and traces are byte-identical with
        or without hits, across kernels, and across replays.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        cache = self._cost_cache.get(objective)
        if cache is None:
            cache = self._cost_cache[objective] = _PairCostCache(self.n)
        key = a * np.int64(self.n + 1) + b  # a, b in [0, n]: injective, >= 0
        slot, hit, out = cache.lookup(key)
        miss = np.flatnonzero(~hit)
        if miss.size:
            vals = raw(a[miss], b[miss])
            out[miss] = vals
            cache.store(slot[miss], key[miss], vals)
        _count_cache_hits(objective, len(a) - miss.size)
        return out

    def flattening_costs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._cached("flattening", a, b, self._flattening_costs_raw)

    def median_costs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._cached("median", a, b, self._median_costs_raw)

    def _flattening_costs_raw(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        _count_cost_evals("flattening", len(a))
        out = np.zeros(len(a), dtype=np.float64)
        nz = b > a
        if not nz.any():
            return out
        aa, bb = a[nz], b[nz]
        sw = self._w_pre[bb] - self._w_pre[aa]
        mu = (self._num_pre[bb] - self._num_pre[aa]) / sw
        uv = self._tree.unique_vals
        L_lt = np.searchsorted(uv, mu, side="left").astype(np.int64)
        out[nz] = self._below_above(aa, bb, mu, L_lt)
        return out

    def _median_costs_raw(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        _count_cost_evals("median", len(a))
        out = np.zeros(len(a), dtype=np.float64)
        mw = self._mw_pre[b] - self._mw_pre[a]
        nz = (b > a) & (mw > 0.0)
        if not nz.any():
            return out
        aa, bb = a[nz], b[nz]
        half = 0.5 * mw[nz]
        nq = len(aa)
        uv = self._tree.unique_vals
        lo = np.zeros(nq, dtype=np.int64)
        hi = np.full(nq, len(uv) - 1, dtype=np.int64)
        # Weighted lower median: smallest value whose masked cumulative
        # weight reaches half the interval's masked weight (the dense
        # two-heap tracker's convention).
        while True:
            run = np.flatnonzero(lo < hi)
            if run.size == 0:
                break
            mid = (lo[run] + hi[run]) >> 1
            wle, _ = self._interval_stats(self._tree, aa[run], bb[run], mid + 1)
            reach = wle >= half[run]
            hi[run[reach]] = mid[reach]
            lo[run[~reach]] = mid[~reach] + 1
        c = uv[lo]
        out[nz] = self._below_above(aa, bb, c, lo)
        return out


# ---------------------------------------------------------------------------
# Verified divide-and-conquer DP
# ---------------------------------------------------------------------------


def _dc_upper_bound(f_prev, cost_fn, n, seg_min):
    """Breadth-first D&C pass: upper bounds + candidate parents per ``j``."""
    g = np.empty(n + 1, dtype=np.float64)
    par = np.zeros(n + 1, dtype=np.int64)
    jlo = np.array([0], dtype=np.int64)
    jhi = np.array([n], dtype=np.int64)
    ilo = np.array([0], dtype=np.int64)
    ihi = np.array([n], dtype=np.int64)
    while len(jlo):
        jm = (jlo + jhi) >> 1
        top = np.minimum(ihi, jm)
        counts = top - ilo + 1
        starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        total = int(counts.sum())
        i_arr = np.repeat(ilo - starts, counts) + np.arange(total, dtype=np.int64)
        j_arr = np.repeat(jm, counts)
        vals = f_prev[i_arr] + cost_fn(i_arr, j_arr)
        mins, argi = seg_min(vals, starts, i_arr)
        g[jm] = mins
        par[jm] = argi
        left = jm - 1 >= jlo
        right = jm + 1 <= jhi
        jlo = np.concatenate((jlo[left], jm[right] + 1))
        jhi = np.concatenate((jm[left] - 1, jhi[right]))
        ilo = np.concatenate((ilo[left], argi[right]))
        ihi = np.concatenate((argi[left], ihi[right]))
    return g, par


#: Neighbour-propagation sweeps in the pass-1 polish; one sweep captures
#: nearly all of the threshold tightening at half the polish cost.
_POLISH_SWEEPS = 1


def _polish_upper_bound(f_prev, g, par, cost_fn, n, seg_min, prev_par=None):
    """Cheap post-D&C polish of the upper bound: for every ``j`` probe the
    neighbours' incumbent split points, the previous layer's parent, and
    geometric offsets around the incumbent, keeping ``g``/``par`` admissible
    upper bounds throughout.  A tight ``g`` is what makes the verification
    threshold ``T`` sharp, so this directly shrinks the candidate flood.

    The geometric ``par ± t`` probes clip-saturate to ``0``/``j`` for most
    ``t``, so the per-``j`` candidate sets are deduplicated before hitting
    the oracle (identical (i, j) pairs cost the same, and the first-min
    convention picks the smallest ``i`` either way — the dedup is
    result-invariant, it only removes redundant evaluations)."""
    j = np.arange(n + 1, dtype=np.int64)
    for _ in range(_POLISH_SWEEPS):
        cand = [
            np.minimum(np.concatenate(([0], par[:-1])), j),
            np.minimum(np.concatenate((par[1:], [par[-1]])), j),
        ]
        if prev_par is not None:
            cand.append(np.minimum(prev_par.astype(np.int64), j))
        t = 1
        while t <= n:
            cand.append(np.clip(par - t, 0, j))
            cand.append(np.clip(par + t, 0, j))
            t <<= 1
        # (n+1, m) column-per-j layout; sort within each j's candidate set
        # and drop repeats, keeping the flattened order j-major/i-ascending.
        i_mat = np.sort(np.stack(cand, axis=1), axis=1)
        keep = np.empty(i_mat.shape, dtype=bool)
        keep[:, 0] = True
        keep[:, 1:] = i_mat[:, 1:] != i_mat[:, :-1]
        counts = keep.sum(axis=1)
        i_arr = i_mat[keep]
        j_arr = np.repeat(j, counts)
        starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        vals = f_prev[i_arr] + cost_fn(i_arr, j_arr)
        val_min, i_min = seg_min(vals, starts, i_arr)
        better = (val_min < g) | ((val_min == g) & (i_min < par))
        g[better] = val_min[better]
        par[better] = i_min[better]


def _dp_refine_layers(r: int) -> list[int]:
    """Earlier layers used for per-pair DP-consistency refinement:
    geometrically spaced steps back from the current layer ``r``."""
    ms = []
    step = 1
    while r - step >= 1:
        ms.append(r - step)
        step <<= 1
    return ms


def _verify_layer(fs, g, par, oracle, cost_fn, tol, seg_min):
    """Exactness pass: evaluate every candidate whose admissible lower bound
    beats ``g − tol``; updates ``g``/``par`` in place.

    Two separable test families generate candidates, and each ``j`` uses
    whichever single test admits fewest:

    * block levels — ``f_prev(i) + S_b(i, j) < T(j)`` with ``S_b`` the
      aligned-block cost sum (noise-like inputs favour small blocks,
      piecewise-constant inputs piece-scale ones);
    * DP consistency — ``f_{m+1}(j) ≤ f_m(i) + C(i, j)`` for every earlier
      layer ``m``, so ``f_r(i) − f_m(i) ≥ T(j) − f_{m+1}(j)`` prunes.
      Marginal piece gains shrink with ``r``, which makes this the
      decisive test in early layers where block densities are flat.
    """
    f_prev = fs[-1]
    r = len(fs) - 1
    T = g - tol
    inactive = T <= 0.0
    tests = []  # (phi, psi) pairs; all admissible relaxations
    for b in range(oracle.num_levels):
        phi, psi = oracle.window_terms(f_prev, T, b)
        psi[inactive] = -np.inf
        tests.append((phi, psi))
    for m in range(1, r):
        phi = f_prev - fs[m]
        psi = T - fs[m + 1]
        psi[inactive] = -np.inf
        tests.append((phi, psi))
    orders = []
    cnts = []
    for phi, psi in tests:
        order = np.argsort(phi, kind="stable").astype(np.int64)
        orders.append(order)
        cnts.append(np.searchsorted(phi[order], psi, side="left"))
    cnt_all = np.stack(cnts)
    best = np.argmin(cnt_all, axis=0)
    cnt = cnt_all[best, np.arange(cnt_all.shape[1])]
    refine_ms = _dp_refine_layers(r)
    for b in range(len(tests)):
        js = np.flatnonzero((best == b) & (cnt > 0)).astype(np.int64)
        if js.size == 0:
            continue
        order = orders[b]
        counts = cnt[js]
        cum = np.cumsum(counts)
        pos = 0
        base = 0
        while pos < len(js):
            end = int(np.searchsorted(cum, base + _CHUNK, side="right"))
            end = max(end, pos + 1)
            group = counts[pos:end]
            seg_starts = np.concatenate(([0], np.cumsum(group)))[:-1]
            local = np.arange(int(group.sum()), dtype=np.int64) - np.repeat(
                seg_starts, group
            )
            i_arr = order[local]
            j_arr = np.repeat(js[pos:end], group)
            keep = i_arr <= j_arr
            i_arr, j_arr = i_arr[keep], j_arr[keep]
            if len(i_arr):
                # Cheap bounds first (a few gathers each); the pricier
                # canonical cover and range bounds only see survivors.
                cost_lb = oracle.aligned_lower_bound(i_arr, j_arr)
                for m in refine_ms:
                    np.maximum(
                        cost_lb,
                        fs[m + 1][j_arr] - fs[m][i_arr],
                        out=cost_lb,
                    )
                keep = f_prev[i_arr] + cost_lb < T[j_arr]
                i_arr, j_arr = i_arr[keep], j_arr[keep]
            if len(i_arr):
                cost_lb = np.maximum(
                    oracle.range_lower_bound(i_arr, j_arr),
                    oracle.cover_lower_bound(i_arr, j_arr),
                )
                keep = f_prev[i_arr] + cost_lb < T[j_arr]
                i_arr, j_arr = i_arr[keep], j_arr[keep]
            if len(i_arr):
                vals = f_prev[i_arr] + cost_fn(i_arr, j_arr)
                ju, starts = np.unique(j_arr, return_index=True)
                mins, argi = seg_min(vals, starts, i_arr)
                better = (mins < g[ju]) | ((mins == g[ju]) & (argi < par[ju]))
                g[ju[better]] = mins[better]
                par[ju[better]] = argi[better]
            base = cum[end - 1]
            pos = end


def project_intervals(
    values,
    weights,
    mask,
    pieces: int,
    *,
    objective: str = "flattening",
    tol: float = DEFAULT_TOL,
    return_profile: bool = False,
    mean_numerator=None,
    kernel: str | None = None,
):
    """Minimise the total interval cost of splitting ``[0, n)`` into at most
    ``pieces`` intervals; the fast equivalent of building a dense cost
    matrix and running ``_interval_dp`` over it.

    Returns ``(total_cost, boundaries)`` — the raw ℓ1 sum (callers halve
    for TV) and the dense-convention boundary array (``np.unique`` of the
    backtracked cut points).  With ``return_profile=True`` a third element
    gives the optimal total after each layer ``r+1 = 1..pieces``.
    """
    if objective not in _OBJECTIVES:
        raise ValueError(f"objective must be one of {_OBJECTIVES}, got {objective!r}")
    v = np.asarray(values, dtype=np.float64)
    n = len(v)
    pieces = min(int(pieces), n)
    if pieces < 1:
        raise ValueError(f"need at least one piece, got {pieces}")
    kernel = resolve_kernel(kernel)
    oracle = IntervalCostOracle(
        v, weights, mask, mean_numerator=mean_numerator, kernel=kernel
    )
    cost_fn = (
        oracle.flattening_costs if objective == "flattening" else oracle.median_costs
    )
    seg_min = dispatch("dp.segment_first_min", kernel)
    f = np.full(n + 1, np.inf)
    f[0] = 0.0
    fs = [f]
    parents = np.zeros((pieces, n + 1), dtype=np.int32)
    profile = np.empty(pieces, dtype=np.float64)
    prev_par = None
    for r in range(pieces):
        g, par = _dc_upper_bound(f, cost_fn, n, seg_min)
        _polish_upper_bound(f, g, par, cost_fn, n, seg_min, prev_par)
        _verify_layer(fs, g, par, oracle, cost_fn, tol, seg_min)
        f = g
        fs.append(f)
        prev_par = par
        parents[r] = par
        profile[r] = f[n]
    bounds = [n]
    j = n
    for r in range(pieces - 1, -1, -1):
        j = int(parents[r, j])
        bounds.append(j)
    if bounds[-1] != 0:
        raise AssertionError("DP backtrack did not reach the origin")
    boundary = np.unique(np.asarray(bounds, dtype=np.int64))
    total = float(f[n])
    if return_profile:
        return total, boundary, profile
    return total, boundary
