"""Discrete probability distributions over ``{0, …, n-1}``.

:class:`DiscreteDistribution` is the sample oracle of the testing model: the
only access any tester in this library gets to an unknown distribution is
through :meth:`DiscreteDistribution.sample` (fixed sample size) or
:meth:`DiscreteDistribution.sample_poissonized` (the paper's Poissonization
trick).  The class also supports the structural operations the paper's
constructions need — restriction to a subdomain, relabeling by a permutation,
embedding into a larger domain, and mixing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.util.rng import RandomState, ensure_rng

#: Tolerance for pmf normalisation checks (generous: pmfs are often the
#: output of long floating-point pipelines).
_NORMALISATION_ATOL = 1e-9


class DiscreteDistribution:
    """An explicit pmf over ``{0, …, n-1}`` with sampling access.

    Parameters
    ----------
    pmf:
        Non-negative array summing to one (within tolerance).  The array is
        copied and re-normalised exactly, so downstream arithmetic can rely
        on ``pmf.sum() == 1`` up to float rounding.
    validate:
        Skip validation only when constructing from an already-trusted array
        in a hot loop.
    """

    __slots__ = ("_pmf", "_cdf")

    def __init__(self, pmf: np.ndarray, *, validate: bool = True) -> None:
        arr = np.array(pmf, dtype=np.float64)
        if validate:
            if arr.ndim != 1 or len(arr) == 0:
                raise ValueError("pmf must be a non-empty 1-d array")
            if not np.all(np.isfinite(arr)):
                raise ValueError("pmf contains non-finite entries")
            if np.any(arr < -_NORMALISATION_ATOL):
                raise ValueError("pmf contains negative probabilities")
            total = arr.sum()
            if abs(total - 1.0) > max(_NORMALISATION_ATOL, 1e-12 * len(arr)):
                raise ValueError(f"pmf sums to {total}, expected 1")
            arr = np.clip(arr, 0.0, None)
            arr /= arr.sum()
        self._pmf = arr
        self._pmf.flags.writeable = False
        self._cdf: Optional[np.ndarray] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def uniform(cls, n: int) -> "DiscreteDistribution":
        """The uniform distribution over ``{0, …, n-1}``."""
        if n <= 0:
            raise ValueError(f"domain size must be positive, got {n}")
        return cls(np.full(n, 1.0 / n), validate=False)

    @classmethod
    def point_mass(cls, n: int, at: int) -> "DiscreteDistribution":
        """The distribution placing all mass at ``at``."""
        if not 0 <= at < n:
            raise ValueError(f"point {at} outside domain [0, {n})")
        pmf = np.zeros(n)
        pmf[at] = 1.0
        return cls(pmf, validate=False)

    @classmethod
    def from_weights(cls, weights: np.ndarray) -> "DiscreteDistribution":
        """Normalise an arbitrary non-negative weight vector into a pmf."""
        arr = np.asarray(weights, dtype=np.float64)
        if arr.ndim != 1 or len(arr) == 0:
            raise ValueError("weights must be a non-empty 1-d array")
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise ValueError("weights must be finite and non-negative")
        total = arr.sum()
        if total <= 0:
            raise ValueError("weights must have positive total mass")
        return cls(arr / total, validate=False)

    @classmethod
    def from_counts(cls, counts: np.ndarray) -> "DiscreteDistribution":
        """The empirical (plug-in) distribution of an occurrence-count vector."""
        return cls.from_weights(np.asarray(counts, dtype=np.float64))

    # -- accessors ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Domain size."""
        return len(self._pmf)

    @property
    def pmf(self) -> np.ndarray:
        """The probability vector (read-only view)."""
        return self._pmf

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i: int) -> float:
        return float(self._pmf[i])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteDistribution):
            return NotImplemented
        return self.n == other.n and np.array_equal(self._pmf, other._pmf)

    def __hash__(self) -> int:
        return hash(self._pmf.tobytes())

    def __repr__(self) -> str:
        return f"DiscreteDistribution(n={self.n})"

    def support(self) -> np.ndarray:
        """Indices with strictly positive probability."""
        return np.flatnonzero(self._pmf > 0)

    def support_size(self) -> int:
        """Number of elements with strictly positive probability."""
        return int(np.count_nonzero(self._pmf > 0))

    def min_nonzero(self) -> float:
        """Smallest positive probability (``inf`` for the empty support)."""
        positive = self._pmf[self._pmf > 0]
        return float(positive.min()) if len(positive) else float("inf")

    def mass(self, indices: np.ndarray) -> float:
        """Total probability of a set of domain points."""
        return float(self._pmf[np.asarray(indices, dtype=np.int64)].sum())

    # -- sampling (the testing model's only access) -------------------------

    def _cumulative(self) -> np.ndarray:
        if self._cdf is None:
            cdf = np.cumsum(self._pmf)
            cdf[-1] = 1.0
            self._cdf = cdf
        return self._cdf

    def sample(self, m: int, rng: RandomState = None) -> np.ndarray:
        """Draw ``m`` i.i.d. samples; returns an int64 array of length ``m``."""
        if m < 0:
            raise ValueError(f"sample size must be non-negative, got {m}")
        gen = ensure_rng(rng)
        if m == 0:
            return np.empty(0, dtype=np.int64)
        u = gen.random(m)
        return np.searchsorted(self._cumulative(), u, side="right").astype(np.int64)

    def sample_counts(self, m: int, rng: RandomState = None) -> np.ndarray:
        """Occurrence counts ``N_i`` of ``m`` i.i.d. samples (multinomial)."""
        if m < 0:
            raise ValueError(f"sample size must be non-negative, got {m}")
        gen = ensure_rng(rng)
        return gen.multinomial(m, self._pmf).astype(np.int64)

    def sample_counts_poissonized(self, m: float, rng: RandomState = None) -> np.ndarray:
        """Poissonized counts: ``N_i ~ Poisson(m * D(i))``, independent.

        This is the paper's Poissonization trick (Section 2): the total
        number of samples is ``Poisson(m)`` and the per-element counts
        become independent, which every χ²-statistic analysis relies on.
        """
        if m < 0:
            raise ValueError(f"expected sample size must be non-negative, got {m}")
        gen = ensure_rng(rng)
        return gen.poisson(m * self._pmf).astype(np.int64)

    def empirical(self, m: int, rng: RandomState = None) -> "DiscreteDistribution":
        """The plug-in estimate from ``m`` samples (uniform if ``m == 0``)."""
        counts = self.sample_counts(m, rng)
        if counts.sum() == 0:
            return DiscreteDistribution.uniform(self.n)
        return DiscreteDistribution.from_counts(counts)

    # -- structural operations ----------------------------------------------

    def permute(self, sigma: np.ndarray) -> "DiscreteDistribution":
        """Relabel the domain: returns ``D ∘ σ⁻¹``, i.e. new[σ(i)] = old[i].

        A sample ``s`` from the permuted distribution is distributed as
        ``σ(s₀)`` for ``s₀`` drawn from the original — exactly the
        "re-building the identity of the samples" step of Section 4.2.
        """
        sigma = np.asarray(sigma, dtype=np.int64)
        if sigma.shape != (self.n,) or not np.array_equal(np.sort(sigma), np.arange(self.n)):
            raise ValueError("sigma must be a permutation of the domain")
        pmf = np.empty(self.n)
        pmf[sigma] = self._pmf
        return DiscreteDistribution(pmf, validate=False)

    def embed(self, n_large: int, offset: int = 0) -> "DiscreteDistribution":
        """Embed into a larger domain, padding with zero-probability points."""
        if n_large < self.n + offset:
            raise ValueError("target domain too small for the embedding")
        pmf = np.zeros(n_large)
        pmf[offset : offset + self.n] = self._pmf
        return DiscreteDistribution(pmf, validate=False)

    def mix(self, other: "DiscreteDistribution", weight: float) -> "DiscreteDistribution":
        """The mixture ``(1 - weight)·self + weight·other``."""
        if other.n != self.n:
            raise ValueError("cannot mix distributions over different domains")
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"mixture weight must be in [0, 1], got {weight}")
        return DiscreteDistribution(
            (1.0 - weight) * self._pmf + weight * other._pmf, validate=False
        )

    def conditioned_on(self, mask: np.ndarray) -> "DiscreteDistribution":
        """Condition on a boolean subdomain mask (renormalised)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ValueError("mask must match the domain size")
        restricted = np.where(mask, self._pmf, 0.0)
        total = restricted.sum()
        if total <= 0:
            raise ValueError("conditioning event has zero probability")
        return DiscreteDistribution(restricted / total, validate=False)

    def restrict(self, mask: np.ndarray) -> np.ndarray:
        """Unnormalised restriction (a *sub*-distribution) as a raw array."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ValueError("mask must match the domain size")
        return np.where(mask, self._pmf, 0.0)
