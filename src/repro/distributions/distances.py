"""Distances between distributions (and sub-distributions).

Implements every metric the paper manipulates:

* total variation / ℓ1 (the testing metric),
* the asymmetric χ² divergence ``dχ²(D₁ ‖ D₂)`` (the learning metric),
* their restrictions to a subdomain (footnote 6 of the paper): for an
  index set ``G``, ``d^G`` sums only over ``i ∈ G`` — the restrictions need
  not be probability distributions, which is exactly how the sieved tester
  uses them,
* ℓ2 and Kolmogorov–Smirnov, used by baselines and diagnostics.

All functions accept either :class:`DiscreteDistribution` objects or raw
numpy arrays (so sub-distributions can be passed directly).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.distributions.discrete import DiscreteDistribution

ArrayLike = Union[DiscreteDistribution, np.ndarray]


def _as_array(dist: ArrayLike) -> np.ndarray:
    if isinstance(dist, DiscreteDistribution):
        return dist.pmf
    arr = np.asarray(dist, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("expected a 1-d probability vector")
    return arr


def _pair(d1: ArrayLike, d2: ArrayLike) -> tuple[np.ndarray, np.ndarray]:
    a, b = _as_array(d1), _as_array(d2)
    if a.shape != b.shape:
        raise ValueError(f"domain mismatch: {a.shape} vs {b.shape}")
    return a, b


def _masked(arr: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
    if mask is None:
        return arr
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != arr.shape:
        raise ValueError("mask shape does not match the domain")
    return arr[mask]


def l1_distance(d1: ArrayLike, d2: ArrayLike, mask: np.ndarray | None = None) -> float:
    """``‖D₁ − D₂‖₁``, optionally restricted to a boolean subdomain mask."""
    a, b = _pair(d1, d2)
    return float(np.abs(_masked(a, mask) - _masked(b, mask)).sum())


def tv_distance(d1: ArrayLike, d2: ArrayLike, mask: np.ndarray | None = None) -> float:
    """Total variation distance, ``½ ‖D₁ − D₂‖₁`` (restricted when masked).

    The restricted variant is the paper's ``d^I_TV`` — half the ℓ1 norm over
    the subdomain, *not* renormalised.
    """
    return 0.5 * l1_distance(d1, d2, mask)


def l2_distance(d1: ArrayLike, d2: ArrayLike, mask: np.ndarray | None = None) -> float:
    """Euclidean distance ``‖D₁ − D₂‖₂``."""
    a, b = _pair(d1, d2)
    diff = _masked(a, mask) - _masked(b, mask)
    return float(np.sqrt(diff @ diff))


def chi2_distance(d1: ArrayLike, d2: ArrayLike, mask: np.ndarray | None = None) -> float:
    """Asymmetric χ² divergence ``dχ²(D₁ ‖ D₂) = Σ (D₁(i) − D₂(i))² / D₂(i)``.

    Terms where both arguments put zero mass contribute zero; a point where
    ``D₂`` is zero but ``D₁`` is not makes the divergence infinite.  With a
    ``mask`` this is the paper's restricted ``d^I_χ²``.
    """
    a, b = _pair(d1, d2)
    a, b = _masked(a, mask), _masked(b, mask)
    zero_ref = b <= 0
    if np.any(zero_ref & (a > 0)):
        return float("inf")
    safe = ~zero_ref
    diff = a[safe] - b[safe]
    return float(np.sum(diff * diff / b[safe]))


def ks_distance(d1: ArrayLike, d2: ArrayLike) -> float:
    """Kolmogorov–Smirnov distance: sup over prefixes of the cdf gap."""
    a, b = _pair(d1, d2)
    return float(np.max(np.abs(np.cumsum(a) - np.cumsum(b))))


def hellinger_distance(d1: ArrayLike, d2: ArrayLike) -> float:
    """Hellinger distance ``(½ Σ (√D₁ − √D₂)²)^½`` (diagnostics only)."""
    a, b = _pair(d1, d2)
    diff = np.sqrt(a) - np.sqrt(b)
    return float(np.sqrt(0.5 * (diff @ diff)))


def tv_chi2_inequality_gap(d1: ArrayLike, d2: ArrayLike) -> float:
    """Slack in the standard bound ``dTV² ≤ ¼ · dχ²`` (Cauchy–Schwarz).

    Returns ``¼·dχ²(D₁‖D₂) − dTV(D₁,D₂)²``; non-negative for any pair with
    finite χ².  Used by property tests to pin the metric inequality that the
    paper's Step-10/Step-13 interplay silently relies on.
    """
    chi2 = chi2_distance(d1, d2)
    if np.isinf(chi2):
        return float("inf")
    return 0.25 * chi2 - tv_distance(d1, d2) ** 2


def ak_distance(d1: ArrayLike, d2: ArrayLike, ell: int) -> float:
    """The ``A_ℓ`` distance: TV computed at interval granularity,
    ``max over partitions of [n] into ≤ ℓ intervals of ½ Σ_I |D₁(I) − D₂(I)|``.

    The metric behind identity testing of structured distributions
    ([DKN15]) and the [CDGR16] baseline.  Computed exactly: with prefix
    differences ``d_i = F₁(i) − F₂(i)``, an interval contributes
    ``|d_hi − d_lo|``, so choosing breakpoints to maximise
    ``Σ_j |d_{b_j} − d_{b_{j−1}}|`` is the "maximum total variation of an
    (ℓ+1)-point subsequence" problem, solved optimally by persistence
    simplification (see ``_max_subsequence_variation``).
    """
    if ell < 1:
        raise ValueError(f"ell must be at least 1, got {ell}")
    a, b = _pair(d1, d2)
    d = np.concatenate(([0.0], np.cumsum(a - b)))
    extrema = _alternating_extrema(d)
    if len(extrema) < 2:
        return 0.0
    # The exact DP is O(ℓ·E²); cap E by first dropping the lowest-
    # persistence lobes (each drop keeps a feasible subsequence, so the
    # result stays a lower bound and is near-exact in practice).
    if len(extrema) > _AK_EXACT_CAP:
        extrema = _simplify_extrema(extrema, _AK_EXACT_CAP)
    return 0.5 * _max_subsequence_variation(extrema, ell)


#: Above this many alternating extrema, pre-simplify before the exact DP.
_AK_EXACT_CAP = 1024


def _alternating_extrema(d: np.ndarray) -> np.ndarray:
    """Compress a sequence to its endpoints plus strict turning points."""
    diffs = np.diff(d)
    nonzero = np.flatnonzero(diffs)
    if len(nonzero) == 0:
        return d[:1]
    signs = np.sign(diffs[nonzero])
    turning = np.flatnonzero(signs[:-1] != signs[1:])
    idx = np.concatenate(([0], nonzero[turning] + 1, [len(d) - 1]))
    return d[np.unique(idx)]


def _simplify_extrema(extrema: np.ndarray, target: int) -> np.ndarray:
    """Greedy lobe removal down to ``target`` extrema.

    Repeatedly deletes the smallest *swing* (merging its two endpoints out
    of the sequence).  The survivors are a genuine subsequence of the input
    with the smallest-variation detail removed first, so downstream maxima
    computed on them lower-bound the true value.
    """
    import heapq

    values = list(map(float, extrema))
    count = len(values)
    if count <= target:
        return extrema
    prev = list(range(-1, count - 1))
    nxt = list(range(1, count + 1))
    alive = [True] * count

    def swing_after(j: int) -> float:
        return abs(values[nxt[j]] - values[j]) if nxt[j] < count else float("inf")

    # Seed swings in one vectorized pass; only the data-dependent merge
    # loop below stays scalar (each pop rewires the linked list).
    initial = np.abs(np.diff(np.asarray(extrema, dtype=np.float64)))
    heap = [(float(s), j) for j, s in enumerate(initial)]
    heapq.heapify(heap)
    remaining = count
    while remaining > target and heap:
        s, j = heapq.heappop(heap)
        if not alive[j] or nxt[j] >= count or not alive[nxt[j]] or s != swing_after(j):
            continue
        right = nxt[j]
        if prev[j] < 0 and nxt[right] >= count:
            break  # only the two endpoints left
        if prev[j] < 0:
            # Keep the fixed first point; drop its partner.
            alive[right] = False
            nxt[j] = nxt[right]
            if nxt[right] < count:
                prev[nxt[right]] = j
            remaining -= 1
            touched = j
        elif nxt[right] >= count:
            # Keep the fixed last point; drop j.
            alive[j] = False
            nxt[prev[j]] = right
            prev[right] = prev[j]
            remaining -= 1
            touched = prev[right]
        else:
            # Interior lobe: drop both of its endpoints.
            alive[j] = False
            alive[right] = False
            nxt[prev[j]] = nxt[right]
            prev[nxt[right]] = prev[j]
            remaining -= 2
            touched = prev[nxt[right]]
        if touched >= 0 and alive[touched] and nxt[touched] < count:
            heapq.heappush(heap, (swing_after(touched), touched))
    return np.asarray(values, dtype=np.float64)[np.asarray(alive, dtype=bool)]


def _max_subsequence_variation(extrema: np.ndarray, segments: int) -> float:
    """Max ``Σ|Δ|`` over subsequences of ``extrema`` (first and last points
    fixed) with at most ``segments`` steps — exact dynamic program.

    ``f_t[j] = max over i < j of f_{t−1}[i] + |e_j − e_i|`` with
    ``f_1[j] = |e_j − e_0|``; answer ``max_{t ≤ segments} f_t[last]``.
    Vectorised over ``i``; O(segments·E²) with early exit once an extra
    segment stops helping.
    """
    values = np.asarray(extrema, dtype=np.float64)
    count = len(values)
    if count - 1 <= segments:
        return float(np.abs(np.diff(values)).sum())
    gaps = np.abs(values[:, None] - values[None, :])  # (i, j)
    lower = np.tril(np.ones((count, count), dtype=bool))  # i >= j: invalid
    gaps = np.where(lower, -np.inf, gaps)
    f = gaps[0].copy()  # exactly one segment
    best = f[-1]
    stale = 0
    for _ in range(1, min(segments, count - 1)):
        f = np.max(f[:, None] + gaps, axis=0)
        # f_t[last] can oscillate with the parity of t (an extra point may
        # only help in pairs), so require two consecutive non-improvements
        # before stopping early.
        if f[-1] > best + 1e-15:
            best = f[-1]
            stale = 0
        else:
            stale += 1
            if stale >= 2:
                break
    return float(best)


def empirical_tv(counts1: np.ndarray, counts2: np.ndarray) -> float:
    """Plug-in TV estimate between two empirical count vectors."""
    c1 = np.asarray(counts1, dtype=np.float64)
    c2 = np.asarray(counts2, dtype=np.float64)
    if c1.shape != c2.shape:
        raise ValueError("count vectors cover different domains")
    if c1.sum() <= 0 or c2.sum() <= 0:
        raise ValueError("count vectors must be non-empty")
    return tv_distance(c1 / c1.sum(), c2 / c2.sum())
