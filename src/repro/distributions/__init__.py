"""Distribution substrate: pmfs, histograms, distances, projections, families."""

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.distances import (
    chi2_distance,
    hellinger_distance,
    ks_distance,
    l1_distance,
    l2_distance,
    tv_distance,
)
from repro.distributions.histogram import (
    Histogram,
    breakpoint_intervals,
    breakpoints,
    is_k_histogram,
    num_pieces,
)
from repro.distributions.projection import (
    Projection,
    coarse_flattening_projection,
    exists_close_histogram,
    flattening_distance,
    flattening_profile,
    histogram_distance_bounds,
    project_flattening,
    unconstrained_l1_distance,
)
from repro.distributions.continuous import GriddedSource
from repro.distributions.kmodal import (
    birge_flattening,
    birge_partition,
    is_k_modal,
    kmodal_histogram_pieces,
    num_direction_changes,
    random_k_modal,
    robust_direction_changes,
)
from repro.distributions.replay import InsufficientSamples, ReplaySource
from repro.distributions.sampling import SampleSource, as_source, counts_from_samples
from repro.distributions.serialize import (
    histogram_from_dict,
    histogram_from_json,
    histogram_to_dict,
    histogram_to_json,
)

__all__ = [
    "InsufficientSamples",
    "ReplaySource",
    "DiscreteDistribution",
    "GriddedSource",
    "Histogram",
    "Projection",
    "SampleSource",
    "as_source",
    "birge_flattening",
    "birge_partition",
    "is_k_modal",
    "kmodal_histogram_pieces",
    "num_direction_changes",
    "random_k_modal",
    "robust_direction_changes",
    "breakpoint_intervals",
    "breakpoints",
    "chi2_distance",
    "coarse_flattening_projection",
    "counts_from_samples",
    "exists_close_histogram",
    "flattening_distance",
    "flattening_profile",
    "hellinger_distance",
    "histogram_distance_bounds",
    "histogram_from_dict",
    "histogram_from_json",
    "histogram_to_dict",
    "histogram_to_json",
    "is_k_histogram",
    "ks_distance",
    "l1_distance",
    "l2_distance",
    "num_pieces",
    "project_flattening",
    "tv_distance",
    "unconstrained_l1_distance",
]
