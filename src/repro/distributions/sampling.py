"""Sample access discipline.

Testing algorithms must only see i.i.d. samples, never the pmf.  To keep
that honest (and to account sample budgets exactly, which the whole
evaluation revolves around), every tester in this library draws through a
:class:`SampleSource` — a wrapper around a distribution that exposes *only*
sampling operations and counts every sample drawn.

Accounting is **integer-exact**: every charge is coerced through
:func:`charge_units` (``ceil`` for fractional Poissonized expectations), so
``samples_drawn``/``lifetime_drawn`` are exact integers that per-stage
ledgers can reconcile without tolerance (see
:mod:`repro.observability.ledger`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.util.rng import RandomState, child_rng, ensure_rng


def counts_from_samples(samples: np.ndarray, n: int) -> np.ndarray:
    """Occurrence counts ``N_i`` over the domain ``{0, …, n-1}``.

    Counting dispatches on the current kernel (``sampling.counts_from_samples``
    op) — integer-exact either way, so the knob cannot affect results.
    """
    from repro.kernels import dispatch

    samples = np.asarray(samples, dtype=np.int64)
    if len(samples) and (samples.min() < 0 or samples.max() >= n):
        raise ValueError("samples outside the domain")
    return dispatch("sampling.counts_from_samples")(samples, n)


def charge_units(m: float) -> int:
    """The integer budget charge for a requested draw size.

    Exact draws pass through unchanged; fractional Poissonized expectations
    round *up* — the conservative direction for a budget (never under-bill
    against the cap), and the only choice that keeps per-stage ledger sums
    integer-exact.
    """
    if m < 0:
        raise ValueError(f"sample size must be non-negative, got {m}")
    return int(math.ceil(m))


class SampleBudgetExceeded(RuntimeError):
    """A draw would push a capped source past its ``max_samples`` limit.

    Raised *before* any samples are served, so a capped source never
    over-delivers: a runaway configuration fails fast instead of simulating
    forever.  See :func:`repro.core.budget.capped_source` for deriving a cap
    from the closed-form budget of Algorithm 1.
    """

    def __init__(self, requested: int, drawn: int, max_samples: int) -> None:
        super().__init__(
            f"sample budget exhausted: draw of {requested:,d} would bring the "
            f"total to {drawn + requested:,d}, over the cap of "
            f"{max_samples:,d} — raise max_samples or shrink the "
            "configuration (see repro.core.budget.algorithm1_budget)"
        )
        self.requested = requested
        self.drawn = drawn
        self.max_samples = max_samples


class SampleSource:
    """Sample-only access to an unknown distribution, with budget accounting.

    ``poissonized`` draws report the *expected* number of samples to the
    budget (the standard accounting under the Poissonization trick: the
    realised ``Poisson(m)`` count concentrates around ``m``); a fractional
    expectation is charged as ``ceil(m)`` so the books stay integral.

    ``max_samples`` optionally caps the *per-trial* total: a draw that would
    exceed it raises :class:`SampleBudgetExceeded` before serving anything.
    ``reset_budget`` restarts the per-trial counter (and the headroom under
    the cap) while :attr:`lifetime_drawn` keeps the cumulative audit total.
    """

    def __init__(
        self,
        dist: DiscreteDistribution,
        rng: RandomState = None,
        *,
        max_samples: float | None = None,
    ) -> None:
        self._dist = dist
        self._rng = ensure_rng(rng)
        self._init_accounting(max_samples)

    # -- budget accounting (shared with every SampleSource subclass) -------

    def _init_accounting(self, max_samples: float | None) -> None:
        if max_samples is not None and max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        # A fractional cap is ceiled once here; everything downstream is int.
        self._max_samples = None if max_samples is None else charge_units(max_samples)
        self._drawn = 0
        self._lifetime_drawn = 0
        self._draw_calls = 0

    def _check_budget(self, m: float) -> None:
        units = charge_units(m)
        if self._max_samples is not None and self._drawn + units > self._max_samples:
            raise SampleBudgetExceeded(units, self._drawn, self._max_samples)

    def _record(self, m: float) -> None:
        units = charge_units(m)
        self._drawn += units
        self._lifetime_drawn += units
        self._draw_calls += 1

    def _charge(self, m: float) -> None:
        self._check_budget(m)
        self._record(m)

    @property
    def n(self) -> int:
        """Domain size (public knowledge in the testing model)."""
        return self._dist.n

    @property
    def samples_drawn(self) -> int:
        """Samples charged since the last ``reset_budget`` (ceiled expected
        counts for Poisson draws).  Always an exact integer."""
        return self._drawn

    @property
    def lifetime_drawn(self) -> int:
        """Cumulative samples charged over the source's whole life.

        Unlike :attr:`samples_drawn` this is never reset: it audits total
        draw volume across trials even when per-trial counters are zeroed.
        """
        return self._lifetime_drawn

    @property
    def draw_calls(self) -> int:
        """Number of charged draw operations over the source's life."""
        return self._draw_calls

    @property
    def max_samples(self) -> int | None:
        """The per-trial hard cap (an integer), or ``None`` when unenforced."""
        return self._max_samples

    def reset_budget(self) -> None:
        """Zero the per-trial sample counter (e.g. between independent
        trials).  :attr:`lifetime_drawn` is unaffected."""
        self._drawn = 0

    def draw(self, m: int) -> np.ndarray:
        """``m`` i.i.d. samples as domain indices."""
        self._charge(m)
        return self._dist.sample(m, self._rng)

    def draw_counts(self, m: int) -> np.ndarray:
        """Occurrence counts of ``m`` i.i.d. samples."""
        self._charge(m)
        return self._dist.sample_counts(m, self._rng)

    def draw_counts_poissonized(self, m: float) -> np.ndarray:
        """Independent per-element counts ``N_i ~ Poisson(m · D(i))``."""
        self._charge(m)
        return self._dist.sample_counts_poissonized(m, self._rng)

    def spawn(self) -> "SampleSource":
        """An independent source over the same distribution (fresh stream),
        sharing no budget with the parent — used for trial isolation.  The
        per-trial cap (if any) carries over with fresh headroom."""
        return SampleSource(
            self._dist, child_rng(self._rng), max_samples=self._max_samples
        )

    def permuted(self, sigma: np.ndarray) -> "SampleSource":
        """A source for the relabeled distribution ``D ∘ σ⁻¹``.

        Models the Section-4.2 reduction step: "re-building the identity of
        the samples according to σ" — samples from the permuted source are
        exactly ``σ(s)`` for ``s`` drawn from the original.
        """
        return SampleSource(
            self._dist.permute(sigma),
            child_rng(self._rng),
            max_samples=self._max_samples,
        )


class _JointBudgetStream(SampleSource):
    """One stream of a :class:`PairedSampleSource`.

    Draws are served by the underlying per-stream source (so fault-injecting
    or deadline wrappers compose unchanged: pass a wrapped source into the
    pair), but every charge is checked against — and recorded into — the
    pair's *joint* budget in addition to this stream's own counters.  The
    stream's own counters are the accounting surface of record for the pair:
    they are charged before delegation, so ``pair.samples_drawn`` stays
    integer-exact even when the base source faults mid-draw.
    """

    def __init__(self, pair: "PairedSampleSource", base: SampleSource) -> None:
        self._pair = pair
        self._base = base
        self._init_accounting(None)

    @property
    def n(self) -> int:
        return self._base.n

    @property
    def max_samples(self) -> int | None:
        """The pair's *joint* cap: one budget governs both streams."""
        return self._pair.max_samples

    def _charge(self, m: float) -> None:
        units = charge_units(m)
        self._pair._check_joint(units)
        self._record(units)
        self._pair._record_joint(units)

    def draw(self, m: int) -> np.ndarray:
        self._charge(m)
        return self._base.draw(m)

    def draw_counts(self, m: int) -> np.ndarray:
        self._charge(m)
        return self._base.draw_counts(m)

    def draw_counts_poissonized(self, m: float) -> np.ndarray:
        self._charge(m)
        return self._base.draw_counts_poissonized(m)

    def spawn(self) -> "SampleSource":
        raise TypeError(
            "a paired stream cannot be spawned on its own — spawn the "
            "PairedSampleSource so the joint budget is preserved"
        )

    def permuted(self, sigma: np.ndarray) -> "SampleSource":
        raise TypeError("paired streams do not support permutation")


class PairedSampleSource:
    """Two per-stream sample sources sharing one joint budget.

    The two-sample closeness tester (:mod:`repro.core.closeness`) draws from
    two unknown distributions ``p`` and ``q``.  The quantity the
    sample-complexity experiments measure — and the quantity a
    :class:`~repro.observability.ledger.SampleLedger` reconciles — is the
    *sum* over both streams, so the pair enforces one joint ``max_samples``
    cap while each stream keeps its own ``lifetime_drawn`` audit trail.

    Either side may be a raw :class:`DiscreteDistribution` (sampled through a
    child stream of ``rng``) or an existing :class:`SampleSource` (e.g. a
    fault-injecting or deadline wrapper), whose own per-source cap, if any,
    stays enforced underneath the joint one.
    """

    def __init__(
        self,
        p: DiscreteDistribution | SampleSource,
        q: DiscreteDistribution | SampleSource,
        rng: RandomState = None,
        *,
        max_samples: float | None = None,
    ) -> None:
        if isinstance(p, SampleSource) and isinstance(q, SampleSource):
            if rng is not None:
                raise ValueError("cannot reseed existing SampleSources")
        else:
            rng = ensure_rng(rng)
        base_p = p if isinstance(p, SampleSource) else SampleSource(p, child_rng(rng))
        base_q = q if isinstance(q, SampleSource) else SampleSource(q, child_rng(rng))
        if base_p.n != base_q.n:
            raise ValueError(
                f"paired sources must share a domain, got n={base_p.n} and n={base_q.n}"
            )
        if max_samples is not None and max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self._max_samples = None if max_samples is None else charge_units(max_samples)
        self._drawn = 0
        self._lifetime_drawn = 0
        self.p = _JointBudgetStream(self, base_p)
        self.q = _JointBudgetStream(self, base_q)

    # -- joint accounting ---------------------------------------------------

    def _check_joint(self, units: int) -> None:
        if self._max_samples is not None and self._drawn + units > self._max_samples:
            raise SampleBudgetExceeded(units, self._drawn, self._max_samples)

    def _record_joint(self, units: int) -> None:
        self._drawn += units
        self._lifetime_drawn += units

    @property
    def n(self) -> int:
        """Shared domain size of both streams."""
        return self.p.n

    @property
    def samples_drawn(self) -> int:
        """Joint per-trial total over both streams (always an exact
        integer; always equals ``p.samples_drawn + q.samples_drawn``)."""
        return self._drawn

    @property
    def lifetime_drawn(self) -> int:
        """Cumulative joint total; never reset."""
        return self._lifetime_drawn

    @property
    def draw_calls(self) -> int:
        """Charged draw operations across both streams."""
        return self.p.draw_calls + self.q.draw_calls

    @property
    def max_samples(self) -> int | None:
        """The joint per-trial hard cap, or ``None`` when unenforced."""
        return self._max_samples

    def reset_budget(self) -> None:
        """Zero the joint and both per-stream per-trial counters."""
        self._drawn = 0
        self.p.reset_budget()
        self.q.reset_budget()

    def spawn(self) -> "PairedSampleSource":
        """An independent pair over the same distributions (fresh streams,
        fresh joint headroom) — used for trial isolation."""
        return PairedSampleSource(
            self.p._base.spawn(), self.q._base.spawn(), max_samples=self._max_samples
        )


def as_source(
    dist: DiscreteDistribution | SampleSource, rng: RandomState = None
) -> SampleSource:
    """Normalise tester input: wrap a raw distribution into a source.

    When ``dist`` is already a source, ``rng`` must be None (the source owns
    its stream).
    """
    if isinstance(dist, SampleSource):
        if rng is not None:
            raise ValueError("cannot reseed an existing SampleSource")
        return dist
    return SampleSource(dist, rng)
