"""Sample access discipline.

Testing algorithms must only see i.i.d. samples, never the pmf.  To keep
that honest (and to account sample budgets exactly, which the whole
evaluation revolves around), every tester in this library draws through a
:class:`SampleSource` — a wrapper around a distribution that exposes *only*
sampling operations and counts every sample drawn.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.util.rng import RandomState, child_rng, ensure_rng


def counts_from_samples(samples: np.ndarray, n: int) -> np.ndarray:
    """Occurrence counts ``N_i`` over the domain ``{0, …, n-1}``."""
    samples = np.asarray(samples, dtype=np.int64)
    if len(samples) and (samples.min() < 0 or samples.max() >= n):
        raise ValueError("samples outside the domain")
    return np.bincount(samples, minlength=n).astype(np.int64)


class SampleSource:
    """Sample-only access to an unknown distribution, with budget accounting.

    ``poissonized`` draws report the *expected* number of samples to the
    budget (the standard accounting under the Poissonization trick: the
    realised ``Poisson(m)`` count concentrates around ``m``).
    """

    def __init__(self, dist: DiscreteDistribution, rng: RandomState = None) -> None:
        self._dist = dist
        self._rng = ensure_rng(rng)
        self._drawn = 0.0

    @property
    def n(self) -> int:
        """Domain size (public knowledge in the testing model)."""
        return self._dist.n

    @property
    def samples_drawn(self) -> float:
        """Total samples charged so far (expected counts for Poisson draws)."""
        return self._drawn

    def reset_budget(self) -> None:
        """Zero the sample counter (e.g. between independent trials)."""
        self._drawn = 0.0

    def draw(self, m: int) -> np.ndarray:
        """``m`` i.i.d. samples as domain indices."""
        if m < 0:
            raise ValueError(f"sample size must be non-negative, got {m}")
        self._drawn += m
        return self._dist.sample(m, self._rng)

    def draw_counts(self, m: int) -> np.ndarray:
        """Occurrence counts of ``m`` i.i.d. samples."""
        if m < 0:
            raise ValueError(f"sample size must be non-negative, got {m}")
        self._drawn += m
        return self._dist.sample_counts(m, self._rng)

    def draw_counts_poissonized(self, m: float) -> np.ndarray:
        """Independent per-element counts ``N_i ~ Poisson(m · D(i))``."""
        if m < 0:
            raise ValueError(f"expected sample size must be non-negative, got {m}")
        self._drawn += m
        return self._dist.sample_counts_poissonized(m, self._rng)

    def spawn(self) -> "SampleSource":
        """An independent source over the same distribution (fresh stream),
        sharing no budget with the parent — used for trial isolation."""
        return SampleSource(self._dist, child_rng(self._rng))

    def permuted(self, sigma: np.ndarray) -> "SampleSource":
        """A source for the relabeled distribution ``D ∘ σ⁻¹``.

        Models the Section-4.2 reduction step: "re-building the identity of
        the samples according to σ" — samples from the permuted source are
        exactly ``σ(s)`` for ``s`` drawn from the original.
        """
        return SampleSource(self._dist.permute(sigma), child_rng(self._rng))


def as_source(
    dist: DiscreteDistribution | SampleSource, rng: RandomState = None
) -> SampleSource:
    """Normalise tester input: wrap a raw distribution into a source.

    When ``dist`` is already a source, ``rng`` must be None (the source owns
    its stream).
    """
    if isinstance(dist, SampleSource):
        if rng is not None:
            raise ValueError("cannot reseed an existing SampleSource")
        return dist
    return SampleSource(dist, rng)
