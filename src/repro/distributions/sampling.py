"""Sample access discipline.

Testing algorithms must only see i.i.d. samples, never the pmf.  To keep
that honest (and to account sample budgets exactly, which the whole
evaluation revolves around), every tester in this library draws through a
:class:`SampleSource` — a wrapper around a distribution that exposes *only*
sampling operations and counts every sample drawn.

Accounting is **integer-exact**: every charge is coerced through
:func:`charge_units` (``ceil`` for fractional Poissonized expectations), so
``samples_drawn``/``lifetime_drawn`` are exact integers that per-stage
ledgers can reconcile without tolerance (see
:mod:`repro.observability.ledger`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.util.rng import RandomState, child_rng, ensure_rng


def counts_from_samples(samples: np.ndarray, n: int) -> np.ndarray:
    """Occurrence counts ``N_i`` over the domain ``{0, …, n-1}``.

    Counting dispatches on the current kernel (``sampling.counts_from_samples``
    op) — integer-exact either way, so the knob cannot affect results.
    """
    from repro.kernels import dispatch

    samples = np.asarray(samples, dtype=np.int64)
    if len(samples) and (samples.min() < 0 or samples.max() >= n):
        raise ValueError("samples outside the domain")
    return dispatch("sampling.counts_from_samples")(samples, n)


def charge_units(m: float) -> int:
    """The integer budget charge for a requested draw size.

    Exact draws pass through unchanged; fractional Poissonized expectations
    round *up* — the conservative direction for a budget (never under-bill
    against the cap), and the only choice that keeps per-stage ledger sums
    integer-exact.
    """
    if m < 0:
        raise ValueError(f"sample size must be non-negative, got {m}")
    return int(math.ceil(m))


class SampleBudgetExceeded(RuntimeError):
    """A draw would push a capped source past its ``max_samples`` limit.

    Raised *before* any samples are served, so a capped source never
    over-delivers: a runaway configuration fails fast instead of simulating
    forever.  See :func:`repro.core.budget.capped_source` for deriving a cap
    from the closed-form budget of Algorithm 1.
    """

    def __init__(self, requested: int, drawn: int, max_samples: int) -> None:
        super().__init__(
            f"sample budget exhausted: draw of {requested:,d} would bring the "
            f"total to {drawn + requested:,d}, over the cap of "
            f"{max_samples:,d} — raise max_samples or shrink the "
            "configuration (see repro.core.budget.algorithm1_budget)"
        )
        self.requested = requested
        self.drawn = drawn
        self.max_samples = max_samples


class SampleSource:
    """Sample-only access to an unknown distribution, with budget accounting.

    ``poissonized`` draws report the *expected* number of samples to the
    budget (the standard accounting under the Poissonization trick: the
    realised ``Poisson(m)`` count concentrates around ``m``); a fractional
    expectation is charged as ``ceil(m)`` so the books stay integral.

    ``max_samples`` optionally caps the *per-trial* total: a draw that would
    exceed it raises :class:`SampleBudgetExceeded` before serving anything.
    ``reset_budget`` restarts the per-trial counter (and the headroom under
    the cap) while :attr:`lifetime_drawn` keeps the cumulative audit total.
    """

    def __init__(
        self,
        dist: DiscreteDistribution,
        rng: RandomState = None,
        *,
        max_samples: float | None = None,
    ) -> None:
        self._dist = dist
        self._rng = ensure_rng(rng)
        self._init_accounting(max_samples)

    # -- budget accounting (shared with every SampleSource subclass) -------

    def _init_accounting(self, max_samples: float | None) -> None:
        if max_samples is not None and max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        # A fractional cap is ceiled once here; everything downstream is int.
        self._max_samples = None if max_samples is None else charge_units(max_samples)
        self._drawn = 0
        self._lifetime_drawn = 0
        self._draw_calls = 0

    def _check_budget(self, m: float) -> None:
        units = charge_units(m)
        if self._max_samples is not None and self._drawn + units > self._max_samples:
            raise SampleBudgetExceeded(units, self._drawn, self._max_samples)

    def _record(self, m: float) -> None:
        units = charge_units(m)
        self._drawn += units
        self._lifetime_drawn += units
        self._draw_calls += 1

    def _charge(self, m: float) -> None:
        self._check_budget(m)
        self._record(m)

    @property
    def n(self) -> int:
        """Domain size (public knowledge in the testing model)."""
        return self._dist.n

    @property
    def samples_drawn(self) -> int:
        """Samples charged since the last ``reset_budget`` (ceiled expected
        counts for Poisson draws).  Always an exact integer."""
        return self._drawn

    @property
    def lifetime_drawn(self) -> int:
        """Cumulative samples charged over the source's whole life.

        Unlike :attr:`samples_drawn` this is never reset: it audits total
        draw volume across trials even when per-trial counters are zeroed.
        """
        return self._lifetime_drawn

    @property
    def draw_calls(self) -> int:
        """Number of charged draw operations over the source's life."""
        return self._draw_calls

    @property
    def max_samples(self) -> int | None:
        """The per-trial hard cap (an integer), or ``None`` when unenforced."""
        return self._max_samples

    def reset_budget(self) -> None:
        """Zero the per-trial sample counter (e.g. between independent
        trials).  :attr:`lifetime_drawn` is unaffected."""
        self._drawn = 0

    def draw(self, m: int) -> np.ndarray:
        """``m`` i.i.d. samples as domain indices."""
        self._charge(m)
        return self._dist.sample(m, self._rng)

    def draw_counts(self, m: int) -> np.ndarray:
        """Occurrence counts of ``m`` i.i.d. samples."""
        self._charge(m)
        return self._dist.sample_counts(m, self._rng)

    def draw_counts_poissonized(self, m: float) -> np.ndarray:
        """Independent per-element counts ``N_i ~ Poisson(m · D(i))``."""
        self._charge(m)
        return self._dist.sample_counts_poissonized(m, self._rng)

    def spawn(self) -> "SampleSource":
        """An independent source over the same distribution (fresh stream),
        sharing no budget with the parent — used for trial isolation.  The
        per-trial cap (if any) carries over with fresh headroom."""
        return SampleSource(
            self._dist, child_rng(self._rng), max_samples=self._max_samples
        )

    def permuted(self, sigma: np.ndarray) -> "SampleSource":
        """A source for the relabeled distribution ``D ∘ σ⁻¹``.

        Models the Section-4.2 reduction step: "re-building the identity of
        the samples according to σ" — samples from the permuted source are
        exactly ``σ(s)`` for ``s`` drawn from the original.
        """
        return SampleSource(
            self._dist.permute(sigma),
            child_rng(self._rng),
            max_samples=self._max_samples,
        )


def as_source(
    dist: DiscreteDistribution | SampleSource, rng: RandomState = None
) -> SampleSource:
    """Normalise tester input: wrap a raw distribution into a source.

    When ``dist`` is already a source, ``rng`` must be None (the source owns
    its stream).
    """
    if isinstance(dist, SampleSource):
        if rng is not None:
            raise ValueError("cannot reseed an existing SampleSource")
        return dist
    return SampleSource(dist, rng)
