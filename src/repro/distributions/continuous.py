"""Continuous domains by gridding (the Section 2 remark).

"Although the setting we consider is that of discrete domains, our
techniques can be easily extended to continuous ones by suitably gridding
the range of values."  This module is that extension: wrap any sampler of
real values in ``[low, high)`` into a discrete
:class:`~repro.distributions.sampling.SampleSource` over ``n`` grid cells,
so every tester in the library applies unchanged.

The paper's caveat applies verbatim and is surfaced in the docstrings: the
verdict is about the *gridded* distribution — a distribution may be far
from every k-histogram at one grid resolution and exactly piecewise-constant
at another; choosing ``n`` is choosing the metric.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.distributions.sampling import SampleSource
from repro.util.rng import RandomState, ensure_rng

#: A continuous sampler: given a Generator and a count, return that many
#: i.i.d. real draws.
ContinuousSampler = Callable[[np.random.Generator, int], np.ndarray]


class GriddedSource(SampleSource):
    """Sample-only access to a continuous distribution through a grid.

    Draws real values from ``sampler``, maps them into ``n`` equal-width
    cells of ``[low, high)`` (values outside the range are clipped into the
    border cells, so heavy tails remain visible as border mass), and
    exposes the result as an ordinary discrete sample source.

    Example — test whether a mixture of Gaussians is 4-histogram-like at a
    1024-cell resolution::

        sampler = lambda g, m: np.where(g.random(m) < 0.5,
                                        g.normal(0.3, 0.05, m),
                                        g.normal(0.7, 0.05, m))
        source = GriddedSource(sampler, n=1024)
        verdict = test_histogram(source, k=4, eps=0.25)
    """

    def __init__(
        self,
        sampler: ContinuousSampler,
        n: int,
        *,
        low: float = 0.0,
        high: float = 1.0,
        rng: RandomState = None,
        max_samples: float | None = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"grid size must be positive, got {n}")
        if not high > low:
            raise ValueError(f"need high > low, got [{low}, {high})")
        self._sampler = sampler
        self._low = low
        self._high = high
        self._grid_n = n
        self._grid_rng = ensure_rng(rng)
        self._init_accounting(max_samples)

    @property
    def n(self) -> int:
        return self._grid_n

    def _grid(self, reals: np.ndarray) -> np.ndarray:
        scaled = (np.asarray(reals, dtype=np.float64) - self._low) / (self._high - self._low)
        cells = np.floor(scaled * self._grid_n).astype(np.int64)
        return np.clip(cells, 0, self._grid_n - 1)

    def draw(self, m: int) -> np.ndarray:
        self._charge(m)
        if m == 0:
            return np.empty(0, dtype=np.int64)
        return self._grid(self._sampler(self._grid_rng, m))

    def draw_counts(self, m: int) -> np.ndarray:
        return np.bincount(self.draw(m), minlength=self._grid_n).astype(np.int64)

    def draw_counts_poissonized(self, m: float) -> np.ndarray:
        # Poissonize the total, then grid the individual draws; accounting
        # charges the expectation, as everywhere else.
        self._check_budget(m)
        realised = int(self._grid_rng.poisson(m))
        counts = np.bincount(
            self._grid(self._sampler(self._grid_rng, realised)) if realised else
            np.empty(0, dtype=np.int64),
            minlength=self._grid_n,
        ).astype(np.int64)
        self._record(m)
        return counts

    def spawn(self) -> "GriddedSource":
        from repro.util.rng import child_rng

        return GriddedSource(
            self._sampler,
            self._grid_n,
            low=self._low,
            high=self._high,
            rng=child_rng(self._grid_rng),
            max_samples=self._max_samples,
        )

    def permuted(self, sigma: np.ndarray) -> SampleSource:
        raise NotImplementedError(
            "a gridded continuous source has no explicit pmf to permute; "
            "grid first (draw counts), then build a DiscreteDistribution"
        )
