"""Distance to the class ``H_k`` by dynamic programming.

Step 10 of Algorithm 1 must decide whether some ``D* ∈ H_k`` is close to the
learned ``D̂`` in TV restricted to the kept subdomain ``G`` — "can be done in
time poly(k, 1/ε) by dynamic programming, as in [CDGR16, Lemma 4.11]".  This
module provides that oracle, plus exact ground-truth distances used across
the experiment suite.

Two DP objectives are implemented, sandwiching the true distance
``dTV(p, H_k)``:

* :func:`flattening_distance` — the minimum over partitions into at most
  ``k`` intervals of ``dTV(p, flatten(p))``.  The flattening is always a
  bona-fide distribution, so this is an **upper bound** on the true
  distance, and classically at most twice it (an interval's mean is a
  2-approximation of its ℓ1-optimal constant).  This is the projection the
  algorithm (and the learn-then-project baseline) actually uses.
* :func:`unconstrained_l1_distance` — the minimum over arbitrary
  non-negative ≤ k-piece functions (mass constraint dropped; per-interval
  optimum is the median), i.e. a **lower bound** on the true distance.
  Soundness experiments use it as a farness certificate:
  ``unconstrained_l1_distance(p, k) ≥ ε`` implies ``dTV(p, H_k) ≥ ε``.

Both support a "don't-care" subdomain mask (error counted only on ``G``) and
a coarse, piece-granularity variant operating on an explicit base partition
— the form Step 10 needs, where breakpoints are restricted to borders of the
``APPROXPART`` intervals (a restriction that is lossless in the completeness
case, where the unknown histogram is constant on every kept interval, and
safe in the soundness case, where searching a subclass can only make the
check stricter).

Two interchangeable execution engines back the public API:

* ``engine="dense"`` — the original O(n²)-memory cost-matrix build plus
  ``_interval_dp``; simple, the golden reference, but cubic-ish time in
  ``n`` for the flattening build.
* ``engine="fast"`` — :mod:`repro.distributions.projection_engine`, a lazy
  interval-cost oracle with a two-pass verified divide-and-conquer DP;
  O(n·k) memory, near-linear oracle work per layer on structured inputs,
  and equivalent to the dense result to ≤ 1e-12 in cost.
* ``engine="auto"`` (default) — dense for small domains where the matrix
  build is instant, fast above :data:`_AUTO_FAST_THRESHOLD`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.distances import ArrayLike, _as_array
from repro.distributions.histogram import Histogram
from repro.distributions.projection_engine import project_intervals
from repro.util.intervals import Partition

#: Dense point-granularity DPs are O(n² k) time and O(n²) memory; refuse
#: domains where that is plainly infeasible rather than hanging.  The cap
#: applies to explicit ``engine="dense"`` requests (kept high enough that
#: benchmark comparisons against the fast engine stay possible).
_MAX_DENSE_N = 8192

#: Backwards-compatible alias for the historical dense cap; ``engine="auto"``
#: switches to the fast engine above :data:`_AUTO_FAST_THRESHOLD` long before
#: either cap is reached.
_MAX_EXACT_N = _MAX_DENSE_N

#: The fast engine is O(n·k) memory but still quadratic in adversarial
#: cases; refuse absurd domains outright.
_MAX_FAST_N = 1 << 20

#: ``engine="auto"`` uses the dense build below this domain size (matrix
#: build is microseconds there and has no oracle/bookkeeping overhead).
_AUTO_FAST_THRESHOLD = 512

_ENGINES = ("auto", "fast", "dense")


def _resolve_engine(engine: str, n: int) -> str:
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if engine == "auto":
        return "dense" if n <= _AUTO_FAST_THRESHOLD else "fast"
    return engine


@dataclass(frozen=True)
class Projection:
    """Result of projecting a pmf onto (a subclass of) ``H_k``."""

    distance: float
    histogram: Histogram
    boundaries: np.ndarray


# ---------------------------------------------------------------------------
# Cost matrices (point granularity)
# ---------------------------------------------------------------------------


def _check_point_inputs(
    p: np.ndarray, mask: np.ndarray | None, limit: int = _MAX_DENSE_N
) -> np.ndarray:
    n = len(p)
    if n > limit:
        raise ValueError(
            f"point-granularity DP limited to n <= {limit} (got {n}); "
            "use the coarse variant on a base partition instead"
        )
    if mask is None:
        return np.ones(n, dtype=bool)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (n,):
        raise ValueError("mask shape does not match the domain")
    return mask


def _point_limit(resolved_engine: str) -> int:
    return _MAX_DENSE_N if resolved_engine == "dense" else _MAX_FAST_N


def _point_projection(
    p: np.ndarray,
    mask_arr: np.ndarray,
    pieces: int,
    objective: str,
    resolved_engine: str,
) -> tuple[float, np.ndarray]:
    """Dispatch one point-granularity interval DP to the chosen engine;
    returns the raw ℓ1 total and the boundary array (dense conventions)."""
    if resolved_engine == "dense":
        if objective == "flattening":
            cost = _flattening_cost_matrix(p, mask_arr)
        else:
            cost = _median_cost_matrix(p, mask_arr)
        return _interval_dp(cost, pieces)
    total, bounds = project_intervals(
        p, np.ones(len(p)), mask_arr, pieces, objective=objective
    )
    return total, bounds


def _flattening_cost_matrix(p: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``C[i, j]`` = masked ℓ1 error of flattening ``p`` on ``[i, j)``.

    The flattening constant is the *full* interval mean (masked-out points
    included), so that the assembled piecewise function keeps total mass 1.
    """
    n = len(p)
    cost = np.full((n + 1, n + 1), np.inf)
    prefix = np.concatenate(([0.0], np.cumsum(p)))
    for i in range(n):
        tail = p[i:]
        tail_mask = mask[i:]
        lengths = np.arange(1, n - i + 1, dtype=np.float64)
        means = (prefix[i + 1 :] - prefix[i]) / lengths
        # err[t, j'] = |p[i+t] - mean over [i, i+j'+1)| for t <= j'; the
        # triangular column sums are the diagonal of the running cumsum,
        # which avoids materialising an O((n-i)^2) boolean mask per row.
        err = np.abs(tail[:, None] - means[None, :])
        err[~tail_mask, :] = 0.0
        np.cumsum(err, axis=0, out=err)
        cost[i, i + 1 :] = err.diagonal()
    cost[np.arange(n + 1), np.arange(n + 1)] = 0.0
    return cost


#: Block size (elements) for the per-row prefix matrices of
#: :func:`_median_cost_matrix` — bounds the transient footprint to a few
#: hundred MB at the dense cap, matching the sibling flattening build.
_MEDIAN_BLOCK_ELEMS = 1 << 24


def _prefix_median_costs(mvals: np.ndarray) -> np.ndarray:
    """``out[s-1]`` = ``min_c Σ_{r ≤ s} |mvals_r − c|`` for every prefix.

    Vectorised prefix-median costs: sort once, then for each prefix length
    ``s`` locate the ``⌈s/2⌉``-th smallest (the lower median) by counting
    which sorted elements were inserted by time ``s``.  With ``low_sum``
    the sum of the ``⌈s/2⌉`` smallest, the cost is
    ``total_s − 2·low_sum + med·(2·⌈s/2⌉ − s)`` — the below/above split
    around the median.  O(m²) elementwise work per call (the same shape as
    the flattening build's per-row triangle), blocked to bound memory.
    """
    m = len(mvals)
    total = np.cumsum(mvals)
    order = np.argsort(mvals, kind="stable")
    u = mvals[order]
    t = order + 1  # insertion time (1-based) of each sorted element
    out = np.empty(m, dtype=np.float64)
    block = max(1, _MEDIAN_BLOCK_ELEMS // max(m, 1))
    for start in range(0, m, block):
        s = np.arange(start + 1, min(start + block, m) + 1)
        incl = t[None, :] <= s[:, None]  # (S, m): in prefix s?
        k = (s + 1) // 2  # lower-median rank
        cnt = np.cumsum(incl, axis=1)
        medpos = np.argmax(cnt >= k[:, None], axis=1)
        med = u[medpos]
        low_sum = np.take_along_axis(
            np.cumsum(np.where(incl, u, 0.0), axis=1), medpos[:, None], axis=1
        ).ravel()
        out[start : start + len(s)] = total[s - 1] - 2.0 * low_sum + med * (2 * k - s)
    return out


def _median_cost_matrix(p: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``C[i, j]`` = min over constants ``c`` of masked ``Σ |p_t − c|``.

    The optimum is the median of the masked values; each row's running
    costs come from one vectorised prefix-median pass over the masked tail
    (see :func:`_prefix_median_costs`), then spread to the unmasked
    columns, where the cost stays flat.
    """
    n = len(p)
    cost = np.full((n + 1, n + 1), np.inf)
    np.fill_diagonal(cost, 0.0)
    for i in range(n):
        tmask = mask[i:]
        mvals = p[i:][tmask]
        by_prefix = np.concatenate(([0.0], _prefix_median_costs(mvals)))
        cost[i, i + 1 :] = by_prefix[np.cumsum(tmask)]
    return cost


# ---------------------------------------------------------------------------
# The interval DP
# ---------------------------------------------------------------------------


def _interval_dp(cost: np.ndarray, pieces: int) -> tuple[float, np.ndarray]:
    """Minimise total cost of splitting ``[0, n)`` into at most ``pieces``
    intervals; returns (optimal cost, boundary array of an optimiser).

    ``cost[i, j]`` must hold the cost of making ``[i, j)`` one piece (``inf``
    below the diagonal, ``0`` on it).  Because the diagonal is zero, "empty"
    pieces are free, so the DP with exactly ``pieces`` splits covers every
    count up to ``pieces``.
    """
    n = cost.shape[0] - 1
    pieces = min(pieces, n)
    if pieces < 1:
        raise ValueError(f"need at least one piece, got {pieces}")
    columns = np.arange(n + 1)
    f = np.full(n + 1, np.inf)
    f[0] = 0.0
    parent = np.zeros((pieces, n + 1), dtype=np.int64)
    for r in range(pieces):
        stacked = f[:, None] + cost
        parent[r] = np.argmin(stacked, axis=0)
        f = stacked[parent[r], columns]
    bounds = [n]
    j = n
    for r in range(pieces - 1, -1, -1):
        j = int(parent[r][j])
        bounds.append(j)
    if bounds[-1] != 0:
        raise AssertionError("DP backtrack did not reach the origin")
    boundary = np.unique(np.asarray(bounds, dtype=np.int64))
    return float(f[n]), boundary


# ---------------------------------------------------------------------------
# Point-granularity public API
# ---------------------------------------------------------------------------


def project_flattening(
    dist: ArrayLike, k: int, mask: np.ndarray | None = None, *, engine: str = "auto"
) -> Projection:
    """Best-flattening projection of a pmf onto ``H_k`` (masked TV error)."""
    p = _as_array(dist)
    eng = _resolve_engine(engine, len(p))
    mask_arr = _check_point_inputs(p, mask, _point_limit(eng))
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    l1, bounds = _point_projection(p, mask_arr, k, "flattening", eng)
    partition = Partition(bounds)
    hist = Histogram.from_masses(partition, partition.aggregate(p))
    return Projection(distance=0.5 * l1, histogram=hist, boundaries=bounds)


def flattening_distance(
    dist: ArrayLike, k: int, mask: np.ndarray | None = None, *, engine: str = "auto"
) -> float:
    """``min_Π dTV(p, flatten_Π(p))`` over ≤ k-interval partitions.

    Upper bound on ``dTV(p, H_k)`` and at most twice it.
    """
    return project_flattening(dist, k, mask, engine=engine).distance


def distance_to_histogram(
    dist: ArrayLike, k: int, mask: np.ndarray | None = None, *, engine: str = "auto"
) -> float:
    """Distance from ``dist`` to its best flattening in ``H_k`` — the
    canonical surrogate for ``dTV(p, H_k)`` used throughout the suite.

    This is a genuine distance to a member of ``H_k`` (the flattened
    histogram), hence always an upper bound on ``dTV(p, H_k)``, and at most
    twice it.  Use :func:`histogram_distance_bounds` when a certified lower
    bound is also needed.
    """
    return project_flattening(dist, k, mask, engine=engine).distance


def flattening_profile(
    dist: ArrayLike, k_max: int, mask: np.ndarray | None = None, *, engine: str = "auto"
) -> np.ndarray:
    """``flattening_distance(dist, k)`` for every ``k`` in ``1..k_max`` at the
    cost of a single cost build and one DP pass.

    The DP's ``r``-th iteration is exactly the best-with-≤-r-pieces value,
    so the whole profile falls out of intermediate states.  Use this for
    "minimal sufficient k" searches — calling :func:`flattening_distance`
    per k redoes the cost work every time.
    """
    p = _as_array(dist)
    eng = _resolve_engine(engine, len(p))
    mask_arr = _check_point_inputs(p, mask, _point_limit(eng))
    if k_max < 1:
        raise ValueError(f"k_max must be at least 1, got {k_max}")
    n = len(p)
    if eng == "dense":
        cost = _flattening_cost_matrix(p, mask_arr)
        f = np.full(n + 1, np.inf)
        f[0] = 0.0
        profile = np.empty(min(k_max, n), dtype=np.float64)
        for r in range(len(profile)):
            f = np.min(f[:, None] + cost, axis=0)
            profile[r] = 0.5 * f[n]
    else:
        _, _, raw = project_intervals(
            p, np.ones(n), mask_arr, min(k_max, n), return_profile=True
        )
        profile = 0.5 * raw
    if k_max > n:
        profile = np.concatenate((profile, np.full(k_max - n, profile[-1])))
    return profile


def unconstrained_l1_distance(
    dist: ArrayLike, k: int, mask: np.ndarray | None = None, *, engine: str = "auto"
) -> float:
    """``min_h ½‖p − h‖₁`` over ≤ k-piece functions with no mass constraint.

    A certified **lower bound** on ``dTV(p, H_k)``: every distribution in
    ``H_k`` is in particular a ≤ k-piece non-negative function.
    """
    p = _as_array(dist)
    eng = _resolve_engine(engine, len(p))
    mask_arr = _check_point_inputs(p, mask, _point_limit(eng))
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    l1, _ = _point_projection(p, mask_arr, k, "median", eng)
    # The per-interval cost is computed by subtraction and can come out a
    # few ulp below zero on exact histograms; a certified lower bound must
    # never be negative.
    return max(0.0, 0.5 * l1)


def histogram_distance_bounds(
    dist: ArrayLike, k: int, mask: np.ndarray | None = None, *, engine: str = "auto"
) -> tuple[float, float]:
    """``(lower, upper)`` bounds sandwiching ``dTV(p, H_k)``."""
    lower = unconstrained_l1_distance(dist, k, mask, engine=engine)
    upper = flattening_distance(dist, k, mask, engine=engine)
    return lower, upper


# ---------------------------------------------------------------------------
# Coarse (piece-granularity) variant — the Step-10 oracle
# ---------------------------------------------------------------------------


#: Above this many base intervals the projection first coarsens the base
#: (see ``_coarsen_for_projection``); the cost build is O(K³)-ish otherwise.
_MAX_PROJECTION_BASE = 512


def _coarsen_for_projection(
    p: np.ndarray, base: Partition, k: int, kept: np.ndarray, limit: int
) -> tuple[np.ndarray, Partition, np.ndarray, float]:
    """Shrink a large base partition to ≤ ``limit`` intervals.

    Keeps every border where the kept-mask flips (masked and unmasked
    pieces must never merge), the largest value-jump borders (scored by
    ``|Δv|·min(weight)`` — the borders an optimal k-grouping actually
    needs), and an equal-mass quantile skeleton; then flattens ``p`` inside
    the merged cells.  Returns the flattened pmf, the coarse partition, its
    kept mask, and the flattening's own TV error on the kept domain (which
    callers must add to any distance they report, keeping the result an
    upper bound).
    """
    big_k = len(base)
    bounds = base.boundaries
    masses = base.aggregate(p)
    lengths = base.lengths().astype(np.float64)
    values = masses / lengths

    keep_border = np.zeros(big_k + 1, dtype=bool)
    keep_border[0] = keep_border[big_k] = True
    # (a) mask flips.
    keep_border[1:big_k] |= kept[:-1] != kept[1:]
    # (b) top value jumps, scored by the flattening cost a missing border
    # would incur.
    scores = np.abs(np.diff(values)) * np.minimum(masses[:-1], masses[1:])
    jump_budget = max(0, limit - int(keep_border.sum()) - limit // 2)
    if jump_budget > 0:
        top = np.argsort(scores)[::-1][:jump_budget]
        keep_border[top + 1] = True
    # (c) equal-mass quantile skeleton with whatever budget remains.
    remaining = limit - int(keep_border.sum())
    if remaining > 0:
        cum = np.cumsum(masses)
        targets = (np.arange(1, remaining + 1) / (remaining + 1)) * cum[-1]
        idx = np.searchsorted(cum, targets) + 1
        keep_border[np.clip(idx, 1, big_k - 1)] = True

    coarse = Partition(bounds[keep_border])
    labels = np.searchsorted(coarse.boundaries[1:-1], bounds[:-1], side="right")
    coarse_kept = np.zeros(len(coarse), dtype=bool)
    coarse_kept[labels[kept]] = True
    flattened = coarse.flatten(p)
    kept_points = np.repeat(kept, base.lengths())
    coarsen_err = 0.5 * float(np.abs((p - flattened))[kept_points].sum())
    return flattened, coarse, coarse_kept, coarsen_err


def coarse_flattening_projection(
    dist: ArrayLike,
    base: Partition,
    k: int,
    kept: np.ndarray | None = None,
    *,
    max_base: int = _MAX_PROJECTION_BASE,
    engine: str = "auto",
) -> Projection:
    """Best flattening of ``dist`` whose breakpoints lie on borders of
    ``base``, with TV error counted only on the kept intervals.

    ``kept`` is a boolean vector over the ``K`` base intervals (default: all
    kept).  Runs in ``O(K² k)`` after an ``O(K²)``-per-row cost build,
    independent of the domain size ``n`` — this is the oracle Step 10 of
    Algorithm 1 calls.  Bases larger than ``max_base`` are first coarsened
    (mask-flip + top-jump + quantile borders); the coarsening's own error is
    *added* to the reported distance, so the result remains a valid upper
    bound (accepting on it is always sound).
    """
    p = _as_array(dist)
    if len(p) != base.n:
        raise ValueError("distribution and base partition cover different domains")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    big_k = len(base)
    if kept is None:
        kept = np.ones(big_k, dtype=bool)
    kept = np.asarray(kept, dtype=bool)
    if kept.shape != (big_k,):
        raise ValueError("kept mask must have one entry per base interval")

    extra_error = 0.0
    if big_k > max_base:
        p, base, kept, extra_error = _coarsen_for_projection(p, base, k, kept, max_base)
        big_k = len(base)

    masses = base.aggregate(p)
    lengths = base.lengths().astype(np.float64)
    mass_prefix = np.concatenate(([0.0], np.cumsum(masses)))
    len_prefix = np.concatenate(([0.0], np.cumsum(lengths)))

    first_values = p[base.boundaries[:-1]]
    piecewise_constant = bool(np.allclose(base.flatten(p), p, atol=1e-15))

    eng = _resolve_engine(engine, big_k)
    if piecewise_constant and eng == "fast":
        # Fast-engine path: pieces become weighted points (weight = length,
        # value = piece height).  ``mean_numerator`` carries the piece
        # masses so the interval mean is mass/length exactly as in the
        # dense build.
        l1, coarse_bounds = project_intervals(
            first_values,
            lengths,
            kept,
            k,
            mean_numerator=masses,
        )
        domain_bounds = base.boundaries[coarse_bounds]
        partition = Partition(domain_bounds)
        hist = Histogram.from_masses(partition, partition.aggregate(p))
        return Projection(
            distance=0.5 * l1 + extra_error, histogram=hist, boundaries=domain_bounds
        )

    if piecewise_constant:
        # Vectorised path (the Algorithm 1 case: p = D̂ is constant on each
        # base piece).  cost[a, b] = Σ_{q∈[a,b), kept} len_q·|val_q − μ_ab|.
        weights = np.where(kept, lengths, 0.0)
        cost = np.full((big_k + 1, big_k + 1), np.inf)
        np.fill_diagonal(cost, 0.0)
        for a in range(big_k):
            span_len = len_prefix[a + 1 :] - len_prefix[a]
            mus = (mass_prefix[a + 1 :] - mass_prefix[a]) / span_len  # (big_k - a,)
            dev = np.abs(first_values[a:, None] - mus[None, :])  # (q', b')
            dev *= weights[a:, None]
            # Triangular (q' <= b') column sums via running cumsum diagonal —
            # no O((big_k - a)^2) boolean mask temporary.
            np.cumsum(dev, axis=0, out=dev)
            cost[a, a + 1 :] = dev.diagonal()
    else:
        # Generic path: within-piece values vary, so evaluate each piece's
        # deviation from the merged mean through its sorted values.  One
        # pass per piece: every (a, b) pair with a ≤ q < b needs
        # piece_error(q, μ_ab), so batch the whole (a, b) block of means
        # through a single searchsorted against piece q's sorted values and
        # accumulate the block into the cost matrix.  Accumulation runs q
        # ascending — the same order as summing q ∈ [a, b) per pair.
        cost = np.zeros((big_k + 1, big_k + 1))
        cost[np.tril_indices(big_k + 1, k=-1)] = np.inf
        for q in range(big_k):
            if not kept[q]:
                continue
            seg = np.sort(p[base[q].slice()])
            pre = np.concatenate(([0.0], np.cumsum(seg)))
            # μ_ab for a ∈ [0, q], b ∈ (q, big_k]: shape (q + 1, big_k - q).
            mus = (mass_prefix[None, q + 1 :] - mass_prefix[: q + 1, None]) / (
                len_prefix[None, q + 1 :] - len_prefix[: q + 1, None]
            )
            pos = np.searchsorted(seg, mus)
            below = mus * pos - pre[pos]
            above = (pre[-1] - pre[pos]) - mus * (len(seg) - pos)
            cost[: q + 1, q + 1 :] += below + above

    l1, coarse_bounds = _interval_dp(cost, k)
    domain_bounds = base.boundaries[coarse_bounds]
    partition = Partition(domain_bounds)
    hist = Histogram.from_masses(partition, partition.aggregate(p))
    return Projection(
        distance=0.5 * l1 + extra_error, histogram=hist, boundaries=domain_bounds
    )


def exists_close_histogram(
    dist: ArrayLike,
    base: Partition,
    k: int,
    kept: np.ndarray,
    tolerance: float,
    *,
    engine: str = "auto",
) -> bool:
    """Step-10 check: is some ``D* ∈ H_k`` within ``tolerance`` of ``dist``
    in TV restricted to the kept subdomain?

    Decides via :func:`coarse_flattening_projection`; see the module
    docstring for why the coarse search is sound on both sides.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    projection = coarse_flattening_projection(dist, base, k, kept, engine=engine)
    return projection.distance <= tolerance


def project_pmf(dist: ArrayLike, k: int, *, engine: str = "auto") -> DiscreteDistribution:
    """Convenience: the best-flattening k-histogram of a pmf, as a
    sampleable distribution (used by the learn-then-project baseline)."""
    return project_flattening(dist, k, engine=engine).histogram.to_distribution()
