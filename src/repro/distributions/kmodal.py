"""k-modal distributions and the Birgé decomposition.

The paper remarks (Section 1.2) that the Theorem 1.2 lower bound "implies
the same lower bound on the sample complexity of testing k-modal
distributions" — distributions whose pmf goes up and down at most ``k``
times.  This module supplies the k-modal substrate and the classical bridge
to histograms:

* exact modality counting and membership (ground truth for experiments);
* random k-modal generators (completeness workloads);
* the **Birgé decomposition**: a monotone distribution is ``ε``-close in TV
  to its flattening on an *oblivious* geometric partition with
  ``O(log(n)/ε)`` pieces ([Bir87]); a k-modal distribution, split at its
  modes, is therefore ``ε``-close to an ``O(k·log(n)/ε)``-histogram.

That bridge turns the histogram tester into a k-modality tester (see
:func:`repro.baselines.kmodal_tester.test_k_modal`): testing modality
reduces to testing membership in ``H_{k'}`` with a relaxed distance — the
same reduction template [CDGR16] uses for shape classes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import Histogram
from repro.util.intervals import Partition
from repro.util.rng import RandomState, ensure_rng

#: Direction changes smaller than this are treated as flat (pure-float
#: plateau tolerance; exact synthetic pmfs are exactly flat).
_DIRECTION_ATOL = 1e-12


def num_direction_changes(pmf: np.ndarray) -> int:
    """Number of strict up/down direction changes of the pmf.

    A monotone (non-increasing or non-decreasing) pmf has 0 changes; a
    unimodal pmf has at most 1; the paper's k-modal class allows ``k``.
    Plateaus do not count as changes.
    """
    pmf = np.asarray(pmf, dtype=np.float64)
    diffs = np.diff(pmf)
    signs = np.sign(np.where(np.abs(diffs) <= _DIRECTION_ATOL, 0.0, diffs))
    signs = signs[signs != 0]
    if len(signs) == 0:
        return 0
    return int(np.count_nonzero(signs[:-1] != signs[1:]))


def is_k_modal(dist: DiscreteDistribution | np.ndarray, k: int) -> bool:
    """Exact membership in the k-modal class (explicit-pmf oracle).

    Following the paper's phrasing, the class allows the pmf "to go up and
    down or down and up at most k times": at most ``k`` direction changes.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    pmf = dist.pmf if isinstance(dist, DiscreteDistribution) else np.asarray(dist)
    return num_direction_changes(pmf) <= k


def robust_direction_changes(values: np.ndarray, tolerance: np.ndarray | float) -> int:
    """Direction changes with per-element hysteresis.

    Counts a flip only when the sequence moves against the current
    direction by more than the combined tolerance of the running extreme
    and the new point — so wiggles at noise scale are ignored.  For a true
    sequence with ``c`` changes observed under element-wise noise below
    half its tolerance, the robust count never exceeds ``c``; genuinely
    alternating sequences far above the tolerance count in full.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) == 0:
        raise ValueError("values must be a non-empty 1-d array")
    tol = np.broadcast_to(np.asarray(tolerance, dtype=np.float64), values.shape)
    if np.any(tol < 0):
        raise ValueError("tolerances must be non-negative")
    changes = 0
    direction = 0
    extreme, ext_tol = values[0], tol[0]
    for v, t in zip(values[1:], tol[1:]):
        band = t + ext_tol
        if direction == 0:
            if v > extreme + band:
                direction, extreme, ext_tol = 1, v, t
            elif v < extreme - band:
                direction, extreme, ext_tol = -1, v, t
        elif direction == 1:
            if v >= extreme:
                extreme, ext_tol = v, t
            elif v < extreme - band:
                changes += 1
                direction, extreme, ext_tol = -1, v, t
        else:
            if v <= extreme:
                extreme, ext_tol = v, t
            elif v > extreme + band:
                changes += 1
                direction, extreme, ext_tol = 1, v, t
    return changes


def modes(pmf: np.ndarray) -> np.ndarray:
    """Positions where the direction flips (boundaries of monotone runs)."""
    pmf = np.asarray(pmf, dtype=np.float64)
    diffs = np.diff(pmf)
    sign = 0.0
    flips = []
    for i, d in enumerate(diffs):
        s = 0.0 if abs(d) <= _DIRECTION_ATOL else math.copysign(1.0, d)
        if s == 0.0:
            continue
        if sign != 0.0 and s != sign:
            flips.append(i)
        sign = s
    return np.asarray(flips, dtype=np.int64)


def random_k_modal(
    n: int, k: int, rng: RandomState = None, *, smoothness: float = 3.0
) -> DiscreteDistribution:
    """A random distribution with exactly ``<= k`` direction changes.

    Built by stitching ``k + 1`` monotone runs with alternating direction
    (sorted Gamma increments per run); ``smoothness`` shapes how heavy the
    runs' swings are.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    gen = ensure_rng(rng)
    runs = min(k + 1, n)
    bounds = np.unique(
        np.concatenate(([0, n], gen.choice(np.arange(1, n), size=runs - 1, replace=False)))
        if runs > 1
        else np.array([0, n])
    )
    pmf = np.empty(n)
    ascending = bool(gen.integers(0, 2))
    level = gen.gamma(smoothness)
    for a, b in zip(bounds[:-1], bounds[1:]):
        width = b - a
        steps = np.sort(gen.gamma(smoothness, size=width))
        segment = steps if ascending else steps[::-1]
        # Anchor the run at the current level so runs join continuously
        # enough to not create extra flips at the seams.
        segment = segment - segment[0] + level if ascending else segment - segment[-1] + level
        segment = np.maximum(segment, 1e-12)
        pmf[a:b] = segment
        level = segment[-1]
        ascending = not ascending
    return DiscreteDistribution.from_weights(pmf)


def birge_partition(n: int, eps: float) -> Partition:
    """Birgé's oblivious geometric partition of ``{0, …, n-1}``.

    Interval widths grow geometrically as ``⌊(1+ε)^j⌋``; the partition has
    ``O(log(n)/ε)`` intervals and the flattening of *any* monotone
    distribution on it is ``O(ε)``-close in TV ([Bir87]).
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    bounds = [0]
    width = 1.0
    while bounds[-1] < n:
        step = max(1, int(math.floor(width)))
        bounds.append(min(n, bounds[-1] + step))
        width *= 1.0 + eps
    return Partition(np.asarray(bounds, dtype=np.int64))


def kmodal_histogram_pieces(n: int, k: int, eps: float) -> int:
    """Pieces needed so every k-modal distribution is ε-close to ``H_pieces``:
    ``(k + 1)`` monotone runs × the Birgé count per run, plus seams."""
    per_run = len(birge_partition(n, eps))
    return (k + 1) * per_run + k


def birge_flattening(dist: DiscreteDistribution, eps: float) -> Histogram:
    """Flatten a distribution on its mode-split Birgé partition.

    For a k-modal input the result is an ``O(k log(n)/ε)``-histogram at TV
    distance ``O(ε)`` — the decomposition behind the reduction-based
    k-modality tester (and a succinct sketch in its own right).
    """
    pmf = dist.pmf
    n = dist.n
    flips = modes(pmf)
    run_bounds = np.concatenate(([0], flips + 1, [n]))
    pieces = [0]
    for a, b in zip(run_bounds[:-1], run_bounds[1:]):
        width = b - a
        local = birge_partition(width, eps) if width > 0 else None
        if local is not None:
            # Orient the geometric growth from the run's lighter end: Birgé's
            # guarantee is for non-increasing runs from the left; reverse
            # for ascending runs.
            ascending = width >= 2 and pmf[b - 1] >= pmf[a]
            offsets = local.boundaries[1:]
            if ascending:
                cuts = b - np.asarray(offsets[::-1])[:-1]
                pieces.extend(int(c) for c in cuts if pieces[-1] < c < b)
            else:
                pieces.extend(int(a + off) for off in offsets[:-1])
        pieces.append(int(b))
    partition = Partition(np.unique(np.asarray(pieces, dtype=np.int64)))
    return Histogram.flattening(dist, partition)
