"""The PODS'16 backend — Algorithm 1 of the source paper.

The algorithm itself lives in :mod:`repro.core.tester` (stages) and its
closed-form budget in :mod:`repro.core.budget`; this module is the thin
adapter that gives the registry a uniform surface over both backends.
"""

from __future__ import annotations

from repro.core.budget import algorithm1_budget
from repro.core.config import TesterConfig


def pods16_budget(
    n: int, k: int, eps: float, config: TesterConfig | None = None
) -> float:
    """Worst-case sample usage of Algorithm 1 (see ``algorithm1_budget``)."""
    return algorithm1_budget(n, k, eps, config)
