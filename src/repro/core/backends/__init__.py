"""Tester backend registry.

The repo ships two implementations of the histogram-testing decision
procedure, selected by the ``backend=`` knob that every tester entry point
(:func:`~repro.core.tester.test_histogram`, the stepped
:class:`~repro.core.tester.TesterPipeline`, ``select_k``, sweeps, the serve
layer, the CLI) threads through:

* ``pods16`` — Algorithm 1 of the source paper (partition → learn → sieve →
  check → final χ² at ``ε' = 13ε/30``).  The fidelity reference: its budget
  and behaviour match the paper's analysis stage for stage.
* ``cdkl22`` — the near-optimal tester in the style of the follow-up work
  the corrigendum points at (Canonne–Diakonikolas–Kane–Liu, arXiv:2207.06596),
  built on the *same* partition/learner/projection/χ² substrate: a
  testing-by-learning reduction with no sieve, a trimmed final statistic,
  and an adaptive two-stage sample schedule.  See
  :mod:`repro.core.backends.cdkl22`.

Unlike the projection ``engine`` knob (execution-only, fingerprint-exempt),
the backend changes sample budgets and — on marginal inputs — verdicts, so
it **is** part of experiment checkpoint fingerprints and serve batch keys.
"""

from __future__ import annotations

from repro.core.config import TesterConfig

BACKENDS = ("pods16", "cdkl22")
DEFAULT_BACKEND = "pods16"


def validate_backend(backend: str) -> str:
    """Return ``backend`` if known, raise ``ValueError`` otherwise."""
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def backend_budget(
    backend: str, n: int, k: int, eps: float, config: TesterConfig | None = None
) -> float:
    """Worst-case sample budget of ``backend`` on an ``(n, k, ε)`` instance.

    Single dispatch point so admission control, ledger caps, and the budget
    experiments all price a backend identically.
    """
    validate_backend(backend)
    if backend == "cdkl22":
        from repro.core.backends.cdkl22 import cdkl22_budget

        return cdkl22_budget(n, k, eps, config)
    from repro.core.backends.pods16 import pods16_budget

    return pods16_budget(n, k, eps, config)
