"""The cdkl22 backend: near-optimal histogram testing by learning.

The corrigendum's sieving gap is what the follow-up line of work (CDKL22,
"Near-Optimal Bounds for Testing Histogram Distributions",
arXiv:2207.06596) removes wholesale: instead of sieving out the breakpoint
intervals with ``Θ(log k)`` batches of ``Θ(√n/α²)`` samples each, reduce
testing to learning.  This implementation reuses the existing substrate —
``APPROXPART``, the Lemma 3.5 χ² learner, the ``H_k`` projection DP, the
[ADK15] χ² kernel — and differs from Algorithm 1 in four places:

1. **No sieve.**  Every partition interval is kept.
2. **Project, don't check.**  The check stage computes the actual
   projection ``D* = argmin_{H ∈ H_k} dTV(D̂, H)`` (breakpoints on
   partition borders) rather than a yes/no oracle, rejecting sample-free
   when ``D̂`` is farther than the generous gate tolerance.  Because the
   final test then runs against ``D* ∈ H_k`` — not against ``D̂``, which
   may be outside ``H_k`` — soundness keeps (almost) the full ``ε``:
   ``dTV(D, H_k) ≥ ε`` implies ``dTV(D, D*) ≥ ε``.
3. **Trimmed statistic.**  The per-interval χ² statistics drop the top
   ``trim_count = ceil(trim_factor·(k−1))`` values among intervals whose
   reference mass is ≤ ``trim_mass_factor/b`` — in the completeness case
   exactly the ≤ ``k−1`` breakpoint intervals whose learner error the
   pods16 sieve exists to remove, here removed at zero sample cost.  Mass
   eligibility keeps the trim sound: at most ``trim_count·factor/b`` of TV
   evidence can be discarded, and ``ε'`` is reduced by exactly that share
   (:meth:`~repro.core.config.TesterConfig.cdkl22_final_eps`).
4. **Adaptive schedule.**  The χ² statistic has std ≈ ``√(2·|A_ε|)`` near
   both decision boundaries while the threshold sits at
   ``(chi2_sample_factor/8)·√n`` — a few σ away.  Clear instances are
   decided on the stage-0 batch; a statistic inside the
   ``±guard_sigmas·σ`` band triggers one escalation with *fresh* draws at
   ``escalation_factor × m``, where the band is relatively three times
   narrower.  Typical cost is one batch; the worst case (priced into the
   budget and the ledger cap) is ``(1 + escalation_factor) × m``.

The budget consequence: pods16 spends ``Θ(log k · √n/α²)`` on the sieve
(with ``α = ε/20`` this dwarfs everything else), while cdkl22's only
``√n`` term is the single final test at a *larger* ``ε'`` — and its
learner, the n-independent term, runs at the coarser accuracy the
reduction needs.  At the E-series anchor (n=4096, k=5, ε=0.3, practical
profile) the worst-case ratio is ≈ 50×; see EXPERIMENTS.md § E25 for
measured numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import TesterConfig
from repro.util.intervals import Partition


@dataclass(frozen=True)
class TrimmedStatistic:
    """The trimmed final statistic and its audit trail."""

    statistic: float  # kept sum (the value thresholded)
    raw_statistic: float  # untrimmed sum of per-interval statistics
    trimmed_indices: np.ndarray  # partition intervals dropped, ascending
    trimmed_sum: float  # total statistic mass dropped


def cdkl22_budget(
    n: int, k: int, eps: float, config: TesterConfig | None = None
) -> float:
    """Exact worst-case sample usage of the cdkl22 backend.

    Partition and learner as in Algorithm 1 (the learner at the coarser
    cdkl22 accuracy, with the same greedy ``4b+2`` interval bound), no
    sieve, and the final test priced at its escalated worst case
    ``repeats · (m + ceil(escalation_factor·m))``.  The tester can use
    less — most runs decide at stage 0 — never more.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    if config is None:
        config = TesterConfig.practical()
    if k >= n:
        return 0.0
    partition = config.partition_samples(k, eps)
    b = config.partition_b(k, eps)
    worst_intervals = int(4 * b + 2)  # greedy APPROXPART bound (see E12)
    learner = config.cdkl22_learner_samples(worst_intervals, eps)
    repeats = config.chi2_repeat_count(k)
    m = config.chi2_samples(n, config.cdkl22_final_eps(k, eps))
    final = repeats * (m + config.cdkl22_escalated_m(m))
    return float(partition + learner + final)


def trimmed_statistic(
    z_per_interval: np.ndarray,
    partition: Partition,
    reference_pmf: np.ndarray,
    config: TesterConfig,
    k: int,
    eps: float,
) -> TrimmedStatistic:
    """Drop the largest trim-eligible per-interval statistics (see module
    docstring, point 3).  Deterministic: ties broken by interval index."""
    z = np.asarray(z_per_interval, dtype=np.float64)
    raw = float(z.sum())
    masses = partition.aggregate(np.asarray(reference_pmf, dtype=np.float64))
    cap = config.cdkl22_trim_mass_cap(k, eps)
    trim_count = config.cdkl22_trim_count(k)
    eligible = np.flatnonzero((masses <= cap) & (z > 0.0))
    if trim_count == 0 or eligible.size == 0:
        return TrimmedStatistic(raw, raw, np.empty(0, dtype=np.int64), 0.0)
    take = min(trim_count, int(eligible.size))
    # Stable sort on the statistic: equal values drop the lower interval
    # index first, so the trim is a pure function of (z, masses).
    order = eligible[np.argsort(z[eligible], kind="stable")]
    dropped = np.sort(order[-take:]).astype(np.int64)
    trimmed_sum = float(z[dropped].sum())
    return TrimmedStatistic(raw - trimmed_sum, raw, dropped, trimmed_sum)


def guard_width(config: TesterConfig, mask: np.ndarray) -> float:
    """Half-width of the escalation band: ``guard_sigmas · √(2·|A_ε|)``.

    ``√(2·|A_ε|)`` is the near-null standard deviation of the summed
    [ADK15] point terms (each active point contributes ≈ unit-2 variance);
    the band is a schedule heuristic, never a correctness threshold — the
    accept decision itself always compares against the plain threshold.
    """
    active = int(np.asarray(mask, dtype=bool).sum())
    return config.cdkl22_guard_sigmas * math.sqrt(2.0 * max(1, active))
