"""Two-sample closeness testing of histogram distributions (DKN17).

Given sample access to *two* unknown distributions ``p`` and ``q`` on
``[n]``, both promised to be k-histograms, decide ``p = q`` versus
``dTV(p, q) ≥ ε``.  Following Diakonikolas–Kane–Nikishkin
(arXiv:1703.01913), the tester reduces the domain from ``n`` points to
``b = O(k log k / ε)`` intervals and runs a paired closeness test there —
the "few bins are enough" phenomenon carried over to two samples:

1. **Partition** — ``APPROXPART`` on the *union* sample (half the budget
   from each stream), so interval guarantees hold for ``(p + q)/2`` and
   therefore, up to a factor 2, for both streams at once.
2. **Learn** — the Lemma 3.5 χ² learner per stream on the shared partition.
3. **Sieve** — the Algorithm 1 sieve per stream against its own learned
   flattening; under the histogram promise each stream's breakpoint
   intervals are discarded.  The jointly-kept set is the intersection.
4. **Check** — sample-free gate: if the two learned flattenings are already
   far apart in TV on the jointly-kept domain, reject without drawing.
5. **Test** — the CDVV14 paired statistic on the *interval* counts
   (flattening makes closeness of ``p̃, q̃`` exactly closeness of the
   interval-mass vectors):

       ``Z = Σ_{j kept} ((X_j − Y_j)² − X_j − Y_j) / (X_j + Y_j)``

   with ``X_j, Y_j ~ Poisson(m·P_j), Poisson(m·Q_j)`` independent.  Under
   ``p = q`` every term has mean exactly zero; when the flattened TV
   distance is ≥ ε', Cauchy–Schwarz gives ``E[Z] ≳ 2·m·ε'²``.  Accept iff
   ``Z ≤ closeness_accept_fraction · m · ε'²``.

The per-stream budget of the final test is ``O(√B/ε'²)`` for ``B`` kept
intervals — *sublinear in n through b*, which is the head-to-head E28
measures against running the one-sample tester twice.

Sampling goes exclusively through a
:class:`~repro.distributions.sampling.PairedSampleSource`: one joint
``max_samples`` cap and one :class:`~repro.observability.ledger.SampleLedger`
reconciled — integer equality over the *sum* of both streams — on every
exit path, including mid-flight :meth:`ClosenessPipeline.abort`.

Degenerate regime: when ``2b + 2 ≥ n/2`` the partition would be almost all
singletons, so the pipeline skips straight to the paired test on the
singleton partition (the plain CDVV14 tester on the raw domain), mirroring
the one-sample plug-in fallback.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.chi2 import Chi2Result, median_paired_interval_statistics
from repro.core.config import TesterConfig
from repro.core.learner import learn_histogram
from repro.core.partition import approx_partition
from repro.core.sieve import SieveResult, sieve_intervals
from repro.core.tester import _finish, _StageLog
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import Histogram
from repro.distributions.sampling import PairedSampleSource, SampleSource
from repro.kernels import use_kernel, validate_kernel
from repro.observability.ledger import SampleLedger
from repro.observability.metrics import get_metrics
from repro.observability.trace import NULL_TRACER, Tracer
from repro.util.intervals import Partition
from repro.util.rng import RandomState

#: Canonical stage order of the closeness pipeline (a strict subset of the
#: one-sample ``STAGE_ORDER``; early-exit verdicts record a prefix).
CLOSENESS_STAGE_ORDER = ("partition", "learn", "sieve", "check", "chi2")


def closeness_budget(
    n: int, k: int, eps: float, config: TesterConfig | None = None
) -> float:
    """Worst-case *joint* sample usage (both streams summed) of
    :func:`test_closeness` under ``config``.

    Mirrors :func:`~repro.core.budget.algorithm1_budget`: one union-sample
    partition, then learner/sieve per stream, then the paired final test at
    ``O(√B/ε'²)`` per stream on the ``B ≤ 4b + 2`` interval domain.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    if config is None:
        config = TesterConfig.practical()
    repeats = config.chi2_repeat_count(k)
    eps_final = config.closeness_final_eps(eps)
    b = config.partition_b(k, eps)
    if 2.0 * b + 2.0 >= n / 2.0:
        # Degenerate regime: paired plug-in on the singleton partition.
        return float(2 * repeats * config.closeness_samples(n, eps_final))
    partition = config.partition_samples(k, eps)
    worst_intervals = int(4 * b + 2)  # greedy APPROXPART bound (see E12)
    learner = 2 * config.learner_samples(worst_intervals, eps)
    sieve_batches = 1 + config.sieve_rounds(k)
    if not config.fresh_sieve_samples:
        sieve_batches = 1
    if not config.sieve_enabled:
        sieve_batches = 0
    sieve = 2 * sieve_batches * repeats * config.chi2_samples(n, config.sieve_alpha(eps))
    final = 2 * repeats * config.closeness_samples(worst_intervals, eps_final)
    return float(partition + learner + sieve + final)


@dataclass(frozen=True)
class ClosenessVerdict:
    """The closeness tester's decision, with a full two-stream audit trail."""

    accept: bool
    stage: str  # "trivial" | "sieve" | "check" | "chi2"
    reason: str
    #: Joint samples over both streams; ledger-reconciled (integer equality)
    #: against ``Σ stage_samples`` on every exit path.
    samples_used: int
    samples_p: int
    samples_q: int
    k: int
    eps: float
    partition: Optional[Partition] = None
    learned_p: Optional[Histogram] = None
    learned_q: Optional[Histogram] = None
    sieve_p: Optional[SieveResult] = None
    sieve_q: Optional[SieveResult] = None
    chi2: Optional[Chi2Result] = None
    #: Integer *joint* samples drawn per executed stage; sums exactly to
    #: ``samples_used``.
    stage_samples: dict = field(default_factory=dict)
    stage_timings: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.accept


@dataclass(frozen=True)
class ClosenessFinalPlan:
    """Parameters of the paired final test (per-stream rate ``m``)."""

    m: float
    repeats: int
    eps_final: float
    #: Boolean mask over the partition's *intervals* — the jointly-kept set.
    mask: np.ndarray


class _UnionDraw:
    """Duck-typed source for ``APPROXPART`` over the union sample.

    ``draw_counts(m)`` serves ``ceil(m/2)`` draws from ``p`` and
    ``floor(m/2)`` from ``q`` and sums the count vectors — samples from the
    mixture ``(p + q)/2`` up to the one-sample rounding, with both halves
    charged to the pair's joint budget.
    """

    def __init__(self, pair: PairedSampleSource) -> None:
        self._pair = pair

    @property
    def n(self) -> int:
        return self._pair.n

    def draw_counts(self, m: int) -> np.ndarray:
        half = m // 2
        return self._pair.p.draw_counts(m - half) + self._pair.q.draw_counts(half)


def as_paired_source(
    p: DiscreteDistribution | SampleSource | PairedSampleSource,
    q: DiscreteDistribution | SampleSource | None,
    rng: RandomState = None,
) -> PairedSampleSource:
    """Normalise tester input: wrap two distributions/sources into a pair.

    When ``p`` is already a :class:`PairedSampleSource`, ``q`` and ``rng``
    must be ``None`` (the pair owns its streams and budget).
    """
    if isinstance(p, PairedSampleSource):
        if q is not None:
            raise ValueError("q must be None when p is already a PairedSampleSource")
        if rng is not None:
            raise ValueError("cannot reseed an existing PairedSampleSource")
        return p
    if q is None:
        raise ValueError("closeness testing needs two distributions")
    if isinstance(p, SampleSource) and isinstance(q, SampleSource):
        return PairedSampleSource(p, q)
    return PairedSampleSource(p, q, rng)


class ClosenessPipeline:
    """Stepped (batch-first) execution of the DKN17 closeness tester.

    Mirrors :class:`~repro.core.tester.TesterPipeline`'s stepping protocol::

        pipeline = ClosenessPipeline(p, q, k, eps, config=..., trace=...)
        verdict = pipeline.prepare()            # trivial short-circuit
        if verdict is None:
            pipeline.run_partition()
            pipeline.run_learn()
            verdict = pipeline.run_sieve()      # may reject
        if verdict is None:
            verdict = pipeline.run_check()      # may reject (sample-free)
        if verdict is None:
            plan = pipeline.begin_final_test()
            counts_p, counts_q = pipeline.draw_final_counts()
            z = median_paired_interval_statistics(
                counts_p, counts_q, pipeline.partition, plan.mask
            )
            verdict = pipeline.finish_final_test(z)

    A caller abandoning the pipeline mid-flight must call :meth:`abort` so
    any open stage's partial draws land in the ledger and the joint
    reconciliation still balances.
    """

    __test__ = False  # "Test"-infixed product class; not a pytest suite

    def __init__(
        self,
        p: DiscreteDistribution | SampleSource | PairedSampleSource,
        q: DiscreteDistribution | SampleSource | None = None,
        k: int = 1,
        eps: float = 0.25,
        *,
        config: TesterConfig | None = None,
        rng: RandomState = None,
        kernel: str = "auto",
        trace: Tracer = NULL_TRACER,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if not 0.0 < eps <= 1.0:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        self.k = k
        self.eps = eps
        self.config = config if config is not None else TesterConfig.practical()
        self.kernel = validate_kernel(kernel)
        self.trace = trace
        self.pair = as_paired_source(p, q, rng)
        self.n = self.pair.n
        self.start = self.pair.samples_drawn
        self._start_p = self.pair.p.samples_drawn
        self._start_q = self.pair.q.samples_drawn
        self.partition: Partition | None = None
        self.learned_p: Histogram | None = None
        self.learned_q: Histogram | None = None
        self.sieve_p: SieveResult | None = None
        self.sieve_q: SieveResult | None = None
        self._b: float | None = None
        self._degenerate = False
        self._ledger: SampleLedger | None = None
        self._log: _StageLog | None = None
        self._final = None
        self._plan: ClosenessFinalPlan | None = None

    # -- admission metadata --------------------------------------------------

    def budget_cap(self) -> int | None:
        """The joint sample cap for this instance (``None`` only when the
        trivial ``n = 1`` regime applies)."""
        if self.n <= 1:
            return 0
        return int(math.ceil(closeness_budget(self.n, self.k, self.eps, self.config)))

    # -- stepped stages ------------------------------------------------------

    def prepare(self) -> ClosenessVerdict | None:
        """Dispatch the degenerate regimes; set up the joint ledger otherwise."""
        n, k, eps = self.n, self.k, self.eps
        if n <= 1:
            # Both distributions are the point mass on the single element.
            ledger = SampleLedger()
            samples_used = _finish(
                self.trace, ledger, self.pair.samples_drawn - self.start
            )
            return ClosenessVerdict(
                accept=True,
                stage="trivial",
                reason="n=1: both distributions are the same point mass",
                samples_used=samples_used,
                samples_p=self.pair.p.samples_drawn - self._start_p,
                samples_q=self.pair.q.samples_drawn - self._start_q,
                k=k,
                eps=eps,
            )
        b = self.config.partition_b(k, eps)
        if 2.0 * b + 2.0 >= n / 2.0:
            # Degenerate regime b = Ω(n): the adaptive partition would be
            # almost all singletons, so flattening buys nothing — run the
            # paired test directly on the singleton partition.  Outside the
            # closeness_budget formula's main branch, so the cap matches.
            self._degenerate = True
            self.partition = Partition.singletons(n)
        else:
            self._b = b
        self._ledger = SampleLedger(budget_cap=self.budget_cap())
        self._log = _StageLog(self.pair, self.trace, self._ledger)
        return None

    def run_partition(self) -> None:
        """Stage 1: ``APPROXPART`` over the union sample.

        In the degenerate regime the singleton partition is already fixed
        and no stage is opened (no span, no ledger entry, zero samples).
        """
        if self._degenerate:
            return
        with self._log.stage("partition", b=int(self._b)) as span, use_kernel(self.kernel):
            self.partition = approx_partition(
                _UnionDraw(self.pair),
                self._b,
                self.config.partition_samples(self.k, self.eps),
            )
            span.set(intervals=len(self.partition))

    def run_learn(self) -> None:
        """Stage 2: the χ² learner per stream on the shared partition."""
        if self._degenerate:
            return
        num_samples = self.config.learner_samples(len(self.partition), self.eps)
        with self._log.stage("learn"), use_kernel(self.kernel):
            self.learned_p = learn_histogram(
                self.pair.p, self.partition, num_samples, self.trace
            )
            self.learned_q = learn_histogram(
                self.pair.q, self.partition, num_samples, self.trace
            )

    def run_sieve(self) -> ClosenessVerdict | None:
        """Stage 3: the Algorithm 1 sieve per stream; either may reject.

        A sieve rejection means the stream's samples are inconsistent with
        *any* flattening on the shared partition — under the histogram
        promise this is the w.p.-1/10 failure branch, and the tester rejects
        (the promise is violated, so any answer is permissible; rejecting
        surfaces the anomaly).
        """
        if self._degenerate:
            kept = np.ones(len(self.partition), dtype=bool)
            none_removed = np.empty(0, dtype=np.int64)
            self.sieve_p = self.sieve_q = SieveResult(
                rejected=False,
                reason="degenerate regime: singleton partition, nothing to sieve",
                kept=kept,
                removed=none_removed,
                rounds=0,
                samples_used=0,
                final_statistic=float("nan"),
            )
            return None
        with self._log.stage("sieve") as span, use_kernel(self.kernel):
            self.sieve_p = sieve_intervals(
                self.pair.p, self.learned_p, self.k, self.eps, self.config, self.trace
            )
            if not self.sieve_p.rejected:
                self.sieve_q = sieve_intervals(
                    self.pair.q, self.learned_q, self.k, self.eps, self.config, self.trace
                )
            span.set(
                rejected_p=self.sieve_p.rejected,
                rejected_q=bool(self.sieve_q.rejected) if self.sieve_q else False,
                removed=(
                    self.sieve_p.num_removed
                    + (self.sieve_q.num_removed if self.sieve_q else 0)
                ),
            )
        for name, result in (("p", self.sieve_p), ("q", self.sieve_q)):
            if result is not None and result.rejected:
                return self._exit(
                    accept=False,
                    stage="sieve",
                    reason=f"stream {name}: {result.reason}",
                )
        return None

    def run_check(self) -> ClosenessVerdict | None:
        """Stage 4: sample-free gate on the learned flattenings.

        Rejects when ``dTV(p̂, q̂)`` restricted to the jointly-kept domain
        already exceeds the (generous) gate — each learner is ε/40-accurate
        under the promise, so ``p = q`` implies a learned distance ≈ ε/20,
        far below the 0.5ε gate; clearly-far pairs exit here sample-free.
        """
        if self._degenerate:
            return None
        kept = self.kept_intervals
        kept_points = self.partition.restrict_mask(list(np.flatnonzero(kept)))
        tolerance = self.config.closeness_check_tolerance(self.eps)
        with self._log.stage("check") as span, use_kernel(self.kernel):
            diff = np.abs(self.learned_p.to_pmf() - self.learned_q.to_pmf())
            distance = 0.5 * float(diff[kept_points].sum())
            close = distance <= tolerance
            span.set(close=bool(close), distance=distance)
        if not close:
            return self._exit(
                accept=False,
                stage="check",
                reason=(
                    f"learned flattenings are {distance:.4g} apart in TV on "
                    f"the jointly-kept domain (> {tolerance:.4g})"
                ),
            )
        return None

    @property
    def kept_intervals(self) -> np.ndarray:
        """The jointly-kept interval mask (intersection of both sieves)."""
        return self.sieve_p.kept & self.sieve_q.kept

    # -- stage 5: paired final test, stepped ---------------------------------

    def begin_final_test(self) -> ClosenessFinalPlan:
        """Open the chi2 stage and fix the paired test parameters.

        The per-stream rate ``m`` scales with ``√B`` for ``B`` kept
        intervals — the domain reduction is what makes closeness cheaper
        than two identity tests.  No ``A_ε`` truncation mask is needed: the
        paired terms are exactly mean-zero under the null regardless of the
        cell masses, and empty cells contribute zero by construction.
        """
        kept = self.kept_intervals
        num_kept = max(1, int(kept.sum()))
        eps_final = self.config.closeness_final_eps(self.eps)
        self._plan = ClosenessFinalPlan(
            m=self.config.closeness_samples(num_kept, eps_final),
            repeats=self.config.chi2_repeat_count(self.k),
            eps_final=eps_final,
            mask=kept,
        )
        self._final = self._log.begin("chi2")
        return self._plan

    def draw_final_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Draw the per-stream ``(repeats, n)`` Poissonized count matrices.

        Draw order is fixed (per repeat: stream p, then stream q) so the
        joint budget depletes evenly and replays are byte-identical.
        """
        plan = self._plan
        counts_p, counts_q = [], []
        with use_kernel(self.kernel):
            for _ in range(plan.repeats):
                counts_p.append(self.pair.p.draw_counts_poissonized(plan.m))
                counts_q.append(self.pair.q.draw_counts_poissonized(plan.m))
        return np.stack(counts_p), np.stack(counts_q)

    def finish_final_test(self, z_per_interval: np.ndarray) -> ClosenessVerdict:
        """Threshold the (externally computed) paired statistics."""
        z_per_interval = np.asarray(z_per_interval, dtype=np.float64)
        plan = self._plan
        handle = self._final
        statistic = float(z_per_interval.sum())
        threshold = (
            self.config.closeness_accept_fraction * plan.m * plan.eps_final**2
        )
        chi2 = Chi2Result(
            accept=statistic <= threshold,
            statistic=statistic,
            threshold=threshold,
            m=plan.m,
            interval_statistics=z_per_interval,
            samples_used=self.pair.samples_drawn - handle.mark,
        )
        handle.span.set(
            statistic=chi2.statistic, threshold=chi2.threshold, accept=chi2.accept
        )
        self._final = None
        self._log.end(handle)
        reason = (
            f"paired closeness statistic {chi2.statistic:.4g} "
            f"{'<=' if chi2.accept else '>'} threshold {chi2.threshold:.4g}"
        )
        return self._exit(accept=chi2.accept, stage="chi2", reason=reason, chi2=chi2)

    @property
    def final_plan(self) -> ClosenessFinalPlan | None:
        return self._plan

    @property
    def final_in_flight(self) -> bool:
        return self._final is not None

    def close_final_test(self) -> None:
        """Close an open chi2 stage without a verdict (failure path)."""
        if self._final is not None:
            handle, self._final = self._final, None
            self._log.end(handle)

    def abort(self) -> int:
        """Abandon the pipeline mid-flight and reconcile what was drawn.

        Same contract as the one-sample pipeline: closes any open stage and
        demands exact integer reconciliation of the *joint* draw total.
        """
        self.close_final_test()
        samples = self.pair.samples_drawn - self.start
        if self._ledger is None:
            return samples  # failed before prepare(): nothing was drawn
        return _finish(self.trace, self._ledger, samples)

    # -- drivers -------------------------------------------------------------

    def run(self) -> ClosenessVerdict:
        """Run every stage in order (the single-call driver)."""
        verdict = self.prepare()
        if verdict is None:
            self.run_partition()
            self.run_learn()
            verdict = self.run_sieve()
        if verdict is None:
            verdict = self.run_check()
        if verdict is None:
            plan = self.begin_final_test()
            try:
                counts_p, counts_q = self.draw_final_counts()
                with use_kernel(self.kernel):
                    z = median_paired_interval_statistics(
                        counts_p, counts_q, self.partition, plan.mask
                    )
            except BaseException:
                self.close_final_test()
                raise
            verdict = self.finish_final_test(z)
        return verdict

    def _exit(
        self,
        accept: bool,
        stage: str,
        reason: str,
        chi2: Chi2Result | None = None,
    ) -> ClosenessVerdict:
        samples_used = _finish(
            self.trace, self._ledger, self.pair.samples_drawn - self.start
        )
        return ClosenessVerdict(
            accept=accept,
            stage=stage,
            reason=reason,
            samples_used=samples_used,
            samples_p=self.pair.p.samples_drawn - self._start_p,
            samples_q=self.pair.q.samples_drawn - self._start_q,
            k=self.k,
            eps=self.eps,
            partition=self.partition,
            learned_p=self.learned_p,
            learned_q=self.learned_q,
            sieve_p=self.sieve_p,
            sieve_q=self.sieve_q,
            chi2=chi2,
            stage_samples=dict(self._log.stage_samples),
            stage_timings=dict(self._log.stage_timings),
        )


def test_closeness(
    source_p: DiscreteDistribution | SampleSource | PairedSampleSource,
    source_q: DiscreteDistribution | SampleSource | None = None,
    k: int = 1,
    eps: float = 0.25,
    *,
    config: TesterConfig | None = None,
    rng: RandomState = None,
    kernel: str = "auto",
    trace: Tracer = NULL_TRACER,
) -> ClosenessVerdict:
    """Test whether two unknown k-histogram distributions are equal.

    A thin wrapper over :class:`ClosenessPipeline` — construct it, run every
    stage in order, count the verdict.

    Parameters
    ----------
    source_p, source_q:
        The two unknown distributions — raw
        :class:`~repro.distributions.discrete.DiscreteDistribution` objects
        (wrapped into a :class:`~repro.distributions.sampling.PairedSampleSource`
        with ``rng``), existing per-stream sources (fault-injecting wrappers
        compose), or a ready-made pair as ``source_p`` with
        ``source_q=None``.
    k:
        The histogram-pieces promise on both distributions.
    eps:
        The TV-distance proximity parameter.
    config:
        Constant profile; defaults to :meth:`TesterConfig.practical`.
    kernel:
        Execution knob ("auto" | "python" | "numba") — verdict-invariant,
        never fingerprinted.
    trace:
        Observability sink; one span per stage plus a final ``ledger``
        event reconciling the joint draws of both streams.

    Returns
    -------
    ClosenessVerdict
        ``accept`` ≈ "``p = q``" (w.p. ≥ 2/3 when true); ``not accept`` ≈
        "``dTV(p, q) ≥ ε``" (w.p. ≥ 2/3 when true, under the promise).
    """
    pipeline = ClosenessPipeline(
        source_p,
        source_q,
        k,
        eps,
        config=config,
        rng=rng,
        kernel=kernel,
        trace=trace,
    )
    with trace.span(
        "test_closeness", n=pipeline.n, k=k, eps=eps, task="closeness"
    ) as run_span:
        verdict = pipeline.run()
        run_span.set(
            accept=verdict.accept,
            stage=verdict.stage,
            samples_used=verdict.samples_used,
        )
    get_metrics().counter(
        "closeness.verdicts", stage=verdict.stage, accept=verdict.accept
    ).inc()
    return verdict


# The public name begins with "test_", which pytest would otherwise collect
# from any test module importing it.
test_closeness.__test__ = False  # type: ignore[attr-defined]


class ClosenessTester:
    """Object-style façade over :func:`test_closeness` (one configuration,
    many trials) — the closeness sibling of
    :class:`~repro.core.tester.HistogramTester`."""

    def __init__(
        self,
        k: int,
        eps: float,
        config: TesterConfig | None = None,
        kernel: str = "auto",
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if not 0.0 < eps <= 1.0:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        self.k = k
        self.eps = eps
        self.config = config if config is not None else TesterConfig.practical()
        self.kernel = validate_kernel(kernel)

    def test(
        self,
        p: DiscreteDistribution | SampleSource | PairedSampleSource,
        q: DiscreteDistribution | SampleSource | None = None,
        rng: RandomState = None,
        trace: Tracer = NULL_TRACER,
    ) -> ClosenessVerdict:
        """Run one paired test; see :func:`test_closeness`."""
        return test_closeness(
            p,
            q,
            self.k,
            self.eps,
            config=self.config,
            rng=rng,
            kernel=self.kernel,
            trace=trace,
        )

    def expected_samples(self, n: int) -> float:
        """Closed-form joint budget estimate on a size-``n`` domain."""
        return closeness_budget(n, self.k, self.eps, self.config)
