"""The χ²-vs-TV tester of [ADK15] (Theorem 3.2 / Proposition 3.3).

Given an explicit reference ``D*`` and Poissonized counts ``N_i`` from the
unknown ``D`` (``N_i ~ Poisson(m·D(i))``, independent), the per-interval
statistics are

    ``Z_j = Σ_{i ∈ I_j ∩ A}  ((N_i − m·D*(i))² − N_i) / (m·D*(i))``

with the truncated domain ``A = {i : D*(i) ≥ ε/(50n)}``.  Then
``E[Z_j] = m · Σ_{i ∈ I_j ∩ A} (D(i) − D*(i))²/D*(i)`` — an unbiased
χ²-divergence estimator — and Proposition 3.3 gives the separation

* completeness: ``dχ²(D‖D*) ≤ ε²/500  ⇒  E[Z] ≤ m·ε²/500``,
* soundness:    ``dTV(D,D*) ≥ ε       ⇒  E[Z] ≥ m·ε²/5``,

with relative variance ``Var Z ≤ (E Z)²/100`` at ``m = Ω(√n/ε²)``.  The
tester thresholds ``Z`` between the two expectations.

Everything here supports *sub*-domains (a boolean mask): the statistic
simply skips masked-out points, which is the refinement Algorithm 1 uses
after sieving (footnote 6's restricted distances).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import Histogram
from repro.distributions.sampling import SampleSource
from repro.kernels import dispatch
from repro.util.intervals import Partition


def _reference_pmf(reference: DiscreteDistribution | Histogram | np.ndarray) -> np.ndarray:
    if isinstance(reference, Histogram):
        return reference.to_pmf()
    if isinstance(reference, DiscreteDistribution):
        return reference.pmf
    arr = np.asarray(reference, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("reference must be a 1-d pmf")
    return arr


def active_mask(
    reference_pmf: np.ndarray,
    eps: float,
    truncation: float,
    domain_mask: np.ndarray | None = None,
) -> np.ndarray:
    """The truncated domain ``A_ε`` intersected with an optional subdomain.

    ``A_ε = {i : D*(i) ≥ truncation · ε / n}`` (paper: truncation = 1/50).
    Points below the cut contribute at most ``truncation·ε`` of TV mass in
    total, which the soundness margin absorbs.
    """
    n = len(reference_pmf)
    cut = truncation * eps / n
    mask = reference_pmf >= cut
    if domain_mask is not None:
        domain_mask = np.asarray(domain_mask, dtype=bool)
        if domain_mask.shape != (n,):
            raise ValueError("domain mask shape mismatch")
        mask &= domain_mask
    return mask


def chi2_point_terms(
    counts: np.ndarray,
    m: "float | np.ndarray",
    reference_pmf: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Point-level χ² terms — the batch-first core of every statistic here.

    All arguments broadcast: a single stream passes ``(n,)`` arrays and a
    scalar ``m``; the serve layer stacks whole batches as ``(streams,
    repeats, n)`` counts against ``(streams, 1, n)`` references/masks and
    per-stream ``m`` of shape ``(streams, 1, 1)``, computing every session's
    terms in one vectorized pass.  The arithmetic is elementwise, so the
    stacked result is bit-identical to the per-stream loop.

    Dispatches on the thread's current kernel (``chi2.point_terms`` op);
    the python and numba implementations are bit-identical.
    """
    return dispatch("chi2.point_terms")(counts, m, reference_pmf, mask)


def interval_statistics(
    counts: np.ndarray,
    m: float,
    reference_pmf: np.ndarray,
    partition: Partition,
    mask: np.ndarray,
) -> np.ndarray:
    """Per-interval statistics ``Z_j`` from a Poissonized count vector.

    A thin single-stream wrapper over :func:`chi2_point_terms` plus the
    partition aggregation.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.shape != reference_pmf.shape:
        raise ValueError("counts and reference cover different domains")
    if partition.n != len(counts):
        raise ValueError("partition does not cover the domain")
    if m <= 0:
        raise ValueError("expected sample size must be positive")
    return partition.aggregate(chi2_point_terms(counts, m, reference_pmf, mask))


@dataclass(frozen=True)
class Chi2Result:
    """Outcome of one (possibly amplified) χ² test run."""

    accept: bool
    statistic: float
    threshold: float
    m: float
    interval_statistics: np.ndarray
    samples_used: int


def median_interval_statistics(
    counts: np.ndarray,
    m: float,
    reference: DiscreteDistribution | Histogram | np.ndarray,
    partition: Partition,
    mask: np.ndarray,
) -> np.ndarray:
    """Median-amplified per-interval statistics from *pre-drawn* batches.

    ``counts`` has shape ``(repeats, n)`` — one Poissonized count vector per
    row.  Separating the draws from the arithmetic is what lets the stepped
    tester pipeline and the serve batch executor compute statistics away
    from the sample stream; given the same draws the result is bit-identical
    to :func:`collect_interval_statistics`.

    All repeats are computed in one batch: the point terms broadcast over
    the ``(repeats, n)`` stack (elementwise, so identical to the per-row
    loop) and the ``serve.aggregate_rows`` kernel performs every row's
    partition aggregation at once with ``np.add.reduceat`` semantics —
    exactly what ``partition.aggregate`` does per row.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 2:
        raise ValueError(f"counts must be (repeats, n), got shape {counts.shape}")
    ref = _reference_pmf(reference)
    if counts.shape[1] != len(ref):
        raise ValueError("counts and reference cover different domains")
    if partition.n != counts.shape[1]:
        raise ValueError("partition does not cover the domain")
    if m <= 0:
        raise ValueError("expected sample size must be positive")
    terms = chi2_point_terms(counts, m, ref, mask)
    batches = dispatch("serve.aggregate_rows")(terms, partition.boundaries[:-1])
    return np.median(batches, axis=0)


def paired_point_terms(
    counts_x: np.ndarray,
    counts_y: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Paired closeness terms ``((X − Y)² − X − Y)/(X + Y)`` (CDVV14).

    Under ``p = q`` every term has mean *exactly* zero (conditionally on
    ``s = X + Y``, ``X ~ Binomial(s, 1/2)``, so ``E[(X − Y)²] = s``) and
    variance at most 2, so the null statistic over ``B`` active cells has
    standard deviation at most ``√(2B)`` — no centering constant to
    calibrate.  When ``dTV(p, q) ≥ ε`` and cell masses are not tiny,
    ``E[Z] ≈ m·Σ (p−q)²/(p+q) ≥ 2·m·ε²`` by Cauchy–Schwarz.

    Dispatches on the thread's current kernel (``chi2.paired_point_terms``
    op); the python and numba implementations are bit-identical.
    """
    return dispatch("chi2.paired_point_terms")(counts_x, counts_y, mask)


def median_paired_interval_statistics(
    counts_x: np.ndarray,
    counts_y: np.ndarray,
    partition: Partition,
    mask: np.ndarray,
) -> np.ndarray:
    """Median-amplified per-interval paired statistics from pre-drawn counts.

    ``counts_x``/``counts_y`` have shape ``(repeats, n)`` — one Poissonized
    count vector per stream per repeat.  Both streams' rows are first
    aggregated to interval totals (the DKN17 flattening: closeness of the
    flattened distributions is exactly closeness of the interval-mass
    vectors), then the paired terms are computed per interval and the
    entrywise median over repeats is returned.  ``mask`` is a boolean mask
    over the partition's *intervals* (the jointly-kept set).
    """
    counts_x = np.asarray(counts_x, dtype=np.float64)
    counts_y = np.asarray(counts_y, dtype=np.float64)
    if counts_x.ndim != 2 or counts_x.shape != counts_y.shape:
        raise ValueError(
            f"counts must be matching (repeats, n) matrices, got "
            f"{counts_x.shape} and {counts_y.shape}"
        )
    if partition.n != counts_x.shape[1]:
        raise ValueError("partition does not cover the domain")
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (len(partition),):
        raise ValueError("mask must cover the partition's intervals")
    starts = partition.boundaries[:-1]
    interval_x = dispatch("serve.aggregate_rows")(counts_x, starts)
    interval_y = dispatch("serve.aggregate_rows")(counts_y, starts)
    terms = paired_point_terms(interval_x, interval_y, mask)
    return np.median(terms, axis=0)


def collect_interval_statistics(
    source: SampleSource,
    reference: DiscreteDistribution | Histogram | np.ndarray,
    m: float,
    partition: Partition,
    mask: np.ndarray,
    repeats: int = 1,
) -> np.ndarray:
    """Draw ``repeats`` independent Poissonized batches and return the
    entrywise median of the per-interval statistics (the paper's standard
    median amplification of §3.2.1)."""
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    counts = np.stack([source.draw_counts_poissonized(m) for _ in range(repeats)])
    return median_interval_statistics(counts, m, reference, partition, mask)


def chi2_test(
    source: SampleSource,
    reference: DiscreteDistribution | Histogram | np.ndarray,
    eps: float,
    *,
    m: float,
    accept_fraction: float = 1.0 / 10.0,
    truncation: float = 1.0 / 50.0,
    domain_mask: np.ndarray | None = None,
    partition: Partition | None = None,
    repeats: int = 1,
) -> Chi2Result:
    """The Theorem 3.2 tester: accept χ²-close, reject TV-far.

    Accepts iff the (median-amplified) total statistic satisfies
    ``Z ≤ accept_fraction · m · ε²``.  With ``domain_mask`` this is the
    subdomain variant used as Step 13 of Algorithm 1; standalone (no mask)
    it reproduces [ADK15]'s tolerant identity tester.
    """
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    ref = _reference_pmf(reference)
    if len(ref) != source.n:
        raise ValueError("reference does not cover the source domain")
    part = partition if partition is not None else Partition.trivial(source.n)
    mask = active_mask(ref, eps, truncation, domain_mask)
    before = source.samples_drawn
    z_per_interval = collect_interval_statistics(source, ref, m, part, mask, repeats)
    statistic = float(z_per_interval.sum())
    threshold = accept_fraction * m * eps * eps
    return Chi2Result(
        accept=statistic <= threshold,
        statistic=statistic,
        threshold=threshold,
        m=m,
        interval_statistics=z_per_interval,
        samples_used=source.samples_drawn - before,
    )


def expected_statistic(
    dist: DiscreteDistribution | np.ndarray,
    reference: DiscreteDistribution | Histogram | np.ndarray,
    m: float,
    eps: float,
    truncation: float = 1.0 / 50.0,
    domain_mask: np.ndarray | None = None,
) -> float:
    """Ground truth ``E[Z] = m · Σ_{A} (D − D*)²/D*`` (tests & E11)."""
    p = dist.pmf if isinstance(dist, DiscreteDistribution) else np.asarray(dist)
    ref = _reference_pmf(reference)
    mask = active_mask(ref, eps, truncation, domain_mask)
    diff = p[mask] - ref[mask]
    return float(m * np.sum(diff * diff / ref[mask]))
