"""``APPROXPART`` — the adaptive partitioning stage (Proposition 3.4).

Given a parameter ``b > 1`` and samples from ``D``, produce a partition of
the domain into ``K = O(b)`` intervals such that, with probability ≥ 9/10:

(i)   every heavy element (``D(i) ≥ 1/b``) is a singleton interval;
(ii)  few intervals are light (``D(I) < 1/(2b)``);
(iii) every other interval has ``D(I) ∈ [1/(2b), 2/b]``.

The construction is a greedy scan over empirical weights from
``O(b log b)`` samples: empirically-heavy points are forced into singletons,
and the stretches between them are cut every time the accumulated empirical
weight reaches ``1/b``.

Reproduction note (recorded in EXPERIMENTS.md, measured by experiment E12):
the paper's Claim promises *at most two* light intervals; the greedy
construction here can leave one light interval before each forced singleton
(they cannot be merged across the singleton).  Algorithm 1 never uses the
two-light property — it relies only on (i), the ``≤ 2/b`` upper bound of
(iii), and ``K = O(b)`` — all of which the greedy construction satisfies and
E12 verifies empirically.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.sampling import SampleSource
from repro.util.intervals import Partition


def approx_partition(
    source: SampleSource,
    b: float,
    num_samples: int,
) -> Partition:
    """Run ``APPROXPART`` with parameter ``b`` on ``num_samples`` draws.

    Parameters
    ----------
    source:
        Sample access to the unknown distribution.
    b:
        The weight scale: heavy elements are those with ``D(i) ≥ 1/b``.
    num_samples:
        Sample budget (the caller computes ``O(b log b)`` via its config).
    """
    if b <= 1:
        raise ValueError(f"b must exceed 1, got {b}")
    if num_samples < 1:
        raise ValueError(f"need at least one sample, got {num_samples}")
    n = source.n
    counts = source.draw_counts(num_samples)
    weights = counts / num_samples

    # Force empirical-heavy points into singletons: a true-heavy element
    # (D(i) >= 1/b) has empirical weight >= 3/(4b) w.h.p. at this budget.
    singleton_cut = 3.0 / (4.0 * b)
    close_cut = 1.0 / b

    boundaries = [0]
    acc = 0.0
    for i in range(n):
        w = float(weights[i])
        if w >= singleton_cut:
            if boundaries[-1] != i:
                boundaries.append(i)  # close the (possibly light) run before
            boundaries.append(i + 1)  # the singleton itself
            acc = 0.0
            continue
        acc += w
        if acc >= close_cut:
            boundaries.append(i + 1)
            acc = 0.0
    if boundaries[-1] != n:
        boundaries.append(n)
    return Partition(np.unique(np.asarray(boundaries, dtype=np.int64)))


def partition_diagnostics(partition: Partition, pmf: np.ndarray, b: float) -> dict:
    """Measure the Proposition 3.4 guarantees against the *true* pmf.

    Ground-truth-only helper for tests and experiment E12 (a tester never
    sees the pmf).  Returns violation counts for each clause.
    """
    pmf = np.asarray(pmf, dtype=np.float64)
    if pmf.shape != (partition.n,):
        raise ValueError("pmf does not match the partition domain")
    heavy_points = np.flatnonzero(pmf >= 1.0 / b)
    singleton_starts = {iv.start for iv in partition if iv.is_singleton}
    heavy_not_singleton = int(sum(1 for i in heavy_points if int(i) not in singleton_starts))

    masses = partition.aggregate(pmf)
    lengths = partition.lengths()
    non_singleton = lengths > 1
    light = masses < 1.0 / (2.0 * b)
    overweight_non_singleton = int(np.count_nonzero(non_singleton & (masses > 2.0 / b)))
    light_count = int(np.count_nonzero(light))
    return {
        "num_intervals": len(partition),
        "bound_2b_plus_2": int(2 * b + 2),
        "heavy_points": len(heavy_points),
        "heavy_not_singleton": heavy_not_singleton,
        "light_intervals": light_count,
        "overweight_non_singletons": overweight_non_singleton,
        "max_non_singleton_mass": float(masses[non_singleton].max()) if non_singleton.any() else 0.0,
    }
