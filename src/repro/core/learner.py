"""``LEARNER`` — the χ² histogram learner on a fixed partition (Lemma 3.5).

A Laplace (add-one) estimator at interval granularity: with ``m`` samples
and a partition into ``ℓ`` intervals,

    ``D̂(j) = (m_{I} + 1) / (m + ℓ) · 1/|I|``   for ``j ∈ I``,

where ``m_I`` counts samples landing in ``I``.  Following the analysis of
the Laplace estimator from [KOPS15], if ``D ∈ H_k`` then, except on the
breakpoint intervals ``J``, the flattened target ``D̃^J`` satisfies
``E[dχ²(D̃^J ‖ D̂)] ≤ ℓ/m``; Markov turns that into the "≤ ε² with
probability 9/10" guarantee at ``m = O(ℓ/ε²)``.

The add-one smoothing is what makes the *χ²* guarantee possible at all: it
keeps every ``D̂(j)`` strictly positive, so the divergence (whose reference
is ``D̂``) can never blow up on under-sampled intervals.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.histogram import Histogram
from repro.distributions.sampling import SampleSource
from repro.observability.trace import NULL_TRACER, Tracer
from repro.util.intervals import Partition


def learn_histogram(
    source: SampleSource,
    partition: Partition,
    num_samples: int,
    trace: Tracer = NULL_TRACER,
) -> Histogram:
    """Run the Lemma 3.5 learner; returns ``D̂ ∈ H_K`` on ``partition``.

    ``num_samples`` is the budget the caller derived from its config
    (``O(K/ε_learn²)`` in Algorithm 1).
    """
    if num_samples < 1:
        raise ValueError(f"need at least one sample, got {num_samples}")
    if partition.n != source.n:
        raise ValueError("partition does not cover the source domain")
    counts = source.draw_counts(num_samples)
    trace.event("laplace", samples=num_samples, intervals=len(partition))
    return laplace_estimate(counts, partition)


def laplace_estimate(counts: np.ndarray, partition: Partition) -> Histogram:
    """The add-one estimator from explicit occurrence counts.

    Exposed separately so experiments can reuse a single count vector
    across estimators.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.shape != (partition.n,):
        raise ValueError("counts do not match the partition domain")
    if np.any(counts < 0):
        raise ValueError("negative counts")
    m = counts.sum()
    num_intervals = len(partition)
    interval_counts = partition.aggregate(counts)
    masses = (interval_counts + 1.0) / (m + num_intervals)
    return Histogram.from_masses(partition, masses)


def empirical_estimate(counts: np.ndarray, partition: Partition) -> Histogram:
    """Unsmoothed (maximum-likelihood) flattening — the estimator whose χ²
    guarantee *fails* (zero-count intervals give infinite divergence).

    Kept as the ablation partner of :func:`laplace_estimate` for
    experiment E13.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.shape != (partition.n,):
        raise ValueError("counts do not match the partition domain")
    m = counts.sum()
    if m <= 0:
        raise ValueError("need at least one observed sample")
    masses = partition.aggregate(counts) / m
    return Histogram.from_masses(partition, masses)
