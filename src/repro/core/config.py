"""Constant profiles for Algorithm 1.

The paper states its algorithm with worst-case constants (e.g. the χ²
tester's ``m ≥ 20000·√n/ε²`` from [ADK15], ``b = 20·k·log k/ε``, learning
accuracy ``ε/60``).  Those make every stated guarantee hold verbatim but are
wildly conservative in practice.  :class:`TesterConfig` exposes every
constant; two built-in profiles are provided:

* :meth:`TesterConfig.paper` — the literal constants of the paper.  Use for
  fidelity checks; sample budgets are astronomically large but, since all
  testers operate on Poissonized/multinomial *count vectors*, still cheap to
  simulate.
* :meth:`TesterConfig.practical` — the calibrated profile used by the
  experiment suite.  Structure and threshold *ratios* are preserved (the
  completeness/soundness separation arguments go through with the same
  margins); only the absolute multipliers shrink.  `EXPERIMENTS.md` records
  the calibration reasoning.

Derived quantities (``b``, per-stage sample sizes, thresholds) are computed
by methods here so that every stage of the algorithm and the closed-form
budget module agree on a single source of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


def _log2k(k: int) -> float:
    """``log₂ k`` clamped below at 1 (the paper treats small k separately)."""
    return max(1.0, math.log2(max(k, 2)))


@dataclass(frozen=True)
class TesterConfig:
    """Every tunable constant of Algorithm 1, with derived-size helpers."""

    profile: str
    #: ``b = partition_b_factor · k · log₂k / ε`` (paper: 20).
    partition_b_factor: float
    #: APPROXPART draws ``partition_sample_factor · b · ln(b + e)`` samples.
    partition_sample_factor: float
    #: Learning accuracy ``ε_learn = ε · learner_eps_fraction`` (paper: 1/60).
    learner_eps_fraction: float
    #: Learner draws ``learner_sample_factor · K / ε_learn²`` samples.
    learner_sample_factor: float
    #: χ² runs draw ``chi2_sample_factor · √n / param²`` (paper: 20000).
    chi2_sample_factor: float
    #: Final test accepts iff ``Z ≤ m · ε'² · chi2_accept_fraction``
    #: (between the 1/500 completeness and 1/5 soundness expectations).
    chi2_accept_fraction: float
    #: ``A_ε`` truncation: keep i with ``D̂(i) ≥ chi2_truncation · param / n``
    #: (paper: 1/50).
    chi2_truncation: float
    #: Final χ² test parameter ``ε' = final_eps_fraction · ε`` (paper: 13/30).
    final_eps_fraction: float
    #: Step-10 check tolerance ``check_tolerance_fraction · ε`` (paper: 1/60).
    check_tolerance_fraction: float
    #: Sieve scale ``α = sieve_alpha_fraction · ε`` (paper: "ε/C, C large").
    sieve_alpha_fraction: float
    #: Phase-A removal: ``Z_j > sieve_heavy_factor · m · α²`` (paper: 10).
    sieve_heavy_factor: float
    #: Phase-B early accept: ``Z < sieve_accept_factor · m · α²`` (paper: 10).
    sieve_accept_factor: float
    #: Phase-B removal target: keep ``Σ Z_j ≤ sieve_residual_factor · m·α²``
    #: (paper: 2).
    sieve_residual_factor: float
    #: Phase-B runs at most ``ceil(log₂ k) + 1`` rounds (scaled by this).
    sieve_rounds_factor: float
    #: Draw fresh samples for every sieve round (the corrigendum-safe mode);
    #: ``False`` reuses one batch across rounds (the paper-literal reading
    #: whose analysis the PODS'23 corrigendum flags).
    fresh_sieve_samples: bool
    #: Median-amplification repeats for each χ² statistic batch
    #: (``None`` → derive from ``δ = 1/(10(k+1))`` as in §3.2.1).
    chi2_repeats: int | None
    #: Global multiplier applied to every stage's sample size — the knob the
    #: empirical-sample-complexity experiments bisect over.
    budget_scale: float = 1.0
    #: Ablation switch: skip the sieving stage entirely (keep every
    #: interval).  This is the naive testing-by-learning pipeline whose
    #: completeness the paper's Section 1.3 predicts must fail on
    #: breakpoint-misaligned histograms — kept for experiment E15.
    sieve_enabled: bool = True
    #: Default worker count for trial-parallel experiment loops driven by
    #: this config (``None``/1 → serial, 0 → one per CPU, N → N worker
    #: processes).  Execution-only: results are bit-identical at any value,
    #: so it never enters budgets, thresholds, or checkpoint fingerprints.
    workers: int | None = None
    #: -- cdkl22 backend constants (see :mod:`repro.core.backends.cdkl22`) --
    #: Learning accuracy ``ε_learn = ε · cdkl22_learner_eps_fraction``.  The
    #: testing-by-learning reduction only needs ``D̂`` accurate enough to
    #: project onto ``H_k``, not to survive per-interval sieving, so this is
    #: much coarser than ``learner_eps_fraction`` — the learner is the
    #: n-independent term of the budget, so coarsening it matters at small n.
    cdkl22_learner_eps_fraction: float = 1.0 / 16.0
    #: Upper cap on the final test's ``ε'/ε`` ratio.  The effective ratio is
    #: ``min(cap, 1 − trimmed-mass share − truncation share)`` and never
    #: below the pods16 ratio (``final_eps_fraction``) — see
    #: :meth:`cdkl22_final_eps`.
    cdkl22_final_eps_fraction: float = 0.85
    #: Testing-by-learning gate: reject at the check stage when the learned
    #: ``D̂`` is farther than ``cdkl22_check_fraction · ε`` from ``H_k``
    #: (breakpoints on partition borders).  Generous by design: it only has
    #: to pass clear completeness cases (learn error + boundary snapping
    #: ≈ 0.3ε), while grossly non-histogram inputs exit sample-free.
    cdkl22_check_fraction: float = 0.5
    #: The trimmed final statistic drops the top
    #: ``ceil(cdkl22_trim_factor · (k−1))`` per-interval statistics — a
    #: k-histogram has at most ``k−1`` breakpoint intervals, which is exactly
    #: the contamination the pods16 sieve spends ``Θ(√n/α²)`` samples to
    #: remove and the trim removes for free.
    cdkl22_trim_factor: float = 1.0
    #: Only intervals with reference mass ≤ ``cdkl22_trim_mass_factor / b``
    #: are trim-eligible: an adversary cannot hide farness in a heavy
    #: interval, so the trim discards at most
    #: ``trim_count · factor / b`` of TV evidence (absorbed by ε').
    cdkl22_trim_mass_factor: float = 3.0
    #: Adaptive schedule: when the stage-0 statistic lands within
    #: ``cdkl22_guard_sigmas · √(2·|A_ε|)`` of the threshold, redraw fresh
    #: counts at ``cdkl22_escalation_factor × m`` and decide there.
    cdkl22_escalation_factor: float = 3.0
    cdkl22_guard_sigmas: float = 3.0
    #: -- closeness (two-sample, DKN17) constants ---------------------------
    #: (see :mod:`repro.core.closeness`)
    #: Accept iff the paired statistic ``Z ≤ closeness_accept_fraction·m·ε'²``
    #: — same role as ``chi2_accept_fraction`` but for the CDVV14-style
    #: paired statistic whose far-side expectation is ``≥ 2·m·ε'²`` by
    #: Cauchy–Schwarz on the kept (flattened) domain.
    closeness_accept_fraction: float = 1.0 / 2.0
    #: Final paired test distance parameter ``ε' = fraction·ε``; the partition
    #: flattening and the per-stream sieve each eat a slice of ε, mirroring
    #: the one-sample budget split.
    closeness_final_eps_fraction: float = 13.0 / 30.0
    #: Sample-free gate: reject when the two *learned* flattened histograms
    #: are farther than ``closeness_check_fraction·ε`` apart in TV on the
    #: jointly-kept domain — generous by design, like ``cdkl22_check_fraction``.
    closeness_check_fraction: float = 0.5

    #: Multiplicative factors: must be strictly positive (a zero or negative
    #: factor silently produces nonsense budgets downstream).
    _POSITIVE_FIELDS = (
        "partition_b_factor",
        "partition_sample_factor",
        "learner_sample_factor",
        "chi2_sample_factor",
        "sieve_heavy_factor",
        "sieve_accept_factor",
        "sieve_residual_factor",
        "sieve_rounds_factor",
        "budget_scale",
        "cdkl22_trim_mass_factor",
        "cdkl22_guard_sigmas",
    )
    #: Fractions of ε (or of an expectation): must lie in (0, 1].
    _FRACTION_FIELDS = (
        "learner_eps_fraction",
        "chi2_accept_fraction",
        "chi2_truncation",
        "final_eps_fraction",
        "check_tolerance_fraction",
        "sieve_alpha_fraction",
        "cdkl22_learner_eps_fraction",
        "cdkl22_final_eps_fraction",
        "cdkl22_check_fraction",
        "closeness_accept_fraction",
        "closeness_final_eps_fraction",
        "closeness_check_fraction",
    )

    def __post_init__(self) -> None:
        for name in self._POSITIVE_FIELDS:
            value = getattr(self, name)
            if not value > 0:
                raise ValueError(f"{name} must be strictly positive, got {value}")
        for name in self._FRACTION_FIELDS:
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if self.chi2_repeats is not None and self.chi2_repeats < 1:
            raise ValueError(f"chi2_repeats must be positive, got {self.chi2_repeats}")
        if self.cdkl22_trim_factor < 0:
            raise ValueError(
                f"cdkl22_trim_factor must be non-negative, got {self.cdkl22_trim_factor}"
            )
        if self.cdkl22_escalation_factor < 1.0:
            raise ValueError(
                "cdkl22_escalation_factor must be at least 1, "
                f"got {self.cdkl22_escalation_factor}"
            )
        if self.workers is not None:
            if isinstance(self.workers, bool) or not isinstance(self.workers, int):
                raise ValueError(f"workers must be an int or None, got {self.workers!r}")
            if self.workers < 0:
                raise ValueError(f"workers must be non-negative, got {self.workers}")

    def with_workers(self, workers: int | None) -> "TesterConfig":
        """A copy with a different default worker count (execution-only)."""
        return replace(self, workers=workers)

    # -- profiles -----------------------------------------------------------

    @classmethod
    def paper(cls, **overrides: object) -> "TesterConfig":
        """The literal constants from the paper (and [ADK15])."""
        config = cls(
            profile="paper",
            partition_b_factor=20.0,
            partition_sample_factor=1.0,
            learner_eps_fraction=1.0 / 60.0,
            learner_sample_factor=1.0,
            chi2_sample_factor=20000.0,
            chi2_accept_fraction=1.0 / 10.0,
            chi2_truncation=1.0 / 50.0,
            final_eps_fraction=13.0 / 30.0,
            check_tolerance_fraction=1.0 / 60.0,
            sieve_alpha_fraction=1.0 / 33.0,
            sieve_heavy_factor=10.0,
            sieve_accept_factor=10.0,
            sieve_residual_factor=2.0,
            sieve_rounds_factor=1.0,
            fresh_sieve_samples=True,
            chi2_repeats=None,
        )
        return replace(config, **overrides) if overrides else config

    @classmethod
    def practical(cls, **overrides: object) -> "TesterConfig":
        """Calibrated profile: same structure, laptop-scale multipliers.

        Threshold-ratio invariants preserved from the paper's analysis:

        * learning χ² error ≪ final accept threshold:
          ``10·ε_learn² ≈ ε²/160 < ε'²·fraction ≈ ε²/42`` ✓ (Markov 10×
          slack included);
        * sieve residual ≪ final accept threshold: sieve-accept guarantees
          kept χ² ≲ ``accept_factor·α² = ε²/50``, below the final
          threshold with the learning margin absorbing the rest;
        * soundness expectation ≫ threshold: ``4·ε'² ≫ ε'²·fraction``;
        * noise floor: the χ² statistic has std ≈ ``√(2n)`` near the null,
          so the accept threshold ``(factor/8)·√n`` needs
          ``factor ≥ ~34`` to sit several σ above it — 64 gives ≈ 5.6σ.
        """
        config = cls(
            profile="practical",
            partition_b_factor=4.0,
            partition_sample_factor=8.0,
            learner_eps_fraction=1.0 / 40.0,
            learner_sample_factor=1.0,
            chi2_sample_factor=64.0,
            chi2_accept_fraction=1.0 / 8.0,
            chi2_truncation=1.0 / 50.0,
            final_eps_fraction=13.0 / 30.0,
            check_tolerance_fraction=1.0 / 15.0,
            sieve_alpha_fraction=1.0 / 20.0,
            sieve_heavy_factor=10.0,
            sieve_accept_factor=8.0,
            sieve_residual_factor=2.0,
            sieve_rounds_factor=1.0,
            fresh_sieve_samples=True,
            chi2_repeats=1,
        )
        return replace(config, **overrides) if overrides else config

    def scaled(self, budget_scale: float) -> "TesterConfig":
        """A copy with a different global budget multiplier."""
        if budget_scale <= 0:
            raise ValueError(f"budget scale must be positive, got {budget_scale}")
        return replace(self, budget_scale=budget_scale)

    # -- derived quantities --------------------------------------------------

    def partition_b(self, k: int, eps: float) -> float:
        """The APPROXPART parameter ``b`` (paper: ``20·k·log k/ε``)."""
        _validate(k, eps)
        return self.partition_b_factor * k * _log2k(k) / eps

    def partition_samples(self, k: int, eps: float) -> int:
        """Sample budget of the partitioning stage, ``O(b log b)``."""
        b = self.partition_b(k, eps)
        return max(1, math.ceil(self.budget_scale * self.partition_sample_factor * b * math.log(b + math.e)))

    def learner_eps(self, eps: float) -> float:
        """Learning accuracy parameter passed to LEARNER."""
        return eps * self.learner_eps_fraction

    def learner_samples(self, num_intervals: int, eps: float) -> int:
        """Sample budget of the learning stage, ``O(K/ε_learn²)``."""
        if num_intervals < 1:
            raise ValueError("need at least one interval")
        eps_learn = self.learner_eps(eps)
        return max(
            1,
            math.ceil(
                self.budget_scale * self.learner_sample_factor * num_intervals / eps_learn**2
            ),
        )

    def chi2_samples(self, n: int, param: float) -> int:
        """Sample budget of one χ² batch at accuracy ``param``."""
        if n < 1:
            raise ValueError("domain size must be positive")
        if param <= 0:
            raise ValueError("accuracy parameter must be positive")
        return max(
            1, math.ceil(self.budget_scale * self.chi2_sample_factor * math.sqrt(n) / param**2)
        )

    def sieve_alpha(self, eps: float) -> float:
        """The sieve's χ² scale parameter α."""
        return eps * self.sieve_alpha_fraction

    def sieve_rounds(self, k: int) -> int:
        """Maximum number of Phase-B rounds, ``O(log k)``."""
        return max(1, math.ceil(self.sieve_rounds_factor * _log2k(k)) + 1)

    def chi2_repeat_count(self, k: int) -> int:
        """Median-amplification repeats per χ² batch."""
        if self.chi2_repeats is not None:
            if self.chi2_repeats < 1:
                raise ValueError("chi2_repeats must be positive")
            return self.chi2_repeats
        # Paper: failure probability δ = 1/(10(k+1)) per batch.
        from repro.util.stats import amplification_repeats

        return amplification_repeats(1.0 / (10.0 * (k + 1)), base_success=0.9)

    def final_eps(self, eps: float) -> float:
        """The final χ² test's distance parameter ``ε'``."""
        return eps * self.final_eps_fraction

    def check_tolerance(self, eps: float) -> float:
        """Step-10 tolerance for closeness of ``D̂`` to ``H_k`` on ``G``."""
        return eps * self.check_tolerance_fraction

    # -- cdkl22 backend derived quantities ----------------------------------

    def cdkl22_learner_eps(self, eps: float) -> float:
        """Learning accuracy of the cdkl22 testing-by-learning reduction."""
        return eps * self.cdkl22_learner_eps_fraction

    def cdkl22_learner_samples(self, num_intervals: int, eps: float) -> int:
        """Learner budget at the coarser cdkl22 accuracy, ``O(K/ε_learn²)``."""
        if num_intervals < 1:
            raise ValueError("need at least one interval")
        eps_learn = self.cdkl22_learner_eps(eps)
        return max(
            1,
            math.ceil(
                self.budget_scale * self.learner_sample_factor * num_intervals / eps_learn**2
            ),
        )

    def cdkl22_trim_count(self, k: int) -> int:
        """How many light intervals the trimmed statistic may drop."""
        _validate(k, 1.0)
        return int(math.ceil(self.cdkl22_trim_factor * max(0, k - 1)))

    def cdkl22_trim_mass_cap(self, k: int, eps: float) -> float:
        """Reference-mass ceiling for trim eligibility (``factor / b``)."""
        return self.cdkl22_trim_mass_factor / self.partition_b(k, eps)

    def cdkl22_final_eps(self, k: int, eps: float) -> float:
        """The cdkl22 final test's effective distance parameter ``ε'``.

        The reference ``D*`` lies in ``H_k``, so soundness keeps the full
        ``ε`` minus what the statistic provably cannot see: the trimmed
        intervals' mass (≤ ``trim_count · trim_mass_factor / b``) and the
        ``A_ε`` truncation tail.  Capped above by
        ``cdkl22_final_eps_fraction`` and below by the pods16 ratio — the
        backend is never run with a weaker final test than pods16's.
        """
        trimmed_share = (
            self.cdkl22_trim_count(k) * self.cdkl22_trim_mass_factor
        ) / (self.partition_b(k, eps) * eps)
        fraction = min(
            self.cdkl22_final_eps_fraction, 1.0 - trimmed_share - self.chi2_truncation
        )
        return max(self.final_eps(eps), fraction * eps)

    def cdkl22_check_tolerance(self, eps: float) -> float:
        """Testing-by-learning gate tolerance for ``dTV(D̂, H_k)``."""
        return eps * self.cdkl22_check_fraction

    def cdkl22_escalated_m(self, m: float) -> int:
        """Stage-1 batch size after an ambiguous stage-0 statistic."""
        if m <= 0:
            raise ValueError(f"batch size must be positive, got {m}")
        return int(math.ceil(self.cdkl22_escalation_factor * m))

    # -- closeness (two-sample) derived quantities ---------------------------

    def closeness_final_eps(self, eps: float) -> float:
        """The paired final test's distance parameter ``ε'``."""
        return eps * self.closeness_final_eps_fraction

    def closeness_check_tolerance(self, eps: float) -> float:
        """Sample-free gate tolerance for ``dTV(p̂_flat, q̂_flat)`` on the
        jointly-kept domain."""
        return eps * self.closeness_check_fraction

    def closeness_samples(self, n: int, param: float) -> int:
        """Per-stream budget of one paired closeness batch at accuracy
        ``param``.  Same ``√n/param²`` shape as :meth:`chi2_samples` — on a
        flattened (b-interval) domain the DKN17 reduction runs the CDVV14
        closeness tester whose small-sample regime is ``Θ(√n/ε²)``."""
        return self.chi2_samples(n, param)


# Pytest collects classes named Test*; this is a config object, not a suite.
TesterConfig.__test__ = False  # type: ignore[attr-defined]


def _validate(k: int, eps: float) -> None:
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
