"""The paper's primary contribution: Algorithm 1 and its stages."""

from repro.core.budget import (
    algorithm1_budget,
    cdgr16_budget,
    ilr12_budget,
    learn_offline_budget,
    paninski_lower_bound,
    support_size_lower_bound,
    theorem_lower_bound,
    theorem_upper_bound,
)
from repro.core.chi2 import Chi2Result, chi2_test, expected_statistic
from repro.core.closeness import (
    ClosenessPipeline,
    ClosenessTester,
    ClosenessVerdict,
    closeness_budget,
    test_closeness,
)
from repro.core.config import TesterConfig
from repro.core.estimation import (
    DistanceEstimate,
    estimate_distance_to_hk,
    estimation_budget,
)
from repro.core.learner import laplace_estimate, learn_histogram
from repro.core.partition import approx_partition, partition_diagnostics
from repro.core.sieve import SieveResult, sieve_intervals
from repro.core.tester import HistogramTester, Verdict, test_histogram

__all__ = [
    "Chi2Result",
    "ClosenessPipeline",
    "ClosenessTester",
    "ClosenessVerdict",
    "DistanceEstimate",
    "HistogramTester",
    "SieveResult",
    "TesterConfig",
    "Verdict",
    "algorithm1_budget",
    "approx_partition",
    "cdgr16_budget",
    "chi2_test",
    "closeness_budget",
    "estimate_distance_to_hk",
    "estimation_budget",
    "expected_statistic",
    "ilr12_budget",
    "laplace_estimate",
    "learn_histogram",
    "learn_offline_budget",
    "paninski_lower_bound",
    "partition_diagnostics",
    "sieve_intervals",
    "support_size_lower_bound",
    "test_closeness",
    "test_histogram",
    "theorem_lower_bound",
    "theorem_upper_bound",
]
