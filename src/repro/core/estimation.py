"""Tolerant estimation of the distance to ``H_k``.

The tester answers a one-bit question; sometimes the practitioner wants the
*number*: "how far is this column from the best k-bucket summary?"  This
module estimates ``dTV(D, H_k)`` from samples with certified-style bounds,
by combining the plug-in projection DPs with the analytic sampling-noise
floor (the same correction the learn-offline baseline uses):

* the **upper estimate** comes from the flattening DP on the (grid-split)
  empirical distribution — an upper bound on the distance of the empirical
  pmf, inflated by sampling noise;
* the **lower estimate** subtracts the noise floor and a union-style margin
  from the unconstrained (median) DP, which lower-bounds the empirical
  distance.

The interval is asymptotically consistent (both ends converge to the truth
as ``m/n → ∞``) and in tests the true distance lands inside it with high
probability at ``m = Θ(n/ε²)``.  This costs Θ(n) samples — tolerant
estimation is exactly the regime where the [VV10] hardness bites and
sublinear budgets are impossible, which is why Algorithm 1 exists at all;
the docstring-level contrast *is* the paper's Section 1.3 story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.projection import (
    coarse_flattening_projection,
    flattening_distance,
    unconstrained_l1_distance,
)
from repro.distributions.sampling import SampleSource, as_source
from repro.learning.merge import quantile_partition
from repro.util.rng import RandomState


@dataclass(frozen=True)
class DistanceEstimate:
    """An interval estimate of ``dTV(D, H_k)``."""

    low: float
    high: float
    point: float
    samples_used: int

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, (int, float)):
            return False
        return self.low <= float(value) <= self.high


def estimation_budget(n: int, accuracy: float, factor: float = 8.0) -> int:
    """Samples for a ±accuracy estimate: ``Θ(n/accuracy²)`` (plug-in rate)."""
    if n < 1 or not 0 < accuracy <= 1:
        raise ValueError(f"bad parameters n={n}, accuracy={accuracy}")
    return max(4, int(math.ceil(factor * n / accuracy**2)))


def _noise_floor(empirical: np.ndarray, m: float) -> float:
    """Analytic expectation of the plug-in TV inflation,
    ``½·Σ E|N_i/m − p_i| ≈ ½·Σ √(2 p_i/(π m))``."""
    return 0.5 * float(np.sqrt(2.0 * empirical / (math.pi * m)).sum())


def estimate_distance_to_hk(
    dist: DiscreteDistribution | SampleSource,
    k: int,
    accuracy: float = 0.1,
    *,
    rng: RandomState = None,
    num_samples: int | None = None,
) -> DistanceEstimate:
    """Estimate ``dTV(D, H_k)`` to within about ``accuracy``.

    Returns a :class:`DistanceEstimate` whose ``point`` value is the
    noise-corrected plug-in projection distance and whose ``[low, high]``
    interval brackets it with the analytic noise floor on both sides (the
    ``low`` end additionally uses the unconstrained-DP lower bound, so it
    is conservative for certification: ``low > 0`` is strong evidence the
    distribution is genuinely not a k-histogram).
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0 < accuracy <= 1:
        raise ValueError(f"accuracy must be in (0, 1], got {accuracy}")
    source = as_source(dist, rng)
    n = source.n
    m = num_samples if num_samples is not None else estimation_budget(n, accuracy)
    counts = source.draw_counts(m)
    if counts.sum() <= 0:
        raise ValueError("drew zero samples")
    empirical = counts / counts.sum()
    floor = _noise_floor(empirical, m)

    if n <= 1024:
        upper_raw = flattening_distance(empirical, k)
        lower_raw = unconstrained_l1_distance(empirical, k)
    else:
        base = quantile_partition(counts, cells=min(n, max(32 * k, 512)))
        flattened = base.flatten(empirical)
        grid = coarse_flattening_projection(flattened, base, k).distance
        within = 0.5 * float(np.abs(empirical - flattened).sum())
        upper_raw = grid + within
        # The grid DP restricted to flattened data lower-bounds nothing by
        # itself; use the mean-vs-median factor-2 relation conservatively.
        lower_raw = upper_raw / 2.0

    point = max(0.0, upper_raw - floor)
    low = max(0.0, lower_raw - floor - accuracy / 2.0)
    high = upper_raw + accuracy / 2.0
    return DistanceEstimate(
        low=low, high=high, point=point, samples_used=int(m)
    )
