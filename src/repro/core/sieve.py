"""The sieving stage of Algorithm 1 (Section 3.2.1).

After learning ``D̂`` on the ``APPROXPART`` partition, the tester must
discard the ``O(k log k)`` intervals on which the learner may be arbitrarily
wrong — in the completeness case, exactly the (unknown) breakpoint
intervals.  The paper does this with per-interval χ² statistics ``Z_j`` in
two phases:

* **Phase A (heavy removal)** — one batch of statistics; every non-singleton
  interval with ``Z_j`` above ``heavy_factor · m·α²`` is removed at once.
  If more than ``k`` intervals qualify, reject (a k-histogram has at most
  ``k − 1`` breakpoint intervals).
* **Phase B (iterative removal)** — up to ``O(log k)`` rounds.  Each round
  computes the statistics of the remaining intervals; if their sum is below
  ``accept_factor · m·α²`` the sieve is done; otherwise the largest
  non-singleton statistics are removed (at most ``k'`` per round) until the
  kept sum would be at most ``residual_factor · m·α²``; if even removing
  ``k'`` cannot achieve that, reject.

Only **non-singleton** intervals are ever removed: a breakpoint strictly
inside a singleton is impossible, and in the soundness case every
non-singleton carries at most ``2/b`` probability mass, so the whole sieve
discards at most ``O(k log k) · 2/b = ε/10`` of the distance evidence —
the inequality the soundness proof rests on.

Corrigendum note: with ``fresh_samples=True`` (default) every Phase-B round
draws a fresh batch, so each round's selection is independent of the data it
thresholds — the conservatively-correct variant.  ``fresh_samples=False``
reuses Phase A's single batch across rounds, which is the paper-literal
reading whose adaptive reuse the PODS 2023 corrigendum flags; experiment E15
compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chi2 import active_mask, collect_interval_statistics, interval_statistics
from repro.core.config import TesterConfig
from repro.distributions.histogram import Histogram
from repro.distributions.sampling import SampleSource
from repro.observability.metrics import get_metrics
from repro.observability.trace import NULL_TRACER, Tracer
from repro.util.intervals import Partition


@dataclass(frozen=True)
class SieveResult:
    """Outcome of the sieving stage."""

    rejected: bool
    reason: str
    kept: np.ndarray  # boolean mask over the partition's intervals
    removed: np.ndarray  # indices of removed intervals, in removal order
    rounds: int
    samples_used: int
    final_statistic: float

    @property
    def num_removed(self) -> int:
        return len(self.removed)


def sieve_intervals(
    source: SampleSource,
    learned: Histogram,
    k: int,
    eps: float,
    config: TesterConfig,
    trace: Tracer = NULL_TRACER,
) -> SieveResult:
    """Run the two-phase sieve; see the module docstring."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    partition: Partition = learned.partition
    if partition.n != source.n:
        raise ValueError("learned histogram does not cover the source domain")

    n = source.n
    alpha = config.sieve_alpha(eps)
    m = config.chi2_samples(n, alpha)
    repeats = config.chi2_repeat_count(k)
    reference = learned.to_pmf()
    point_mask = active_mask(reference, alpha, config.chi2_truncation)

    num_intervals = len(partition)
    removable = partition.lengths() > 1
    kept = np.ones(num_intervals, dtype=bool)
    removed: list[int] = []
    before = source.samples_drawn

    heavy_threshold = config.sieve_heavy_factor * m * alpha * alpha
    accept_threshold = config.sieve_accept_factor * m * alpha * alpha
    residual_target = config.sieve_residual_factor * m * alpha * alpha

    def batch_statistics() -> np.ndarray:
        return collect_interval_statistics(
            source, reference, m, partition, point_mask, repeats
        )

    metrics = get_metrics()

    # ----- Phase A: one-shot removal of heavy statistics -------------------
    with trace.span("phase_a") as span_a:
        mark = source.samples_drawn
        stats = batch_statistics()
        reused_stats = stats if not config.fresh_sieve_samples else None
        heavy = (stats > heavy_threshold) & removable
        num_heavy = int(heavy.sum())
        span_a.set(removed=num_heavy, samples=source.samples_drawn - mark)
        if num_heavy > k:
            span_a.set(rejected=True)
            metrics.counter("sieve.rejections", phase="A").inc()
            return SieveResult(
                rejected=True,
                reason=f"phase A: {num_heavy} heavy intervals exceed k={k}",
                kept=kept,
                removed=np.flatnonzero(heavy),
                rounds=0,
                samples_used=source.samples_drawn - before,
                final_statistic=float(stats.sum()),
            )
        kept[heavy] = False
        removed.extend(int(j) for j in np.flatnonzero(heavy))
        metrics.counter("sieve.removed", phase="A").inc(num_heavy)
    remaining_budget = k - num_heavy
    per_round_budget = max(remaining_budget, 1)

    # ----- Phase B: iterative removal ---------------------------------------
    max_rounds = config.sieve_rounds(k)
    final_statistic = float(stats[kept].sum())
    rounds_run = 0
    for _ in range(max_rounds):
        rounds_run += 1
        with trace.span("round", round=rounds_run) as span_r:
            mark = source.samples_drawn
            stats = batch_statistics() if config.fresh_sieve_samples else reused_stats
            kept_sum = float(stats[kept].sum())
            final_statistic = kept_sum
            if kept_sum < accept_threshold:
                span_r.set(removed=0, samples=source.samples_drawn - mark,
                           early_accept=True)
                break
            # Remove the largest removable statistics until the kept sum is
            # at most the residual target; at most per_round_budget removals.
            candidates = np.flatnonzero(kept & removable)
            order = candidates[np.argsort(stats[candidates])[::-1]]
            running = kept_sum
            to_remove: list[int] = []
            for j in order:
                if running <= residual_target:
                    break
                if len(to_remove) >= per_round_budget:
                    break
                to_remove.append(int(j))
                running -= float(stats[j])
            span_r.set(removed=len(to_remove), samples=source.samples_drawn - mark)
            if running > residual_target:
                span_r.set(rejected=True)
                metrics.counter("sieve.rejections", phase="B").inc()
                return SieveResult(
                    rejected=True,
                    reason=(
                        "phase B: residual statistic "
                        f"{running:.4g} > target {residual_target:.4g} even after "
                        f"removing {len(to_remove)} intervals"
                    ),
                    kept=kept,
                    removed=np.asarray(removed, dtype=np.int64),
                    rounds=rounds_run,
                    samples_used=source.samples_drawn - before,
                    final_statistic=running,
                )
            kept[to_remove] = False
            removed.extend(to_remove)
            metrics.counter("sieve.removed", phase="B").inc(len(to_remove))
            metrics.distribution("sieve.removed_per_round").observe(len(to_remove))
            final_statistic = running

    return SieveResult(
        rejected=False,
        reason="sieve complete",
        kept=kept,
        removed=np.asarray(removed, dtype=np.int64),
        rounds=rounds_run,
        samples_used=source.samples_drawn - before,
        final_statistic=final_statistic,
    )


def sieve_ground_truth_expectations(
    dist_pmf: np.ndarray,
    learned: Histogram,
    eps: float,
    config: TesterConfig,
) -> np.ndarray:
    """Per-interval ``E[Z_j]`` under the true distribution (experiments only)."""
    partition = learned.partition
    reference = learned.to_pmf()
    alpha = config.sieve_alpha(eps)
    m = config.chi2_samples(len(dist_pmf), alpha)
    mask = active_mask(reference, alpha, config.chi2_truncation)
    diff = np.where(mask, dist_pmf - reference, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(mask, diff * diff / reference, 0.0)
    return m * partition.aggregate(terms)
