"""Algorithm 1 — the k-histogram tester (Theorem 3.1), end to end.

Pipeline (paper line numbers in brackets):

1. **Partition** [3]: ``APPROXPART`` with ``b = Θ(k log k / ε)``.
2. **Learn** [4]: the Lemma 3.5 χ² learner on that partition → ``D̂``.
3. **Sieve** [6–8]: discard up to ``O(k log k)`` suspect intervals via
   per-interval χ² statistics; may already reject.
4. **Check** [10]: is some ``D* ∈ H_k`` within ``ε/60`` of ``D̂`` in TV
   restricted to the kept domain ``G``? (dynamic programming).
5. **Test** [13]: the [ADK15] χ²-vs-TV tester of ``D`` against ``D̂`` on
   ``G`` with parameter ``ε' = 13ε/30``.

The tester draws samples exclusively through a
:class:`~repro.distributions.sampling.SampleSource`, so the reported
``samples_used`` is exact and auditable: every executed stage is entered in
a :class:`~repro.observability.ledger.SampleLedger`, which is reconciled —
integer equality, no tolerance — against the source's draw counter on
*every* exit path before a :class:`Verdict` is returned.
``Verdict.stage_samples`` / ``stage_timings`` are views over the same
per-stage log that feeds the trace, so a ``--trace`` run and the verdict
can never disagree.

The core is *batch-first*: :class:`TesterPipeline` exposes the stages as
individual steps so a service multiplexing many sessions
(:mod:`repro.serve`) can pause every session at the final χ² test and
compute a whole batch of per-interval statistics in one vectorized pass.
:func:`test_histogram` — the single-call API — is a thin wrapper that runs
the same steps in order, so the two paths cannot drift.

Two *backends* share this stepped skeleton (see :mod:`repro.core.backends`):
``backend="pods16"`` is Algorithm 1 verbatim as above; ``backend="cdkl22"``
is the near-optimal testing-by-learning variant — no sieve, the check stage
projects ``D̂`` onto ``H_k`` and the final χ² test runs against that
projection with a trimmed statistic and an adaptive two-stage sample
schedule (``finish_final_test`` may return ``None`` = "escalate: draw a
fresh, larger batch and call me again").
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional

import numpy as np

from repro.core.backends import DEFAULT_BACKEND, backend_budget, validate_backend
from repro.core.backends import cdkl22 as _cdkl22
from repro.core.chi2 import Chi2Result, active_mask, median_interval_statistics
from repro.core.config import TesterConfig
from repro.core.learner import learn_histogram
from repro.core.partition import approx_partition
from repro.core.sieve import SieveResult, sieve_intervals
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import Histogram
from repro.distributions.projection import (
    Projection,
    coarse_flattening_projection,
    exists_close_histogram,
)
from repro.distributions.sampling import SampleSource, as_source
from repro.kernels import use_kernel, validate_kernel
from repro.observability.ledger import SampleLedger
from repro.observability.metrics import get_metrics
from repro.observability.trace import NULL_TRACER, Tracer
from repro.util.intervals import Partition
from repro.util.rng import RandomState

#: Canonical stage order of the pipeline (used by the CLI stage table and
#: trace summaries; early-exit verdicts record a prefix of it).
STAGE_ORDER = ("partition", "learn", "sieve", "check", "chi2", "plugin")

#: Signature of the Step-10 check oracle: ``(pmf, partition, k, kept,
#: tolerance, engine=...) -> bool``.  The default is the DP of
#: :func:`~repro.distributions.projection.exists_close_histogram`; the serve
#: layer injects a caching/fallback wrapper with the same signature.
CheckOracle = Callable[..., bool]

#: Signature of the cdkl22 projection oracle: ``(pmf, partition, k, kept,
#: engine=...) -> Projection``.  The default is
#: :func:`~repro.distributions.projection.coarse_flattening_projection`; the
#: serve layer injects a caching/fallback wrapper with the same signature.
ProjectOracle = Callable[..., Projection]


@dataclass(frozen=True)
class Verdict:
    """The tester's decision, with a full audit trail."""

    accept: bool
    stage: str  # "trivial" | "sieve" | "check" | "chi2" | "plugin"
    reason: str
    samples_used: int
    k: int
    eps: float
    partition: Optional[Partition] = None
    learned: Optional[Histogram] = None
    sieve: Optional[SieveResult] = None
    chi2: Optional[Chi2Result] = None
    #: Integer samples drawn per executed stage; sums *exactly* to
    #: ``samples_used`` (ledger-reconciled on every exit path).
    stage_samples: dict = field(default_factory=dict)
    #: Wall-clock seconds per stage (partition/learn/sieve/check/chi2),
    #: recorded with ``time.perf_counter``; purely observational — no
    #: decision depends on it.
    stage_timings: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.accept


class _StageHandle:
    """An open stage: pairs the trace span with the draw/clock marks."""

    __slots__ = ("name", "cm", "span", "mark", "tick")

    def __init__(self, name: str, cm, span, mark: int, tick: float) -> None:
        self.name = name
        self.cm = cm
        self.span = span
        self.mark = mark
        self.tick = tick


class _StageLog:
    """Per-stage accounting shared by the verdict, the trace and the ledger.

    One stage (opened with :meth:`begin`/:meth:`end`, or the :meth:`stage`
    context manager wrapping them) records the integer draw count and
    wall-clock duration into the verdict's dicts, enters the draws into the
    sample ledger, and closes a trace span carrying the same numbers — a
    single source of truth for all three views.  The explicit begin/end
    form exists for the stepped pipeline, where a stage stays open across
    several calls (the batched final test).
    """

    def __init__(self, source: SampleSource, trace: Tracer, ledger: SampleLedger) -> None:
        self._source = source
        self._trace = trace
        self._ledger = ledger
        self.stage_samples: dict[str, int] = {}
        self.stage_timings: dict[str, float] = {}

    def begin(self, name: str, **attrs: object) -> _StageHandle:
        mark = self._source.samples_drawn
        tick = time.perf_counter()
        cm = self._trace.span(name, **attrs)
        span = cm.__enter__()
        return _StageHandle(name, cm, span, mark, tick)

    def end(self, handle: _StageHandle) -> None:
        try:
            drew = self._source.samples_drawn - handle.mark
            handle.span.set(samples=drew)
            self.stage_samples[handle.name] = drew
            self.stage_timings[handle.name] = time.perf_counter() - handle.tick
            self._ledger.record(handle.name, drew)
        finally:
            handle.cm.__exit__(None, None, None)

    @contextmanager
    def stage(self, name: str, **attrs: object) -> Iterator[object]:
        handle = self.begin(name, **attrs)
        try:
            yield handle.span
        finally:
            self.end(handle)


@dataclass(frozen=True)
class FinalTestPlan:
    """Everything a batched executor needs for one session's final χ² test.

    ``backend``/``stage`` carry the cdkl22 adaptive schedule: when
    ``finish_final_test`` escalates, the pipeline's *current* plan (exposed
    as :attr:`TesterPipeline.final_plan`) is replaced with a stage-1 copy at
    the larger ``m`` — a batch executor must re-read it before re-drawing.
    """

    m: float
    repeats: int
    eps_final: float
    reference_pmf: np.ndarray
    mask: np.ndarray
    backend: str = DEFAULT_BACKEND
    stage: int = 0


class TesterPipeline:
    """Stepped (batch-first) execution of Algorithm 1 over one source.

    Stepping protocol — each boundary is a point where a multiplexing
    service may interleave other sessions::

        pipeline = TesterPipeline(dist, k, eps, config=..., trace=...)
        verdict = pipeline.prepare()            # trivial/plugin short-circuit
        if verdict is None:
            pipeline.run_partition()
            pipeline.run_learn()
            verdict = pipeline.run_sieve()      # may reject
        if verdict is None:
            verdict = pipeline.run_check()      # may reject
        if verdict is None:
            plan = pipeline.begin_final_test()
            counts = pipeline.draw_final_counts()           # (repeats, n)
            z = median_interval_statistics(
                counts, plan.m, plan.reference_pmf, pipeline.partition, plan.mask
            )
            verdict = pipeline.finish_final_test(z)

    The statistics step takes *pre-drawn* counts, so a batch executor can
    stack many sessions' count matrices and compute every session's χ²
    point terms in one vectorized call — bit-identical to the serial path,
    because the arithmetic is elementwise.

    Every verdict path reconciles the per-session ledger exactly.  A caller
    that abandons a pipeline mid-flight (stream failure, timeout, budget
    overrun) must call :meth:`abort` so the partial draws of any open stage
    land in the ledger and the reconciliation still balances.
    """

    __test__ = False  # "Test"-prefixed product class; not a pytest suite

    def __init__(
        self,
        dist: DiscreteDistribution | SampleSource,
        k: int,
        eps: float,
        *,
        config: TesterConfig | None = None,
        rng: RandomState = None,
        backend: str = DEFAULT_BACKEND,
        projection_engine: str = "auto",
        kernel: str = "auto",
        check_oracle: CheckOracle | None = None,
        project_oracle: ProjectOracle | None = None,
        trace: Tracer = NULL_TRACER,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if not 0.0 < eps <= 1.0:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        self.k = k
        self.eps = eps
        self.config = config if config is not None else TesterConfig.practical()
        self.backend = validate_backend(backend)
        self.engine = projection_engine
        # Execution knob like `engine`, never an identity field: each stage
        # body runs under `use_kernel(self.kernel)` so every dispatched hot
        # loop (counting, χ² terms, projection DP) follows one setting.
        self.kernel = validate_kernel(kernel)
        self.check_oracle = (
            check_oracle if check_oracle is not None else exists_close_histogram
        )
        self.project_oracle = (
            project_oracle if project_oracle is not None else coarse_flattening_projection
        )
        self.trace = trace
        self.source = as_source(dist, rng)
        self.n = self.source.n
        self.start = self.source.samples_drawn
        self.partition: Partition | None = None
        self.learned: Histogram | None = None
        self.sieve: SieveResult | None = None
        self._b: float | None = None
        self._ledger: SampleLedger | None = None
        self._log: _StageLog | None = None
        self._final: _StageHandle | None = None
        self._plan: FinalTestPlan | None = None
        self._reference: Projection | None = None  # cdkl22: D* ∈ H_k

    # -- admission metadata ---------------------------------------------------

    def budget_cap(self) -> int | None:
        """The backend's sample cap for this instance (``None`` when the
        trivial/plugin regimes apply and the formula does not)."""
        if self.k >= self.n:
            return 0
        b = self.config.partition_b(self.k, self.eps)
        if 2.0 * b + 2.0 >= self.n / 2.0:
            return None
        return int(backend_budget(self.backend, self.n, self.k, self.eps, self.config))

    # -- stepped stages -------------------------------------------------------

    def prepare(self) -> Verdict | None:
        """Dispatch the degenerate regimes; set up the ledger otherwise.

        Returns a short-circuit :class:`Verdict` for the trivial (``k ≥ n``)
        and plug-in (``b ≈ n``) regimes, ``None`` when the main pipeline
        should run.
        """
        n, k, eps = self.n, self.k, self.eps
        # H_k for k >= n is all of Δ([n]): accept without drawing a sample.
        if k >= n:
            ledger = SampleLedger()
            samples_used = _finish(self.trace, ledger, self.source.samples_drawn - self.start)
            return Verdict(
                accept=True,
                stage="trivial",
                reason=f"k={k} >= n={n}: every distribution is an n-histogram",
                samples_used=samples_used,
                k=k,
                eps=eps,
            )

        b = self.config.partition_b(k, eps)
        if 2.0 * b + 2.0 >= n / 2.0:
            # Degenerate regime k·log k/ε = Ω(n): the partition would be almost
            # all singletons and Algorithm 1's budget exceeds the trivial one.
            # The paper's efficiency case is k = o(n) (Section 1.1: "one can
            # always … compute the closest histogram offline from O(n) data
            # points"); do exactly that here.  The plug-in draws Θ(n) samples,
            # outside the Algorithm 1 budget formula, so its ledger is uncapped.
            from repro.baselines.learn_offline import learn_offline_test

            self._ledger = SampleLedger()
            self._log = _StageLog(self.source, self.trace, self._ledger)
            with self._log.stage("plugin"), use_kernel(self.kernel):
                plugin = learn_offline_test(self.source, k, eps)
            return self._exit(
                accept=plugin.accept,
                stage="plugin",
                reason=(
                    f"b={b:.0f} ~ n={n}: plug-in fallback; empirical distance "
                    f"{plugin.plugin_distance:.4g} vs threshold {plugin.threshold:.4g}"
                ),
            )

        self._b = b
        self._ledger = SampleLedger(
            budget_cap=int(backend_budget(self.backend, n, k, eps, self.config))
        )
        self._log = _StageLog(self.source, self.trace, self._ledger)
        return None

    def run_partition(self) -> None:
        """Stage 1: partition [line 3]."""
        with self._log.stage("partition", b=int(self._b)) as span, use_kernel(self.kernel):
            self.partition = approx_partition(
                self.source, self._b, self.config.partition_samples(self.k, self.eps)
            )
            span.set(intervals=len(self.partition))

    def run_learn(self) -> None:
        """Stage 2: learn [line 4].  The cdkl22 reduction runs the same
        learner at its coarser accuracy (``ε/16`` vs ``ε/40``) — projecting
        onto ``H_k`` needs far less precision than per-interval sieving."""
        if self.backend == "cdkl22":
            num_samples = self.config.cdkl22_learner_samples(len(self.partition), self.eps)
        else:
            num_samples = self.config.learner_samples(len(self.partition), self.eps)
        with self._log.stage("learn"), use_kernel(self.kernel):
            self.learned = learn_histogram(
                self.source, self.partition, num_samples, self.trace
            )

    def run_sieve(self) -> Verdict | None:
        """Stage 3: sieve [lines 6–8]; returns a rejecting verdict or None.

        The cdkl22 backend has no sieve stage at all — breakpoint-interval
        contamination is removed by the trimmed final statistic instead —
        so it keeps every interval without opening a stage (no span, no
        ledger entry, zero samples).
        """
        if self.backend == "cdkl22":
            self.sieve = SieveResult(
                rejected=False,
                reason="cdkl22: sieve replaced by the trimmed final statistic",
                kept=np.ones(len(self.partition), dtype=bool),
                removed=np.empty(0, dtype=np.int64),
                rounds=0,
                samples_used=0,
                final_statistic=float("nan"),
            )
            return None
        with self._log.stage("sieve") as span, use_kernel(self.kernel):
            if self.config.sieve_enabled:
                self.sieve = sieve_intervals(
                    self.source, self.learned, self.k, self.eps, self.config, self.trace
                )
            else:
                # Ablation mode (E15): keep everything; the breakpoint intervals'
                # chi2 mass flows straight into the final test.
                self.sieve = SieveResult(
                    rejected=False,
                    reason="sieve disabled by configuration",
                    kept=np.ones(len(self.partition), dtype=bool),
                    removed=np.empty(0, dtype=np.int64),
                    rounds=0,
                    samples_used=0,
                    final_statistic=float("nan"),
                )
            span.set(
                rounds=self.sieve.rounds,
                removed=self.sieve.num_removed,
                rejected=self.sieve.rejected,
            )
        if self.sieve.rejected:
            return self._exit(accept=False, stage="sieve", reason=self.sieve.reason)
        return None

    def run_check(self) -> Verdict | None:
        """Stage 4: check [line 10]; returns a rejecting verdict or None.

        Sample-free (pure DP over the learned pmf), but logged like every
        other stage so the per-stage views cover all executed work on all
        exit paths.

        pods16 asks the yes/no Step-10 question against ``D̂``.  cdkl22
        computes the actual projection ``D* ∈ H_k`` (the testing-by-learning
        gate): reject sample-free when ``D̂`` is far from ``H_k``, otherwise
        keep ``D*`` as the final test's reference.
        """
        if self.backend == "cdkl22":
            return self._run_check_cdkl22()
        with self._log.stage("check") as span, use_kernel(self.kernel):
            close = self.check_oracle(
                self.learned.to_pmf(),
                self.partition,
                self.k,
                self.sieve.kept,
                self.config.check_tolerance(self.eps),
                engine=self.engine,
            )
            span.set(close=bool(close))
        if not close:
            return self._exit(
                accept=False,
                stage="check",
                reason=(
                    f"no k-histogram within {self.config.check_tolerance(self.eps):.4g} "
                    "of the learned distribution on the kept domain"
                ),
            )
        return None

    def _run_check_cdkl22(self) -> Verdict | None:
        tolerance = self.config.cdkl22_check_tolerance(self.eps)
        with self._log.stage("check") as span, use_kernel(self.kernel):
            projection = self.project_oracle(
                self.learned.to_pmf(),
                self.partition,
                self.k,
                self.sieve.kept,
                engine=self.engine,
            )
            self._reference = projection
            close = projection.distance <= tolerance
            span.set(close=bool(close), distance=float(projection.distance))
        if not close:
            return self._exit(
                accept=False,
                stage="check",
                reason=(
                    f"testing-by-learning gate: learned distribution is "
                    f"{projection.distance:.4g} from H_k on the partition "
                    f"borders (> {tolerance:.4g})"
                ),
            )
        return None

    # -- stage 5: final χ² test [line 13], stepped ---------------------------

    def begin_final_test(self) -> FinalTestPlan:
        """Open the chi2 stage and fix the test parameters.

        pods16 tests against the learned ``D̂`` restricted to the kept
        domain at ``ε' = 13ε/30``; cdkl22 tests against the projection
        ``D* ∈ H_k`` over the whole domain at its larger effective ``ε'``.
        """
        if self.backend == "cdkl22":
            eps_final = self.config.cdkl22_final_eps(self.k, self.eps)
            ref = self._reference.histogram.to_pmf()
            mask = active_mask(ref, eps_final, self.config.chi2_truncation, None)
        else:
            eps_final = self.config.final_eps(self.eps)
            kept_points = self.partition.restrict_mask(
                list(np.flatnonzero(self.sieve.kept))
            )
            ref = self.learned.to_pmf()
            mask = active_mask(ref, eps_final, self.config.chi2_truncation, kept_points)
        self._plan = FinalTestPlan(
            m=self.config.chi2_samples(self.n, eps_final),
            repeats=self.config.chi2_repeat_count(self.k),
            eps_final=eps_final,
            reference_pmf=ref,
            mask=mask,
            backend=self.backend,
        )
        self._final = self._log.begin("chi2")
        return self._plan

    def draw_final_counts(self) -> np.ndarray:
        """Draw the ``(repeats, n)`` Poissonized count matrix for the test.

        This is the only sampling step of the final test — the step where
        stream faults, deadline overruns, and budget exhaustion surface.
        """
        plan = self._plan
        # The per-repeat loop is deliberate: batching the draws would change
        # the RNG call sequence, and `kernel` must stay verdict-invariant.
        # Only the counting inside each draw dispatches.
        with use_kernel(self.kernel):
            return np.stack(
                [self.source.draw_counts_poissonized(plan.m) for _ in range(plan.repeats)]
            )

    def finish_final_test(self, z_per_interval: np.ndarray) -> Verdict | None:
        """Threshold the (externally computed) statistics into a verdict.

        Returns ``None`` **only** on the cdkl22 adaptive path when the
        stage-0 statistic is too close to the threshold to call: the plan
        (:attr:`final_plan`) is replaced with a stage-1 copy at
        ``escalation_factor × m`` and the caller must draw fresh counts,
        recompute statistics, and call again (the chi2 stage stays open, so
        ledger accounting spans both batches).  pods16 always decides in
        one call.
        """
        z_per_interval = np.asarray(z_per_interval, dtype=np.float64)
        if self._plan.backend == "cdkl22":
            return self._finish_cdkl22(z_per_interval)
        plan = self._plan
        handle = self._final
        statistic = float(z_per_interval.sum())
        threshold = self.config.chi2_accept_fraction * plan.m * plan.eps_final * plan.eps_final
        chi2 = Chi2Result(
            accept=statistic <= threshold,
            statistic=statistic,
            threshold=threshold,
            m=plan.m,
            interval_statistics=z_per_interval,
            samples_used=self.source.samples_drawn - handle.mark,
        )
        handle.span.set(statistic=chi2.statistic, threshold=chi2.threshold, accept=chi2.accept)
        self._final = None
        self._log.end(handle)
        reason = (
            f"final χ² statistic {chi2.statistic:.4g} "
            f"{'<=' if chi2.accept else '>'} threshold {chi2.threshold:.4g}"
        )
        return self._exit(accept=chi2.accept, stage="chi2", reason=reason, chi2=chi2)

    def _finish_cdkl22(self, z_per_interval: np.ndarray) -> Verdict | None:
        plan = self._plan
        handle = self._final
        trimmed = _cdkl22.trimmed_statistic(
            z_per_interval, self.partition, plan.reference_pmf, self.config, self.k, self.eps
        )
        statistic = trimmed.statistic
        threshold = self.config.chi2_accept_fraction * plan.m * plan.eps_final * plan.eps_final
        if plan.stage == 0:
            guard = _cdkl22.guard_width(self.config, plan.mask)
            if threshold - guard < statistic < threshold + guard:
                # Ambiguous: escalate once, with fresh draws at a larger m.
                self._plan = replace(
                    plan, m=float(self.config.cdkl22_escalated_m(plan.m)), stage=1
                )
                self.trace.event(
                    "chi2_escalate",
                    statistic=statistic,
                    threshold=threshold,
                    guard=guard,
                    m_next=self._plan.m,
                )
                get_metrics().counter("tester.chi2_escalations").inc()
                return None
        chi2 = Chi2Result(
            accept=statistic <= threshold,
            statistic=statistic,
            threshold=threshold,
            m=plan.m,
            interval_statistics=z_per_interval,
            samples_used=self.source.samples_drawn - handle.mark,
        )
        handle.span.set(
            statistic=chi2.statistic,
            threshold=chi2.threshold,
            accept=chi2.accept,
            trimmed=int(trimmed.trimmed_indices.size),
            stage=plan.stage,
        )
        self._final = None
        self._log.end(handle)
        escalated = ", after escalation" if plan.stage else ""
        reason = (
            f"cdkl22 trimmed χ² statistic {chi2.statistic:.4g} "
            f"({trimmed.trimmed_indices.size} intervals trimmed{escalated}) "
            f"{'<=' if chi2.accept else '>'} threshold {chi2.threshold:.4g}"
        )
        return self._exit(accept=chi2.accept, stage="chi2", reason=reason, chi2=chi2)

    @property
    def final_plan(self) -> FinalTestPlan | None:
        """The *current* final-test plan — re-read after every
        ``finish_final_test`` returning ``None``, since escalation replaces
        it with a larger-``m`` stage-1 copy."""
        return self._plan

    @property
    def final_in_flight(self) -> bool:
        """True between ``begin_final_test`` and its finish/close — i.e. the
        learn/sieve/check prefix already passed (degradation policy hook)."""
        return self._final is not None

    def close_final_test(self) -> None:
        """Close an open chi2 stage without a verdict (failure path): the
        partial draws are recorded so the ledger can still reconcile."""
        if self._final is not None:
            handle, self._final = self._final, None
            self._log.end(handle)

    def abort(self) -> int:
        """Abandon the pipeline mid-flight and reconcile what was drawn.

        Closes any open final-test stage, then demands the usual exact
        integer reconciliation over every stage the attempt executed
        (partial draws included — stages record in ``finally``).  Returns
        the attempt's reconciled sample total.
        """
        self.close_final_test()
        samples = self.source.samples_drawn - self.start
        if self._ledger is None:
            return samples  # failed before prepare(): nothing was drawn
        return _finish(self.trace, self._ledger, samples)

    # -- drivers --------------------------------------------------------------

    def run(self) -> Verdict:
        """Run every stage in order (the single-session driver)."""
        verdict = self.prepare()
        if verdict is None:
            self.run_partition()
            self.run_learn()
            verdict = self.run_sieve()
        if verdict is None:
            verdict = self.run_check()
        if verdict is None:
            self.begin_final_test()
            while verdict is None:  # cdkl22 may escalate once
                plan = self._plan
                try:
                    counts = self.draw_final_counts()
                    with use_kernel(self.kernel):
                        z = median_interval_statistics(
                            counts, plan.m, plan.reference_pmf, self.partition, plan.mask
                        )
                except BaseException:
                    self.close_final_test()
                    raise
                verdict = self.finish_final_test(z)
        return verdict

    def _exit(self, accept: bool, stage: str, reason: str, chi2: Chi2Result | None = None) -> Verdict:
        samples_used = _finish(self.trace, self._ledger, self.source.samples_drawn - self.start)
        return Verdict(
            accept=accept,
            stage=stage,
            reason=reason,
            samples_used=samples_used,
            k=self.k,
            eps=self.eps,
            partition=self.partition,
            learned=self.learned,
            sieve=self.sieve,
            chi2=chi2,
            stage_samples=dict(self._log.stage_samples),
            stage_timings=dict(self._log.stage_timings),
        )


def test_histogram(
    dist: DiscreteDistribution | SampleSource,
    k: int,
    eps: float,
    *,
    config: TesterConfig | None = None,
    rng: RandomState = None,
    backend: str = DEFAULT_BACKEND,
    projection_engine: str = "auto",
    kernel: str = "auto",
    trace: Tracer = NULL_TRACER,
) -> Verdict:
    """Test whether the unknown distribution is a ``k``-histogram.

    A thin wrapper over :class:`TesterPipeline` — construct it, run every
    stage in order, count the verdict.

    Parameters
    ----------
    dist:
        The unknown distribution — either a raw
        :class:`~repro.distributions.discrete.DiscreteDistribution` (wrapped
        into a sample source with ``rng``) or an existing
        :class:`~repro.distributions.sampling.SampleSource`.  The tester
        only ever draws samples.
    k:
        The number of histogram pieces being tested for.
    eps:
        The TV-distance proximity parameter.
    config:
        Constant profile; defaults to :meth:`TesterConfig.practical`.
    backend:
        Which decision procedure runs ("pods16" | "cdkl22"; see
        :mod:`repro.core.backends`).  Unlike ``projection_engine`` this
        changes budgets and (on marginal inputs) verdicts, so experiment
        checkpoints fingerprint it.
    projection_engine:
        Which DP engine backs the Step-10 check ("auto" | "fast" |
        "dense"); a pure execution knob that never changes the verdict, so
        it is a call parameter rather than part of ``TesterConfig``.
    kernel:
        Which compute kernels back the hot loops ("auto" | "python" |
        "numba"; see :mod:`repro.kernels`).  Like ``projection_engine``
        it is verdict-invariant — every kernel pair is bit-identical — so
        it is never fingerprinted.  ``"auto"`` picks numba when the
        optional native extra is importable, else pure numpy.
    trace:
        Observability sink (default: the no-op tracer).  A
        :class:`~repro.observability.trace.RecordingTracer` captures one
        span per stage, per-round sieve spans, and a final ``ledger``
        event reconciling every draw.

    Returns
    -------
    Verdict
        ``accept`` ≈ "``D ∈ H_k``" (guaranteed w.p. ≥ 2/3 when true);
        ``not accept`` ≈ "``dTV(D, H_k) ≥ ε``" (w.p. ≥ 2/3 when true).
    """
    pipeline = TesterPipeline(
        dist,
        k,
        eps,
        config=config,
        rng=rng,
        backend=backend,
        projection_engine=projection_engine,
        kernel=kernel,
        trace=trace,
    )
    with trace.span("test", n=pipeline.n, k=k, eps=eps, backend=pipeline.backend) as run_span:
        verdict = pipeline.run()
        run_span.set(
            accept=verdict.accept,
            stage=verdict.stage,
            samples_used=verdict.samples_used,
        )
    get_metrics().counter(
        "tester.verdicts", stage=verdict.stage, accept=verdict.accept
    ).inc()
    return verdict


def _finish(trace: Tracer, ledger: SampleLedger, samples_used: int) -> int:
    """Reconcile the ledger against the source's counter and emit the audit
    event.  Raises ``LedgerError`` on any leak/double-count/cap overrun."""
    total = ledger.reconcile(samples_used)
    trace.event("ledger", **ledger.as_attrs())
    return total


# The public name begins with "test_", which pytest would otherwise collect
# from any test module importing it.
test_histogram.__test__ = False  # type: ignore[attr-defined]


class HistogramTester:
    """Object-style façade over :func:`test_histogram`.

    Convenient when running many trials with one configuration::

        tester = HistogramTester(k=8, eps=0.2)
        verdict = tester.test(dist, rng=seed)
    """

    def __init__(
        self,
        k: int,
        eps: float,
        config: TesterConfig | None = None,
        backend: str = DEFAULT_BACKEND,
        kernel: str = "auto",
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if not 0.0 < eps <= 1.0:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        self.k = k
        self.eps = eps
        self.config = config if config is not None else TesterConfig.practical()
        self.backend = validate_backend(backend)
        self.kernel = validate_kernel(kernel)

    def test(
        self,
        dist: DiscreteDistribution | SampleSource,
        rng: RandomState = None,
        trace: Tracer = NULL_TRACER,
    ) -> Verdict:
        """Run one test; see :func:`test_histogram`."""
        return test_histogram(
            dist,
            self.k,
            self.eps,
            config=self.config,
            rng=rng,
            backend=self.backend,
            kernel=self.kernel,
            trace=trace,
        )

    def expected_samples(self, n: int) -> float:
        """Closed-form estimate of the sample budget on a size-``n`` domain."""
        return backend_budget(self.backend, n, self.k, self.eps, self.config)
