"""Algorithm 1 — the k-histogram tester (Theorem 3.1), end to end.

Pipeline (paper line numbers in brackets):

1. **Partition** [3]: ``APPROXPART`` with ``b = Θ(k log k / ε)``.
2. **Learn** [4]: the Lemma 3.5 χ² learner on that partition → ``D̂``.
3. **Sieve** [6–8]: discard up to ``O(k log k)`` suspect intervals via
   per-interval χ² statistics; may already reject.
4. **Check** [10]: is some ``D* ∈ H_k`` within ``ε/60`` of ``D̂`` in TV
   restricted to the kept domain ``G``? (dynamic programming).
5. **Test** [13]: the [ADK15] χ²-vs-TV tester of ``D`` against ``D̂`` on
   ``G`` with parameter ``ε' = 13ε/30``.

The tester draws samples exclusively through a
:class:`~repro.distributions.sampling.SampleSource`, so the reported
``samples_used`` is exact and auditable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.chi2 import Chi2Result, chi2_test
from repro.core.config import TesterConfig
from repro.core.learner import learn_histogram
from repro.core.partition import approx_partition
from repro.core.sieve import SieveResult, sieve_intervals
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import Histogram
from repro.distributions.projection import exists_close_histogram
from repro.distributions.sampling import SampleSource, as_source
from repro.util.intervals import Partition
from repro.util.rng import RandomState


@dataclass(frozen=True)
class Verdict:
    """The tester's decision, with a full audit trail."""

    accept: bool
    stage: str  # "trivial" | "sieve" | "check" | "chi2"
    reason: str
    samples_used: float
    k: int
    eps: float
    partition: Optional[Partition] = None
    learned: Optional[Histogram] = None
    sieve: Optional[SieveResult] = None
    chi2: Optional[Chi2Result] = None
    stage_samples: dict = field(default_factory=dict)
    #: Wall-clock seconds per stage (partition/learn/sieve/check/chi2),
    #: recorded with ``time.perf_counter``; purely observational — no
    #: decision depends on it.
    stage_timings: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.accept


def test_histogram(
    dist: DiscreteDistribution | SampleSource,
    k: int,
    eps: float,
    *,
    config: TesterConfig | None = None,
    rng: RandomState = None,
    projection_engine: str = "auto",
) -> Verdict:
    """Test whether the unknown distribution is a ``k``-histogram.

    Parameters
    ----------
    dist:
        The unknown distribution — either a raw
        :class:`~repro.distributions.discrete.DiscreteDistribution` (wrapped
        into a sample source with ``rng``) or an existing
        :class:`~repro.distributions.sampling.SampleSource`.  The tester
        only ever draws samples.
    k:
        The number of histogram pieces being tested for.
    eps:
        The TV-distance proximity parameter.
    config:
        Constant profile; defaults to :meth:`TesterConfig.practical`.
    projection_engine:
        Which DP engine backs the Step-10 check ("auto" | "fast" |
        "dense"); a pure execution knob that never changes the verdict, so
        it is a call parameter rather than part of ``TesterConfig``.

    Returns
    -------
    Verdict
        ``accept`` ≈ "``D ∈ H_k``" (guaranteed w.p. ≥ 2/3 when true);
        ``not accept`` ≈ "``dTV(D, H_k) ≥ ε``" (w.p. ≥ 2/3 when true).
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    if config is None:
        config = TesterConfig.practical()
    source = as_source(dist, rng)
    n = source.n
    start = source.samples_drawn
    stage_samples: dict[str, float] = {}
    stage_timings: dict[str, float] = {}

    # H_k for k >= n is all of Δ([n]): accept without drawing a sample.
    if k >= n:
        return Verdict(
            accept=True,
            stage="trivial",
            reason=f"k={k} >= n={n}: every distribution is an n-histogram",
            samples_used=0.0,
            k=k,
            eps=eps,
        )

    # ----- Stage 1: partition [line 3] --------------------------------------
    b = config.partition_b(k, eps)
    if 2.0 * b + 2.0 >= n / 2.0:
        # Degenerate regime k·log k/ε = Ω(n): the partition would be almost
        # all singletons and Algorithm 1's budget exceeds the trivial one.
        # The paper's efficiency case is k = o(n) (Section 1.1: "one can
        # always … compute the closest histogram offline from O(n) data
        # points"); do exactly that here.
        from repro.baselines.learn_offline import learn_offline_test

        plugin = learn_offline_test(source, k, eps)
        return Verdict(
            accept=plugin.accept,
            stage="plugin",
            reason=(
                f"b={b:.0f} ~ n={n}: plug-in fallback; empirical distance "
                f"{plugin.plugin_distance:.4g} vs threshold {plugin.threshold:.4g}"
            ),
            samples_used=source.samples_drawn - start,
            k=k,
            eps=eps,
        )
    mark = source.samples_drawn
    tick = time.perf_counter()
    partition = approx_partition(source, b, config.partition_samples(k, eps))
    stage_samples["partition"] = source.samples_drawn - mark
    stage_timings["partition"] = time.perf_counter() - tick

    # ----- Stage 2: learn [line 4] -------------------------------------------
    mark = source.samples_drawn
    tick = time.perf_counter()
    learned = learn_histogram(
        source, partition, config.learner_samples(len(partition), eps)
    )
    stage_samples["learn"] = source.samples_drawn - mark
    stage_timings["learn"] = time.perf_counter() - tick

    # ----- Stage 3: sieve [lines 6-8] ----------------------------------------
    mark = source.samples_drawn
    tick = time.perf_counter()
    if config.sieve_enabled:
        sieve = sieve_intervals(source, learned, k, eps, config)
    else:
        # Ablation mode (E15): keep everything; the breakpoint intervals'
        # chi2 mass flows straight into the final test.
        sieve = SieveResult(
            rejected=False,
            reason="sieve disabled by configuration",
            kept=np.ones(len(partition), dtype=bool),
            removed=np.empty(0, dtype=np.int64),
            rounds=0,
            samples_used=0.0,
            final_statistic=float("nan"),
        )
    stage_samples["sieve"] = source.samples_drawn - mark
    stage_timings["sieve"] = time.perf_counter() - tick
    if sieve.rejected:
        return Verdict(
            accept=False,
            stage="sieve",
            reason=sieve.reason,
            samples_used=source.samples_drawn - start,
            k=k,
            eps=eps,
            partition=partition,
            learned=learned,
            sieve=sieve,
            stage_samples=stage_samples,
            stage_timings=stage_timings,
        )

    # ----- Stage 4: check [line 10] ------------------------------------------
    tick = time.perf_counter()
    close = exists_close_histogram(
        learned.to_pmf(),
        partition,
        k,
        sieve.kept,
        config.check_tolerance(eps),
        engine=projection_engine,
    )
    stage_timings["check"] = time.perf_counter() - tick
    if not close:
        return Verdict(
            accept=False,
            stage="check",
            reason=(
                f"no k-histogram within {config.check_tolerance(eps):.4g} of the "
                "learned distribution on the kept domain"
            ),
            samples_used=source.samples_drawn - start,
            k=k,
            eps=eps,
            partition=partition,
            learned=learned,
            sieve=sieve,
            stage_samples=stage_samples,
            stage_timings=stage_timings,
        )

    # ----- Stage 5: final χ² test [line 13] ----------------------------------
    eps_final = config.final_eps(eps)
    kept_points = partition.restrict_mask(list(np.flatnonzero(sieve.kept)))
    mark = source.samples_drawn
    tick = time.perf_counter()
    chi2 = chi2_test(
        source,
        learned,
        eps_final,
        m=config.chi2_samples(n, eps_final),
        accept_fraction=config.chi2_accept_fraction,
        truncation=config.chi2_truncation,
        domain_mask=kept_points,
        partition=partition,
        repeats=config.chi2_repeat_count(k),
    )
    stage_samples["chi2"] = source.samples_drawn - mark
    stage_timings["chi2"] = time.perf_counter() - tick
    reason = (
        f"final χ² statistic {chi2.statistic:.4g} "
        f"{'<=' if chi2.accept else '>'} threshold {chi2.threshold:.4g}"
    )
    return Verdict(
        accept=chi2.accept,
        stage="chi2",
        reason=reason,
        samples_used=source.samples_drawn - start,
        k=k,
        eps=eps,
        partition=partition,
        learned=learned,
        sieve=sieve,
        chi2=chi2,
        stage_samples=stage_samples,
        stage_timings=stage_timings,
    )


# The public name begins with "test_", which pytest would otherwise collect
# from any test module importing it.
test_histogram.__test__ = False  # type: ignore[attr-defined]


class HistogramTester:
    """Object-style façade over :func:`test_histogram`.

    Convenient when running many trials with one configuration::

        tester = HistogramTester(k=8, eps=0.2)
        verdict = tester.test(dist, rng=seed)
    """

    def __init__(self, k: int, eps: float, config: TesterConfig | None = None) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if not 0.0 < eps <= 1.0:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        self.k = k
        self.eps = eps
        self.config = config if config is not None else TesterConfig.practical()

    def test(
        self, dist: DiscreteDistribution | SampleSource, rng: RandomState = None
    ) -> Verdict:
        """Run one test; see :func:`test_histogram`."""
        return test_histogram(dist, self.k, self.eps, config=self.config, rng=rng)

    def expected_samples(self, n: int) -> float:
        """Closed-form estimate of the sample budget on a size-``n`` domain."""
        from repro.core.budget import algorithm1_budget

        return algorithm1_budget(n, self.k, self.eps, config=self.config)
