"""Algorithm 1 — the k-histogram tester (Theorem 3.1), end to end.

Pipeline (paper line numbers in brackets):

1. **Partition** [3]: ``APPROXPART`` with ``b = Θ(k log k / ε)``.
2. **Learn** [4]: the Lemma 3.5 χ² learner on that partition → ``D̂``.
3. **Sieve** [6–8]: discard up to ``O(k log k)`` suspect intervals via
   per-interval χ² statistics; may already reject.
4. **Check** [10]: is some ``D* ∈ H_k`` within ``ε/60`` of ``D̂`` in TV
   restricted to the kept domain ``G``? (dynamic programming).
5. **Test** [13]: the [ADK15] χ²-vs-TV tester of ``D`` against ``D̂`` on
   ``G`` with parameter ``ε' = 13ε/30``.

The tester draws samples exclusively through a
:class:`~repro.distributions.sampling.SampleSource`, so the reported
``samples_used`` is exact and auditable: every executed stage is entered in
a :class:`~repro.observability.ledger.SampleLedger`, which is reconciled —
integer equality, no tolerance — against the source's draw counter on
*every* exit path before a :class:`Verdict` is returned.
``Verdict.stage_samples`` / ``stage_timings`` are views over the same
per-stage log that feeds the trace, so a ``--trace`` run and the verdict
can never disagree.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.core.chi2 import Chi2Result, chi2_test
from repro.core.config import TesterConfig
from repro.core.learner import learn_histogram
from repro.core.partition import approx_partition
from repro.core.sieve import SieveResult, sieve_intervals
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import Histogram
from repro.distributions.projection import exists_close_histogram
from repro.distributions.sampling import SampleSource, as_source
from repro.observability.ledger import SampleLedger
from repro.observability.metrics import get_metrics
from repro.observability.trace import NULL_TRACER, Tracer
from repro.util.intervals import Partition
from repro.util.rng import RandomState

#: Canonical stage order of the pipeline (used by the CLI stage table and
#: trace summaries; early-exit verdicts record a prefix of it).
STAGE_ORDER = ("partition", "learn", "sieve", "check", "chi2", "plugin")


@dataclass(frozen=True)
class Verdict:
    """The tester's decision, with a full audit trail."""

    accept: bool
    stage: str  # "trivial" | "sieve" | "check" | "chi2" | "plugin"
    reason: str
    samples_used: int
    k: int
    eps: float
    partition: Optional[Partition] = None
    learned: Optional[Histogram] = None
    sieve: Optional[SieveResult] = None
    chi2: Optional[Chi2Result] = None
    #: Integer samples drawn per executed stage; sums *exactly* to
    #: ``samples_used`` (ledger-reconciled on every exit path).
    stage_samples: dict = field(default_factory=dict)
    #: Wall-clock seconds per stage (partition/learn/sieve/check/chi2),
    #: recorded with ``time.perf_counter``; purely observational — no
    #: decision depends on it.
    stage_timings: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.accept


class _StageLog:
    """Per-stage accounting shared by the verdict, the trace and the ledger.

    One :meth:`stage` context per pipeline stage records the integer draw
    count and wall-clock duration into the verdict's dicts, enters the
    draws into the sample ledger, and closes a trace span carrying the same
    numbers — a single source of truth for all three views.
    """

    def __init__(self, source: SampleSource, trace: Tracer, ledger: SampleLedger) -> None:
        self._source = source
        self._trace = trace
        self._ledger = ledger
        self.stage_samples: dict[str, int] = {}
        self.stage_timings: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str, **attrs: object) -> Iterator[object]:
        mark = self._source.samples_drawn
        tick = time.perf_counter()
        with self._trace.span(name, **attrs) as span:
            try:
                yield span
            finally:
                drew = self._source.samples_drawn - mark
                span.set(samples=drew)
                self.stage_samples[name] = drew
                self.stage_timings[name] = time.perf_counter() - tick
                self._ledger.record(name, drew)


def test_histogram(
    dist: DiscreteDistribution | SampleSource,
    k: int,
    eps: float,
    *,
    config: TesterConfig | None = None,
    rng: RandomState = None,
    projection_engine: str = "auto",
    trace: Tracer = NULL_TRACER,
) -> Verdict:
    """Test whether the unknown distribution is a ``k``-histogram.

    Parameters
    ----------
    dist:
        The unknown distribution — either a raw
        :class:`~repro.distributions.discrete.DiscreteDistribution` (wrapped
        into a sample source with ``rng``) or an existing
        :class:`~repro.distributions.sampling.SampleSource`.  The tester
        only ever draws samples.
    k:
        The number of histogram pieces being tested for.
    eps:
        The TV-distance proximity parameter.
    config:
        Constant profile; defaults to :meth:`TesterConfig.practical`.
    projection_engine:
        Which DP engine backs the Step-10 check ("auto" | "fast" |
        "dense"); a pure execution knob that never changes the verdict, so
        it is a call parameter rather than part of ``TesterConfig``.
    trace:
        Observability sink (default: the no-op tracer).  A
        :class:`~repro.observability.trace.RecordingTracer` captures one
        span per stage, per-round sieve spans, and a final ``ledger``
        event reconciling every draw.

    Returns
    -------
    Verdict
        ``accept`` ≈ "``D ∈ H_k``" (guaranteed w.p. ≥ 2/3 when true);
        ``not accept`` ≈ "``dTV(D, H_k) ≥ ε``" (w.p. ≥ 2/3 when true).
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    if config is None:
        config = TesterConfig.practical()
    source = as_source(dist, rng)
    n = source.n
    start = source.samples_drawn

    with trace.span("test", n=n, k=k, eps=eps) as run_span:
        verdict = _run_pipeline(
            source, n, k, eps, config, projection_engine, trace, start
        )
        run_span.set(
            accept=verdict.accept,
            stage=verdict.stage,
            samples_used=verdict.samples_used,
        )
    get_metrics().counter(
        "tester.verdicts", stage=verdict.stage, accept=verdict.accept
    ).inc()
    return verdict


def _run_pipeline(
    source: SampleSource,
    n: int,
    k: int,
    eps: float,
    config: TesterConfig,
    projection_engine: str,
    trace: Tracer,
    start: int,
) -> Verdict:
    # H_k for k >= n is all of Δ([n]): accept without drawing a sample.
    if k >= n:
        ledger = SampleLedger()
        samples_used = _finish(trace, ledger, source.samples_drawn - start)
        return Verdict(
            accept=True,
            stage="trivial",
            reason=f"k={k} >= n={n}: every distribution is an n-histogram",
            samples_used=samples_used,
            k=k,
            eps=eps,
        )

    b = config.partition_b(k, eps)
    if 2.0 * b + 2.0 >= n / 2.0:
        # Degenerate regime k·log k/ε = Ω(n): the partition would be almost
        # all singletons and Algorithm 1's budget exceeds the trivial one.
        # The paper's efficiency case is k = o(n) (Section 1.1: "one can
        # always … compute the closest histogram offline from O(n) data
        # points"); do exactly that here.  The plug-in draws Θ(n) samples,
        # outside the Algorithm 1 budget formula, so its ledger is uncapped.
        from repro.baselines.learn_offline import learn_offline_test

        ledger = SampleLedger()
        log = _StageLog(source, trace, ledger)
        with log.stage("plugin"):
            plugin = learn_offline_test(source, k, eps)
        samples_used = _finish(trace, ledger, source.samples_drawn - start)
        return Verdict(
            accept=plugin.accept,
            stage="plugin",
            reason=(
                f"b={b:.0f} ~ n={n}: plug-in fallback; empirical distance "
                f"{plugin.plugin_distance:.4g} vs threshold {plugin.threshold:.4g}"
            ),
            samples_used=samples_used,
            k=k,
            eps=eps,
            stage_samples=dict(log.stage_samples),
            stage_timings=dict(log.stage_timings),
        )

    from repro.core.budget import algorithm1_budget

    ledger = SampleLedger(budget_cap=int(algorithm1_budget(n, k, eps, config)))
    log = _StageLog(source, trace, ledger)

    # ----- Stage 1: partition [line 3] --------------------------------------
    with log.stage("partition", b=int(b)) as span:
        partition = approx_partition(source, b, config.partition_samples(k, eps))
        span.set(intervals=len(partition))

    # ----- Stage 2: learn [line 4] -------------------------------------------
    with log.stage("learn"):
        learned = learn_histogram(
            source, partition, config.learner_samples(len(partition), eps), trace
        )

    # ----- Stage 3: sieve [lines 6-8] ----------------------------------------
    with log.stage("sieve") as span:
        if config.sieve_enabled:
            sieve = sieve_intervals(source, learned, k, eps, config, trace)
        else:
            # Ablation mode (E15): keep everything; the breakpoint intervals'
            # chi2 mass flows straight into the final test.
            sieve = SieveResult(
                rejected=False,
                reason="sieve disabled by configuration",
                kept=np.ones(len(partition), dtype=bool),
                removed=np.empty(0, dtype=np.int64),
                rounds=0,
                samples_used=0,
                final_statistic=float("nan"),
            )
        span.set(rounds=sieve.rounds, removed=sieve.num_removed,
                 rejected=sieve.rejected)
    if sieve.rejected:
        samples_used = _finish(trace, ledger, source.samples_drawn - start)
        return Verdict(
            accept=False,
            stage="sieve",
            reason=sieve.reason,
            samples_used=samples_used,
            k=k,
            eps=eps,
            partition=partition,
            learned=learned,
            sieve=sieve,
            stage_samples=dict(log.stage_samples),
            stage_timings=dict(log.stage_timings),
        )

    # ----- Stage 4: check [line 10] ------------------------------------------
    # Sample-free (pure DP over the learned pmf), but logged like every other
    # stage so the per-stage views cover all executed work on all exit paths.
    with log.stage("check") as span:
        close = exists_close_histogram(
            learned.to_pmf(),
            partition,
            k,
            sieve.kept,
            config.check_tolerance(eps),
            engine=projection_engine,
        )
        span.set(close=bool(close))
    if not close:
        samples_used = _finish(trace, ledger, source.samples_drawn - start)
        return Verdict(
            accept=False,
            stage="check",
            reason=(
                f"no k-histogram within {config.check_tolerance(eps):.4g} of the "
                "learned distribution on the kept domain"
            ),
            samples_used=samples_used,
            k=k,
            eps=eps,
            partition=partition,
            learned=learned,
            sieve=sieve,
            stage_samples=dict(log.stage_samples),
            stage_timings=dict(log.stage_timings),
        )

    # ----- Stage 5: final χ² test [line 13] ----------------------------------
    eps_final = config.final_eps(eps)
    kept_points = partition.restrict_mask(list(np.flatnonzero(sieve.kept)))
    with log.stage("chi2") as span:
        chi2 = chi2_test(
            source,
            learned,
            eps_final,
            m=config.chi2_samples(n, eps_final),
            accept_fraction=config.chi2_accept_fraction,
            truncation=config.chi2_truncation,
            domain_mask=kept_points,
            partition=partition,
            repeats=config.chi2_repeat_count(k),
        )
        span.set(statistic=chi2.statistic, threshold=chi2.threshold,
                 accept=chi2.accept)
    samples_used = _finish(trace, ledger, source.samples_drawn - start)
    reason = (
        f"final χ² statistic {chi2.statistic:.4g} "
        f"{'<=' if chi2.accept else '>'} threshold {chi2.threshold:.4g}"
    )
    return Verdict(
        accept=chi2.accept,
        stage="chi2",
        reason=reason,
        samples_used=samples_used,
        k=k,
        eps=eps,
        partition=partition,
        learned=learned,
        sieve=sieve,
        chi2=chi2,
        stage_samples=dict(log.stage_samples),
        stage_timings=dict(log.stage_timings),
    )


def _finish(trace: Tracer, ledger: SampleLedger, samples_used: int) -> int:
    """Reconcile the ledger against the source's counter and emit the audit
    event.  Raises ``LedgerError`` on any leak/double-count/cap overrun."""
    total = ledger.reconcile(samples_used)
    trace.event("ledger", **ledger.as_attrs())
    return total


# The public name begins with "test_", which pytest would otherwise collect
# from any test module importing it.
test_histogram.__test__ = False  # type: ignore[attr-defined]


class HistogramTester:
    """Object-style façade over :func:`test_histogram`.

    Convenient when running many trials with one configuration::

        tester = HistogramTester(k=8, eps=0.2)
        verdict = tester.test(dist, rng=seed)
    """

    def __init__(self, k: int, eps: float, config: TesterConfig | None = None) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if not 0.0 < eps <= 1.0:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        self.k = k
        self.eps = eps
        self.config = config if config is not None else TesterConfig.practical()

    def test(
        self,
        dist: DiscreteDistribution | SampleSource,
        rng: RandomState = None,
        trace: Tracer = NULL_TRACER,
    ) -> Verdict:
        """Run one test; see :func:`test_histogram`."""
        return test_histogram(
            dist, self.k, self.eps, config=self.config, rng=rng, trace=trace
        )

    def expected_samples(self, n: int) -> float:
        """Closed-form estimate of the sample budget on a size-``n`` domain."""
        from repro.core.budget import algorithm1_budget

        return algorithm1_budget(n, self.k, self.eps, config=self.config)
