"""Closed-form sample-complexity formulas.

Two families live here:

* the *theorem* formulas — unit-constant versions of the asymptotic bounds
  of this paper and the prior work it compares against (used by experiment
  E1 to chart the landscape and crossovers exactly as Section 1.2 describes
  them);
* the *implementation* budget — the exact number of samples Algorithm 1
  draws under a given :class:`~repro.core.config.TesterConfig`, summed over
  its stages (kept in lockstep with the implementation; tests assert the
  tester's measured usage matches this formula).
"""

from __future__ import annotations

import math

from repro.core.config import TesterConfig, _log2k


def theorem_upper_bound(n: int, k: int, eps: float) -> float:
    """Theorem 3.1 (unit constants):
    ``√n/ε²·log k + k/ε³·log²k + k/ε·log(k/ε)``."""
    _check(n, k, eps)
    logk = _log2k(k)
    return (
        math.sqrt(n) / eps**2 * logk
        + k / eps**3 * logk**2
        + k / eps * math.log2(max(2.0, k / eps))
    )


def theorem_lower_bound(n: int, k: int, eps: float) -> float:
    """Theorem 1.2 (unit constants): ``√n/ε² + k/(ε·log k)``."""
    _check(n, k, eps)
    return math.sqrt(n) / eps**2 + k / (eps * _log2k(k))


def paninski_lower_bound(n: int, eps: float) -> float:
    """Proposition 4.1 / [Pan08] (unit constants): ``√n/ε²``."""
    _check(n, 1, eps)
    return math.sqrt(n) / eps**2


def support_size_lower_bound(k: int, eps: float) -> float:
    """Proposition 4.2 / [VV10] (unit constants): ``k/(ε·log k)``."""
    _check(1, k, eps)
    return k / (eps * _log2k(k))


def ilr12_budget(n: int, k: int, eps: float) -> float:
    """[ILR12] upper bound (unit constants): ``√(kn)/ε⁵ · log n``."""
    _check(n, k, eps)
    return math.sqrt(k * n) / eps**5 * math.log2(max(2, n))


def cdgr16_budget(n: int, k: int, eps: float) -> float:
    """[CDGR16] upper bound (unit constants): ``√(kn)/ε³ · log n``."""
    _check(n, k, eps)
    return math.sqrt(k * n) / eps**3 * math.log2(max(2, n))


def learn_offline_budget(n: int, eps: float) -> float:
    """The trivial baseline: learn everything, project offline — ``Θ(n/ε²)``."""
    _check(n, 1, eps)
    return n / eps**2


def algorithm1_budget(
    n: int, k: int, eps: float, config: TesterConfig | None = None
) -> float:
    """Exact worst-case sample usage of this implementation of Algorithm 1.

    Sums the budgets of every stage (partition, learn, sieve with its
    maximum round count, final test), each amplified by the configured
    repeat count.  The tester can use *less* (the sieve may finish early or
    reject), never more.
    """
    _check(n, k, eps)
    if config is None:
        config = TesterConfig.practical()
    if k >= n:
        return 0.0
    partition = config.partition_samples(k, eps)
    b = config.partition_b(k, eps)
    worst_intervals = int(4 * b + 2)  # greedy APPROXPART bound (see E12)
    learner = config.learner_samples(worst_intervals, eps)
    repeats = config.chi2_repeat_count(k)
    sieve_batches = 1 + config.sieve_rounds(k)  # phase A + phase-B rounds
    if not config.fresh_sieve_samples:
        sieve_batches = 1
    if not config.sieve_enabled:
        sieve_batches = 0
    sieve = sieve_batches * repeats * config.chi2_samples(n, config.sieve_alpha(eps))
    final = repeats * config.chi2_samples(n, config.final_eps(eps))
    return float(partition + learner + sieve + final)


def capped_source(
    dist,
    n: int,
    k: int,
    eps: float,
    *,
    config: TesterConfig | None = None,
    slack: float = 1.5,
    rng=None,
):
    """A :class:`~repro.distributions.sampling.SampleSource` hard-capped at
    ``slack ×`` the closed-form worst-case budget of Algorithm 1.

    Any configuration that tries to draw past the cap — a runaway bisection,
    a mis-scaled profile, a bug reintroducing sample reuse — raises
    :class:`~repro.distributions.sampling.SampleBudgetExceeded` immediately
    instead of simulating forever.
    """
    from repro.distributions.sampling import SampleSource

    if slack <= 0:
        raise ValueError(f"slack must be positive, got {slack}")
    # Ceil exactly once: the cap is an integer from here on, so budget
    # enforcement and ledger reconciliation never compare floats.
    cap = math.ceil(slack * algorithm1_budget(n, k, eps, config))
    if cap <= 0:
        raise ValueError(f"degenerate budget cap {cap} for n={n}, k={k}")
    return SampleSource(dist, rng, max_samples=cap)


def budget_table_row(n: int, k: int, eps: float) -> dict:
    """One row of the experiment-E1 landscape table."""
    return {
        "n": n,
        "k": k,
        "eps": eps,
        "this_paper_ub": theorem_upper_bound(n, k, eps),
        "lower_bound": theorem_lower_bound(n, k, eps),
        "ilr12": ilr12_budget(n, k, eps),
        "cdgr16": cdgr16_budget(n, k, eps),
        "learn_offline": learn_offline_budget(n, eps),
    }


def _check(n: int, k: int, eps: float) -> None:
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
