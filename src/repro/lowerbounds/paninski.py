"""Proposition 4.1 — the Paninski-style ``Ω(√n/ε²)`` lower bound.

The hard family ``Q_ε`` ([Pan08], adapted): pair up the domain and perturb
each pair by ``±cε/n`` according to a uniformly random sign vector
``z ∈ {0,1}^{n/2}``:

    ``D(2i) = (1 + (−1)^{z_i} c ε)/n``,  ``D(2i+1) = (1 − (−1)^{z_i} c ε)/n``.

Every member is ``ε``-far from ``H_k`` for ``k < n/3`` (with ``c ≥ 6``; the
pairing argument of the proposition), yet distinguishing a random member
from the uniform distribution requires ``Ω(√n/ε²)`` samples.

The module provides the construction, the closed-form farness certificate,
and the natural *pair statistic* distinguisher (the one whose analysis is
tight for this family) used by experiment E8 to trace the empirical
distinguishing threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.util.rng import RandomState, ensure_rng


def paninski_instance(
    n: int, eps: float, rng: RandomState = None, *, c: float = 6.0
) -> DiscreteDistribution:
    """Draw a uniformly random member of ``Q_ε`` on an even domain."""
    if n < 2 or n % 2 != 0:
        raise ValueError(f"domain size must be even and >= 2, got {n}")
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    if c * eps >= 1:
        raise ValueError(f"need c*eps < 1 to keep the pmf positive, got {c * eps}")
    gen = ensure_rng(rng)
    signs = gen.integers(0, 2, size=n // 2) * 2 - 1  # ±1 per pair
    pmf = np.empty(n)
    pmf[0::2] = (1.0 + signs * c * eps) / n
    pmf[1::2] = (1.0 - signs * c * eps) / n
    return DiscreteDistribution(pmf, validate=False)


def paninski_distance_lower_bound(n: int, eps: float, k: int, *, c: float = 6.0) -> float:
    """Certified ``dTV(D, H_k)`` lower bound for any ``D ∈ Q_ε``.

    Proposition 4.1's pairing argument: any ``D* ∈ H_k`` equalises at least
    ``n/2 − k + 1`` pairs, each costing ``2cε/n``, so
    ``dTV ≥ (n/2 − k + 1)·cε/n``.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    pairs_equalised = n // 2 - (k - 1)
    return max(0.0, pairs_equalised * c * eps / n)


@dataclass(frozen=True)
class DistinguishingResult:
    """Outcome of one uniform-vs-``Q_ε`` distinguishing experiment."""

    success_rate: float
    m: float
    trials: int
    threshold: float


def pair_statistic(counts: np.ndarray) -> float:
    """``T = Σ_pairs ((N_{2i} − N_{2i+1})² − (N_{2i} + N_{2i+1}))``.

    Under Poissonized sampling with mean ``m``: ``E[T] = 0`` for the uniform
    distribution and ``E[T] = 2 m² c² ε²/n`` under any member of ``Q_ε`` —
    the moment gap the lower bound says cannot be exploited below
    ``m = Ω(√n/ε²)``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if len(counts) % 2 != 0:
        raise ValueError("pair statistic needs an even domain")
    diff = counts[0::2] - counts[1::2]
    total = counts[0::2] + counts[1::2]
    return float((diff * diff - total).sum())


def expected_pair_statistic(n: int, eps: float, m: float, *, c: float = 6.0) -> float:
    """``E[T]`` under a ``Q_ε`` member with Poissonized mean ``m``."""
    return 2.0 * m * m * c * c * eps * eps / n


def distinguishing_experiment(
    n: int,
    eps: float,
    m: float,
    trials: int,
    rng: RandomState = None,
    *,
    c: float = 6.0,
) -> DistinguishingResult:
    """Measure how well the pair statistic separates uniform from ``Q_ε``.

    Each trial flips a fair coin, draws Poissonized counts from either the
    uniform distribution or a fresh ``Q_ε`` member, and guesses "perturbed"
    iff ``T`` exceeds half its perturbed expectation.  Returns the success
    rate; 0.5 = blind guessing, ≥ 2/3 = the tester's bar.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    gen = ensure_rng(rng)
    uniform = DiscreteDistribution.uniform(n)
    threshold = 0.5 * expected_pair_statistic(n, eps, m, c=c)
    correct = 0
    for _ in range(trials):
        is_perturbed = bool(gen.integers(0, 2))
        dist = paninski_instance(n, eps, gen, c=c) if is_perturbed else uniform
        counts = dist.sample_counts_poissonized(m, gen)
        guess = pair_statistic(counts) > threshold
        correct += guess == is_perturbed
    return DistinguishingResult(
        success_rate=correct / trials,
        m=m,
        trials=trials,
        threshold=threshold,
    )


def critical_sample_size(n: int, eps: float, *, c: float = 6.0) -> float:
    """The ``√n/(c²ε²)``-scale pivot where the pair statistic's signal
    (``2m²c²ε²/n``) matches its uniform-case noise (``≈ 2m/√n``)."""
    if n < 2 or not 0 < eps <= 1:
        raise ValueError(f"bad parameters n={n}, eps={eps}")
    return math.sqrt(n) / (c * c * eps * eps)
