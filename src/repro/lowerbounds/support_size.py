"""Proposition 4.2 — the ``Ω(k/(ε log k))`` bound via support-size estimation.

The reduction (Section 4.2): a tester for ``H_k`` can solve the promise
problem ``SUPPSIZE_m`` — given ``D ∈ Δ([m])`` with every probability in
``{0} ∪ [1/m, 1]``, decide ``supp(D) ≤ m/3`` vs ``supp(D) ≥ 7m/8`` — by

1. embedding ``[m]`` into a larger domain ``[n]``;
2. relabeling by a uniformly random permutation ``σ``;
3. running the histogram tester with ``k = 2⌈m/3⌉ + 1`` and ``ε₁ = 1/24``.

Small support ⇒ the permuted distribution is a ``k``-histogram with
probability one.  Large support ⇒ by **Lemma 4.4** a random permutation
keeps the support "sprinkled" (``cover(σ(S)) > 6ℓ/7`` w.p. ≥ 1 − 7ℓ/n), so
the permuted distribution needs ≫ k pieces and sits at constant TV distance
from ``H_k``.  Since ``SUPPSIZE_m`` needs ``Ω(m/log m)`` samples ([VV10]),
so does testing ``H_k``.

This module builds the promise instances, runs the reduction with any
tester, and Monte-Carlo-verifies Lemma 4.4 (experiment E9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.sampling import SampleSource
from repro.util.intervals import cover
from repro.util.rng import RandomState, child_rng, ensure_rng
from repro.util.stats import majority

#: The reduction's distance parameter (Section 4.2): ε₁ = 1/24.
REDUCTION_EPSILON = 1.0 / 24.0


@dataclass(frozen=True)
class SuppSizeInstance:
    """A ``SUPPSIZE_m`` promise instance."""

    dist: DiscreteDistribution
    m: int
    support_size: int
    is_small: bool  # True: supp <= m/3; False: supp >= 7m/8


def suppsize_instance(
    m: int, small: bool, rng: RandomState = None, *, contiguous: bool = False
) -> SuppSizeInstance:
    """Build a promise instance: uniform over a support of the promised size.

    All non-zero probabilities equal ``1/s ≥ 1/m``, meeting the promise.
    ``contiguous`` places the support on a prefix (the adversarially *easy*
    layout — the random permutation of the reduction destroys it anyway).
    """
    if m < 8:
        raise ValueError(f"m must be at least 8, got {m}")
    gen = ensure_rng(rng)
    size = m // 3 if small else (7 * m) // 8
    size = max(1, size)
    pmf = np.zeros(m)
    if contiguous:
        points = np.arange(size)
    else:
        points = gen.choice(m, size=size, replace=False)
    pmf[points] = 1.0 / size
    return SuppSizeInstance(
        dist=DiscreteDistribution(pmf, validate=False),
        m=m,
        support_size=size,
        is_small=small,
    )


def reduction_parameters(k: int) -> tuple[int, float]:
    """``(m, ε₁)`` for reducing ``SUPPSIZE_m`` to testing ``H_k``:
    ``m = ⌈3(k−1)/2⌉`` (so that ``k = 2m/3 + 1``-ish), ``ε₁ = 1/24``."""
    if k < 3:
        raise ValueError(f"reduction needs k >= 3, got {k}")
    m = math.ceil(1.5 * (k - 1))
    return m, REDUCTION_EPSILON


def solve_suppsize_via_tester(
    instance: SuppSizeInstance,
    n: int,
    tester: Callable[[SampleSource, int, float], bool],
    *,
    repeats: int = 3,
    rng: RandomState = None,
) -> bool:
    """Run the reduction; returns the guess for "support is small".

    ``tester(source, k, eps) -> accept`` is any k-histogram tester (accept
    ⇒ histogram).  Each repetition draws a fresh permutation and fresh
    samples; the final answer is the majority vote, exactly as in the
    proposition.
    """
    if n < instance.m:
        raise ValueError(f"need n >= m, got n={n} < m={instance.m}")
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    gen = ensure_rng(rng)
    k = 2 * (instance.m // 3) + 1
    embedded = instance.dist.embed(n)
    votes = []
    for _ in range(repeats):
        sigma = gen.permutation(n)
        source = SampleSource(embedded.permute(sigma), child_rng(gen))
        votes.append(tester(source, k, REDUCTION_EPSILON))
    return majority(votes)


def permuted_cover(support: np.ndarray, n: int, rng: RandomState = None) -> int:
    """``cover(σ(S))`` for one uniformly random permutation ``σ`` of [n]."""
    gen = ensure_rng(rng)
    support = np.asarray(support, dtype=np.int64)
    sigma = gen.permutation(n)
    return cover(sigma[support], n)


@dataclass(frozen=True)
class CoverExperiment:
    """Monte-Carlo estimate vs the Lemma 4.4 bound."""

    n: int
    ell: int
    trials: int
    empirical_probability: float
    lemma_bound: float
    mean_cover: float


def cover_experiment(
    n: int, ell: int, trials: int, rng: RandomState = None
) -> CoverExperiment:
    """Estimate ``Pr[cover(σ(S)) ≤ 6ℓ/7]`` for ``|S| = ℓ`` against the
    Lemma 4.4 bound ``7ℓ/n`` (the bound is permutation-invariant in ``S``,
    so a prefix support is taken WLOG)."""
    if not 1 <= ell <= n:
        raise ValueError(f"need 1 <= ell <= n, got ell={ell}, n={n}")
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    gen = ensure_rng(rng)
    support = np.arange(ell)
    cutoff = 6 * ell / 7
    covers = np.array([permuted_cover(support, n, gen) for _ in range(trials)])
    return CoverExperiment(
        n=n,
        ell=ell,
        trials=trials,
        empirical_probability=float(np.mean(covers <= cutoff)),
        lemma_bound=min(1.0, 7.0 * ell / n),
        mean_cover=float(covers.mean()),
    )


def expected_cover(ell: int, n: int) -> float:
    """``E[cover(σ(S))] ≥ E[X] = ℓ(1 − ℓ/n)`` (the proof's border-count)."""
    return ell * (1.0 - ell / n)
