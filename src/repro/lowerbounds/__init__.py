"""The Section 4 lower-bound constructions (Theorem 1.2)."""

from repro.lowerbounds.paninski import (
    DistinguishingResult,
    critical_sample_size,
    distinguishing_experiment,
    expected_pair_statistic,
    pair_statistic,
    paninski_distance_lower_bound,
    paninski_instance,
)
from repro.lowerbounds.support_size import (
    REDUCTION_EPSILON,
    CoverExperiment,
    SuppSizeInstance,
    cover_experiment,
    expected_cover,
    permuted_cover,
    reduction_parameters,
    solve_suppsize_via_tester,
    suppsize_instance,
)

__all__ = [
    "REDUCTION_EPSILON",
    "CoverExperiment",
    "DistinguishingResult",
    "SuppSizeInstance",
    "cover_experiment",
    "critical_sample_size",
    "distinguishing_experiment",
    "expected_cover",
    "expected_pair_statistic",
    "pair_statistic",
    "paninski_distance_lower_bound",
    "paninski_instance",
    "permuted_cover",
    "reduction_parameters",
    "solve_suppsize_via_tester",
    "suppsize_instance",
]
