"""``repro report``: the results store as a queryable sweep index.

The store is not just a queue — after (or during) a run it answers the
questions an operator actually asks: how far along is the sweep, which
workers did what, what faults happened, and — the headline — does the
sample accounting reconcile *exactly*.

Zero-drift accounting
---------------------

Each committed shard row stores a ``samples_total`` the worker claimed at
commit time.  The shard's full sub-trace is stored alongside it, and every
tester invocation in that trace carries a ledger event whose integer
``attrs["total"]`` was reconciled against the source's true draw count at
verdict time.  ``accounting`` therefore *recomputes* each shard's total
from the stored trace and diffs it against the committed figure: any
nonzero drift means a worker committed numbers its own trace does not
support — lost samples, double-counting, or a torn write — and the report
says so per shard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.distributed.spec import ledger_totals
from repro.distributed.store import ResultsStore


@dataclass(frozen=True)
class ShardAccounting:
    """One shard's committed-vs-recomputed sample accounting."""

    index: int
    shard_id: str
    worker_id: str
    committed_samples: int
    recomputed_samples: int
    trials_total: int

    @property
    def drift(self) -> int:
        return self.committed_samples - self.recomputed_samples

    def to_json(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "shard_id": self.shard_id,
            "worker_id": self.worker_id,
            "committed_samples": self.committed_samples,
            "recomputed_samples": self.recomputed_samples,
            "trials_total": self.trials_total,
            "drift": self.drift,
        }


@dataclass(frozen=True)
class StoreReport:
    """Everything ``repro report`` prints, as structured data."""

    counts: dict
    event_tally: dict
    per_worker: dict
    shards: tuple
    total_committed_samples: int
    total_recomputed_samples: int
    finished: bool
    fingerprint: "dict | None"

    @property
    def total_drift(self) -> int:
        return self.total_committed_samples - self.total_recomputed_samples

    def to_json(self) -> dict[str, Any]:
        return {
            "counts": dict(self.counts),
            "event_tally": dict(self.event_tally),
            "per_worker": {k: dict(v) for k, v in self.per_worker.items()},
            "shards": [s.to_json() for s in self.shards],
            "total_committed_samples": self.total_committed_samples,
            "total_recomputed_samples": self.total_recomputed_samples,
            "total_drift": self.total_drift,
            "finished": self.finished,
            "fingerprint": self.fingerprint,
        }


def accounting(store: ResultsStore) -> list[ShardAccounting]:
    """Recompute each committed shard's sample total from its stored trace."""
    rows = []
    for result in store.results():
        recomputed, _events = ledger_totals(list(result.trace))
        rows.append(
            ShardAccounting(
                index=result.index,
                shard_id=result.shard_id,
                worker_id=result.worker_id,
                committed_samples=result.samples_total,
                recomputed_samples=recomputed,
                trials_total=result.trials_total,
            )
        )
    return rows


def summarize(store: ResultsStore) -> StoreReport:
    """The full store report (also checks queue invariants — a report that
    would print inconsistent numbers raises instead)."""
    store.check_invariants()
    shards = accounting(store)
    per_worker: dict[str, dict[str, int]] = {}
    for shard in shards:
        stats = per_worker.setdefault(
            shard.worker_id, {"committed": 0, "samples": 0, "drift": 0}
        )
        stats["committed"] += 1
        stats["samples"] += shard.committed_samples
        stats["drift"] += shard.drift
    tally = store.event_tally()
    for event in store.events():
        if event["kind"] != "claim":
            continue
        worker = event["worker_id"]
        per_worker.setdefault(worker, {"committed": 0, "samples": 0, "drift": 0})
        per_worker[worker]["claims"] = per_worker[worker].get("claims", 0) + 1
    return StoreReport(
        counts=store.counts(),
        event_tally=tally,
        per_worker=per_worker,
        shards=tuple(shards),
        total_committed_samples=sum(s.committed_samples for s in shards),
        total_recomputed_samples=sum(s.recomputed_samples for s in shards),
        finished=store.finished(),
        fingerprint=store.fingerprint(),
    )


def format_report(report: StoreReport, *, events: bool = False) -> str:
    """Human-readable rendering for the CLI."""
    lines = []
    counts = report.counts
    status = "finished" if report.finished else "in progress"
    lines.append(
        f"sweep {status}: {counts['committed']}/{counts['shards']} shards "
        f"committed, {counts['leased']} leased, "
        f"{counts['pending'] - counts['leased']} queued"
    )
    tally = report.event_tally
    lines.append(
        "events: "
        + ", ".join(f"{kind}={tally[kind]}" for kind in sorted(tally) if tally[kind])
    )
    if report.per_worker:
        lines.append("workers:")
        for worker_id in sorted(report.per_worker):
            stats = report.per_worker[worker_id]
            lines.append(
                f"  {worker_id:>8}: claims={stats.get('claims', 0)} "
                f"committed={stats['committed']} samples={stats['samples']} "
                f"drift={stats['drift']}"
            )
    if report.shards:
        lines.append("accounting (committed vs recomputed from stored traces):")
        for shard in report.shards:
            flag = "" if shard.drift == 0 else "  <-- DRIFT"
            lines.append(
                f"  shard[{shard.index}] {shard.shard_id[:12]} by "
                f"{shard.worker_id}: committed={shard.committed_samples} "
                f"recomputed={shard.recomputed_samples} "
                f"trials={shard.trials_total}{flag}"
            )
        verdict = (
            "zero drift — every committed sample is backed by its trace"
            if report.total_drift == 0
            else f"TOTAL DRIFT {report.total_drift:+d} samples"
        )
        lines.append(
            f"totals: committed={report.total_committed_samples} "
            f"recomputed={report.total_recomputed_samples} ({verdict})"
        )
    return "\n".join(lines)


def report_json(report: StoreReport) -> str:
    return json.dumps(report.to_json(), sort_keys=True, indent=2)
