"""Fault-tolerant distributed sweep execution over a crash-consistent store.

The public surface:

* :class:`~repro.distributed.spec.SweepSpec` / :func:`~repro.distributed.spec.run_shard`
  — the serialisable unit of work and its deterministic executor;
* :class:`~repro.distributed.store.ResultsStore` — the sqlite
  queue/lease/results store every process coordinates through;
* :class:`~repro.distributed.worker.Worker` — the claim/run/commit loop
  behind ``repro worker``;
* :func:`~repro.distributed.coordinator.distributed_sweep` — end-to-end:
  create store, supervise a worker fleet, assemble the byte-identical
  :class:`~repro.experiments.sweeps.SweepResult`;
* :func:`~repro.distributed.report.summarize` — the store as a queryable
  results index with zero-drift sample accounting (``repro report``);
* :class:`~repro.distributed.chaos.ChaosSchedule` — deterministic fault
  injection for the whole stack.
"""

from repro.distributed.chaos import ACTIONS, ChaosSchedule, ChaosState
from repro.distributed.coordinator import (
    FleetReport,
    assemble,
    create_store,
    distributed_sweep,
    run_fleet,
    run_local,
    spec_from_store,
)
from repro.distributed.report import (
    ShardAccounting,
    StoreReport,
    accounting,
    format_report,
    summarize,
)
from repro.distributed.spec import ShardResult, SweepSpec, ledger_totals, run_shard
from repro.distributed.store import (
    CommittedResult,
    Lease,
    ResultsStore,
    Shard,
    StoreError,
)
from repro.distributed.worker import Worker, WorkerOptions, WorkerSummary, worker_main

__all__ = [
    "ACTIONS",
    "ChaosSchedule",
    "ChaosState",
    "CommittedResult",
    "FleetReport",
    "Lease",
    "ResultsStore",
    "Shard",
    "ShardAccounting",
    "ShardResult",
    "StoreError",
    "StoreReport",
    "SweepSpec",
    "Worker",
    "WorkerOptions",
    "WorkerSummary",
    "accounting",
    "assemble",
    "create_store",
    "distributed_sweep",
    "format_report",
    "ledger_totals",
    "run_fleet",
    "run_local",
    "run_shard",
    "spec_from_store",
    "summarize",
    "worker_main",
]
