"""The crash-consistent sqlite results store: queue, leases, results, audit.

One sqlite file is the *entire* coordination surface of a distributed
sweep: the coordinator enqueues shards into it, workers claim and commit
through it, and ``repro report`` reads the finished sweep back out of it.
There is no network protocol — any process that can open the file (same
host, NFS with proper locking, a synced scratch directory) is a worker.

Crash-consistency contract
--------------------------

* The database runs in WAL mode with ``synchronous=FULL``; every mutation
  (claim, heartbeat, commit, release, expiry) is one ``BEGIN IMMEDIATE``
  transaction, so a worker killed with SIGKILL mid-write leaves either the
  previous state or the new state — never a torn row.
* A shard is *committed* exactly once: results are keyed by the shard's
  parameter fingerprint (``shard_id``), and the commit transaction checks
  the shard's status before inserting.  A late duplicate completion — a
  worker whose lease expired finishing anyway — is recorded as a
  ``duplicate`` audit event and changes nothing.
* A lease is a row with a deadline.  Claiming is atomic (the transaction
  selects the lowest-index claimable shard and writes the lease in one
  step); a crashed or stalled worker's lease simply expires, after which
  the shard is claimable again.  Nothing is ever lost: work is re-run from
  its deterministic seed, and idempotent commit guarantees re-runs cannot
  double-count.

Every state transition appends to an ``events`` audit table inside the
same transaction, so the accounting identity

    claims − lease-resolving commits − expiries − releases == lease rows

holds at every point in time (a commit resolves a claim only when it
released a live lease; a straggler committing after its lease was swept
resolves nothing — the expiry already balanced that claim).  Property-
tested in ``tests/distributed/test_queue_properties.py``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

SCHEMA_VERSION = 1

#: Audit-event kinds (a compatibility surface for `repro report --events`).
EVENT_KINDS = (
    "enqueue",
    "claim",
    "heartbeat",
    "expire",
    "commit",
    "duplicate",
    "release",
)


class StoreError(RuntimeError):
    """The store file exists but cannot serve this sweep (wrong schema,
    mismatched fingerprint, or a consistency invariant broke)."""


@dataclass(frozen=True)
class Shard:
    """One unit of distributable work: a sweep point."""

    shard_id: str
    index: int
    payload: dict


@dataclass(frozen=True)
class Lease:
    """A claimed shard: the holder must heartbeat before ``deadline``."""

    shard: Shard
    worker_id: str
    deadline: float


@dataclass(frozen=True)
class CommittedResult:
    """One committed shard read back from the store."""

    shard_id: str
    index: int
    worker_id: str
    result: dict
    trace: tuple
    samples_total: int
    trials_total: int


_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS shards (
    shard_id TEXT PRIMARY KEY,
    idx      INTEGER NOT NULL UNIQUE,
    payload  TEXT NOT NULL,
    status   TEXT NOT NULL DEFAULT 'pending'
             CHECK (status IN ('pending', 'committed'))
);
CREATE TABLE IF NOT EXISTS leases (
    shard_id   TEXT PRIMARY KEY REFERENCES shards(shard_id),
    worker_id  TEXT NOT NULL,
    claimed_at REAL NOT NULL,
    deadline   REAL NOT NULL,
    heartbeats INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS results (
    shard_id      TEXT PRIMARY KEY REFERENCES shards(shard_id),
    idx           INTEGER NOT NULL UNIQUE,
    worker_id     TEXT NOT NULL,
    result        TEXT NOT NULL,
    trace         TEXT NOT NULL,
    samples_total INTEGER NOT NULL,
    trials_total  INTEGER NOT NULL,
    committed_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    seq       INTEGER PRIMARY KEY AUTOINCREMENT,
    at        REAL NOT NULL,
    kind      TEXT NOT NULL,
    shard_id  TEXT,
    worker_id TEXT,
    detail    TEXT
);
"""


class ResultsStore:
    """Durable shard queue + results index over one sqlite file.

    Safe for concurrent use from many processes (sqlite locking + immediate
    transactions) and from many threads of one process (one connection per
    thread).  ``clock`` is injectable so lease expiry is testable without
    sleeping; workers on different hosts only need clocks agreeing to
    within a lease duration.
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        *,
        clock: Callable[[], float] = time.time,
        busy_timeout_s: float = 5.0,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._busy_timeout_s = busy_timeout_s
        self._local = threading.local()
        # executescript manages its own transaction (and would commit an
        # explicit one out from under us), so DDL runs outside _txn().
        self._conn().executescript(_SCHEMA)
        with self._txn() as cur:
            row = cur.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                cur.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row[0]) != SCHEMA_VERSION:
                raise StoreError(
                    f"store {self.path} has schema version {row[0]}, "
                    f"this build speaks {SCHEMA_VERSION}"
                )

    # -- connection plumbing --------------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                self.path,
                timeout=self._busy_timeout_s,
                isolation_level=None,  # explicit BEGIN IMMEDIATE below
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=FULL")
            conn.execute(f"PRAGMA busy_timeout={int(self._busy_timeout_s * 1000)}")
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close this thread's connection (other threads' stay open)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    class _Txn:
        def __init__(self, conn: sqlite3.Connection) -> None:
            self._conn = conn

        def __enter__(self) -> sqlite3.Cursor:
            self._conn.execute("BEGIN IMMEDIATE")
            return self._conn.cursor()

        def __exit__(self, exc_type: object, *rest: object) -> bool:
            if exc_type is None:
                self._conn.execute("COMMIT")
            else:
                self._conn.execute("ROLLBACK")
            return False

    def _txn(self) -> "ResultsStore._Txn":
        """One write transaction; raises ``sqlite3.OperationalError`` when
        the write lock cannot be taken within the busy timeout (workers
        wrap calls in their seeded-jitter retry policy)."""
        return self._Txn(self._conn())

    def _event(
        self,
        cur: sqlite3.Cursor,
        kind: str,
        shard_id: "str | None",
        worker_id: "str | None",
        detail: str = "",
    ) -> None:
        assert kind in EVENT_KINDS, kind
        cur.execute(
            "INSERT INTO events (at, kind, shard_id, worker_id, detail) "
            "VALUES (?, ?, ?, ?, ?)",
            (self._clock(), kind, shard_id, worker_id, detail),
        )

    # -- sweep identity -------------------------------------------------------

    def initialise(
        self,
        fingerprint: dict[str, Any],
        spec: dict[str, Any],
        shards: Sequence[Shard],
    ) -> int:
        """Bind the store to a sweep and enqueue its shards (idempotent).

        A fresh store records the fingerprint and enqueues every shard; an
        existing store must carry the *same* fingerprint (resuming a
        different sweep through the same file would splice incompatible
        results together — the same rule JSON checkpoints enforce) and the
        enqueue is a no-op for shards already present.  Returns the number
        of newly enqueued shards.
        """
        canonical = json.dumps(fingerprint, sort_keys=True)
        with self._txn() as cur:
            row = cur.execute(
                "SELECT value FROM meta WHERE key = 'fingerprint'"
            ).fetchone()
            if row is None:
                cur.execute(
                    "INSERT INTO meta (key, value) VALUES ('fingerprint', ?)",
                    (canonical,),
                )
                cur.execute(
                    "INSERT INTO meta (key, value) VALUES ('spec', ?)",
                    (json.dumps(spec, sort_keys=True),),
                )
            elif row[0] != canonical:
                raise StoreError(
                    f"store {self.path} belongs to a different sweep "
                    "(fingerprint mismatch) — point the run at a fresh store "
                    "or delete this one deliberately"
                )
            new = 0
            for shard in shards:
                cur.execute(
                    "INSERT OR IGNORE INTO shards (shard_id, idx, payload) "
                    "VALUES (?, ?, ?)",
                    (shard.shard_id, shard.index, json.dumps(shard.payload)),
                )
                if cur.rowcount:
                    new += 1
                    self._event(cur, "enqueue", shard.shard_id, None)
            return new

    def fingerprint(self) -> "dict[str, Any] | None":
        row = (
            self._conn()
            .execute("SELECT value FROM meta WHERE key = 'fingerprint'")
            .fetchone()
        )
        return json.loads(row[0]) if row else None

    def spec(self) -> "dict[str, Any] | None":
        row = (
            self._conn()
            .execute("SELECT value FROM meta WHERE key = 'spec'")
            .fetchone()
        )
        return json.loads(row[0]) if row else None

    # -- the lease state machine ---------------------------------------------

    def claim(self, worker_id: str, lease_seconds: float) -> "Lease | None":
        """Atomically claim the lowest-index claimable shard.

        Claimable = pending with no lease, or pending whose lease deadline
        has passed (the previous holder crashed or stalled; its expiry is
        recorded and the shard re-dispatched).  Returns ``None`` when
        nothing is claimable *right now* — the caller distinguishes "all
        work finished" from "all work leased out" via :meth:`finished`.
        """
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive, got {lease_seconds}")
        now = self._clock()
        with self._txn() as cur:
            row = cur.execute(
                """
                SELECT s.shard_id, s.idx, s.payload, l.worker_id, l.deadline
                FROM shards s LEFT JOIN leases l ON l.shard_id = s.shard_id
                WHERE s.status = 'pending'
                  AND (l.shard_id IS NULL OR l.deadline <= ?)
                ORDER BY s.idx LIMIT 1
                """,
                (now,),
            ).fetchone()
            if row is None:
                return None
            shard_id, idx, payload, old_worker, old_deadline = row
            if old_worker is not None:
                self._event(
                    cur,
                    "expire",
                    shard_id,
                    old_worker,
                    f"lease deadline {old_deadline:.3f} passed at {now:.3f}; "
                    f"re-dispatched to {worker_id}",
                )
                cur.execute("DELETE FROM leases WHERE shard_id = ?", (shard_id,))
            deadline = now + lease_seconds
            cur.execute(
                "INSERT INTO leases (shard_id, worker_id, claimed_at, deadline) "
                "VALUES (?, ?, ?, ?)",
                (shard_id, worker_id, now, deadline),
            )
            self._event(cur, "claim", shard_id, worker_id)
            shard = Shard(shard_id=shard_id, index=idx, payload=json.loads(payload))
            return Lease(shard=shard, worker_id=worker_id, deadline=deadline)

    def heartbeat(self, shard_id: str, worker_id: str, lease_seconds: float) -> bool:
        """Extend a held lease; ``False`` means the lease was lost.

        A lost lease (expired and re-dispatched, or the shard already
        committed by someone else) is *not* an error for the beating worker
        — it should finish and attempt its idempotent commit anyway; the
        store decides whose result counts.
        """
        now = self._clock()
        with self._txn() as cur:
            cur.execute(
                "UPDATE leases SET deadline = ?, heartbeats = heartbeats + 1 "
                "WHERE shard_id = ? AND worker_id = ? AND deadline > ?",
                (now + lease_seconds, shard_id, worker_id, now),
            )
            if not cur.rowcount:
                return False
            self._event(cur, "heartbeat", shard_id, worker_id)
            return True

    def expire_leases(self) -> list[str]:
        """Drop every lease past its deadline (pending shards only).

        Claim does this lazily one shard at a time; the coordinator calls
        this eagerly so `repro report` shows stragglers promptly.  Returns
        the affected shard ids.
        """
        now = self._clock()
        with self._txn() as cur:
            rows = cur.execute(
                """
                SELECT l.shard_id, l.worker_id, l.deadline
                FROM leases l JOIN shards s ON s.shard_id = l.shard_id
                WHERE l.deadline <= ? AND s.status = 'pending'
                ORDER BY s.idx
                """,
                (now,),
            ).fetchall()
            expired = []
            for shard_id, worker_id, deadline in rows:
                cur.execute("DELETE FROM leases WHERE shard_id = ?", (shard_id,))
                self._event(
                    cur,
                    "expire",
                    shard_id,
                    worker_id,
                    f"lease deadline {deadline:.3f} passed at {now:.3f}",
                )
                expired.append(shard_id)
            return expired

    def release(self, shard_id: str, worker_id: str) -> bool:
        """Voluntarily give a claimed shard back (graceful drain)."""
        with self._txn() as cur:
            cur.execute(
                "DELETE FROM leases WHERE shard_id = ? AND worker_id = ?",
                (shard_id, worker_id),
            )
            if not cur.rowcount:
                return False
            self._event(cur, "release", shard_id, worker_id)
            return True

    def commit(
        self,
        shard_id: str,
        worker_id: str,
        *,
        result: dict[str, Any],
        trace: Sequence[dict],
        samples_total: int,
        trials_total: int,
    ) -> bool:
        """Idempotently commit a shard's result; ``False`` = duplicate.

        The transaction checks the shard's status, inserts the result row,
        flips the status, and drops *any* lease on the shard (including a
        re-dispatched one — the racing worker's commit will be recorded as
        a duplicate).  First writer wins; results are deterministic in the
        shard's seed, so which writer wins never changes the sweep.
        """
        if isinstance(samples_total, bool) or samples_total != int(samples_total):
            raise StoreError(f"samples_total must be an integer, got {samples_total!r}")
        if samples_total < 0:
            raise StoreError(f"samples_total must be non-negative, got {samples_total}")
        with self._txn() as cur:
            row = cur.execute(
                "SELECT status FROM shards WHERE shard_id = ?", (shard_id,)
            ).fetchone()
            if row is None:
                raise StoreError(f"commit for unknown shard {shard_id!r}")
            if row[0] == "committed":
                self._event(
                    cur,
                    "duplicate",
                    shard_id,
                    worker_id,
                    "late completion after re-dispatch; result discarded",
                )
                return False
            idx = cur.execute(
                "SELECT idx FROM shards WHERE shard_id = ?", (shard_id,)
            ).fetchone()[0]
            holder = cur.execute(
                "SELECT worker_id FROM leases WHERE shard_id = ?", (shard_id,)
            ).fetchone()
            cur.execute(
                "INSERT INTO results (shard_id, idx, worker_id, result, trace, "
                "samples_total, trials_total, committed_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    shard_id,
                    idx,
                    worker_id,
                    json.dumps(result, sort_keys=True),
                    json.dumps(list(trace)),
                    int(samples_total),
                    int(trials_total),
                    self._clock(),
                ),
            )
            cur.execute(
                "UPDATE shards SET status = 'committed' WHERE shard_id = ?",
                (shard_id,),
            )
            cur.execute("DELETE FROM leases WHERE shard_id = ?", (shard_id,))
            # The audit identity needs to know whether this commit resolved
            # a claim: a commit with no live lease (the holder's lease was
            # already swept by expire_leases and nobody re-claimed) resolves
            # nothing — the expiry event already balanced that claim.
            detail = (
                f"lease-resolved holder={holder[0]}"
                if holder is not None
                else "lease-none (commit without a live lease)"
            )
            self._event(cur, "commit", shard_id, worker_id, detail)
            return True

    # -- introspection --------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Shard totals: ``{"shards", "committed", "pending", "leased"}``.

        ``leased`` counts *unexpired* leases on pending shards — the true
        in-flight number.
        """
        conn = self._conn()
        shards = conn.execute("SELECT COUNT(*) FROM shards").fetchone()[0]
        committed = conn.execute(
            "SELECT COUNT(*) FROM shards WHERE status = 'committed'"
        ).fetchone()[0]
        leased = conn.execute(
            "SELECT COUNT(*) FROM leases l JOIN shards s ON s.shard_id = l.shard_id "
            "WHERE s.status = 'pending' AND l.deadline > ?",
            (self._clock(),),
        ).fetchone()[0]
        return {
            "shards": shards,
            "committed": committed,
            "pending": shards - committed,
            "leased": leased,
        }

    def finished(self) -> bool:
        c = self.counts()
        return c["shards"] > 0 and c["committed"] == c["shards"]

    def results(self) -> list[CommittedResult]:
        """Committed results in shard-index order (the assembly order)."""
        rows = self._conn().execute(
            "SELECT shard_id, idx, worker_id, result, trace, samples_total, "
            "trials_total FROM results ORDER BY idx"
        ).fetchall()
        return [
            CommittedResult(
                shard_id=r[0],
                index=r[1],
                worker_id=r[2],
                result=json.loads(r[3]),
                trace=tuple(json.loads(r[4])),
                samples_total=r[5],
                trials_total=r[6],
            )
            for r in rows
        ]

    def shards(self) -> list[Shard]:
        rows = self._conn().execute(
            "SELECT shard_id, idx, payload FROM shards ORDER BY idx"
        ).fetchall()
        return [
            Shard(shard_id=r[0], index=r[1], payload=json.loads(r[2])) for r in rows
        ]

    def active_leases(self) -> list[Lease]:
        rows = self._conn().execute(
            "SELECT l.shard_id, s.idx, s.payload, l.worker_id, l.deadline "
            "FROM leases l JOIN shards s ON s.shard_id = l.shard_id "
            "WHERE s.status = 'pending' AND l.deadline > ? ORDER BY s.idx",
            (self._clock(),),
        ).fetchall()
        return [
            Lease(
                shard=Shard(shard_id=r[0], index=r[1], payload=json.loads(r[2])),
                worker_id=r[3],
                deadline=r[4],
            )
            for r in rows
        ]

    def events(self) -> Iterator[dict[str, Any]]:
        """The audit log, oldest first."""
        rows = self._conn().execute(
            "SELECT seq, at, kind, shard_id, worker_id, detail FROM events ORDER BY seq"
        ).fetchall()
        for seq, at, kind, shard_id, worker_id, detail in rows:
            yield {
                "seq": seq,
                "at": at,
                "kind": kind,
                "shard_id": shard_id,
                "worker_id": worker_id,
                "detail": detail,
            }

    def event_tally(self) -> dict[str, int]:
        tally = {kind: 0 for kind in EVENT_KINDS}
        for kind, count in self._conn().execute(
            "SELECT kind, COUNT(*) FROM events GROUP BY kind"
        ).fetchall():
            tally[kind] = count
        return tally

    def check_invariants(self) -> None:
        """Raise :class:`StoreError` if queue accounting is inconsistent.

        The audit identity — every claim is eventually resolved by exactly
        one of commit / expire / release, or is still in flight — plus
        structural checks (no committed shard holds a lease; results and
        committed statuses match one-to-one).
        """
        conn = self._conn()
        tally = self.event_tally()
        active = conn.execute("SELECT COUNT(*) FROM leases").fetchone()[0]
        # Only commits that released a live lease resolve a claim; a commit
        # landing after its lease was swept resolves nothing (the expiry
        # event already balanced that claim).
        resolving_commits = conn.execute(
            "SELECT COUNT(*) FROM events "
            "WHERE kind = 'commit' AND detail LIKE 'lease-resolved%'"
        ).fetchone()[0]
        balance = (
            tally["claim"] - resolving_commits - tally["expire"] - tally["release"]
        )
        if balance != active:
            raise StoreError(
                f"lease accounting broken: claims({tally['claim']}) − "
                f"lease-resolving commits({resolving_commits}) − "
                f"expiries({tally['expire']}) − releases({tally['release']}) "
                f"= {balance} ≠ lease rows {active}"
            )
        orphan = conn.execute(
            "SELECT COUNT(*) FROM leases l JOIN shards s ON s.shard_id = l.shard_id "
            "WHERE s.status = 'committed'"
        ).fetchone()[0]
        if orphan:
            raise StoreError(f"{orphan} lease(s) held on committed shards")
        committed = conn.execute(
            "SELECT COUNT(*) FROM shards WHERE status = 'committed'"
        ).fetchone()[0]
        results = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        if committed != results:
            raise StoreError(
                f"{committed} shards marked committed but {results} result rows"
            )
