"""Sweep specs and shards: the serialisable unit of distributable work.

A :class:`SweepSpec` is the complete, JSON-round-trippable description of a
:func:`repro.experiments.sweeps.complexity_sweep` call — identity knobs
only, never execution knobs (worker count, kernel).  Its fingerprint *is*
the checkpoint fingerprint of the equivalent serial sweep, so a sqlite
results store and a JSON checkpoint of the same sweep agree byte-for-byte
on identity.

A **shard** is one sweep point.  Its id is the sha256 of the canonical JSON
of ``{sweep fingerprint, point index, point value}``, which makes commits
idempotent by construction: however many times a shard is re-dispatched,
every completion computes the same id and only the first writer's result
row lands.

:func:`run_shard` is the determinism keystone.  It replays exactly what the
serial sweep loop does for one point — same ``spawn_rngs`` stream
derivation, same workload factories, same span structure — so a shard
computed by any worker, on any host, after any number of crashes, yields a
point and a sub-trace byte-identical to the serial run's.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.core.backends import DEFAULT_BACKEND, validate_backend
from repro.core.config import TesterConfig
from repro.experiments.estimate import empirical_sample_complexity
from repro.experiments.sweeps import (
    ClosenessTesterFamily,
    HistogramTesterFamily,
    SweepPoint,
    _default_paired_workloads,
    _default_workloads,
    _point_from_json,
    _point_to_json,
    sweep_fingerprint,
)
from repro.kernels import validate_kernel
from repro.observability.trace import RecordingTracer
from repro.util.rng import spawn_rngs

from repro.distributed.store import Shard

#: Exactly the keys a serialised spec carries (a compatibility surface).
SPEC_KEYS = frozenset(
    {
        "task",
        "axis",
        "values",
        "n",
        "k",
        "eps",
        "trials",
        "bisection_steps",
        "config",
        "backend",
        "seed",
    }
)


@dataclass(frozen=True)
class SweepSpec:
    """Identity of one distributed sweep (all knobs that change results)."""

    axis: str
    values: tuple
    n: int
    k: int
    eps: float
    trials: int
    bisection_steps: int
    seed: int
    backend: str = DEFAULT_BACKEND
    task: str = "identity"
    config: TesterConfig = None  # type: ignore[assignment]  # filled by __post_init__

    def __post_init__(self) -> None:
        if self.axis not in ("n", "k", "eps"):
            raise ValueError(f"axis must be one of n/k/eps, got {self.axis!r}")
        if self.task not in ("identity", "closeness"):
            raise ValueError(
                f"task must be 'identity' or 'closeness', got {self.task!r}"
            )
        if not self.values:
            raise ValueError("need at least one axis value")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(
                "a distributed sweep requires an integer seed — every shard "
                "re-derives its stream from it"
            )
        validate_backend(self.backend)
        object.__setattr__(self, "values", tuple(float(v) for v in self.values))
        if self.config is None:
            object.__setattr__(self, "config", TesterConfig.practical())

    # -- identity ------------------------------------------------------------

    def fingerprint(self) -> dict[str, Any]:
        """The sweep fingerprint (same function serial checkpoints use)."""
        return sweep_fingerprint(
            self.axis,
            self.values,
            n=self.n,
            k=self.k,
            eps=self.eps,
            trials=self.trials,
            bisection_steps=self.bisection_steps,
            config=self.config,
            backend=self.backend,
            seed=self.seed,
            task=self.task,
        )

    def shard_id(self, index: int) -> str:
        """Content-derived shard identity (the idempotency key)."""
        if not 0 <= index < len(self.values):
            raise IndexError(f"shard index {index} out of range 0..{len(self.values) - 1}")
        identity = {
            "sweep": self.fingerprint(),
            "index": index,
            "value": float(self.values[index]),
        }
        digest = hashlib.sha256(
            json.dumps(identity, sort_keys=True).encode()
        ).hexdigest()
        return digest[:32]

    def shards(self) -> list[Shard]:
        """One shard per sweep point, in point order."""
        return [
            Shard(
                shard_id=self.shard_id(index),
                index=index,
                payload={"index": index, "value": float(value)},
            )
            for index, value in enumerate(self.values)
        ]

    def point_params(self, index: int) -> tuple[int, int, float]:
        """The ``(n, k, eps)`` of point ``index`` after applying the axis."""
        value = self.values[index]
        cur_n, cur_k, cur_eps = self.n, self.k, self.eps
        if self.axis == "n":
            cur_n = int(value)
        elif self.axis == "k":
            cur_k = int(value)
        else:
            cur_eps = float(value)
        return cur_n, cur_k, cur_eps

    # -- JSON round trip -----------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        fp = self.fingerprint()
        return {key: fp[key] for key in sorted(SPEC_KEYS)}

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SweepSpec":
        if not isinstance(data, dict):
            raise ValueError(f"spec must be an object, got {type(data).__name__}")
        extra = set(data) - SPEC_KEYS
        missing = SPEC_KEYS - set(data)
        if extra or missing:
            raise ValueError(
                f"malformed sweep spec: unknown keys {sorted(extra)}, "
                f"missing keys {sorted(missing)}"
            )
        # The fingerprint drops `workers` (execution knob); restore the
        # dataclass default so TesterConfig round-trips.
        config = TesterConfig(**data["config"])
        return cls(
            axis=data["axis"],
            values=tuple(data["values"]),
            n=int(data["n"]),
            k=int(data["k"]),
            eps=float(data["eps"]),
            trials=int(data["trials"]),
            bisection_steps=int(data["bisection_steps"]),
            seed=int(data["seed"]),
            backend=data["backend"],
            task=data["task"],
            config=config,
        )

    def with_values(self, values: Sequence[float]) -> "SweepSpec":
        return replace(self, values=tuple(float(v) for v in values))


@dataclass(frozen=True)
class ShardResult:
    """Everything a worker commits for one shard."""

    index: int
    point: dict  # serialised SweepPoint (``_point_to_json`` schema)
    trace: tuple  # exported sub-trace events (dicts)
    samples_total: int  # sum of ledger totals across the shard's trials
    trials_total: int  # number of ledger events (tester invocations)

    def sweep_point(self) -> SweepPoint:
        return _point_from_json(self.point)


def ledger_totals(events: "Sequence[dict]") -> tuple[int, int]:
    """``(samples_total, ledger_event_count)`` from an exported trace.

    Every tester invocation emits exactly one ``ledger`` event whose
    ``attrs["total"]`` is the integer-reconciled draw count, so summing
    them recovers the shard's exact sample usage — this is the quantity
    ``repro report`` recomputes from the stored trace to prove zero drift.
    """
    samples = 0
    count = 0
    for event in events:
        if event["kind"] != "event":
            continue
        name = event["name"]
        if name != "ledger" and not name.endswith("/ledger"):
            continue
        total = event["attrs"]["total"]
        if isinstance(total, bool) or not isinstance(total, int):
            raise ValueError(f"ledger event carries non-integer total: {total!r}")
        samples += total
        count += 1
    return samples, count


def run_shard(
    spec: SweepSpec,
    index: int,
    *,
    kernel: str = "auto",
    workers: "int | None" = None,
) -> ShardResult:
    """Compute one sweep point exactly as the serial sweep loop would.

    ``kernel`` and ``workers`` are execution knobs: any combination yields
    the same bytes (the engine's determinism contract), so workers on
    heterogeneous hosts — some with numba, some without, some multi-core —
    still assemble into one byte-identical sweep.
    """
    validate_kernel(kernel)
    cur_n, cur_k, cur_eps = spec.point_params(index)
    # Identical stream derivation to the serial loop: spawn all point
    # streams from the sweep seed, take ours.  O(len(values)) int draws —
    # negligible next to the point itself.
    stream = spawn_rngs(spec.seed, len(spec.values))[index]
    if spec.task == "closeness":
        complete, far = _default_paired_workloads(cur_n, cur_k, cur_eps)
        family = ClosenessTesterFamily(cur_k, cur_eps, spec.config, kernel)
    else:
        complete, far = _default_workloads(cur_n, cur_k, cur_eps)
        family = HistogramTesterFamily(
            cur_k, cur_eps, spec.config, spec.backend, kernel
        )
    tracer = RecordingTracer()
    with tracer.span(
        "point",
        axis=spec.axis,
        value=float(spec.values[index]),
        n=cur_n,
        k=cur_k,
        eps=cur_eps,
    ):
        estimate = empirical_sample_complexity(
            family,
            complete=complete,
            far=far,
            trials=spec.trials,
            bisection_steps=spec.bisection_steps,
            rng=stream,
            policy=None,
            workers=workers,
            trace=tracer,
        )
    point = SweepPoint(n=cur_n, k=cur_k, eps=cur_eps, estimate=estimate)
    events = tracer.export()
    samples_total, trials_total = ledger_totals(events)
    return ShardResult(
        index=index,
        point=_point_to_json(point),
        trace=tuple(events),
        samples_total=samples_total,
        trials_total=trials_total,
    )
