"""Seeded fault-injection schedules for the distributed worker loop.

Chaos here is *deterministic*: whether worker ``w1`` dies on its third
claim is a pure function of ``(chaos seed, worker id, claim ordinal)``, via
the same ``np.random.default_rng([seed, …keys])`` keyed-stream idiom the
trial engine uses.  That turns "the sweep survives crashes" from a flaky
statement into a replayable one — the chaos matrix tests pin a schedule
and assert the assembled sweep is byte-identical to the serial run under
it, every time.

Supported actions, each exercising a distinct failure edge of the lease
state machine:

* ``kill``             — SIGKILL the worker process *after* computing the
                         shard but *before* committing: the worst spot,
                         since the work is done but the store must treat it
                         as lost (lease expiry → re-dispatch → idempotent
                         recompute).
* ``late-commit``      — stall past the lease deadline, then commit anyway:
                         either the commit lands (nobody re-claimed yet) or
                         it is recorded as a duplicate — never both, never
                         neither.
* ``duplicate-commit`` — commit twice back-to-back; the second must be a
                         no-op duplicate.
* ``skip-heartbeat``   — run the shard without heartbeating, simulating a
                         stalled-but-alive worker whose lease expires
                         underneath it.

Schedules come in two flavours: **scripted** (exact ``(worker, ordinal) →
action`` triples, for tests that pin one interleaving) and **seeded-rate**
(every claim draws an action with probability ``rate``, for the CI smoke
job and the E27 benchmark).  ``max_actions`` bounds total injections per
process so a schedule can never livelock a sweep.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

#: Every action a schedule may inject (a compatibility surface).
ACTIONS = ("kill", "late-commit", "duplicate-commit", "skip-heartbeat")


def _worker_key(worker_id: str) -> int:
    """A stable integer key for a worker id (``hash()`` is per-process
    randomised; chaos must replay identically across processes)."""
    return zlib.crc32(worker_id.encode("utf-8"))


@dataclass(frozen=True)
class ChaosSchedule:
    """A deterministic fault schedule, queried once per shard claim.

    ``script`` entries take priority; with ``rate > 0`` the remaining
    claims draw from the seeded keyed stream.  The default instance
    (no script, zero rate) injects nothing.
    """

    seed: int = 0
    rate: float = 0.0
    actions: Tuple[str, ...] = ACTIONS
    #: Exact injections: ``(worker_id, claim_ordinal, action)``.
    script: Tuple[Tuple[str, int, str], ...] = ()
    #: Hard cap on injections per process (``None`` = unbounded).  The
    #: worker counts what it has injected; once spent, the schedule goes
    #: quiet and the sweep is guaranteed to finish.
    max_actions: Optional[int] = 2
    #: Seconds a ``late-commit`` stalls beyond the current lease deadline.
    stall_seconds: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        for action in self.actions:
            if action not in ACTIONS:
                raise ValueError(f"unknown chaos action {action!r}")
        for worker_id, ordinal, action in self.script:
            if action not in ACTIONS:
                raise ValueError(f"unknown scripted chaos action {action!r}")
            if ordinal < 0:
                raise ValueError(f"scripted ordinal must be >= 0, got {ordinal}")

    def action_for(self, worker_id: str, ordinal: int) -> "str | None":
        """The action to inject on this worker's ``ordinal``-th claim
        (0-based), or ``None``.  Pure — call it as often as you like."""
        for scripted_worker, scripted_ordinal, action in self.script:
            if scripted_worker == worker_id and scripted_ordinal == ordinal:
                return action
        if self.rate <= 0.0:
            return None
        rng = np.random.default_rng([self.seed, _worker_key(worker_id), ordinal])
        if rng.random() >= self.rate:
            return None
        return self.actions[int(rng.integers(len(self.actions)))]

    # -- CLI round trip ------------------------------------------------------

    def to_args(self) -> list[str]:
        """Serialise the seeded part as ``repro worker`` CLI flags.

        Scripts don't cross the CLI boundary (tests inject them in-process);
        subprocess chaos is always the seeded-rate flavour.
        """
        argv = [
            "--chaos-seed",
            str(self.seed),
            "--chaos-rate",
            str(self.rate),
            "--chaos-actions",
            ",".join(self.actions),
            "--chaos-stall",
            str(self.stall_seconds),
        ]
        if self.max_actions is not None:
            argv += ["--chaos-max-actions", str(self.max_actions)]
        return argv


@dataclass
class ChaosState:
    """Per-process injection accounting (the mutable side of a schedule)."""

    schedule: ChaosSchedule
    injected: int = 0
    history: list = field(default_factory=list)

    def draw(self, worker_id: str, ordinal: int) -> "str | None":
        """Consult the schedule, honouring ``max_actions``."""
        cap = self.schedule.max_actions
        if cap is not None and self.injected >= cap:
            return None
        action = self.schedule.action_for(worker_id, ordinal)
        if action is not None:
            self.injected += 1
            self.history.append((worker_id, ordinal, action))
        return action
