"""The shard worker: claim → run → heartbeat → idempotently commit.

A worker is a plain process (``repro worker --store sweep.sqlite``) holding
no state the store doesn't also hold.  Its loop:

1. claim the lowest-index claimable shard (atomic lease with a deadline);
2. start a heartbeat thread extending the lease while the shard computes;
3. run the shard through the deterministic trial engine
   (:func:`repro.distributed.spec.run_shard`);
4. commit the result idempotently; a ``False`` commit means another worker
   beat us after our lease expired — the result is discarded, nothing is
   double-counted, and the loop moves on.

Every store call goes through the robustness substrate: a seeded-jitter
:class:`~repro.robustness.resilience.RetryPolicy` absorbs transient sqlite
lock contention (many workers share one write lock), and a per-worker
:class:`~repro.serve.breaker.CircuitBreaker` backs the whole loop off when
the store itself is persistently unhealthy rather than hammering it.

SIGTERM/SIGINT request a **graceful drain**: the in-flight shard finishes
and commits (work already paid for is not thrown away), no further shards
are claimed, and the worker exits with a reconciled
:class:`~repro.observability.ledger.SampleLedger` — one stage per committed
shard, integer-exact, proving the worker accounted for every sample it
drew.  SIGKILL needs no handling at all: the lease expires, the shard is
re-dispatched, and idempotent commit keeps the sweep byte-identical.

Chaos hooks (:mod:`repro.distributed.chaos`) inject faults at the loop's
edges — after compute/before commit (kill), past the lease deadline
(late-commit), and so on — under a deterministic schedule, which is how the
chaos matrix tests pin down exact failure interleavings.
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.distributed.chaos import ChaosSchedule, ChaosState
from repro.distributed.spec import SweepSpec, run_shard
from repro.distributed.store import Lease, ResultsStore, StoreError
from repro.observability.ledger import SampleLedger
from repro.robustness.resilience import RetryPolicy, run_with_retry
from repro.serve.breaker import CircuitBreaker

#: sqlite's "database is locked" surfaces as OperationalError — the one
#: store failure that is expected under contention and safe to retry.
STORE_TRANSIENT = (sqlite3.OperationalError,)


def default_store_retry(worker_id: str) -> RetryPolicy:
    """The store-call retry policy: bounded, with per-worker seeded jitter
    so a fleet of workers hitting one locked store de-synchronises instead
    of re-colliding in lockstep."""
    import zlib

    return RetryPolicy(
        max_attempts=5,
        base_delay=0.02,
        multiplier=2.0,
        max_delay=0.5,
        retry_on=STORE_TRANSIENT,
        jitter=0.5,
        jitter_seed=zlib.crc32(worker_id.encode("utf-8")),
    )


class _Heartbeat(threading.Thread):
    """Extends one lease on an interval until stopped (or the lease is lost).

    Runs against the same :class:`ResultsStore` object — connections are
    per-thread, so the beat never interleaves with the main thread's
    transaction mid-statement.  A failed beat (lock contention) is skipped,
    not retried: the next interval tries again, and the lease is sized to
    survive several missed beats.
    """

    def __init__(
        self,
        store: ResultsStore,
        shard_id: str,
        worker_id: str,
        interval: float,
        lease_seconds: float,
    ) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{worker_id}")
        self._store = store
        self._shard_id = shard_id
        self._worker_id = worker_id
        self._interval = interval
        self._lease_seconds = lease_seconds
        self._stop_event = threading.Event()
        self.beats = 0
        self.lost = False

    def run(self) -> None:
        while not self._stop_event.wait(self._interval):
            try:
                alive = self._store.heartbeat(
                    self._shard_id, self._worker_id, self._lease_seconds
                )
            except STORE_TRANSIENT:
                continue
            if not alive:
                # Expired and possibly re-dispatched.  Keep computing: the
                # commit is idempotent, so finishing costs nothing and may
                # still win the race.
                self.lost = True
                return
            self.beats += 1

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=5.0)


@dataclass(frozen=True)
class WorkerOptions:
    """Everything a worker needs beyond the store path."""

    worker_id: str
    lease_seconds: float = 30.0
    #: Beat interval; default ``lease_seconds / 3`` (several beats per lease).
    heartbeat_interval: "float | None" = None
    poll_seconds: float = 0.2
    #: Stop after this many commits (``None`` = run until the sweep finishes).
    max_shards: "int | None" = None
    kernel: str = "auto"
    #: Intra-shard trial parallelism (the existing engine's ``workers=``).
    workers: "int | None" = None
    chaos: "ChaosSchedule | None" = None
    retry: "RetryPolicy | None" = None
    breaker_threshold: int = 3
    breaker_cooldown: int = 2

    def resolved_retry(self) -> RetryPolicy:
        return self.retry if self.retry is not None else default_store_retry(self.worker_id)

    def resolved_heartbeat_interval(self) -> float:
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return max(self.lease_seconds / 3.0, 0.01)


@dataclass
class WorkerSummary:
    """What one worker process did, for logs and reconciliation."""

    worker_id: str
    claimed: int = 0
    committed: int = 0
    duplicates: int = 0
    released: int = 0
    samples_total: int = 0
    drained: bool = False
    breaker_trips: int = 0
    chaos_injected: list = field(default_factory=list)
    ledger_stages: dict = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "claimed": self.claimed,
            "committed": self.committed,
            "duplicates": self.duplicates,
            "released": self.released,
            "samples_total": self.samples_total,
            "drained": self.drained,
            "breaker_trips": self.breaker_trips,
            "chaos_injected": [list(entry) for entry in self.chaos_injected],
            "ledger_stages": dict(self.ledger_stages),
        }


class Worker:
    """One worker process's claim/run/commit loop over a results store."""

    def __init__(
        self,
        store: "ResultsStore | str | os.PathLike",
        options: WorkerOptions,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.store = store if isinstance(store, ResultsStore) else ResultsStore(store)
        self.options = options
        self._sleep = sleep
        self._retry = options.resolved_retry()
        self._breaker = CircuitBreaker(
            failure_threshold=options.breaker_threshold,
            cooldown_rounds=options.breaker_cooldown,
        )
        self._chaos = ChaosState(options.chaos) if options.chaos else None
        self._drain_requested = False
        self._spec: "SweepSpec | None" = None

    # -- drain ---------------------------------------------------------------

    def request_drain(self) -> None:
        """Finish the in-flight shard, commit it, then exit the loop."""
        self._drain_requested = True

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main thread only)."""

        def _handler(signum: int, frame: object) -> None:
            self.request_drain()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    # -- store calls under retry + breaker -----------------------------------

    def _guarded(self, label: str, op: Callable[[], Any]) -> Any:
        """One store call under the retry policy, feeding the breaker."""
        try:
            result, _attempts = run_with_retry(
                lambda attempt: op(), self._retry, sleep=self._sleep
            )
        except STORE_TRANSIENT:
            self._breaker.record_failure()
            raise
        self._breaker.record_success()
        return result

    # -- the loop ------------------------------------------------------------

    def _load_spec(self) -> SweepSpec:
        if self._spec is None:
            raw = self._guarded("spec", self.store.spec)
            if raw is None:
                raise StoreError(
                    f"store {self.store.path} holds no sweep spec — "
                    "initialise it with the coordinator first"
                )
            self._spec = SweepSpec.from_json(raw)
        return self._spec

    def run(self) -> WorkerSummary:
        """Run until the sweep finishes, ``max_shards`` commits land, or a
        drain is requested.  Returns the reconciled summary."""
        opts = self.options
        summary = WorkerSummary(worker_id=opts.worker_id)
        ledger = SampleLedger()
        claim_ordinal = 0
        while not self._drain_requested:
            self._breaker.tick()
            if not self._breaker.allow():
                self._sleep(opts.poll_seconds)
                continue
            try:
                if self._guarded("finished", self.store.finished):
                    break
                lease = self._guarded(
                    "claim",
                    lambda: self.store.claim(opts.worker_id, opts.lease_seconds),
                )
            except STORE_TRANSIENT:
                self._sleep(opts.poll_seconds)
                continue
            if lease is None:
                # Everything claimable is leased out; wait for commits or
                # expiries (a crashed holder's shard becomes claimable again).
                self._sleep(opts.poll_seconds)
                continue
            summary.claimed += 1
            action = self._chaos.draw(opts.worker_id, claim_ordinal) if self._chaos else None
            claim_ordinal += 1
            if action is not None:
                summary.chaos_injected.append((opts.worker_id, claim_ordinal - 1, action))
            self._run_one(lease, action, summary, ledger)
            if opts.max_shards is not None and summary.committed >= opts.max_shards:
                break
        summary.drained = self._drain_requested
        summary.breaker_trips = self._breaker.trips
        # Integer-exact reconciliation: the ledger recorded one stage per
        # committed shard; its total must equal the summed commit totals.
        summary.samples_total = ledger.reconcile(summary.samples_total)
        summary.ledger_stages = dict(ledger.stages)
        return summary

    def _run_one(
        self,
        lease: Lease,
        action: "str | None",
        summary: WorkerSummary,
        ledger: SampleLedger,
    ) -> None:
        opts = self.options
        spec = self._load_spec()
        shard = lease.shard
        beat: "_Heartbeat | None" = None
        if action != "skip-heartbeat":
            beat = _Heartbeat(
                self.store,
                shard.shard_id,
                opts.worker_id,
                opts.resolved_heartbeat_interval(),
                opts.lease_seconds,
            )
            beat.start()
        try:
            result = run_shard(
                spec, shard.index, kernel=opts.kernel, workers=opts.workers
            )
        finally:
            if beat is not None:
                beat.stop()

        if action == "kill":
            # Crash at the worst point: work done, commit not yet attempted.
            # From the store's perspective this is indistinguishable from a
            # worker dying mid-shard — the lease expires and the shard is
            # re-dispatched.  os._exit as the no-SIGKILL fallback.
            if hasattr(signal, "SIGKILL"):
                os.kill(os.getpid(), signal.SIGKILL)
            os._exit(137)
        if action in ("late-commit", "skip-heartbeat"):
            # Outlive the lease, then commit anyway: either it lands (shard
            # not yet re-claimed) or it is a recorded duplicate.
            chaos = self._chaos.schedule if self._chaos else ChaosSchedule()
            stall = max(0.0, lease.deadline - time.time()) + chaos.stall_seconds
            self._sleep(stall)

        committed = self._guarded(
            "commit",
            lambda: self.store.commit(
                shard.shard_id,
                opts.worker_id,
                result={"index": result.index, "point": result.point},
                trace=result.trace,
                samples_total=result.samples_total,
                trials_total=result.trials_total,
            ),
        )
        if committed:
            summary.committed += 1
            summary.samples_total += result.samples_total
            ledger.record(f"shard-{shard.index}", result.samples_total)
        else:
            summary.duplicates += 1

        if action == "duplicate-commit":
            # A second completion of the same shard must always be a no-op.
            again = self._guarded(
                "commit",
                lambda: self.store.commit(
                    shard.shard_id,
                    opts.worker_id,
                    result={"index": result.index, "point": result.point},
                    trace=result.trace,
                    samples_total=result.samples_total,
                    trials_total=result.trials_total,
                ),
            )
            if again:
                raise StoreError(
                    f"shard {shard.shard_id} committed twice — idempotency broken"
                )
            summary.duplicates += 1


def worker_main(
    store_path: "str | os.PathLike",
    options: WorkerOptions,
    *,
    emit: Callable[[str], None] = print,
) -> WorkerSummary:
    """Entry point behind ``repro worker``: signals wired, summary printed
    as one JSON line (machine-tailable from the coordinator's logs)."""
    worker = Worker(store_path, options)
    worker.install_signal_handlers()
    summary = worker.run()
    emit(json.dumps({"worker_summary": summary.to_json()}, sort_keys=True))
    return summary
